/**
 * @file
 * AMG solver example (§VI-D): solve a 2D Poisson problem with the
 * smoothed-aggregation AMG substrate, then map the solver's kernel
 * mix (SpGEMM setup + SpMV V-cycles) onto sparse tensor cores.
 */

#include <cstdio>

#include "apps/amg/amg.hh"
#include "apps/amg/amg_driver.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "corpus/generators.hh"
#include "stc/registry.hh"

using namespace unistc;

int
main()
{
    const int grid = 48;
    const CsrMatrix a = genStencil2d(grid, false);
    std::printf("2D Poisson, %dx%d grid (%d unknowns)\n", grid, grid,
                a.rows());

    const AmgHierarchy hierarchy(a);
    std::printf("AMG hierarchy: %d levels, operator sizes:",
                hierarchy.numLevels());
    for (int l = 0; l < hierarchy.numLevels(); ++l)
        std::printf(" %d", hierarchy.level(l).a.rows());
    std::printf("\n");

    // Solve with a random right-hand side.
    Rng rng(2026);
    std::vector<double> b(a.rows());
    for (auto &v : b)
        v = rng.nextDouble(-1.0, 1.0);
    std::vector<double> x(a.rows(), 0.0);
    const AmgSolveStats stats = hierarchy.solve(x, b, 1e-8, 60);
    std::printf("Solve: %s in %d V-cycles, final residual %.2e\n\n",
                stats.converged ? "converged" : "NOT converged",
                stats.iterations, stats.finalResidual);

    const MachineConfig cfg = MachineConfig::fp64();
    TextTable t("AMG kernel stream per STC (setup SpGEMM + " +
                std::to_string(stats.iterations) +
                " V-cycles of SpMV)");
    t.setHeader({"STC", "SpMV cycles", "SpGEMM cycles",
                 "total energy"});
    for (const auto &name : {"DS-STC", "RM-STC", "Uni-STC"}) {
        const auto model = makeStcModel(name, cfg);
        const AmgWorkload w = simulateAmg(*model, hierarchy,
                                          stats.iterations);
        t.addRow({name, fmtCount(w.spmv.cycles),
                  fmtCount(w.spgemm.cycles),
                  fmtEnergyPj(w.spmv.energy.total() +
                              w.spgemm.energy.total())});
    }
    t.print();
    return 0;
}
