/**
 * @file
 * Format-conversion tool: encode a Matrix Market file into the
 * binary BBC image (§IV-D's offline encoding + file I/O), verify the
 * round-trip, and print the storage comparison against CSR and BSR.
 *
 *   mtx2bbc input.mtx output.bbc
 *   mtx2bbc output.bbc            (no input: encodes a demo matrix)
 */

#include <cstdio>

#include "bbc/bbc_io.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "corpus/generators.hh"
#include "sparse/convert.hh"
#include "sparse/io.hh"

using namespace unistc;

int
main(int argc, char **argv)
{
    CsrMatrix m;
    std::string out_path;
    if (argc == 3) {
        m = readMatrixMarketFile(argv[1]);
        out_path = argv[2];
    } else if (argc == 2) {
        m = genBanded(2048, 20, 0.45, 11);
        out_path = argv[1];
    } else {
        std::fprintf(stderr,
                     "usage: mtx2bbc [input.mtx] output.bbc\n");
        return 2;
    }

    const BbcMatrix bbc = BbcMatrix::fromCsr(m);
    saveBbcFile(out_path, bbc);

    // Verify the written image decodes to the exact input.
    const BbcMatrix back = loadBbcFile(out_path);
    if (!back.toCsr().approxEquals(m, 0.0))
        UNISTC_FATAL("round-trip verification failed");

    TextTable t("Encoded " + std::to_string(m.rows()) + "x" +
                std::to_string(m.cols()) + ", " +
                fmtCount(m.nnz()) + " nonzeros -> " + out_path);
    t.setHeader({"format", "bytes", "vs CSR"});
    const double csr = static_cast<double>(m.storageBytes());
    t.addRow({"CSR", fmtBytes(m.storageBytes()), "1.00x"});
    const BsrMatrix b4 = csrToBsr(m, 4);
    t.addRow({"BSR 4x4", fmtBytes(b4.storageBytes()),
              fmtRatio(csr / b4.storageBytes())});
    const BsrMatrix b16 = csrToBsr(m, 16);
    t.addRow({"BSR 16x16", fmtBytes(b16.storageBytes()),
              fmtRatio(csr / b16.storageBytes())});
    t.addRow({"BBC", fmtBytes(bbc.storageBytes()),
              fmtRatio(csr / bbc.storageBytes())});
    t.print();
    std::printf("\nNnzPB %.2f; metadata %s; round-trip verified.\n",
                bbc.nnzPerBlock(),
                fmtBytes(bbc.metadataBytes()).c_str());
    return 0;
}
