/**
 * @file
 * BFS example (Table II: BFS combines SpMV and SpMSpV). Runs a
 * frontier-based BFS where each expansion is an SpMSpV, then replays
 * the recorded frontiers on the STC models to estimate traversal
 * cycles per architecture.
 */

#include <cstdio>

#include "apps/bfs/bfs.hh"
#include "bbc/bbc_matrix.hh"
#include "common/table.hh"
#include "corpus/generators.hh"
#include "runner/spmspv_runner.hh"
#include "sparse/convert.hh"
#include "stc/registry.hh"

using namespace unistc;

int
main()
{
    const int nodes = 1536;
    const CsrMatrix adj = genPowerLaw(nodes, 8.0, 2.3, 77);
    const BfsResult bfs = bfsSpmspv(adj, /*source=*/0);

    int reached = 0;
    int max_level = 0;
    for (int lvl : bfs.level) {
        if (lvl >= 0) {
            ++reached;
            max_level = std::max(max_level, lvl);
        }
    }
    std::printf("BFS over %d nodes: reached %d, depth %d, "
                "%d frontier expansions\n\n",
                nodes, reached, max_level, bfs.iterations);

    // Replay every frontier expansion (y = A^T f) on each STC.
    const CsrMatrix adj_t = transposeCsr(adj);
    const BbcMatrix adj_t_bbc = BbcMatrix::fromCsr(adj_t);

    const MachineConfig cfg = MachineConfig::fp64();
    TextTable t("BFS frontier expansions (SpMSpV) per STC");
    t.setHeader({"STC", "total cycles", "MAC util", "energy"});
    for (const auto &name : {"DS-STC", "RM-STC", "Uni-STC"}) {
        const auto model = makeStcModel(name, cfg);
        RunResult total;
        for (const auto &frontier : bfs.frontiers) {
            total.merge(
                runSpmspv(*model, adj_t_bbc, frontier));
        }
        t.addRow({name, fmtCount(total.cycles),
                  fmtPercent(total.utilisation()),
                  fmtEnergyPj(total.energy.total())});
    }
    t.print();
    return 0;
}
