/**
 * @file
 * AMG-preconditioned conjugate gradients: composes the two solver
 * substrates (CG from apps/solvers, AMG from apps/amg) and maps the
 * resulting SpMV-dominated kernel stream onto the STC models — the
 * deployment shape of production AMG solvers.
 */

#include <cstdio>

#include "apps/amg/amg.hh"
#include "apps/amg/amg_driver.hh"
#include "apps/solvers/cg.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "corpus/generators.hh"
#include "runner/spmv_runner.hh"
#include "stc/registry.hh"

using namespace unistc;

int
main()
{
    const int grid = 56;
    const CsrMatrix a = genStencil2d(grid, false);
    std::printf("2D Poisson, %dx%d grid (%d unknowns)\n", grid, grid,
                a.rows());

    Rng rng(77);
    std::vector<double> b(a.rows());
    for (auto &v : b)
        v = rng.nextDouble(-1.0, 1.0);

    // Plain CG.
    std::vector<double> x_plain(a.rows(), 0.0);
    const CgStats plain = conjugateGradient(a, x_plain, b, 1e-8,
                                            2000);

    // AMG(1 V-cycle)-preconditioned CG.
    const AmgHierarchy amg(a);
    std::vector<double> x_pcg(a.rows(), 0.0);
    const CgStats pcg = conjugateGradient(
        a, x_pcg, b, 1e-8, 2000,
        [&](const std::vector<double> &r) {
            std::vector<double> z(r.size(), 0.0);
            amg.vCycle(z, r);
            return z;
        });

    std::printf("plain CG:  %4d iterations (residual %.2e)\n",
                plain.iterations, plain.finalResidual);
    std::printf("AMG-PCG:   %4d iterations (residual %.2e)\n\n",
                pcg.iterations, pcg.finalResidual);

    // STC view: fine-grid SpMVs from CG itself plus the V-cycle
    // stream from the preconditioner applications.
    const MachineConfig cfg = MachineConfig::fp64();
    const BbcMatrix a_bbc = BbcMatrix::fromCsr(a);

    TextTable t("AMG-PCG kernel stream per STC (" +
                std::to_string(pcg.iterations) + " iterations)");
    t.setHeader({"STC", "CG SpMV cycles", "V-cycle SpMV cycles",
                 "total"});
    for (const auto &name : {"DS-STC", "RM-STC", "Uni-STC"}) {
        const auto model = makeStcModel(name, cfg);
        RunResult cg_run = runSpmv(*model, a_bbc);
        cg_run.scale(static_cast<std::uint64_t>(pcg.spmvCount));
        const AmgWorkload pre =
            simulateAmg(*model, amg, pcg.iterations);
        t.addRow({name, fmtCount(cg_run.cycles),
                  fmtCount(pre.spmv.cycles),
                  fmtCount(cg_run.cycles + pre.spmv.cycles)});
    }
    t.print();
    return 0;
}
