/**
 * @file
 * Single-source shortest paths over the tropical (min, +) semiring —
 * an extension workload showing that the structural task stream, and
 * therefore the STC simulation, is semiring-agnostic: each Bellman-
 * Ford relaxation round is one SpMV whose index-matching work is
 * identical to the (+, x) case.
 */

#include <cmath>
#include <cstdio>

#include "bbc/bbc_matrix.hh"
#include "common/table.hh"
#include "corpus/generators.hh"
#include "kernels/semiring.hh"
#include "runner/spmv_runner.hh"
#include "sparse/convert.hh"
#include "stc/registry.hh"

using namespace unistc;

int
main()
{
    const int nodes = 1024;
    CsrMatrix adj = genPowerLaw(nodes, 6.0, 2.3, 31);
    randomizeValues(adj, 32); // edge weights in [0.1, 1)
    const CsrMatrix adj_t = transposeCsr(adj);

    const SsspResult res = ssspMinPlus(adj_t, /*source=*/0);
    int reachable = 0;
    double max_dist = 0.0;
    for (double d : res.dist) {
        if (!std::isinf(d)) {
            ++reachable;
            max_dist = std::max(max_dist, d);
        }
    }
    std::printf("SSSP over %d nodes: %d reachable, eccentricity "
                "%.3f, %d relaxation rounds\n\n",
                nodes, reachable, max_dist, res.rounds);

    // Each round is one (min, +) SpMV — replay the stream.
    const BbcMatrix bbc = BbcMatrix::fromCsr(adj_t);
    const MachineConfig cfg = MachineConfig::fp64();
    TextTable t("SSSP relaxation stream (" +
                std::to_string(res.rounds) + " rounds of SpMV)");
    t.setHeader({"STC", "total cycles", "energy"});
    for (const auto &name : {"DS-STC", "RM-STC", "Uni-STC"}) {
        const auto model = makeStcModel(name, cfg);
        RunResult r = runSpmv(*model, bbc);
        r.scale(static_cast<std::uint64_t>(res.rounds));
        t.addRow({name, fmtCount(r.cycles),
                  fmtEnergyPj(r.energy.total())});
    }
    t.print();
    return 0;
}
