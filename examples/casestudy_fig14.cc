/**
 * @file
 * Walk-through of the paper's Fig. 14 hardware-dataflow case study:
 * one T1 task dissected step by step on Uni-STC — TMS task
 * generation, DPG T4 expansion (with the 8-bit task codes), SDPU
 * packing — followed by the three-way utilisation comparison.
 */

#include <cstdio>

#include "common/bitops.hh"
#include "common/table.hh"
#include "stc/registry.hh"
#include "unistc/dpg.hh"
#include "unistc/sdpu.hh"
#include "unistc/tms.hh"

using namespace unistc;

int
main()
{
    // A structured sparse task: clustered + scattered nonzeros.
    BlockPattern a, b;
    for (int blk = 0; blk < 4; ++blk) {
        for (int r = 0; r < 3; ++r) {
            for (int c = 0; c < 3; ++c)
                a.set(blk * 4 + r, blk * 4 + c);
        }
    }
    for (int k = 0; k < kBlockSize; ++k) {
        b.set(k, (k * 5) % 16);
        b.set(k, (k * 7 + 3) % 16);
        b.set(k, (k * 11 + 8) % 16);
    }
    std::printf("Task: nnz(A)=%d nnz(B)=%d, %d intermediate "
                "products\n\n",
                a.nnz(), b.nnz(), blockProductCount(a, b));

    // Stage 1: TMS generates the outer-product-ordered T3 stream.
    const auto tasks = generateTileTasks(a, b, 4,
                                         TaskOrdering::OuterProduct);
    std::printf("Stage 1 (TMS): %zu T3 tasks across 4 K layers\n",
                tasks.size());
    for (std::size_t i = 0; i < tasks.size() && i < 6; ++i) {
        const TileTask &t = tasks[i];
        std::printf("  T3[%zu]: C(%d,%d) += A(%d,%d) x B(%d,%d)  "
                    "products=%d segments=%d\n",
                    i, t.i, t.j, t.i, t.k, t.k, t.j, t.products,
                    t.segments);
    }
    if (tasks.size() > 6)
        std::printf("  ... (%zu more)\n", tasks.size() - 6);

    // Stage 2: one DPG expands the first T3 task into T4 codes.
    std::printf("\nStage 2 (DPG): T4 codes of the first task "
                "(Z-shaped fill)\n");
    const auto t4 = expandTileTask(tasks[0].aTile, tasks[0].bTile, 4);
    for (const auto &seg : t4) {
        std::printf("  code 0x%02X -> C tile nonzero #%d, pattern "
                    "%d%d%d%d, length %d\n",
                    seg.code(), seg.target, testBit(seg.pattern, 3),
                    testBit(seg.pattern, 2), testBit(seg.pattern, 1),
                    testBit(seg.pattern, 0), seg.len());
    }
    const BroadcastRange range = broadcastRange(t4);
    std::printf("  broadcast range: A <= %d multipliers, B <= %d "
                "(paper bounds: 5 and 9)\n",
                range.maxRangeA, range.maxRangeB);

    // Stage 3: SDPU packing.
    const auto cycles = scheduleSdpu(tasks, 8, 64);
    std::printf("\nStage 3 (SDPU): %zu cycles\n", cycles.size());
    for (std::size_t c = 0; c < cycles.size() && c < 5; ++c) {
        std::printf("  cycle %zu: %zu tasks, %d/64 products, "
                    "%d DPG(s) waiting\n",
                    c, cycles[c].executed.size(),
                    cycles[c].products(), cycles[c].waitingDpgs);
    }

    // Three-way comparison (the figure's headline).
    std::printf("\n");
    TextTable t("Fig. 14 comparison (64 MACs)");
    t.setHeader({"STC", "cycles", "MAC utilisation"});
    const BlockTask task = BlockTask::mm(a, b);
    for (const auto &name : {"DS-STC", "RM-STC", "Uni-STC"}) {
        const auto model = makeStcModel(name, MachineConfig::fp64());
        RunResult r;
        model->runBlock(task, r);
        t.addRow({name, fmtCount(r.cycles),
                  fmtPercent(r.utilisation())});
    }
    t.print();
    std::printf("\nPaper reference: 37.5%% (DS) / 50%% (RM) / 75%% "
                "(Uni) on the downsized example.\n");
    return 0;
}
