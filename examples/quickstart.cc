/**
 * @file
 * Quickstart: build a sparse matrix, encode it in the BBC format,
 * verify the encoding numerically, and compare SpMV on Uni-STC
 * against RM-STC and DS-STC.
 *
 * Run:  ./build/examples/quickstart [path/to/matrix.mtx]
 * Without an argument a banded FEM-style matrix is generated.
 */

#include <cstdio>

#include "bbc/bbc_matrix.hh"
#include "common/table.hh"
#include "corpus/generators.hh"
#include "kernels/reference.hh"
#include "runner/spmv_runner.hh"
#include "runner/verify.hh"
#include "sparse/dense.hh"
#include "sparse/io.hh"
#include "stc/registry.hh"

using namespace unistc;

int
main(int argc, char **argv)
{
    // 1. Obtain a sparse matrix: load Matrix Market or generate.
    CsrMatrix a;
    if (argc > 1) {
        std::printf("Loading %s ...\n", argv[1]);
        a = readMatrixMarketFile(argv[1]);
    } else {
        a = genBanded(1024, 24, 0.4, /*seed=*/7);
    }
    std::printf("Matrix: %d x %d, %lld nonzeros (density %.4f)\n",
                a.rows(), a.cols(),
                static_cast<long long>(a.nnz()), a.density());

    // 2. Encode in BBC — the one-time software encoding the paper's
    //    SIV-D describes. The encoding is exact.
    const BbcMatrix bbc = BbcMatrix::fromCsr(a);
    std::printf("BBC: %lld blocks, %.1f nonzeros per block, "
                "%s (CSR: %s)\n",
                static_cast<long long>(bbc.numBlocks()),
                bbc.nnzPerBlock(),
                fmtBytes(bbc.storageBytes()).c_str(),
                fmtBytes(a.storageBytes()).c_str());

    // 3. Verify the BBC dataflow numerically against the CSR
    //    reference kernels.
    std::printf("Numeric verification of all four kernels: %s\n\n",
                verifyAllKernels(a, 42) ? "PASS" : "FAIL");

    // 4. Simulate SpMV (y = A x) on three sparse tensor cores.
    const MachineConfig cfg = MachineConfig::fp64();
    TextTable t("SpMV on 64 MAC @ FP64");
    t.setHeader({"STC", "cycles", "MAC util", "energy", "time @1.5GHz"});
    std::uint64_t ds_cycles = 0;
    for (const auto &name : {"DS-STC", "RM-STC", "Uni-STC"}) {
        const auto model = makeStcModel(name, cfg);
        const RunResult r = runSpmv(*model, bbc);
        if (model->name() == "DS-STC")
            ds_cycles = r.cycles;
        t.addRow({name, fmtCount(r.cycles),
                  fmtPercent(r.utilisation()),
                  fmtEnergyPj(r.energy.total()),
                  fmtDouble(r.timeNs(cfg.freqGhz) / 1000.0, 2) +
                      " us"});
    }
    t.print();

    const auto uni = makeStcModel("Uni-STC", cfg);
    const RunResult r = runSpmv(*uni, bbc);
    std::printf("\nUni-STC speedup over DS-STC: %.2fx\n",
                static_cast<double>(ds_cycles) / r.cycles);
    return 0;
}
