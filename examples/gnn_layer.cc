/**
 * @file
 * GNN layer example (Table II: GNNs combine SpMM and SpGEMM).
 *
 * Simulates one GraphSAGE-style propagation layer on a power-law
 * graph: feature aggregation H' = A x H is SpMM (sparse adjacency x
 * dense features), and two-hop neighbourhood construction A2 = A x A
 * is SpGEMM — both on each sparse tensor core.
 */

#include <cstdio>

#include "bbc/bbc_matrix.hh"
#include "common/table.hh"
#include "corpus/generators.hh"
#include "kernels/reference.hh"
#include "runner/spgemm_runner.hh"
#include "runner/spmm_runner.hh"
#include "stc/registry.hh"

using namespace unistc;

int
main()
{
    const int nodes = 2048;
    const int features = 64;
    const CsrMatrix adj = genPowerLaw(nodes, 12.0, 2.2, 99);
    std::printf("Graph: %d nodes, %lld edges (power-law degrees)\n",
                nodes, static_cast<long long>(adj.nnz()));

    const BbcMatrix adj_bbc = BbcMatrix::fromCsr(adj);
    const CsrMatrix two_hop = spgemmSymbolic(adj, adj);
    std::printf("Two-hop graph: %lld edges\n\n",
                static_cast<long long>(two_hop.nnz()));

    const MachineConfig cfg = MachineConfig::fp64();
    TextTable t("GNN layer kernels per STC");
    t.setHeader({"STC", "SpMM cycles (AxH, H " +
                     std::to_string(features) + "-wide)",
                 "SpGEMM cycles (AxA)", "total energy"});

    std::uint64_t ds_total = 0;
    std::uint64_t uni_total = 0;
    for (const auto &name : {"DS-STC", "RM-STC", "Uni-STC"}) {
        const auto model = makeStcModel(name, cfg);
        const RunResult spmm = runSpmm(*model, adj_bbc, features);
        const RunResult spgemm =
            runSpgemm(*model, adj_bbc, adj_bbc);
        const std::uint64_t total = spmm.cycles + spgemm.cycles;
        if (model->name() == "DS-STC")
            ds_total = total;
        if (model->name() == "Uni-STC")
            uni_total = total;
        t.addRow({name, fmtCount(spmm.cycles),
                  fmtCount(spgemm.cycles),
                  fmtEnergyPj(spmm.energy.total() +
                              spgemm.energy.total())});
    }
    t.print();
    std::printf("\nLayer-level Uni-STC speedup over DS-STC: %.2fx\n",
                static_cast<double>(ds_total) / uni_total);
    return 0;
}
