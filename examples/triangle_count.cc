/**
 * @file
 * Triangle counting on the STC models: the masked-SpGEMM workload
 * L .* (L x L) on an R-MAT social graph; the dominant kernel (L x L)
 * is simulated per architecture.
 */

#include <cstdio>

#include "apps/graph/triangles.hh"
#include "bbc/bbc_matrix.hh"
#include "common/table.hh"
#include "corpus/generators.hh"
#include "runner/spgemm_runner.hh"
#include "stc/registry.hh"

using namespace unistc;

int
main()
{
    const CsrMatrix adj = genRmat(11, 12, 0.57, 0.19, 0.19, 606);
    const TriangleCount result = countTriangles(adj);
    std::printf("R-MAT graph: %d vertices, %lld directed edges\n",
                adj.rows(), static_cast<long long>(adj.nnz()));
    std::printf("Triangles: %lld (L x L intermediate products: "
                "%lld)\n\n",
                static_cast<long long>(result.triangles),
                static_cast<long long>(result.spgemmFlops));

    // Simulate the dominant kernel L x L on each STC.
    const CsrMatrix l = lowerTriangular(symmetrize(adj));
    const BbcMatrix l_bbc = BbcMatrix::fromCsr(l);
    const MachineConfig cfg = MachineConfig::fp64();

    TextTable t("Triangle counting core kernel (L x L) per STC");
    t.setHeader({"STC", "cycles", "MAC util", "energy"});
    for (const auto &name : {"DS-STC", "RM-STC", "Uni-STC"}) {
        const auto model = makeStcModel(name, cfg);
        const RunResult r = runSpgemm(*model, l_bbc, l_bbc);
        t.addRow({name, fmtCount(r.cycles),
                  fmtPercent(r.utilisation()),
                  fmtEnergyPj(r.energy.total())});
    }
    t.print();
    return 0;
}
