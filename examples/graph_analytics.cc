/**
 * @file
 * Combined graph-analytics pipeline on one R-MAT social graph:
 * PageRank (iterated SpMV), BFS (SpMSpV frontiers) and triangle
 * counting (masked SpGEMM) — the three kernel classes of Table II in
 * one workload — with the full pipeline's cycle budget per STC.
 */

#include <cmath>
#include <cstdio>

#include "apps/bfs/bfs.hh"
#include "apps/graph/pagerank.hh"
#include "apps/graph/triangles.hh"
#include "bbc/bbc_matrix.hh"
#include "common/table.hh"
#include "corpus/generators.hh"
#include "runner/spgemm_runner.hh"
#include "runner/spmspv_runner.hh"
#include "runner/spmv_runner.hh"
#include "sparse/convert.hh"
#include "stc/registry.hh"

using namespace unistc;

int
main()
{
    const CsrMatrix adj = genRmat(10, 10, 0.57, 0.19, 0.19, 909);
    std::printf("R-MAT graph: %d vertices, %lld edges\n\n",
                adj.rows(), static_cast<long long>(adj.nnz()));

    // 1. PageRank.
    const PageRankResult pr = pageRank(adj);
    int top = 0;
    for (int v = 1; v < adj.rows(); ++v) {
        if (pr.rank[v] > pr.rank[top])
            top = v;
    }
    std::printf("PageRank: converged in %d iterations; top vertex "
                "%d (rank %.4f)\n",
                pr.iterations, top, pr.rank[top]);

    // 2. BFS from the top-ranked vertex.
    const BfsResult bfs = bfsSpmspv(adj, top);
    int reached = 0;
    for (int lvl : bfs.level)
        reached += lvl >= 0 ? 1 : 0;
    std::printf("BFS from %d: reached %d vertices in %d levels\n",
                top, reached, bfs.iterations);

    // 3. Triangles.
    const TriangleCount tri = countTriangles(adj);
    std::printf("Triangles: %lld\n\n",
                static_cast<long long>(tri.triangles));

    // STC budget of the whole pipeline.
    const MachineConfig cfg = MachineConfig::fp64();
    const CsrMatrix pt = transitionTranspose(adj);
    const BbcMatrix pt_bbc = BbcMatrix::fromCsr(pt);
    const CsrMatrix adj_t = transposeCsr(adj);
    const BbcMatrix adj_t_bbc = BbcMatrix::fromCsr(adj_t);
    const CsrMatrix l = lowerTriangular(symmetrize(adj));
    const BbcMatrix l_bbc = BbcMatrix::fromCsr(l);

    TextTable t("Pipeline cycle budget per STC");
    t.setHeader({"STC", "PageRank (SpMV x" +
                     std::to_string(pr.iterations) + ")",
                 "BFS (SpMSpV)", "Triangles (SpGEMM)", "total"});
    for (const auto &name : {"DS-STC", "RM-STC", "Uni-STC"}) {
        const auto model = makeStcModel(name, cfg);

        RunResult pr_run = runSpmv(*model, pt_bbc);
        pr_run.scale(static_cast<std::uint64_t>(pr.iterations));

        RunResult bfs_run;
        for (const auto &frontier : bfs.frontiers)
            bfs_run.merge(runSpmspv(*model, adj_t_bbc, frontier));

        const RunResult tri_run = runSpgemm(*model, l_bbc, l_bbc);

        t.addRow({name, fmtCount(pr_run.cycles),
                  fmtCount(bfs_run.cycles), fmtCount(tri_run.cycles),
                  fmtCount(pr_run.cycles + bfs_run.cycles +
                           tri_run.cycles)});
    }
    t.print();
    return 0;
}
