/**
 * @file
 * Command-line simulator front-end: run any kernel on any matrix on
 * any modelled architecture.
 *
 *   simulate_cli --kernel spgemm --model all --gen banded:2048,24,0.4
 *   simulate_cli --kernel spmv --model Uni-STC --matrix my.mtx \
 *                --precision fp32 --dpgs 16
 *
 * Options:
 *   --matrix PATH          Matrix Market input
 *   --gen SPEC             synthetic input, SPEC one of
 *                          banded:n,hb,fill | random:n,density |
 *                          powerlaw:n,deg,alpha | stencil:grid
 *   --kernel NAME          spmv | spmspv | spmm | spgemm (default spmv)
 *   --model NAME           an architecture name or "all"
 *   --precision fp64|fp32  MAC configuration (default fp64)
 *   --dpgs N               Uni-STC DPG count (default 8)
 *   --bcols N              SpMM dense-B width (default 64)
 *   --save-bbc PATH        write the encoded BBC file
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "bbc/bbc_io.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/rng.hh"
#include "corpus/generators.hh"
#include "runner/report.hh"
#include "runner/spgemm_runner.hh"
#include "runner/spmm_runner.hh"
#include "runner/spmspv_runner.hh"
#include "runner/spmv_runner.hh"
#include "sparse/io.hh"
#include "stc/registry.hh"

using namespace unistc;

namespace
{

CsrMatrix
generateFromSpec(const std::string &spec)
{
    const auto colon = spec.find(':');
    const std::string family = spec.substr(0, colon);
    std::vector<double> args;
    if (colon != std::string::npos) {
        std::string rest = spec.substr(colon + 1);
        std::size_t pos = 0;
        while (pos < rest.size()) {
            args.push_back(std::stod(rest.substr(pos)));
            const auto comma = rest.find(',', pos);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }
    auto arg = [&](std::size_t i, double dflt) {
        return i < args.size() ? args[i] : dflt;
    };
    if (family == "banded") {
        return genBanded(static_cast<int>(arg(0, 1024)),
                         static_cast<int>(arg(1, 16)), arg(2, 0.5),
                         1);
    }
    if (family == "random") {
        const int n = static_cast<int>(arg(0, 1024));
        return genRandomUniform(n, n, arg(1, 0.01), 1);
    }
    if (family == "powerlaw") {
        return genPowerLaw(static_cast<int>(arg(0, 1024)),
                           arg(1, 8.0), arg(2, 2.3), 1);
    }
    if (family == "stencil")
        return genStencil2d(static_cast<int>(arg(0, 32)));
    UNISTC_FATAL("unknown generator family '", family, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    std::map<std::string, std::string> opts;
    for (int i = 1; i + 1 < argc; i += 2) {
        if (std::strncmp(argv[i], "--", 2) != 0)
            UNISTC_FATAL("expected an option, got '", argv[i], "'");
        opts[argv[i] + 2] = argv[i + 1];
    }

    CsrMatrix a;
    if (opts.count("matrix"))
        a = readMatrixMarketFile(opts["matrix"]);
    else if (opts.count("gen"))
        a = generateFromSpec(opts["gen"]);
    else
        a = genBanded(1024, 16, 0.4, 1);

    const std::string kernel_name =
        opts.count("kernel") ? opts["kernel"] : "spmv";
    const std::string model_name =
        opts.count("model") ? opts["model"] : "all";
    MachineConfig cfg = opts["precision"] == "fp32"
        ? MachineConfig::fp32()
        : MachineConfig::fp64();
    if (opts.count("dpgs"))
        cfg.numDpgs = std::stoi(opts["dpgs"]);
    const int b_cols =
        opts.count("bcols") ? std::stoi(opts["bcols"]) : 64;

    std::printf("Matrix: %d x %d, %lld nonzeros\n", a.rows(),
                a.cols(), static_cast<long long>(a.nnz()));
    const BbcMatrix bbc = BbcMatrix::fromCsr(a);
    std::printf("BBC: %lld blocks, NnzPB %.2f, %s\n\n",
                static_cast<long long>(bbc.numBlocks()),
                bbc.nnzPerBlock(),
                fmtBytes(bbc.storageBytes()).c_str());
    if (opts.count("save-bbc")) {
        saveBbcFile(opts["save-bbc"], bbc);
        std::printf("Saved BBC image to %s\n\n",
                    opts["save-bbc"].c_str());
    }

    SparseVector x50(a.cols());
    {
        Rng rng(7);
        for (int i = 0; i < a.cols(); ++i) {
            if (rng.nextBool(0.5))
                x50.push(i, 1.0);
        }
    }

    auto run = [&](const StcModel &model) {
        if (kernel_name == "spmv")
            return runSpmv(model, bbc);
        if (kernel_name == "spmspv")
            return runSpmspv(model, bbc, x50);
        if (kernel_name == "spmm")
            return runSpmm(model, bbc, b_cols);
        if (kernel_name == "spgemm") {
            if (a.rows() != a.cols())
                UNISTC_FATAL("spgemm (C = A^2) needs a square matrix");
            return runSpgemm(model, bbc, bbc);
        }
        UNISTC_FATAL("unknown kernel '", kernel_name, "'");
    };

    std::vector<std::string> names;
    if (model_name == "all")
        names = allModelNames();
    else
        names.push_back(model_name);

    TextTable t("Kernel '" + kernel_name + "' @ " +
                toString(cfg.precision) + ", " +
                std::to_string(cfg.macCount) + " MACs");
    t.setHeader({"STC", "cycles", "MAC util", "energy", "A reads",
                 "C writes"});
    for (const auto &name : names) {
        const auto model = makeStcModel(name, cfg);
        const RunResult r = run(*model);
        t.addRow({name, fmtCount(r.cycles),
                  fmtPercent(r.utilisation()),
                  fmtEnergyPj(r.energy.total()),
                  fmtCount(r.traffic.totalA()),
                  fmtCount(r.traffic.writesC)});
    }
    t.print();
    return 0;
}
