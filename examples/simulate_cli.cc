/**
 * @file
 * Command-line simulator front-end: run any kernel on any matrix on
 * any modelled architecture.
 *
 *   simulate_cli --kernel spgemm --model all --gen banded:2048,24,0.4
 *   simulate_cli --kernel spmv --model Uni-STC --matrix my.mtx \
 *                --precision fp32 --dpgs 16 \
 *                --trace t.json --stats-json s.json
 *
 * Built on the execution driver (src/driver/): the experiment is a
 * plain serial body handed to a DriverSession, which supplies the
 * whole standard execution family — --jobs plan/replay sweeps
 * (docs/PARALLELISM.md), --resume checkpointing (docs/ROBUSTNESS.md),
 * crash-isolated --shards (docs/SHARDING.md), the matrix artifact
 * cache flags (docs/CACHING.md), --log-level, --help and --version —
 * with byte-identical output across worker counts, shard counts and
 * resume state.
 *
 * The experiment parser and body live in src/serve/sim_service.hh,
 * SHARED with the unistc_serve daemon (docs/SERVING.md): a daemon
 * response is byte-identical to a one-shot run of this binary
 * because both execute exactly that code. See sim_service.hh for
 * the front-end flag family (--matrix/--gen/--kernel/--model/--arch/
 * --precision/--dpgs/--bcols/--save-bbc/--trace/--stats-json).
 */

#include <cstdio>
#include <vector>

#include "driver/driver_session.hh"
#include "driver/sweep_request.hh"
#include "driver/version.hh"
#include "serve/sim_service.hh"

using namespace unistc;

int
main(int argc, char **argv)
{
    const std::vector<driver::CliFlag> extra =
        serve::simulateCliFlags();
    Result<driver::ParsedCli> parsed =
        driver::parseSweepCli(argc, argv, extra);
    if (!parsed.ok())
        raise(parsed.status());
    driver::ParsedCli cli = std::move(parsed).value();
    if (cli.helpRequested) {
        std::fputs(driver::sweepCliHelp(argv[0], extra).c_str(),
                   stdout);
        return 0;
    }
    if (cli.versionRequested) {
        std::fputs(driver::versionString(argv[0]).c_str(), stdout);
        return 0;
    }

    // Resolve and validate every front-end flag BEFORE the driver
    // runs, so a typo'd experiment fails fast in the parent — not
    // once per forked shard worker.
    serve::Experiment ex = serve::makeExperiment(cli);

    driver::DriverSession session;
    return session.run(cli.request, argc, argv, [&ex](int, char **) {
        return serve::simulateBody(ex);
    });
}
