/**
 * @file
 * Command-line simulator front-end: run any kernel on any matrix on
 * any modelled architecture.
 *
 *   simulate_cli --kernel spgemm --model all --gen banded:2048,24,0.4
 *   simulate_cli --kernel spmv --model Uni-STC --matrix my.mtx \
 *                --precision fp32 --dpgs 16 \
 *                --trace t.json --stats-json s.json
 *
 * Options:
 *   --matrix PATH          Matrix Market input
 *   --gen SPEC             synthetic input, SPEC one of
 *                          banded:n,hb,fill | random:n,density |
 *                          powerlaw:n,deg,alpha | stencil:grid
 *   --kernel NAME          spmv | spmspv | spmm | spgemm (default spmv)
 *   --model NAME           an architecture name or "all"
 *   --arch A,B,C           comma-separated architecture lineup run as
 *                          ONE multi-model job: the kernel's task
 *                          stream is enumerated once and fanned out
 *                          to every listed model in a single pass
 *                          (docs/ARCHITECTURE.md); engine.* counters
 *                          land in --stats-json. Mutually exclusive
 *                          with --model; unknown names are rejected
 *                          with the list of available architectures.
 *   --precision fp64|fp32  MAC configuration (default fp64)
 *   --dpgs N               Uni-STC DPG count (default 8)
 *   --bcols N              SpMM dense-B width (default 64)
 *   --save-bbc PATH        write the encoded BBC file
 *   --trace PATH           write a Chrome trace-event JSON (open in
 *                          Perfetto / chrome://tracing)
 *   --trace-events N       per-model trace ring capacity (default 65536)
 *   --stats-json PATH      write all run statistics as JSON
 *   --log-level LEVEL      debug|info|warn|error|silent (or 0-4)
 *   --cache-dir PATH       content-addressed matrix artifact cache
 *                          directory (also UNISTC_CACHE_DIR); --gen
 *                          matrices are stored as checksummed BBC
 *                          entries and reloaded on later runs
 *                          (docs/CACHING.md)
 *   --cache MODE           off | ro | rw (default rw when a cache
 *                          directory is set; also UNISTC_CACHE)
 *   --jobs N               simulate models on N worker threads
 *                          (0 or "auto" = all cores; also UNISTC_JOBS).
 *                          Results merge in submission order, so the
 *                          table, stats JSON and trace are
 *                          byte-identical for any N.
 *
 * Robustness (docs/ROBUSTNESS.md):
 *   --strict               fail fast: the first job failure aborts
 *                          the run instead of quarantining the job
 *                          (quarantined jobs print a QUARANTINED row
 *                          and the sweep continues)
 *   --max-job-seconds S    cooperative per-job watchdog budget;
 *                          overrunning jobs are flagged and treated
 *                          as failed (0 = off)
 *   --resume PATH          checkpoint finished jobs to PATH and skip
 *                          jobs already recorded there
 *
 * Crash-isolated sharding (docs/SHARDING.md):
 *   --shards K             split the model sweep across K worker
 *                          *processes* under a supervisor that
 *                          SIGKILLs hung shards, retries with
 *                          backoff and quarantines persistent
 *                          failures; output is byte-identical to a
 *                          single-process run. Mutually exclusive
 *                          with --arch. Row n belongs to shard
 *                          n mod K.
 *   --shard i              run as worker i (spawned by the
 *                          supervisor; usable by hand for debugging)
 *   --shard-out PATH       worker manifest path
 *   --shard-dir DIR        supervisor manifest directory
 *   --shard-max-seconds S  SIGKILL budget per shard attempt (0 = off)
 *   --shard-heartbeat-seconds S  SIGKILL after S silent seconds
 *   --shard-retries N      retries per shard after the first attempt
 *   --shard-backoff-seconds S    first retry delay (doubles)
 *   --shard-strict         fail the run instead of quarantining
 */

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "bbc/bbc_io.hh"
#include "cache/matrix_cache.hh"
#include "common/logging.hh"
#include "exec/shard_plan.hh"
#include "exec/shard_supervisor.hh"
#include "exec/sweep_executor.hh"
#include "common/table.hh"
#include "common/rng.hh"
#include "corpus/generators.hh"
#include "obs/metrics_export.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"
#include "robust/checkpoint.hh"
#include "robust/fault_inject.hh"
#include "robust/status.hh"
#include "runner/report.hh"
#include "runner/spgemm_runner.hh"
#include "runner/spmm_runner.hh"
#include "runner/spmspv_runner.hh"
#include "runner/spmv_runner.hh"
#include "sparse/io.hh"
#include "stc/registry.hh"

using namespace unistc;

namespace
{

/** Strict integer option parsing: the whole value must be a number. */
int
parseIntOpt(const std::string &flag, const std::string &text)
{
    try {
        std::size_t used = 0;
        const int v = std::stoi(text, &used);
        if (used != text.size())
            throw std::invalid_argument(text);
        return v;
    } catch (const std::exception &) {
        UNISTC_FATAL("--", flag, " needs an integer, got '", text,
                     "'");
    }
}

/** Strict non-negative seconds parsing. */
double
parseSecondsOpt(const std::string &flag, const std::string &text)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(text, &used);
        if (used != text.size() || v < 0)
            throw std::invalid_argument(text);
        return v;
    } catch (const std::exception &) {
        UNISTC_FATAL("--", flag, " needs a non-negative number, got '",
                     text, "'");
    }
}

/**
 * Parse --arch's comma-separated lineup; an unknown name fails with
 * the full list of available architectures.
 */
std::vector<std::string>
parseArchList(const std::string &list)
{
    std::vector<std::string> names;
    std::size_t begin = 0;
    for (;;) {
        const std::size_t comma = list.find(',', begin);
        const std::string name = comma == std::string::npos
            ? list.substr(begin)
            : list.substr(begin, comma - begin);
        if (name.empty())
            UNISTC_FATAL("--arch has an empty entry in '", list, "'");
        names.push_back(name);
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    const std::vector<std::string> all = allModelNames();
    std::string available;
    for (const std::string &n : all)
        available += (available.empty() ? "" : ", ") + n;
    for (const std::string &name : names) {
        if (std::find(all.begin(), all.end(), name) == all.end()) {
            UNISTC_FATAL("unknown architecture '", name,
                         "' in --arch (available: ", available, ")");
        }
    }
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    std::map<std::string, std::string> opts;
    for (int i = 1; i < argc;) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            std::printf(
                "usage: simulate_cli [options]\n"
                "  --matrix PATH | --gen SPEC   input (SPEC: "
                "banded:n,hb,fill | random:n,density |\n"
                "                               powerlaw:n,deg,alpha "
                "| stencil:grid)\n"
                "  --kernel NAME  --model NAME | --arch A,B,C  "
                "--precision fp64|fp32  --dpgs N  --bcols N\n"
                "  --save-bbc PATH  --trace PATH  --trace-events N  "
                "--stats-json PATH\n"
                "  --log-level LEVEL  --jobs N\n"
                "  --cache-dir PATH  --cache off|ro|rw   "
                "(docs/CACHING.md)\n"
                "  --strict  --max-job-seconds S  --resume PATH   "
                "(docs/ROBUSTNESS.md)\n"
                "  --shards K  [--shard i --shard-out PATH]  "
                "--shard-dir DIR\n"
                "  --shard-max-seconds S  --shard-heartbeat-seconds S"
                "  --shard-retries N\n"
                "  --shard-backoff-seconds S  --shard-strict   "
                "(docs/SHARDING.md)\n");
            return 0;
        }
        if (std::strncmp(argv[i], "--", 2) != 0)
            UNISTC_FATAL("expected an option, got '", argv[i], "'");
        const std::string flag(argv[i] + 2);
        // A typo'd option must fail loudly, not silently run the
        // default experiment.
        static const std::set<std::string> known = {
            "kernel", "model", "arch", "matrix", "gen", "precision",
            "dpgs", "bcols", "save-bbc", "trace", "trace-events",
            "stats-json", "log-level", "jobs", "strict",
            "max-job-seconds", "resume", "cache-dir", "cache",
            "shards", "shard", "shard-out", "shard-dir",
            "shard-max-seconds", "shard-heartbeat-seconds",
            "shard-retries", "shard-backoff-seconds", "shard-strict"};
        if (!known.count(flag))
            UNISTC_FATAL("unknown option '", argv[i],
                         "' (see --help)");
        // Valueless switches.
        if (flag == "strict" || flag == "shard-strict") {
            opts[flag] = "1";
            i += 1;
            continue;
        }
        if (i + 1 >= argc)
            UNISTC_FATAL("option '", argv[i], "' is missing a value");
        opts[flag] = argv[i + 1];
        i += 2;
    }

    if (opts.count("log-level")) {
        LogLevel level = LogLevel::Info;
        if (!parseLogLevel(opts["log-level"], level)) {
            UNISTC_FATAL("unknown --log-level '", opts["log-level"],
                         "' (use debug|info|warn|error|silent)");
        }
        setLogLevel(level);
    }

    // Crash-isolated sharding roles (docs/SHARDING.md): --shard i
    // makes this process worker i of a supervisor's fan-out; --shards
    // K without --shard makes it the supervisor.
    const int shards =
        opts.count("shards") ? parseIntOpt("shards", opts["shards"])
                             : 1;
    const int shard_index =
        opts.count("shard") ? parseIntOpt("shard", opts["shard"]) : -1;
    if (shards < 1)
        UNISTC_FATAL("--shards needs at least 1 shard");
    if (shard_index >= 0) {
        if (Status s = validateShardArgs(shards, shard_index); !s.ok())
            UNISTC_FATAL("--shard: ", s.message());
    }
    if (shards > 1 && opts.count("arch")) {
        // --arch is ONE multi-model job by definition; there is
        // nothing to split across processes.
        UNISTC_FATAL("--arch and --shards are mutually exclusive "
                     "(an --arch lineup is a single job)");
    }
    const bool shard_worker = shard_index >= 0;
    const bool shard_super = !shard_worker && shards > 1;
    if (shard_worker) {
        // Workers are silent and write no report artifacts — the
        // supervisor's serve pass is the only reporter.
        opts.erase("trace");
        opts.erase("stats-json");
        opts.erase("save-bbc");
#if defined(__unix__) || defined(__APPLE__)
        if (std::freopen("/dev/null", "w", stdout) == nullptr)
            UNISTC_WARN("cannot silence shard worker stdout");
#else
        UNISTC_FATAL("--shard needs a POSIX host (fork/exec)");
#endif
    }
#if !defined(__unix__) && !defined(__APPLE__)
    if (shard_super)
        UNISTC_FATAL("--shards needs a POSIX host (fork/exec)");
#endif

    // Cache flags override the UNISTC_CACHE_DIR / UNISTC_CACHE env
    // configuration; they must land before the matrix is built so
    // --gen goes through the cache.
    if (opts.count("cache-dir") || opts.count("cache")) {
        CacheMode cache_mode = CacheMode::ReadWrite;
        if (opts.count("cache") &&
            !parseCacheMode(opts["cache"], cache_mode)) {
            UNISTC_FATAL("unknown --cache '", opts["cache"],
                         "' (use off|ro|rw)");
        }
        std::string cache_dir =
            opts.count("cache-dir") ? opts["cache-dir"] : "";
        if (cache_dir.empty()) {
            const char *env = std::getenv("UNISTC_CACHE_DIR");
            if (env != nullptr)
                cache_dir = env;
        }
        if (cache_mode != CacheMode::Off && cache_dir.empty()) {
            UNISTC_FATAL("--cache=", toString(cache_mode),
                         " needs --cache-dir or UNISTC_CACHE_DIR");
        }
        MatrixCache::global().configure(
            cache_mode == CacheMode::Off ? "" : cache_dir,
            cache_mode);
    }

    CsrMatrix a;
    if (opts.count("matrix"))
        a = readMatrixMarketFile(opts["matrix"]);
    else if (opts.count("gen"))
        a = generateFromSpec(opts["gen"]);
    else
        a = genBanded(1024, 16, 0.4, 1);

    const std::string kernel_name =
        opts.count("kernel") ? opts["kernel"] : "spmv";
    const std::string model_name =
        opts.count("model") ? opts["model"] : "all";
    MachineConfig cfg = opts["precision"] == "fp32"
        ? MachineConfig::fp32()
        : MachineConfig::fp64();
    if (opts.count("dpgs"))
        cfg.numDpgs = parseIntOpt("dpgs", opts["dpgs"]);
    const int b_cols =
        opts.count("bcols") ? parseIntOpt("bcols", opts["bcols"]) : 64;

    std::size_t trace_capacity = 0;
    if (opts.count("trace")) {
        trace_capacity = TraceSink::kDefaultCapacity;
        if (opts.count("trace-events")) {
            const int n =
                parseIntOpt("trace-events", opts["trace-events"]);
            if (n <= 0) {
                UNISTC_FATAL("--trace-events needs a positive count, "
                             "got ", n);
            }
            trace_capacity = static_cast<std::size_t>(n);
        }
    }

    const bool strict = opts.count("strict") != 0;
    double max_job_seconds = 0;
    if (opts.count("max-job-seconds")) {
        try {
            std::size_t used = 0;
            max_job_seconds = std::stod(opts["max-job-seconds"],
                                        &used);
            if (used != opts["max-job-seconds"].size() ||
                max_job_seconds < 0)
                throw std::invalid_argument("");
        } catch (const std::exception &) {
            UNISTC_FATAL("--max-job-seconds needs a non-negative "
                         "number, got '", opts["max-job-seconds"],
                         "'");
        }
    }

    int requested_jobs = 0;
    if (opts.count("jobs")) {
        requested_jobs = opts["jobs"] == "auto"
            ? ThreadPool::hardwareThreads()
            : parseIntOpt("jobs", opts["jobs"]);
        if (requested_jobs < 0)
            UNISTC_FATAL("--jobs needs a non-negative count, got ",
                         requested_jobs);
        if (requested_jobs == 0)
            requested_jobs = ThreadPool::hardwareThreads();
    }
    const int jobs = SweepExecutor::resolveJobs(requested_jobs, 1);

    std::printf("Matrix: %d x %d, %lld nonzeros\n", a.rows(),
                a.cols(), static_cast<long long>(a.nnz()));
    // Reuse the cache's decoded conversion when --gen hit an entry;
    // storage accounts the configured precision's value width.
    const BbcMatrix bbc = [&a] {
        if (auto cached = MatrixCache::global().findBbcFor(a))
            return *cached;
        return BbcMatrix::fromCsr(a);
    }();
    std::printf("BBC: %lld blocks, NnzPB %.2f, %s\n\n",
                static_cast<long long>(bbc.numBlocks()),
                bbc.nnzPerBlock(),
                fmtBytes(bbc.storageBytes(cfg.bytesPerValue()))
                    .c_str());
    if (opts.count("save-bbc")) {
        saveBbcFile(opts["save-bbc"], bbc);
        std::printf("Saved BBC image to %s\n\n",
                    opts["save-bbc"].c_str());
    }

    SparseVector x50(a.cols());
    {
        Rng rng(7);
        for (int i = 0; i < a.cols(); ++i) {
            if (rng.nextBool(0.5))
                x50.push(i, 1.0);
        }
    }

    Kernel kernel = Kernel::SpMV;
    if (kernel_name == "spmv")
        kernel = Kernel::SpMV;
    else if (kernel_name == "spmspv")
        kernel = Kernel::SpMSpV;
    else if (kernel_name == "spmm")
        kernel = Kernel::SpMM;
    else if (kernel_name == "spgemm")
        kernel = Kernel::SpGEMM;
    else
        UNISTC_FATAL("unknown kernel '", kernel_name, "'");
    if (kernel == Kernel::SpGEMM && a.rows() != a.cols())
        UNISTC_FATAL("spgemm (C = A^2) needs a square matrix");

    // --arch runs its whole lineup as ONE job: the sweep executor
    // hands the JobSpec's lineup to the kernel pipeline, which
    // enumerates the task stream once and fans every task out to all
    // listed models. --model submits one job per model instead.
    const bool multi = opts.count("arch") != 0;
    if (multi && opts.count("model"))
        UNISTC_FATAL("--model and --arch are mutually exclusive");
    std::vector<std::string> names;
    if (multi)
        names = parseArchList(opts["arch"]);
    else if (model_name == "all")
        names = allModelNames();
    else
        names.push_back(model_name);

    const std::string source_label =
        opts.count("matrix") ? opts["matrix"]
        : opts.count("gen")  ? opts["gen"]
                             : "banded:1024,16,0.4";

    StatRegistry stats;
    stats.setText("kernel", kernel_name, "simulated kernel");
    stats.setText("matrix.source", source_label,
                  "matrix input path or generator spec");
    stats.setCounter("matrix.rows",
                     static_cast<std::uint64_t>(a.rows()));
    stats.setCounter("matrix.cols",
                     static_cast<std::uint64_t>(a.cols()));
    stats.setCounter("matrix.nnz",
                     static_cast<std::uint64_t>(a.nnz()));
    stats.setCounter("matrix.bbcBlocks",
                     static_cast<std::uint64_t>(bbc.numBlocks()));
    registerMachineConfig(stats, cfg);

    TextTable t("Kernel '" + kernel_name + "' @ " +
                toString(cfg.precision) + ", " +
                std::to_string(cfg.macCount) + " MACs");
    t.setHeader({"STC", "cycles", "MAC util", "energy", "A reads",
                 "C writes"});
    // One job per model, all through the sweep executor; with
    // --jobs 1 the jobs run inline at submit(), so the serial and
    // parallel paths share every line of merge code and the output
    // is byte-identical for any worker count.
    SweepExecutor::Options exec_opt;
    exec_opt.jobs = jobs;
    exec_opt.collectStats = false;
    exec_opt.tracePerJob = trace_capacity;
    // Recovery policy: one retry for transient failures; --strict
    // fails the whole run on the first unrecovered job, the default
    // quarantines it (zeroed result, QUARANTINED table row) and
    // finishes the rest.
    exec_opt.maxRetries = 1;
    exec_opt.quarantine = !strict;
    exec_opt.maxJobSeconds = max_job_seconds;
    SweepExecutor exec(exec_opt);

    // --resume: serve models already on the checkpoint from the file
    // and only submit the rest. Shard workers read the checkpoint but
    // never append — only the supervisor's serve pass extends it, so
    // K processes cannot interleave writes into one file.
    std::unique_ptr<CheckpointLog> ckpt_log;
    CheckpointWriter ckpt_writer;
    if (opts.count("resume")) {
        ckpt_log = std::make_unique<CheckpointLog>(
            CheckpointLog::load(opts["resume"]).value());
        if (ckpt_log->truncated() && !shard_worker) {
            // A SIGKILLed writer tore the tail; rewrite the valid
            // prefix atomically before appending behind it.
            if (Status s = rewriteCheckpointAtomic(
                    opts["resume"], ckpt_log->entries());
                !s.ok()) {
                raise(s);
            }
            std::printf("Repaired torn checkpoint %s: kept %zu "
                        "entr(ies)\n", opts["resume"].c_str(),
                        ckpt_log->size());
        }
        if (!shard_worker) {
            if (Status s = ckpt_writer.open(opts["resume"]); !s.ok())
                raise(s);
        }
        if (!ckpt_log->empty()) {
            std::printf("Resuming from %s: %zu completed job(s)\n\n",
                        opts["resume"].c_str(), ckpt_log->size());
        }
    }

    struct RowPlan
    {
        const CheckpointEntry *checkpointed = nullptr;
        std::size_t jobIndex = 0;
        std::size_t slot = 0; ///< Lineup slot within the job.
    };
    std::vector<RowPlan> rows(names.size());
    std::map<std::string, std::size_t> ckpt_seen;

    const auto shared_bbc = std::make_shared<const BbcMatrix>(bbc);
    const auto shared_x = std::make_shared<const SparseVector>(x50);

    // Checkpoint row plan first, identically in every process role
    // (single, worker, supervisor): row n is shard unit n, so the
    // lookups must agree before any ownership decision.
    if (ckpt_log != nullptr) {
        for (std::size_t n = 0; n < names.size(); ++n) {
            const std::size_t occurrence =
                ckpt_seen[checkpointKey(kernel_name, names[n],
                                        source_label)]++;
            rows[n].checkpointed = ckpt_log->find(
                kernel_name, names[n], source_label, occurrence);
        }
    }

    const auto make_spec = [&](const std::string &name) {
        JobSpec spec;
        spec.kernel = kernel;
        spec.model = name;
        spec.config = cfg;
        spec.matrix = source_label;
        spec.impl =
            std::shared_ptr<const StcModel>(makeStcModel(name, cfg));
        spec.a = shared_bbc;
        if (kernel == Kernel::SpMSpV)
            spec.x = shared_x;
        spec.bCols = b_cols;
        return spec;
    };

    if (shard_worker) {
        // Worker role: simulate only rows n with n mod K == i, append
        // each to the durable manifest, print nothing. A manifest
        // left by a killed earlier attempt is resumed, not redone.
        // In-process failures crash the worker on purpose — the
        // supervisor's retry/quarantine IS the recovery path.
        std::string manifest_path = opts.count("shard-out")
            ? opts["shard-out"]
            : "shard_" + std::to_string(shard_index) + ".manifest";
        ShardManifestWriter writer;
        ShardManifest resumed;
        if (Status s = writer.open(manifest_path, shard_index, shards,
                                   &resumed);
            !s.ok()) {
            raise(s);
        }
        std::vector<ProcFaultSpec> faults;
        if (const char *env = std::getenv(kShardFaultEnv))
            faults = parseProcFaultSpecs(env).value();
        const int attempt = shardAttemptFromEnv();
        const ProcFaultSpec *armed_partial = nullptr;
        std::uint64_t owned_done = 0;
        ShardPlan plan;
        plan.shards = shards;
        shardHeartbeat();
        for (std::size_t n = 0; n < names.size(); ++n) {
            if (rows[n].checkpointed != nullptr ||
                !plan.owns(n, shard_index))
                continue;
            if (resumed.find(n) != nullptr) {
                ++owned_done;
                shardHeartbeat();
                continue;
            }
            if (const ProcFaultSpec *f =
                    matchProcFault(faults, shard_index, attempt);
                f != nullptr && owned_done >= f->afterUnits) {
                if (f->kind == FaultKind::ProcPartialCrash)
                    armed_partial = f;
                else
                    executeProcFault(*f);
            }
            ShardUnitRecord rec;
            rec.unit = n;
            rec.entries.push_back({kernel_name, names[n],
                                   source_label,
                                   make_spec(names[n]).run()});
            if (armed_partial != nullptr) {
                executeProcFault(*armed_partial, manifest_path,
                                 encodeShardUnit(rec));
            }
            if (Status s = writer.append(rec); !s.ok())
                raise(s);
            ++owned_done;
            shardHeartbeat();
        }
        return 0;
    }

    ShardMergeView shard_view;
    std::vector<bool> shard_quarantined;
    ShardRecoveryCounters shard_counters;
    std::unique_ptr<TraceSink> shard_trace;
#if defined(__unix__) || defined(__APPLE__)
    if (shard_super) {
        // Supervisor role: fan one worker process per shard over this
        // same command line, then serve the merged manifests below.
        std::string dir =
            opts.count("shard-dir") ? opts["shard-dir"] : "";
        bool temp_dir = false;
        if (dir.empty() && opts.count("resume"))
            dir = opts["resume"] + ".shards";
        if (dir.empty()) {
            char tmpl[] = "/tmp/unistc-shards-XXXXXX";
            if (::mkdtemp(tmpl) == nullptr)
                UNISTC_FATAL("--shards: mkdtemp failed: ",
                             std::strerror(errno));
            dir = tmpl;
            temp_dir = true;
        } else if (::mkdir(dir.c_str(), 0755) != 0 &&
                   errno != EEXIST) {
            UNISTC_FATAL("--shards: cannot create '", dir, "': ",
                         std::strerror(errno));
        }
        std::vector<std::string> manifests;
        std::vector<ShardProcess> procs(
            static_cast<std::size_t>(shards));
        for (int s = 0; s < shards; ++s) {
            manifests.push_back(dir + "/shard_" + std::to_string(s) +
                                ".manifest");
            ShardProcess &proc = procs[static_cast<std::size_t>(s)];
            proc.argv.reserve(static_cast<std::size_t>(argc) + 4);
            for (int i = 0; i < argc; ++i)
                proc.argv.emplace_back(argv[i]);
            proc.argv.push_back("--shard");
            proc.argv.push_back(std::to_string(s));
            proc.argv.push_back("--shard-out");
            proc.argv.push_back(manifests.back());
        }
        ShardPolicy policy;
        if (opts.count("shard-max-seconds"))
            policy.maxShardSeconds = parseSecondsOpt(
                "shard-max-seconds", opts["shard-max-seconds"]);
        if (opts.count("shard-heartbeat-seconds"))
            policy.heartbeatSeconds =
                parseSecondsOpt("shard-heartbeat-seconds",
                                opts["shard-heartbeat-seconds"]);
        if (opts.count("shard-retries"))
            policy.maxRetries = parseIntOpt("shard-retries",
                                            opts["shard-retries"]);
        if (opts.count("shard-backoff-seconds"))
            policy.backoffSeconds =
                parseSecondsOpt("shard-backoff-seconds",
                                opts["shard-backoff-seconds"]);
        policy.quarantine = opts.count("shard-strict") == 0;
        if (trace_capacity > 0)
            shard_trace = std::make_unique<TraceSink>(trace_capacity);
        ShardSupervisor supervisor(policy);
        Result<std::vector<ShardOutcome>> sup =
            supervisor.run(procs, shard_trace.get());
        if (!sup.ok())
            UNISTC_FATAL("--shards: ", sup.status().message());
        const std::vector<ShardOutcome> outcomes =
            std::move(sup).value();
        shard_counters = supervisor.counters();

        std::vector<ShardManifest> loaded;
        shard_quarantined.assign(static_cast<std::size_t>(shards),
                                 false);
        bool any_quarantined = false;
        for (int s = 0; s < shards; ++s) {
            Result<ShardManifest> m = ShardManifest::load(
                manifests[static_cast<std::size_t>(s)]);
            if (!m.ok()) {
                UNISTC_FATAL("--shards: cannot load '",
                             manifests[static_cast<std::size_t>(s)],
                             "': ", m.status().message());
            }
            loaded.push_back(std::move(m).value());
            if (outcomes[static_cast<std::size_t>(s)].quarantined) {
                shard_quarantined[static_cast<std::size_t>(s)] = true;
                any_quarantined = true;
                UNISTC_WARN(
                    "shard ", s, " quarantined (",
                    outcomes[static_cast<std::size_t>(s)].error,
                    "); its missing rows print QUARANTINED");
            }
        }
        ShardPlan plan;
        plan.shards = shards;
        Result<ShardMergeView> view =
            ShardMergeView::merge(loaded, plan);
        if (!view.ok())
            UNISTC_FATAL("--shards: ", view.status().message());
        shard_view = std::move(view).value();
        if (temp_dir && !any_quarantined) {
            // The merged view is in memory; the scratch dir can go.
            for (const std::string &m : manifests)
                std::remove(m.c_str());
            ::rmdir(dir.c_str());
        } else if (any_quarantined) {
            UNISTC_WARN("shard manifests kept in '", dir, "'");
        }
    }
#endif

    JobSpec multi_spec; // --arch: every missing model, one job.
    if (!shard_super) {
        for (std::size_t n = 0; n < names.size(); ++n) {
            if (rows[n].checkpointed != nullptr)
                continue;
            if (multi) {
                rows[n].slot = multi_spec.lineup.size();
                multi_spec.lineup.push_back(
                    {names[n], cfg,
                     std::shared_ptr<const StcModel>(
                         makeStcModel(names[n], cfg))});
                continue;
            }
            rows[n].jobIndex = exec.submit(make_spec(names[n]));
        }
    }
    bool multi_submitted = false;
    if (multi && !multi_spec.lineup.empty()) {
        multi_spec.kernel = kernel;
        multi_spec.matrix = source_label;
        multi_spec.a = shared_bbc;
        if (kernel == Kernel::SpMSpV)
            multi_spec.x = shared_x;
        multi_spec.bCols = b_cols;
        const std::size_t job = exec.submit(std::move(multi_spec));
        for (std::size_t n = 0; n < names.size(); ++n) {
            if (rows[n].checkpointed == nullptr)
                rows[n].jobIndex = job;
        }
        multi_submitted = true;
    }
    exec.wait();

    std::uint64_t quarantined = 0;
    std::uint64_t retried = 0;
    std::uint64_t faults = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (rows[i].checkpointed != nullptr) {
            const RunResult &r = rows[i].checkpointed->result;
            registerRunResult(stats, r, "models." + names[i] + ".");
            t.addRow({names[i] + " (resumed)", fmtCount(r.cycles),
                      fmtPercent(r.utilisation()),
                      fmtEnergyPj(r.energy.total()),
                      fmtCount(r.traffic.totalA()),
                      fmtCount(r.traffic.writesC)});
            continue;
        }
        if (shard_super) {
            // Serve row i (= shard unit i) from the merged worker
            // manifests instead of an in-process job.
            const ShardUnitRecord *rec = shard_view.find(i);
            if (rec == nullptr) {
                ShardPlan plan;
                plan.shards = shards;
                const std::size_t owner =
                    static_cast<std::size_t>(plan.shardOf(i));
                if (owner < shard_quarantined.size() &&
                    shard_quarantined[owner]) {
                    ++quarantined;
                    UNISTC_WARN("model '", names[i],
                                "' lost to quarantined shard ",
                                owner);
                    t.addRow({names[i], "QUARANTINED", "-", "-", "-",
                              "-"});
                    continue;
                }
                UNISTC_FATAL("--shards merge is missing row ", i,
                             " ('", names[i], "') though its shard "
                             "completed");
            }
            if (rec->entries.size() != 1 ||
                rec->entries[0].kernel != kernel_name ||
                rec->entries[0].model != names[i] ||
                rec->entries[0].matrix != source_label) {
                UNISTC_FATAL("--shards merge diverged at row ", i,
                             ": the manifest holds a different job "
                             "than ", kernel_name, " ", names[i],
                             " @ ", source_label);
            }
            const RunResult &r = rec->entries[0].result;
            registerRunResult(stats, r, "models." + names[i] + ".");
            if (ckpt_writer.isOpen()) {
                CheckpointEntry e;
                e.kernel = kernel_name;
                e.model = names[i];
                e.matrix = source_label;
                e.result = r;
                if (Status s = ckpt_writer.append(e); !s.ok())
                    UNISTC_WARN("checkpoint append failed: ",
                                s.message());
            }
            t.addRow({names[i], fmtCount(r.cycles),
                      fmtPercent(r.utilisation()),
                      fmtEnergyPj(r.energy.total()),
                      fmtCount(r.traffic.totalA()),
                      fmtCount(r.traffic.writesC)});
            continue;
        }
        const SweepExecutor::JobOutcome out =
            exec.outcome(rows[i].jobIndex);
        const RunResult &r =
            exec.resultOf(rows[i].jobIndex, rows[i].slot);
        registerRunResult(stats, r, "models." + names[i] + ".");
        faults += static_cast<std::uint64_t>(
            out.ok ? out.attempts - 1 : out.attempts);
        retried += static_cast<std::uint64_t>(out.attempts - 1);
        if (!out.ok) {
            ++quarantined;
            UNISTC_WARN("job for model '", names[i],
                        "' quarantined: ", out.error);
            t.addRow({names[i], "QUARANTINED", "-", "-", "-", "-"});
            continue;
        }
        if (ckpt_writer.isOpen()) {
            CheckpointEntry e;
            e.kernel = kernel_name;
            e.model = names[i];
            e.matrix = source_label;
            e.result = r;
            if (Status s = ckpt_writer.append(e); !s.ok())
                UNISTC_WARN("checkpoint append failed: ",
                            s.message());
        }
        t.addRow({names[i], fmtCount(r.cycles),
                  fmtPercent(r.utilisation()),
                  fmtEnergyPj(r.energy.total()),
                  fmtCount(r.traffic.totalA()),
                  fmtCount(r.traffic.writesC)});
    }
    t.print();

    if (multi_submitted) {
        // One shared stream fed the whole lineup; tasks_generated is
        // the single-model enumeration count while models_fanout
        // models consumed it. Timing fields stay out so the stats
        // JSON is byte-identical across --jobs counts and reruns.
        exec.pipelineCounters().registerStats(
            stats, "engine.", /*includeTiming=*/false);
    }

    if (strict || max_job_seconds > 0 || quarantined > 0) {
        stats.setCounter("robust.faults_detected", faults,
                         "job attempts that threw or timed out");
        stats.setCounter("robust.jobs_retried", retried,
                         "extra attempts made after a failure");
        stats.setCounter("robust.jobs_quarantined", quarantined,
                         "jobs replaced by a zeroed result");
    }
    if (shard_super)
        registerShardStats(stats, shards, shard_counters);

    if (MatrixCache::global().enabled())
        MatrixCache::global().registerStats(stats);

    // Sharded runs carry the supervisor's lifecycle events (spawn /
    // kill / retry / quarantine instants) instead of per-job spans —
    // the jobs ran in other processes.
    const TraceSink *trace =
        shard_super ? shard_trace.get() : exec.trace();
    // Splice the cache's per-key resolution spans (its own trace
    // process) into the model trace before writing it out.
    std::unique_ptr<TraceSink> trace_with_cache;
    if (trace != nullptr && MatrixCache::global().enabled()) {
        const std::size_t extra =
            MatrixCache::global().keyTimings().size();
        if (extra > 0) {
            trace_with_cache = std::make_unique<TraceSink>(
                trace->size() + extra);
            trace_with_cache->mergeFrom(*trace);
            MatrixCache::global().appendTraceEvents(
                *trace_with_cache, static_cast<int>(names.size()));
            trace = trace_with_cache.get();
        }
    }
    if (trace != nullptr) {
        trace->writeChromeTraceFile(opts["trace"]);
        registerTraceSinkStats(stats, *trace);
        std::printf("\nTrace: %s (%llu events, %llu dropped)\n",
                    opts["trace"].c_str(),
                    static_cast<unsigned long long>(trace->size()),
                    static_cast<unsigned long long>(trace->dropped()));
    }
    if (opts.count("stats-json")) {
        writeStatsJsonFile(stats, opts["stats-json"]);
        std::printf("%sStats: %s\n", trace ? "" : "\n",
                    opts["stats-json"].c_str());
    }
    return 0;
}
