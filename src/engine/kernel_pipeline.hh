/**
 * @file
 * Single-pass multi-architecture execution engine. A KernelPipeline
 * drives one KernelPlan's lazy task stream through N StcModels: each
 * generated T1 task is fanned out to every registered model before
 * the next task is pulled, so a 7-architecture comparison enumerates
 * partitions and tasks exactly once — and each model's RunResult is
 * bit-identical to what a sequential one-model-at-a-time run of the
 * same plan produces (the models are pure per-task functions).
 *
 * Layering (docs/ARCHITECTURE.md):
 *
 *   plan (runner/)  ->  stream (engine/)  ->  pipeline (engine/)
 *                                               |  fan-out
 *                                               v
 *                                     model[0..N) (stc/, unistc/)
 *
 * The pipeline also owns the runner-track trace spans (one span per
 * stream group, exactly as the eager runners emitted them) and
 * exports per-layer counters:
 *
 *   engine.tasks_generated       tasks pulled from the stream (once
 *                                per (kernel, matrix), however many
 *                                models run)
 *   engine.models_fanout         models each task was fanned out to
 *   engine.stream_peak_live_tasks  peak tasks alive between pull and
 *                                consumption (1 for a lazy stream —
 *                                the proof no eager vector exists)
 *   engine.enumerate_seconds     wall time spent generating tasks
 *   engine.model_seconds         wall time spent inside the models
 */

#ifndef UNISTC_ENGINE_KERNEL_PIPELINE_HH
#define UNISTC_ENGINE_KERNEL_PIPELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "engine/plan.hh"
#include "sim/energy.hh"
#include "sim/result.hh"

namespace unistc
{

class StatRegistry;
class TraceSink;

/** Per-layer counters of one pipeline pass. */
struct PipelineCounters
{
    std::uint64_t tasksGenerated = 0;   ///< Stream pulls (once, total).
    std::uint64_t modelsFanout = 0;     ///< Models driven per task.
    std::uint64_t peakLiveTasks = 0;    ///< Max tasks buffered (lazy: 1).
    double enumerateSeconds = 0.0;      ///< Wall time in the stream.
    double modelSeconds = 0.0;          ///< Wall time in the models.

    /**
     * Export under "<prefix>tasks_generated" etc. (default
     * "engine."). @p includeTiming false skips the wall-clock
     * scalars — callers that guarantee byte-identical stats across
     * worker counts (the sweep executor) must leave them out.
     */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix = "engine.",
                       bool includeTiming = true) const;
};

/** Single-pass plan-through-N-models driver. */
class KernelPipeline
{
  public:
    /** One registered model and its (optional) trace sink. */
    struct ModelSlot
    {
        const StcModel *model = nullptr;
        TraceSink *trace = nullptr;
    };

    /**
     * Run @p plan through every slot in a single pass over one task
     * stream. Returns one finalized RunResult per slot, in slot
     * order. An empty slot list just drains the stream (useful to
     * measure pure enumeration cost). @p counters, when given,
     * receives the per-layer counters of this pass.
     */
    static std::vector<RunResult>
    run(const KernelPlan &plan, const std::vector<ModelSlot> &slots,
        const EnergyModel &energy = EnergyModel(),
        PipelineCounters *counters = nullptr);

    /** Single-model convenience (the legacy runSpmv/... surface). */
    static RunResult runOne(const KernelPlan &plan,
                            const StcModel &model,
                            const EnergyModel &energy = EnergyModel(),
                            TraceSink *trace = nullptr,
                            PipelineCounters *counters = nullptr);
};

} // namespace unistc

#endif // UNISTC_ENGINE_KERNEL_PIPELINE_HH
