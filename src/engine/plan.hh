/**
 * @file
 * Kernel plan interface: a plan binds one kernel's operands (the BBC
 * matrices, the sparse vector, the dense-B width) and knows how to
 * open the lazy T1 task stream Algorithms 1/2 generate over them.
 * The four concrete planners (SpmvPlan, SpmspvPlan, SpmmPlan,
 * SpgemmPlan) live with their kernels in src/runner/; the engine
 * (engine/kernel_pipeline.hh) drives any plan through any number of
 * architecture models in a single pass.
 */

#ifndef UNISTC_ENGINE_PLAN_HH
#define UNISTC_ENGINE_PLAN_HH

#include <memory>

#include "engine/task_stream.hh"
#include "runner/report.hh"

namespace unistc
{

/** One kernel invocation, ready to stream its T1 tasks. */
class KernelPlan
{
  public:
    virtual ~KernelPlan() = default;

    /** The kernel this plan executes. */
    virtual Kernel kernel() const = 0;

    /**
     * Open a fresh task stream. Each call restarts enumeration from
     * the beginning; a multi-architecture pipeline opens exactly one
     * stream and fans every task out to all models.
     */
    virtual std::unique_ptr<TaskStream> stream() const = 0;
};

using KernelPlanPtr = std::unique_ptr<KernelPlan>;

} // namespace unistc

#endif // UNISTC_ENGINE_PLAN_HH
