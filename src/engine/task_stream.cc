#include "engine/task_stream.hh"

namespace unistc
{

std::string
TaskStream::groupLabel(std::int64_t group) const
{
    return "T1 #" + std::to_string(group);
}

std::vector<StreamedTask>
TaskStream::materialize()
{
    std::vector<StreamedTask> tasks;
    StreamedTask t;
    while (next(t))
        tasks.push_back(t);
    return tasks;
}

} // namespace unistc
