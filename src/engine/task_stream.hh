/**
 * @file
 * Lazy T1 task stream — the paper's one load-bearing abstraction: the
 * software dataflow (Algorithms 1 and 2 over BBC) produces a single
 * stream of T1 block tasks, and *every* kernel and *every*
 * architecture consumes that same stream. A TaskStream is a pull
 * iterator: tasks are generated on demand, one at a time, so a
 * multi-architecture run can fan each task out to N models without
 * ever materialising the stream (see engine/kernel_pipeline.hh).
 *
 * Tasks carry a monotonically non-decreasing group id mirroring the
 * loop structure of the generating algorithm (one stored A block for
 * SpMV/SpMM, one C block row for SpGEMM). The pipeline uses groups
 * to emit the same runner-track trace spans the eager runners used
 * to; groupLabel() is only consulted when a trace sink is attached,
 * so the untraced hot path never builds label strings.
 */

#ifndef UNISTC_ENGINE_TASK_STREAM_HH
#define UNISTC_ENGINE_TASK_STREAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stc/stc_model.hh"

namespace unistc
{

/** One generated T1 task plus its trace-grouping key. */
struct StreamedTask
{
    BlockTask task;

    /**
     * Trace-span group: non-decreasing across the stream; all tasks
     * sharing a group id are covered by one runner-track span.
     */
    std::int64_t group = 0;
};

/**
 * Pull-based iterator over the T1 tasks of one kernel invocation.
 * Streams are single-use: next() yields each task exactly once, in
 * the deterministic order Algorithms 1/2 prescribe.
 */
class TaskStream
{
  public:
    virtual ~TaskStream() = default;

    /** Generate the next task; false when the stream is exhausted. */
    virtual bool next(StreamedTask &out) = 0;

    /**
     * Human-readable label for @p group's runner-track trace span.
     * Called only when tracing is active. Default: "T1 #<group>".
     */
    virtual std::string groupLabel(std::int64_t group) const;

    /**
     * Drain the remaining tasks into a vector — for tests and for
     * consumers that genuinely need the whole stream (e.g. the SM
     * scheduler's warp partitioning). Production model execution
     * should stay on next().
     */
    std::vector<StreamedTask> materialize();
};

} // namespace unistc

#endif // UNISTC_ENGINE_TASK_STREAM_HH
