#include "engine/kernel_pipeline.hh"

#include <algorithm>
#include <chrono>

#include "obs/stat_registry.hh"
#include "obs/trace.hh"
#include "runner/block_driver.hh"

namespace unistc
{

void
PipelineCounters::registerStats(StatRegistry &reg,
                                const std::string &prefix,
                                bool includeTiming) const
{
    reg.setCounter(prefix + "tasks_generated", tasksGenerated,
                   "T1 tasks pulled from the stream (once per "
                   "(kernel, matrix), however many models run)");
    reg.setCounter(prefix + "models_fanout", modelsFanout,
                   "models each generated task was fanned out to");
    reg.setCounter(prefix + "stream_peak_live_tasks", peakLiveTasks,
                   "peak tasks alive between generation and "
                   "consumption (1 = fully lazy)");
    if (!includeTiming)
        return;
    reg.setScalar(prefix + "enumerate_seconds", enumerateSeconds,
                  "wall time spent generating tasks");
    reg.setScalar(prefix + "model_seconds", modelSeconds,
                  "wall time spent simulating models");
}

namespace
{

/** Per-model trace-group state (mirrors the eager runners' spans). */
struct SlotState
{
    RunResult res;
    std::uint64_t groupStart = 0; ///< res.cycles when the group began.
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

std::vector<RunResult>
KernelPipeline::run(const KernelPlan &plan,
                    const std::vector<ModelSlot> &slots,
                    const EnergyModel &energy,
                    PipelineCounters *counters)
{
    const auto stream = plan.stream();
    std::vector<SlotState> state(slots.size());
    const char *kernel_name = toString(plan.kernel());
    for (const auto &slot : slots) {
        UNISTC_TRACE_BEGIN(slot.trace, TraceTrack::Runner,
                           kernel_name, 0);
    }

    // Timing is only sampled when the caller asked for counters, so
    // the plain single-model path pays no clock overhead.
    const bool timed = counters != nullptr;
    std::uint64_t tasks = 0;
    bool group_open = false;
    std::int64_t group = 0;

    StreamedTask item;
    for (;;) {
        const auto t_enum = timed
            ? std::chrono::steady_clock::now()
            : std::chrono::steady_clock::time_point();
        const bool more = stream->next(item);
        if (timed)
            counters->enumerateSeconds += secondsSince(t_enum);
        if (!more)
            break;

        const auto t_model = timed
            ? std::chrono::steady_clock::now()
            : std::chrono::steady_clock::time_point();
        if (!group_open || item.group != group) {
            // Close the previous runner-track span and open the next
            // one at each model's current virtual clock — exactly the
            // spans the eager runners emitted.
            for (std::size_t i = 0; i < slots.size(); ++i) {
                if (slots[i].trace == nullptr)
                    continue;
                if (group_open) {
                    UNISTC_TRACE_COMPLETE(
                        slots[i].trace, TraceTrack::Runner,
                        stream->groupLabel(group),
                        state[i].groupStart,
                        state[i].res.cycles - state[i].groupStart);
                }
                state[i].groupStart = state[i].res.cycles;
            }
            group = item.group;
            group_open = true;
        }
        for (std::size_t i = 0; i < slots.size(); ++i) {
            slots[i].model->runBlock(item.task, state[i].res,
                                     slots[i].trace);
        }
        ++tasks;
        if (timed)
            counters->modelSeconds += secondsSince(t_model);
    }

    std::vector<RunResult> results;
    results.reserve(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (group_open && slots[i].trace != nullptr) {
            UNISTC_TRACE_COMPLETE(
                slots[i].trace, TraceTrack::Runner,
                stream->groupLabel(group), state[i].groupStart,
                state[i].res.cycles - state[i].groupStart);
        }
        UNISTC_TRACE_END(slots[i].trace, TraceTrack::Runner,
                         state[i].res.cycles);
        finalizeRun(*slots[i].model, energy, state[i].res);
        results.push_back(std::move(state[i].res));
    }

    if (counters != nullptr) {
        counters->tasksGenerated += tasks;
        counters->modelsFanout =
            static_cast<std::uint64_t>(slots.size());
        counters->peakLiveTasks =
            std::max<std::uint64_t>(counters->peakLiveTasks,
                                    tasks > 0 ? 1 : 0);
    }
    return results;
}

RunResult
KernelPipeline::runOne(const KernelPlan &plan, const StcModel &model,
                       const EnergyModel &energy, TraceSink *trace,
                       PipelineCounters *counters)
{
    std::vector<ModelSlot> slots{{&model, trace}};
    return run(plan, slots, energy, counters)[0];
}

} // namespace unistc
