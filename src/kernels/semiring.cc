#include "kernels/semiring.hh"

#include "common/logging.hh"

namespace unistc
{

SsspResult
ssspMinPlus(const CsrMatrix &adj_transposed, int source,
            int max_rounds)
{
    const CsrMatrix &a = adj_transposed;
    UNISTC_ASSERT(a.rows() == a.cols(), "SSSP needs a square matrix");
    UNISTC_ASSERT(source >= 0 && source < a.rows(),
                  "SSSP source out of range");
    for (double w : a.vals())
        UNISTC_ASSERT(w >= 0.0, "SSSP requires non-negative weights");

    SsspResult out;
    out.dist.assign(a.rows(), MinPlus::zero());
    out.dist[source] = 0.0;
    if (max_rounds < 0)
        max_rounds = a.rows(); // Bellman-Ford bound

    for (int round = 0; round < max_rounds; ++round) {
        const std::vector<double> relaxed =
            spmvSemiring<MinPlus>(a, out.dist);
        bool changed = false;
        for (int v = 0; v < a.rows(); ++v) {
            const double better = std::min(out.dist[v], relaxed[v]);
            if (better < out.dist[v]) {
                out.dist[v] = better;
                changed = true;
            }
        }
        out.rounds = round + 1;
        if (!changed)
            break;
    }
    return out;
}

} // namespace unistc
