/**
 * @file
 * Reference (gold-standard) implementations of the four sparse kernels
 * the paper targets: SpMV, SpMSpV, SpMM and SpGEMM. Every simulator
 * run is verified numerically against these.
 */

#ifndef UNISTC_KERNELS_REFERENCE_HH
#define UNISTC_KERNELS_REFERENCE_HH

#include <cstdint>
#include <vector>

#include "sparse/csr.hh"
#include "sparse/dense.hh"
#include "sparse/sparse_vector.hh"

namespace unistc
{

/** y = A * x, dense x. */
std::vector<double> spmvRef(const CsrMatrix &a,
                            const std::vector<double> &x);

/** y = A * x, sparse x; returns a sparse y with exact nonzeros. */
SparseVector spmspvRef(const CsrMatrix &a, const SparseVector &x);

/** C = A * B with dense B (column count = b.cols()). */
DenseMatrix spmmRef(const CsrMatrix &a, const DenseMatrix &b);

/** C = A * B, both sparse (Gustavson row-by-row with dense SPA). */
CsrMatrix spgemmRef(const CsrMatrix &a, const CsrMatrix &b);

/**
 * Symbolic SpGEMM: structure of C = A * B only (values all 1.0).
 * Used by the runners to pre-compute output block structure and by
 * Table VII to report nnz(C) cheaply.
 */
CsrMatrix spgemmSymbolic(const CsrMatrix &a, const CsrMatrix &b);

/**
 * Number of intermediate (multiply) operations of C = A * B:
 * sum over k of colNnz_A(k) * rowNnz_B(k). This is the "#inter-prod"
 * quantity the paper's Table VII and Fig. 20 x-axis build on.
 */
std::int64_t spgemmFlops(const CsrMatrix &a, const CsrMatrix &b);

} // namespace unistc

#endif // UNISTC_KERNELS_REFERENCE_HH
