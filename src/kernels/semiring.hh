/**
 * @file
 * Semiring-generalised sparse kernels (extension). The paper's
 * motivating applications run sparse linear algebra over more than
 * the (+, x) ring: BFS uses the boolean (OR, AND) semiring and
 * shortest paths the tropical (min, +) semiring (§II-B's BFS row of
 * Table II; BerryBees [56]). The structural task stream — and hence
 * the STC cycle model — is identical for any semiring, so these
 * kernels let the applications compute exact results while reusing
 * the simulator unchanged.
 */

#ifndef UNISTC_KERNELS_SEMIRING_HH
#define UNISTC_KERNELS_SEMIRING_HH

#include <algorithm>
#include <limits>

#include "sparse/csr.hh"
#include "sparse/sparse_vector.hh"

namespace unistc
{

/**
 * Semiring concept: provides the additive identity (zero), the
 * "addition" (add) and "multiplication" (mul). Elements are doubles
 * throughout — enough for the graph semirings used here.
 */
struct PlusTimes
{
    static double zero() { return 0.0; }
    static double add(double a, double b) { return a + b; }
    static double mul(double a, double b) { return a * b; }
};

/** Boolean (OR, AND) semiring over {0, 1} encoded in doubles. */
struct BoolOrAnd
{
    static double zero() { return 0.0; }
    static double
    add(double a, double b)
    {
        return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
    }
    static double
    mul(double a, double b)
    {
        return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
    }
};

/** Tropical (min, +) semiring; zero is +infinity. */
struct MinPlus
{
    static double zero() { return std::numeric_limits<double>::infinity(); }
    static double add(double a, double b) { return std::min(a, b); }
    static double mul(double a, double b) { return a + b; }
};

/** y = A (.) x over semiring S, dense x. */
template <typename S>
std::vector<double>
spmvSemiring(const CsrMatrix &a, const std::vector<double> &x)
{
    std::vector<double> y(a.rows(), S::zero());
    for (int r = 0; r < a.rows(); ++r) {
        double acc = S::zero();
        for (std::int64_t i = a.rowPtr()[r]; i < a.rowPtr()[r + 1];
             ++i) {
            acc = S::add(acc, S::mul(a.vals()[i],
                                     x[a.colIdx()[i]]));
        }
        y[r] = acc;
    }
    return y;
}

/**
 * y = A (.) x over semiring S with sparse x. The result keeps every
 * structurally touched row (even if its value equals S::zero() by
 * coincidence), matching spmspvRef's structural semantics.
 */
template <typename S>
SparseVector
spmspvSemiring(const CsrMatrix &a, const SparseVector &x)
{
    std::vector<double> xv(a.cols(), S::zero());
    std::vector<bool> mask(a.cols(), false);
    for (std::size_t i = 0; i < x.idx().size(); ++i) {
        xv[x.idx()[i]] = x.vals()[i];
        mask[x.idx()[i]] = true;
    }
    SparseVector y(a.rows());
    for (int r = 0; r < a.rows(); ++r) {
        double acc = S::zero();
        bool touched = false;
        for (std::int64_t i = a.rowPtr()[r]; i < a.rowPtr()[r + 1];
             ++i) {
            const int c = a.colIdx()[i];
            if (mask[c]) {
                acc = S::add(acc, S::mul(a.vals()[i], xv[c]));
                touched = true;
            }
        }
        if (touched)
            y.push(r, acc);
    }
    return y;
}

/**
 * Single-source shortest paths over (min, +): iterate relaxations
 * x_{k+1} = min(x_k, A (.) x_k) until a fixed point. A(u, v) is the
 * weight of edge v->u when computing distances from the source along
 * out-edges of the transposed adjacency; pass the transpose of the
 * out-adjacency for the usual convention.
 *
 * @return per-vertex distances (infinity when unreachable) and the
 *         number of relaxation rounds executed.
 */
struct SsspResult
{
    std::vector<double> dist;
    int rounds = 0;
};

SsspResult ssspMinPlus(const CsrMatrix &adj_transposed, int source,
                       int max_rounds = -1);

} // namespace unistc

#endif // UNISTC_KERNELS_SEMIRING_HH
