#include "kernels/reference.hh"

#include <algorithm>

#include "common/logging.hh"

namespace unistc
{

std::vector<double>
spmvRef(const CsrMatrix &a, const std::vector<double> &x)
{
    UNISTC_ASSERT(static_cast<int>(x.size()) == a.cols(),
                  "SpMV shape mismatch");
    std::vector<double> y(a.rows(), 0.0);
    for (int r = 0; r < a.rows(); ++r) {
        double acc = 0.0;
        for (std::int64_t i = a.rowPtr()[r]; i < a.rowPtr()[r + 1];
             ++i) {
            acc += a.vals()[i] * x[a.colIdx()[i]];
        }
        y[r] = acc;
    }
    return y;
}

SparseVector
spmspvRef(const CsrMatrix &a, const SparseVector &x)
{
    UNISTC_ASSERT(x.size() == a.cols(), "SpMSpV shape mismatch");
    const std::vector<double> xd = x.toDense();
    std::vector<bool> x_mask(a.cols(), false);
    for (int i : x.idx())
        x_mask[i] = true;

    SparseVector y(a.rows());
    for (int r = 0; r < a.rows(); ++r) {
        double acc = 0.0;
        bool touched = false;
        for (std::int64_t i = a.rowPtr()[r]; i < a.rowPtr()[r + 1];
             ++i) {
            const int c = a.colIdx()[i];
            if (x_mask[c]) {
                acc += a.vals()[i] * xd[c];
                touched = true;
            }
        }
        // Keep structural hits even when values cancel to zero: SpMSpV
        // consumers (e.g. BFS frontiers) rely on the structural result.
        if (touched)
            y.push(r, acc);
    }
    return y;
}

DenseMatrix
spmmRef(const CsrMatrix &a, const DenseMatrix &b)
{
    UNISTC_ASSERT(a.cols() == b.rows(), "SpMM shape mismatch");
    DenseMatrix c(a.rows(), b.cols());
    for (int r = 0; r < a.rows(); ++r) {
        for (std::int64_t i = a.rowPtr()[r]; i < a.rowPtr()[r + 1];
             ++i) {
            const int k = a.colIdx()[i];
            const double av = a.vals()[i];
            for (int j = 0; j < b.cols(); ++j)
                c.at(r, j) += av * b.at(k, j);
        }
    }
    return c;
}

namespace
{

/**
 * Gustavson SpGEMM over one row using a dense sparse-accumulator.
 * When @p numeric is false only the structure is produced.
 */
template <bool numeric>
CsrMatrix
spgemmImpl(const CsrMatrix &a, const CsrMatrix &b)
{
    UNISTC_ASSERT(a.cols() == b.rows(), "SpGEMM shape mismatch");
    const int rows = a.rows();
    const int cols = b.cols();

    std::vector<double> spa(cols, 0.0);
    std::vector<int> marker(cols, -1);
    std::vector<int> touched;

    std::vector<std::int64_t> row_ptr(rows + 1, 0);
    std::vector<int> col_idx;
    std::vector<double> vals;

    for (int r = 0; r < rows; ++r) {
        touched.clear();
        for (std::int64_t i = a.rowPtr()[r]; i < a.rowPtr()[r + 1];
             ++i) {
            const int k = a.colIdx()[i];
            const double av = a.vals()[i];
            for (std::int64_t j = b.rowPtr()[k];
                 j < b.rowPtr()[k + 1]; ++j) {
                const int c = b.colIdx()[j];
                if (marker[c] != r) {
                    marker[c] = r;
                    touched.push_back(c);
                    if constexpr (numeric)
                        spa[c] = av * b.vals()[j];
                } else if constexpr (numeric) {
                    spa[c] += av * b.vals()[j];
                }
            }
        }
        std::sort(touched.begin(), touched.end());
        for (int c : touched) {
            col_idx.push_back(c);
            if constexpr (numeric)
                vals.push_back(spa[c]);
            else
                vals.push_back(1.0);
        }
        row_ptr[r + 1] = static_cast<std::int64_t>(col_idx.size());
    }
    return CsrMatrix(rows, cols, std::move(row_ptr),
                     std::move(col_idx), std::move(vals));
}

} // namespace

CsrMatrix
spgemmRef(const CsrMatrix &a, const CsrMatrix &b)
{
    return spgemmImpl<true>(a, b);
}

CsrMatrix
spgemmSymbolic(const CsrMatrix &a, const CsrMatrix &b)
{
    return spgemmImpl<false>(a, b);
}

std::int64_t
spgemmFlops(const CsrMatrix &a, const CsrMatrix &b)
{
    UNISTC_ASSERT(a.cols() == b.rows(), "SpGEMM shape mismatch");
    std::int64_t flops = 0;
    for (int r = 0; r < a.rows(); ++r) {
        for (std::int64_t i = a.rowPtr()[r]; i < a.rowPtr()[r + 1];
             ++i) {
            const int k = a.colIdx()[i];
            flops += b.rowNnz(k);
        }
    }
    return flops;
}

} // namespace unistc
