/**
 * @file
 * Parallel sweep executor: fans independent JobSpecs out across a
 * ThreadPool and merges per-job observability state back in
 * deterministic submission order at the wait() barrier.
 *
 * Determinism guarantee: every job is a pure function of its spec
 * (own model clone, shared immutable operands, per-job RNG seed), and
 * all merging — results, StatRegistry shards, TraceSink buffers —
 * happens at the barrier in submission order. A sweep executed with
 * 1 worker and with N workers therefore produces byte-identical
 * stats JSON and trace output; only wall-clock time differs.
 *
 * Recovery (docs/ROBUSTNESS.md): with Options::maxRetries a job that
 * throws is re-run (small backoff) before being declared failed; with
 * Options::maxJobSeconds a cooperative watchdog warns when a job
 * overruns and the overrun is recorded as a timeout on completion;
 * with Options::quarantine failed jobs are replaced by a zeroed
 * RunResult and the sweep continues (otherwise wait() raise()s the
 * first failure). Quarantined results are zeroed — not partial — so
 * the 1-worker/N-worker byte-identical guarantee still holds under
 * deterministic faults. Recovery counters (robust.faults_detected,
 * robust.jobs_retried, robust.jobs_quarantined) appear in stats()
 * whenever a recovery option is enabled.
 */

#ifndef UNISTC_EXEC_SWEEP_EXECUTOR_HH
#define UNISTC_EXEC_SWEEP_EXECUTOR_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "engine/kernel_pipeline.hh"
#include "exec/job_spec.hh"
#include "exec/thread_pool.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"

namespace unistc
{

/** Fan-out / deterministic-merge driver for simulation sweeps. */
class SweepExecutor
{
  public:
    struct Options
    {
        /** Worker threads; <= 1 runs jobs inline at submit(). */
        int jobs = 1;

        /**
         * Register every job's RunResult into a per-job StatRegistry
         * shard, merged into stats() at the barrier under
         * "<statsPrefix><index>.<matrix>.<model>.<kernel>." keys.
         */
        bool collectStats = true;

        /**
         * Per-job TraceSink ring capacity; 0 disables tracing. The
         * merged trace() concatenates per-job buffers in submission
         * order.
         */
        std::size_t tracePerJob = 0;

        /** Key prefix for merged statistics. */
        std::string statsPrefix = "sweep.";

        /**
         * Soft per-job wall-clock budget in seconds; 0 disables the
         * watchdog. Jobs cannot be killed mid-flight (cooperative
         * timeout): a watchdog thread warns when a running job
         * overruns, and on completion the job is recorded as timed
         * out — quarantined or raised like any other failure.
         * Timed-out jobs are not retried (a slow job stays slow).
         */
        double maxJobSeconds = 0;

        /**
         * Re-run a throwing job up to this many extra times (with a
         * small backoff) before declaring it failed. Each retry
         * resets the job's trace buffer, so a transient failure
         * leaves no half-written events behind.
         */
        int maxRetries = 0;

        /**
         * Keep going past failed jobs: a job that still fails after
         * retries (or times out) contributes a zeroed RunResult and
         * the sweep completes. When false (default), wait() raise()s
         * the first failure in submission order.
         */
        bool quarantine = false;
    };

    /** Post-wait() per-job recovery verdict (see outcome()). */
    struct JobOutcome
    {
        /** Job produced a real result (possibly after retries). */
        bool ok = true;

        /** Job exceeded Options::maxJobSeconds. */
        bool timedOut = false;

        /** Execution attempts made (1 = clean first run). */
        int attempts = 1;

        /** Last failure message; empty when ok. */
        std::string error;
    };

    SweepExecutor();
    explicit SweepExecutor(const Options &opt);

    /** Waits for outstanding jobs (results are discarded). */
    ~SweepExecutor();

    SweepExecutor(const SweepExecutor &) = delete;
    SweepExecutor &operator=(const SweepExecutor &) = delete;

    /**
     * Enqueue a job; execution may begin immediately on a worker
     * (or runs inline when jobs <= 1). When @p spec.seed is zero a
     * per-job seed is derived from the submission index, so the
     * seed — and any synthesized operand — is identical no matter
     * how many workers execute the sweep. Returns the job index.
     * submit() after wait() is a lifecycle bug (panic).
     */
    std::size_t submit(JobSpec spec);

    /**
     * Barrier: block until every submitted job has run, then merge
     * stats shards and trace buffers in submission order. Idempotent.
     */
    void wait();

    std::size_t jobCount() const { return slots_.size(); }

    /** Worker threads in use (0 = inline). */
    int workerCount() const { return pool_.threadCount(); }

    /** Spec of job @p i as submitted (seed filled in). */
    const JobSpec &spec(std::size_t i) const;

    /**
     * Result of job @p i (the first model's result for multi-model
     * jobs); requires wait() first.
     */
    const RunResult &result(std::size_t i) const;

    /** Models fanned out by job @p i (1 for single-model jobs). */
    std::size_t fanout(std::size_t i) const;

    /**
     * Result of model @p m of (multi-model) job @p i, in lineup
     * order; requires wait() first. resultOf(i, 0) == result(i).
     */
    const RunResult &resultOf(std::size_t i, std::size_t m) const;

    /**
     * Engine counters of (multi-model) job @p i — all zero for
     * single-model jobs; requires wait() first.
     */
    const PipelineCounters &countersOf(std::size_t i) const;

    /**
     * Engine counters aggregated over every multi-model job of the
     * sweep (tasks summed; fan-out and peak-live maxima; wall times
     * summed); requires wait(). All zero when no job carried a
     * lineup. The counter (not timing) fields are also registered in
     * stats() under "engine." whenever a multi-model job ran.
     */
    const PipelineCounters &pipelineCounters() const;

    /**
     * Recovery verdict of job @p i (attempts, timeout, final error);
     * requires wait() first. outcome(i).ok is false exactly when job
     * i was quarantined (its result() is zeroed).
     */
    JobOutcome outcome(std::size_t i) const;

    /** Sweep-wide recovery tallies (the robust.* stats counters). */
    struct RecoveryCounters
    {
        std::uint64_t faultsDetected = 0; ///< Attempts that failed.
        std::uint64_t jobsRetried = 0;    ///< Extra attempts made.
        std::uint64_t jobsQuarantined = 0;
        std::uint64_t jobsTimedOut = 0;
    };

    /**
     * Aggregate recovery counters over every job — available even
     * with Options::collectStats off (the warehouse commit record
     * reads them without paying for stat shards); requires wait().
     */
    RecoveryCounters recoveryCounters() const;

    /** Merged statistics (submission order); requires wait(). */
    const StatRegistry &stats() const;

    /**
     * Merged trace, null when Options::tracePerJob is 0; requires
     * wait(). Each job appears as its own trace process named
     * "<model> | <matrix>".
     */
    const TraceSink *trace() const;

    /**
     * Resolve a worker count: @p requested > 0 wins; otherwise
     * UNISTC_JOBS (positive integer, or 0/"auto" for all hardware
     * threads); otherwise @p fallback.
     */
    static int resolveJobs(int requested, int fallback = 1);

  private:
    /** Watchdog's view of a slot's lifecycle. */
    enum class SlotState { Idle, Running, Done };

    struct Slot
    {
        std::size_t index = 0;
        JobSpec spec;
        RunResult result;
        std::unique_ptr<TraceSink> sink;

        /** Per-model results (lineup order); results[0] == result. */
        std::vector<RunResult> results;

        /** Sinks for lineup models 1..N-1 (sink covers model 0). */
        std::vector<std::unique_ptr<TraceSink>> extraSinks;

        /** Engine counters of a multi-model run (else all zero). */
        PipelineCounters counters;

        /** First trace pid of this job (one pid per lineup model). */
        int pidBase = 0;

        // Recovery bookkeeping, written by the worker running the
        // job and read after the wait() barrier (except state/start/
        // warned, which the watchdog reads while the job runs).
        int attempts = 0;
        bool failed = false;
        bool timedOut = false;
        std::string error;
        std::atomic<SlotState> state{SlotState::Idle};
        std::chrono::steady_clock::time_point start{};
        std::atomic<bool> warned{false};
    };

    /** Execute one job with retry / timeout / quarantine handling. */
    void runSlot(Slot &slot);

    /** Fresh (empty) trace sink for @p slot, if tracing is on. */
    void resetSink(Slot &slot);

    /** True when any recovery option is enabled. */
    bool recoveryEnabled() const;

    void watchdogLoop();
    void stopWatchdog();

    Options opt_;
    ThreadPool pool_;
    /** Deque: stable element addresses while workers run. */
    std::deque<Slot> slots_;
    /** Guards slots_ growth against the watchdog's scan. */
    mutable std::mutex slotsMu_;
    StatRegistry stats_;
    std::unique_ptr<TraceSink> mergedTrace_;
    PipelineCounters engineCounters_;
    bool merged_ = false;
    int nextPid_ = 0;

    std::thread watchdog_;
    std::mutex watchdogMu_;
    std::condition_variable watchdogCv_;
    bool watchdogStop_ = false;
};

} // namespace unistc

#endif // UNISTC_EXEC_SWEEP_EXECUTOR_HH
