/**
 * @file
 * Parallel sweep executor: fans independent JobSpecs out across a
 * ThreadPool and merges per-job observability state back in
 * deterministic submission order at the wait() barrier.
 *
 * Determinism guarantee: every job is a pure function of its spec
 * (own model clone, shared immutable operands, per-job RNG seed), and
 * all merging — results, StatRegistry shards, TraceSink buffers —
 * happens at the barrier in submission order. A sweep executed with
 * 1 worker and with N workers therefore produces byte-identical
 * stats JSON and trace output; only wall-clock time differs.
 */

#ifndef UNISTC_EXEC_SWEEP_EXECUTOR_HH
#define UNISTC_EXEC_SWEEP_EXECUTOR_HH

#include <cstddef>
#include <deque>
#include <memory>
#include <string>

#include "exec/job_spec.hh"
#include "exec/thread_pool.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"

namespace unistc
{

/** Fan-out / deterministic-merge driver for simulation sweeps. */
class SweepExecutor
{
  public:
    struct Options
    {
        /** Worker threads; <= 1 runs jobs inline at submit(). */
        int jobs = 1;

        /**
         * Register every job's RunResult into a per-job StatRegistry
         * shard, merged into stats() at the barrier under
         * "<statsPrefix><index>.<matrix>.<model>.<kernel>." keys.
         */
        bool collectStats = true;

        /**
         * Per-job TraceSink ring capacity; 0 disables tracing. The
         * merged trace() concatenates per-job buffers in submission
         * order.
         */
        std::size_t tracePerJob = 0;

        /** Key prefix for merged statistics. */
        std::string statsPrefix = "sweep.";
    };

    SweepExecutor();
    explicit SweepExecutor(const Options &opt);

    /** Waits for outstanding jobs (results are discarded). */
    ~SweepExecutor();

    SweepExecutor(const SweepExecutor &) = delete;
    SweepExecutor &operator=(const SweepExecutor &) = delete;

    /**
     * Enqueue a job; execution may begin immediately on a worker
     * (or runs inline when jobs <= 1). When @p spec.seed is zero a
     * per-job seed is derived from the submission index, so the
     * seed — and any synthesized operand — is identical no matter
     * how many workers execute the sweep. Returns the job index.
     * submit() after wait() is a lifecycle bug (panic).
     */
    std::size_t submit(JobSpec spec);

    /**
     * Barrier: block until every submitted job has run, then merge
     * stats shards and trace buffers in submission order. Idempotent.
     */
    void wait();

    std::size_t jobCount() const { return slots_.size(); }

    /** Worker threads in use (0 = inline). */
    int workerCount() const { return pool_.threadCount(); }

    /** Spec of job @p i as submitted (seed filled in). */
    const JobSpec &spec(std::size_t i) const;

    /** Result of job @p i; requires wait() first. */
    const RunResult &result(std::size_t i) const;

    /** Merged statistics (submission order); requires wait(). */
    const StatRegistry &stats() const;

    /**
     * Merged trace, null when Options::tracePerJob is 0; requires
     * wait(). Each job appears as its own trace process named
     * "<model> | <matrix>".
     */
    const TraceSink *trace() const;

    /**
     * Resolve a worker count: @p requested > 0 wins; otherwise
     * UNISTC_JOBS (positive integer, or 0/"auto" for all hardware
     * threads); otherwise @p fallback.
     */
    static int resolveJobs(int requested, int fallback = 1);

  private:
    struct Slot
    {
        JobSpec spec;
        RunResult result;
        std::unique_ptr<TraceSink> sink;
    };

    Options opt_;
    ThreadPool pool_;
    /** Deque: stable element addresses while workers run. */
    std::deque<Slot> slots_;
    StatRegistry stats_;
    std::unique_ptr<TraceSink> mergedTrace_;
    bool merged_ = false;
};

} // namespace unistc

#endif // UNISTC_EXEC_SWEEP_EXECUTOR_HH
