#include "exec/shard_plan.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace unistc
{

namespace
{

constexpr const char *kHeaderTag = "unistc-shard-hdr-v1";
constexpr const char *kUnitTag = "unistc-shard-unit-v1";

} // namespace

std::uint64_t
ShardPlan::unitsFor(std::uint64_t total, int i) const
{
    const auto k = static_cast<std::uint64_t>(shards);
    const auto s = static_cast<std::uint64_t>(i);
    // Units s, s+k, s+2k, ... below total.
    return total > s ? (total - s - 1) / k + 1 : 0;
}

Status
validateShardArgs(int shards, int shard)
{
    if (shards < 1)
        return invalidArgument("--shards must be >= 1");
    if (shard < 0 || shard >= shards) {
        return invalidArgument("--shard must be in [0, " +
                               std::to_string(shards) + ")");
    }
    return Status();
}

std::string
encodeShardHeader(int shard, int shards)
{
    return std::string(kHeaderTag) + " " +
           checkpointHex(static_cast<std::uint64_t>(shard)) + " " +
           checkpointHex(static_cast<std::uint64_t>(shards));
}

Status
decodeShardHeader(const std::string &line, int &shard, int &shards)
{
    std::istringstream is(line);
    std::string tag, shard_tok, shards_tok, extra;
    if (!(is >> tag >> shard_tok >> shards_tok) || (is >> extra) ||
        tag != kHeaderTag) {
        return corruptData("manifest header is not a " +
                           std::string(kHeaderTag) + " record");
    }
    std::uint64_t i = 0, k = 0;
    if (!parseCheckpointHex(shard_tok, i) ||
        !parseCheckpointHex(shards_tok, k) || k == 0 || i >= k ||
        k > 1u << 20)
        return corruptData("manifest header has bad shard indices");
    shard = static_cast<int>(i);
    shards = static_cast<int>(k);
    return Status();
}

std::string
encodeShardUnit(const ShardUnitRecord &rec)
{
    std::ostringstream os;
    os << kUnitTag << " " << checkpointHex(rec.unit) << " "
       << checkpointHex(rec.entries.size());
    for (const CheckpointEntry &e : rec.entries)
        os << " " << encodeCheckpointEntry(e);
    if (rec.hasEngine) {
        os << " E " << checkpointHex(rec.engTasksGenerated) << " "
           << checkpointHex(rec.engModelsFanout) << " "
           << checkpointHex(rec.engPeakLiveTasks);
    }
    return os.str();
}

Result<ShardUnitRecord>
decodeShardUnit(const std::string &line)
{
    std::istringstream is(line);
    std::vector<std::string> toks;
    std::string tok;
    while (is >> tok)
        toks.push_back(tok);
    if (toks.size() < 3 || toks[0] != kUnitTag) {
        return corruptData("manifest line is not a " +
                           std::string(kUnitTag) + " record");
    }
    ShardUnitRecord rec;
    std::uint64_t n = 0;
    if (!parseCheckpointHex(toks[1], rec.unit) ||
        !parseCheckpointHex(toks[2], n) || n > 1u << 20)
        return corruptData("manifest unit line has a bad prefix");
    std::size_t pos = 3;
    rec.entries.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        if (pos + kCheckpointEntryTokens > toks.size())
            return corruptData("manifest unit line is short an entry");
        // Each embedded entry is a complete checkpoint record; reuse
        // its decoder by re-joining the token slice.
        std::ostringstream sub;
        for (std::size_t t = 0; t < kCheckpointEntryTokens; ++t) {
            if (t > 0)
                sub << " ";
            sub << toks[pos + t];
        }
        Result<CheckpointEntry> e = decodeCheckpointEntry(sub.str());
        if (!e.ok())
            return e.status();
        rec.entries.push_back(std::move(e).value());
        pos += kCheckpointEntryTokens;
    }
    if (pos < toks.size()) {
        if (toks[pos] != "E" || pos + 4 != toks.size())
            return corruptData("manifest unit line has trailing junk");
        if (!parseCheckpointHex(toks[pos + 1], rec.engTasksGenerated) ||
            !parseCheckpointHex(toks[pos + 2], rec.engModelsFanout) ||
            !parseCheckpointHex(toks[pos + 3], rec.engPeakLiveTasks))
            return corruptData("manifest unit line has bad engine "
                               "counters");
        rec.hasEngine = true;
    }
    return rec;
}

Result<ShardManifest>
ShardManifest::load(const std::string &path)
{
    ShardManifest m;
    std::ifstream in(path);
    if (!in) {
        // Missing manifest = nothing recorded yet.
        return m;
    }
    std::string line;
    long line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (line_no == 1) {
            Status st = decodeShardHeader(line, m.shard_, m.shards_);
            if (!st.ok()) {
                // A torn header means nothing usable follows.
                UNISTC_WARN("manifest '", path, "' has a corrupt ",
                            "header (", st.message(),
                            "); starting fresh");
                m.shard_ = -1;
                m.shards_ = 0;
                m.truncated_ = true;
                return m;
            }
            continue;
        }
        Result<ShardUnitRecord> rec = decodeShardUnit(line);
        if (!rec.ok()) {
            UNISTC_WARN("manifest '", path, "' line ", line_no,
                        " is corrupt (", rec.status().message(),
                        "); keeping the ", m.units_.size(),
                        " units before it");
            m.truncated_ = true;
            break;
        }
        ShardUnitRecord r = std::move(rec).value();
        const auto it = m.byUnit_.find(r.unit);
        if (it != m.byUnit_.end()) {
            // Last record wins: an earlier attempt's unit that was
            // re-executed after a crash.
            m.units_[it->second] = std::move(r);
        } else {
            m.byUnit_[r.unit] = m.units_.size();
            m.units_.push_back(std::move(r));
        }
    }
    return m;
}

const ShardUnitRecord *
ShardManifest::find(std::uint64_t unit) const
{
    const auto it = byUnit_.find(unit);
    return it == byUnit_.end() ? nullptr : &units_[it->second];
}

namespace
{

/** Atomically rewrite @p path as header + @p units (repair). */
Status
rewriteManifestAtomic(const std::string &path, int shard, int shards,
                      const std::vector<ShardUnitRecord> &units)
{
    std::string blob = encodeShardHeader(shard, shards);
    blob.push_back('\n');
    for (const ShardUnitRecord &u : units) {
        blob += encodeShardUnit(u);
        blob.push_back('\n');
    }
    return atomicWriteFile(path, blob);
}

} // namespace

Status
ShardManifestWriter::open(const std::string &path, int shard,
                          int shards, ShardManifest *resumed)
{
    Status st = validateShardArgs(shards, shard);
    if (!st.ok())
        return st;
    Result<ShardManifest> loaded = ShardManifest::load(path);
    if (!loaded.ok())
        return loaded.status();
    ShardManifest m = std::move(loaded).value();
    const bool mismatch =
        m.shard_ >= 0 && (m.shard_ != shard || m.shards_ != shards);
    if (mismatch) {
        UNISTC_WARN("manifest '", path, "' belongs to shard ",
                    m.shard_, "/", m.shards_, ", not ", shard, "/",
                    shards, "; discarding it");
        m = ShardManifest();
    }
    if (mismatch || m.truncated_ || m.shard_ < 0) {
        // Repair/initialise: valid prefix (possibly empty) + header,
        // written with the tmp+fsync+rename discipline so a kill
        // during repair never makes things worse.
        st = rewriteManifestAtomic(path, shard, shards, m.units_);
        if (!st.ok())
            return st;
        m.shard_ = shard;
        m.shards_ = shards;
        m.truncated_ = false;
    }
    st = file_.open(path);
    if (!st.ok())
        return st;
    if (resumed != nullptr)
        *resumed = std::move(m);
    return Status();
}

Status
ShardManifestWriter::append(const ShardUnitRecord &rec)
{
    if (!file_.isOpen())
        return failedPrecondition("manifest writer is not open");
    return file_.appendLine(encodeShardUnit(rec));
}

Result<ShardMergeView>
ShardMergeView::merge(const std::vector<ShardManifest> &manifests,
                      const ShardPlan &plan)
{
    ShardMergeView v;
    for (const ShardManifest &m : manifests) {
        if (m.shard() < 0)
            continue; // empty manifest (e.g. a quarantined shard)
        if (m.shards() != plan.shards) {
            return failedPrecondition(
                "manifest was written for " +
                std::to_string(m.shards()) + " shards, plan has " +
                std::to_string(plan.shards));
        }
        for (const ShardUnitRecord &u : m.units()) {
            if (!plan.owns(u.unit, m.shard())) {
                return failedPrecondition(
                    "manifest of shard " + std::to_string(m.shard()) +
                    " records unit " + std::to_string(u.unit) +
                    " it does not own");
            }
            const auto it = v.byUnit_.find(u.unit);
            if (it != v.byUnit_.end()) {
                v.units_[it->second] = u;
            } else {
                v.byUnit_[u.unit] = v.units_.size();
                v.units_.push_back(u);
            }
        }
    }
    return v;
}

const ShardUnitRecord *
ShardMergeView::find(std::uint64_t unit) const
{
    const auto it = byUnit_.find(unit);
    return it == byUnit_.end() ? nullptr : &units_[it->second];
}

} // namespace unistc
