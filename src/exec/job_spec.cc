#include "exec/job_spec.hh"

#include "common/logging.hh"
#include "engine/kernel_pipeline.hh"
#include "robust/fault_inject.hh"
#include "runner/block_driver.hh"
#include "stc/registry.hh"

namespace unistc
{

namespace
{

/** Mix so adjacent seeds give unrelated streams (SplitMix64 core). */
std::uint64_t
mixSeed(std::uint64_t s)
{
    s += 0x9E3779B97F4A7C15ull;
    s = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9ull;
    s = (s ^ (s >> 27)) * 0x94D049BB133111EBull;
    return s ^ (s >> 31);
}

} // namespace

Rng
JobSpec::rng() const
{
    return Rng(mixSeed(seed));
}

const std::string &
JobSpec::modelName(std::size_t m) const
{
    if (lineup.empty()) {
        UNISTC_ASSERT(m == 0, "model index ", m,
                      " on a single-model job");
        return model;
    }
    UNISTC_ASSERT(m < lineup.size(), "model index ", m,
                  " out of range");
    return lineup[m].name;
}

RunResult
JobSpec::run(TraceSink *trace) const
{
    std::vector<RunResult> results = runMulti({trace});
    return std::move(results.front());
}

std::vector<RunResult>
JobSpec::runMulti(const std::vector<TraceSink *> &traces,
                  PipelineCounters *counters) const
{
    UNISTC_ASSERT(a != nullptr, "JobSpec without an A operand: ",
                  label());
    if (fault)
        fault->apply(label());

    // Resolve the model lineup: clones passed in by the caller, or
    // registry constructions from (name, config).
    std::vector<StcModelPtr> owned;
    std::vector<const StcModel *> models;
    if (lineup.empty()) {
        const StcModel *m = impl.get();
        if (m == nullptr) {
            owned.push_back(makeStcModel(model, config));
            m = owned.back().get();
        }
        models.push_back(m);
    } else {
        for (const ModelSpec &entry : lineup) {
            const StcModel *m = entry.impl.get();
            if (m == nullptr) {
                owned.push_back(makeStcModel(entry.name,
                                             entry.config));
                m = owned.back().get();
            }
            models.push_back(m);
        }
    }

    // Operands. A null b means C = A * A; a null x synthesizes the
    // paper's standard 50 %-sparse vector (§VI-A) from this job's
    // own RNG stream, so it depends on the seed, never the thread.
    PlanInputs in;
    in.a = a.get();
    in.b = b ? b.get() : a.get();
    in.bCols = bCols;
    SparseVector synth;
    const SparseVector *xv = x.get();
    if (kernel == Kernel::SpMSpV && xv == nullptr) {
        Rng r = rng();
        synth = SparseVector(a->cols());
        for (int i = 0; i < a->cols(); ++i) {
            if (r.nextBool(0.5))
                synth.push(i, r.nextDouble(0.1, 1.0));
        }
        xv = &synth;
    }
    in.x = xv;

    const KernelPlanPtr plan = makeKernelPlan(kernel, in);
    std::vector<KernelPipeline::ModelSlot> slots;
    slots.reserve(models.size());
    for (std::size_t m = 0; m < models.size(); ++m) {
        slots.push_back(
            {models[m], m < traces.size() ? traces[m] : nullptr});
    }
    return KernelPipeline::run(*plan, slots, EnergyModel(energy),
                               counters);
}

std::string
JobSpec::label() const
{
    std::string names;
    for (std::size_t m = 0; m < fanout(); ++m) {
        if (m > 0)
            names += "+";
        names += modelName(m);
    }
    return std::string(toString(kernel)) + " " + names + " @ " +
           matrix;
}

} // namespace unistc
