#include "exec/job_spec.hh"

#include "common/logging.hh"
#include "robust/fault_inject.hh"
#include "runner/spgemm_runner.hh"
#include "runner/spmm_runner.hh"
#include "runner/spmspv_runner.hh"
#include "runner/spmv_runner.hh"
#include "stc/registry.hh"

namespace unistc
{

namespace
{

/** Mix so adjacent seeds give unrelated streams (SplitMix64 core). */
std::uint64_t
mixSeed(std::uint64_t s)
{
    s += 0x9E3779B97F4A7C15ull;
    s = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9ull;
    s = (s ^ (s >> 27)) * 0x94D049BB133111EBull;
    return s ^ (s >> 31);
}

} // namespace

Rng
JobSpec::rng() const
{
    return Rng(mixSeed(seed));
}

RunResult
JobSpec::run(TraceSink *trace) const
{
    UNISTC_ASSERT(a != nullptr, "JobSpec without an A operand: ",
                  label());
    if (fault)
        fault->apply(label());
    const StcModel *m = impl.get();
    StcModelPtr owned;
    if (m == nullptr) {
        owned = makeStcModel(model, config);
        m = owned.get();
    }
    const EnergyModel em(energy);
    switch (kernel) {
      case Kernel::SpMV:
        return runSpmv(*m, *a, em, trace);
      case Kernel::SpMSpV: {
        const SparseVector *xv = x.get();
        SparseVector synth;
        if (xv == nullptr) {
            // Standard 50 %-sparse x (§VI-A), from this job's own
            // RNG stream.
            Rng r = rng();
            synth = SparseVector(a->cols());
            for (int i = 0; i < a->cols(); ++i) {
                if (r.nextBool(0.5))
                    synth.push(i, r.nextDouble(0.1, 1.0));
            }
            xv = &synth;
        }
        return runSpmspv(*m, *a, *xv, em, trace);
      }
      case Kernel::SpMM:
        return runSpmm(*m, *a, bCols, em, trace);
      case Kernel::SpGEMM:
        return runSpgemm(*m, *a, b ? *b : *a, em, trace);
    }
    UNISTC_PANIC("unhandled kernel in JobSpec::run");
}

std::string
JobSpec::label() const
{
    return std::string(toString(kernel)) + " " + model + " @ " +
           matrix;
}

} // namespace unistc
