#include "exec/thread_pool.hh"

#include <exception>
#include <utility>

#include "common/logging.hh"

namespace unistc
{

namespace
{

/**
 * Backstop for exceptions escaping a task: turn them into an
 * attributed panic instead of std::terminate with no context.
 * Recovery-aware callers (SweepExecutor) catch inside the task and
 * never reach this.
 */
void
runTask(const std::function<void()> &task)
{
    try {
        task();
    } catch (const std::exception &e) {
        UNISTC_PANIC("unhandled exception escaped a ThreadPool task: ",
                     e.what());
    } catch (...) {
        UNISTC_PANIC("unhandled non-std exception escaped a "
                     "ThreadPool task");
    }
}

} // namespace

ThreadPool::ThreadPool(int threads)
{
    if (threads < 0)
        threads = 0;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        // Inline mode: execute on the caller, same FIFO order a
        // single worker would use.
        {
            std::unique_lock<std::mutex> lock(mu_);
            ++submitted_;
        }
        runTask(task);
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
        ++inFlight_;
        ++submitted_;
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock, [this] { return inFlight_ == 0; });
}

std::uint64_t
ThreadPool::submitted() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return submitted_;
}

int
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock, [this] {
                return stop_ || !queue_.empty();
            });
            if (queue_.empty()) {
                // stop_ set and nothing left to run.
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        runTask(task);
        {
            std::unique_lock<std::mutex> lock(mu_);
            if (--inFlight_ == 0)
                idleCv_.notify_all();
        }
    }
}

} // namespace unistc
