/**
 * @file
 * Self-contained description of one simulation job — everything a
 * worker thread needs to run (kernel, model, operands, energy
 * parameters, RNG seed) captured by value or shared immutable
 * pointer, so the job can execute on any thread at any time and
 * always produce the identical RunResult.
 */

#ifndef UNISTC_EXEC_JOB_SPEC_HH
#define UNISTC_EXEC_JOB_SPEC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bbc/bbc_matrix.hh"
#include "common/rng.hh"
#include "runner/report.hh"
#include "sim/config.hh"
#include "sim/energy.hh"
#include "sparse/sparse_vector.hh"
#include "stc/stc_model.hh"

namespace unistc
{

class TraceSink;
struct FaultSpec;
struct PipelineCounters;

/**
 * One architecture of a multi-model job lineup: registry name plus
 * either a machine configuration (the job builds makeStcModel) or an
 * exact instance to simulate on.
 */
struct ModelSpec
{
    std::string name;
    MachineConfig config = MachineConfig::fp64();
    std::shared_ptr<const StcModel> impl;
};

/**
 * One (kernel, model, matrix) simulation job. Operands are shared
 * immutable pointers so a sweep over one matrix does not copy it per
 * job. Determinism contract: run() is a pure function of the spec —
 * two executions of the same spec, on any threads in any order,
 * produce bitwise-identical RunResults.
 */
struct JobSpec
{
    Kernel kernel = Kernel::SpMV;

    /** Display / registry name of the architecture. */
    std::string model;

    /** Machine configuration (used when @ref impl is null). */
    MachineConfig config = MachineConfig::fp64();

    /** Matrix display name (stats keys, result logs). */
    std::string matrix;

    /**
     * Exact model instance to simulate on (usually a clone() of the
     * caller's model, preserving non-config knobs). When null the
     * job constructs makeStcModel(model, config) instead.
     */
    std::shared_ptr<const StcModel> impl;

    /** Left operand (all kernels). */
    std::shared_ptr<const BbcMatrix> a;

    /** SpGEMM right operand; null means C = A * A. */
    std::shared_ptr<const BbcMatrix> b;

    /**
     * SpMSpV input vector; when null the job synthesizes the paper's
     * standard 50 %-sparse x from this job's own RNG stream (see
     * rng()), so the vector depends on the job seed, never on which
     * thread runs the job.
     */
    std::shared_ptr<const SparseVector> x;

    /** Dense-B width for SpMM (the paper fixes 64). */
    int bCols = 64;

    /** Energy model parameters (EnergyModel is stateless besides). */
    EnergyParams energy{};

    /**
     * Per-job RNG seed. SweepExecutor derives one from the submission
     * index when left at zero, giving every job its own stream
     * regardless of worker count ("seeded per-job, not per-thread").
     */
    std::uint64_t seed = 0;

    /**
     * Injected fault (robust/fault_inject.hh), applied at the start
     * of run(): an artificial delay and/or a budget of throwing
     * attempts. Null (the default) means no fault. Test-only — used
     * to prove the executor's watchdog/retry/quarantine machinery.
     */
    std::shared_ptr<const FaultSpec> fault;

    /**
     * Multi-architecture lineup. Empty (the default) means a single-
     * model job described by @ref model / @ref config / @ref impl.
     * Non-empty means runMulti() opens the kernel's task stream ONCE
     * and fans every generated task out to all lineup entries in a
     * single pass (engine/kernel_pipeline.hh); model/config/impl are
     * then ignored.
     */
    std::vector<ModelSpec> lineup;

    /** Models this job simulates (1 unless @ref lineup is set). */
    std::size_t fanout() const
    {
        return lineup.empty() ? 1 : lineup.size();
    }

    /** Display name of model @p m (@ref model for single jobs). */
    const std::string &modelName(std::size_t m) const;

    /** This job's private RNG stream. */
    Rng rng() const;

    /**
     * Execute the job: build the model (clone or registry), run the
     * kernel, return the finalized RunResult. @p trace, when given,
     * receives the job's pipeline events. For a multi-model job this
     * is runMulti() with only the first model traced, returning the
     * first model's result.
     */
    RunResult run(TraceSink *trace = nullptr) const;

    /**
     * Execute the job's plan through every model of the lineup in a
     * single pass over one task stream, returning one finalized
     * RunResult per model (lineup order; one result for single-model
     * jobs). Each result is bit-identical to a run() of the same spec
     * restricted to that model. @p traces, when non-empty, supplies
     * one optional sink per model; @p counters, when given, receives
     * the engine's per-layer counters.
     */
    std::vector<RunResult>
    runMulti(const std::vector<TraceSink *> &traces = {},
             PipelineCounters *counters = nullptr) const;

    /** "kernel model[+model...] @ matrix" label for logs/errors. */
    std::string label() const;
};

} // namespace unistc

#endif // UNISTC_EXEC_JOB_SPEC_HH
