#include "exec/sweep_executor.hh"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

#include "cache/matrix_cache.hh"
#include "common/logging.hh"
#include "obs/metrics_export.hh"
#include "robust/status.hh"

namespace unistc
{

namespace
{

/** Base mixed into auto-assigned per-job seeds. */
constexpr std::uint64_t kJobSeedBase = 0x5EEDBA5Eu;

/** Watchdog scan period. */
constexpr std::chrono::milliseconds kWatchdogTick{25};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

SweepExecutor::SweepExecutor() : SweepExecutor(Options()) {}

SweepExecutor::SweepExecutor(const Options &opt)
    : opt_(opt), pool_(opt.jobs <= 1 ? 0 : opt.jobs)
{
    if (opt_.maxJobSeconds > 0)
        watchdog_ = std::thread([this] { watchdogLoop(); });
}

SweepExecutor::~SweepExecutor()
{
    pool_.wait();
    stopWatchdog();
}

bool
SweepExecutor::recoveryEnabled() const
{
    return opt_.maxJobSeconds > 0 || opt_.maxRetries > 0 ||
           opt_.quarantine;
}

void
SweepExecutor::resetSink(Slot &slot)
{
    if (opt_.tracePerJob == 0)
        return;
    // One trace process per lineup model; a single-model job keeps
    // the historical pid == submission index (pidBase advances by
    // each job's fan-out).
    slot.sink = std::make_unique<TraceSink>(opt_.tracePerJob);
    slot.sink->setProcess(slot.pidBase,
                          slot.spec.modelName(0) + " | " +
                              slot.spec.matrix);
    slot.extraSinks.clear();
    for (std::size_t m = 1; m < slot.spec.fanout(); ++m) {
        slot.extraSinks.push_back(
            std::make_unique<TraceSink>(opt_.tracePerJob));
        slot.extraSinks.back()->setProcess(
            slot.pidBase + static_cast<int>(m),
            slot.spec.modelName(m) + " | " + slot.spec.matrix);
    }
}

std::size_t
SweepExecutor::submit(JobSpec spec)
{
    UNISTC_ASSERT(!merged_,
                  "SweepExecutor::submit after wait(): start a new "
                  "executor for a new sweep");
    const std::size_t index = slots_.size();
    if (spec.seed == 0) {
        // Seeded per-job (by submission index), never per-thread:
        // the stream is identical whichever worker runs the job.
        spec.seed = kJobSeedBase + static_cast<std::uint64_t>(index);
    }
    Slot *slot = nullptr;
    {
        // The watchdog scans slots_ while the deque grows; references
        // stay stable but the deque's bookkeeping does not.
        std::lock_guard<std::mutex> lock(slotsMu_);
        slots_.emplace_back();
        slot = &slots_.back();
    }
    slot->index = index;
    slot->spec = std::move(spec);
    slot->pidBase = nextPid_;
    nextPid_ += static_cast<int>(slot->spec.fanout());
    resetSink(*slot);
    pool_.submit([this, slot] { runSlot(*slot); });
    return index;
}

void
SweepExecutor::runSlot(Slot &slot)
{
    const int max_attempts = 1 + std::max(0, opt_.maxRetries);
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        slot.attempts = attempt;
        if (attempt > 1) {
            // Retry: fresh trace buffer (no half-written events from
            // the failed attempt) and a small linear backoff.
            resetSink(slot);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10 * (attempt - 1)));
        }
        slot.start = std::chrono::steady_clock::now();
        slot.state.store(SlotState::Running,
                         std::memory_order_release);
        try {
            std::vector<RunResult> results;
            if (slot.spec.fanout() > 1) {
                // Multi-model job: one pass over one task stream,
                // every task fanned out to the whole lineup.
                slot.counters = PipelineCounters{};
                std::vector<TraceSink *> traces;
                if (slot.sink != nullptr) {
                    traces.push_back(slot.sink.get());
                    for (const auto &s : slot.extraSinks)
                        traces.push_back(s.get());
                }
                results = slot.spec.runMulti(traces, &slot.counters);
            } else {
                results.push_back(slot.spec.run(slot.sink.get()));
            }
            slot.state.store(SlotState::Done,
                             std::memory_order_release);
            if (opt_.maxJobSeconds > 0 &&
                secondsSince(slot.start) > opt_.maxJobSeconds) {
                // Cooperative timeout: the job cannot be killed
                // mid-flight, so the overrun is detected here and
                // the (late) result discarded. Not retried — a slow
                // job stays slow.
                slot.failed = true;
                slot.timedOut = true;
                slot.error = "job " + slot.spec.label() +
                             " exceeded the " +
                             std::to_string(opt_.maxJobSeconds) +
                             " s budget";
                break;
            }
            slot.results = std::move(results);
            slot.result = slot.results.front();
            slot.failed = false;
            slot.error.clear();
            return;
        } catch (const std::exception &e) {
            slot.state.store(SlotState::Done,
                             std::memory_order_release);
            slot.failed = true;
            slot.error = e.what();
            if (attempt < max_attempts) {
                UNISTC_WARN("job ", slot.spec.label(), " attempt ",
                            attempt, " failed (", e.what(),
                            "); retrying");
            }
        }
    }
    // Failed after every attempt (or timed out). Quarantine
    // semantics: zeroed results (one per lineup model) and an empty
    // trace buffer, both independent of worker count, preserving the
    // byte-identical merge guarantee.
    slot.result = RunResult{};
    slot.results.assign(slot.spec.fanout(), RunResult{});
    slot.counters = PipelineCounters{};
    resetSink(slot);
}

void
SweepExecutor::watchdogLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(watchdogMu_);
            watchdogCv_.wait_for(lock, kWatchdogTick,
                                 [this] { return watchdogStop_; });
            if (watchdogStop_)
                return;
        }
        std::lock_guard<std::mutex> lock(slotsMu_);
        for (Slot &s : slots_) {
            if (s.state.load(std::memory_order_acquire) !=
                SlotState::Running)
                continue;
            if (secondsSince(s.start) <= opt_.maxJobSeconds)
                continue;
            if (s.warned.exchange(true))
                continue;
            UNISTC_WARN("watchdog: job ", s.spec.label(),
                        " exceeded its ", opt_.maxJobSeconds,
                        " s budget and is still running; it will be "
                        "flagged as timed out when it completes");
        }
    }
}

void
SweepExecutor::stopWatchdog()
{
    if (!watchdog_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(watchdogMu_);
        watchdogStop_ = true;
    }
    watchdogCv_.notify_all();
    watchdog_.join();
}

void
SweepExecutor::wait()
{
    pool_.wait();
    if (merged_)
        return;
    stopWatchdog();

    // Without quarantine, a failed job fails the sweep: surface the
    // first failure in submission order through raise() (throw or
    // exit per FatalBehavior) before any merging happens.
    if (!opt_.quarantine) {
        for (const Slot &s : slots_) {
            if (!s.failed)
                continue;
            raise(s.timedOut ? timeoutError(s.error)
                             : internalError(
                                   "job " + s.spec.label() +
                                   " failed after " +
                                   std::to_string(s.attempts) +
                                   " attempt(s): " + s.error));
        }
    }
    merged_ = true;

    // Deterministic merge: strictly submission order, independent of
    // which worker finished when.
    if (opt_.collectStats) {
        stats_.setCounter(opt_.statsPrefix + "jobCount",
                          slots_.size(),
                          "jobs executed by this sweep");
        std::uint64_t total_cycles = 0;
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            const Slot &s = slots_[i];
            for (std::size_t m = 0; m < s.spec.fanout(); ++m) {
                const RunResult &res =
                    m < s.results.size() ? s.results[m] : s.result;
                registerRunResult(
                    stats_, res,
                    opt_.statsPrefix + std::to_string(i) + "." +
                        s.spec.matrix + "." + s.spec.modelName(m) +
                        "." + toString(s.spec.kernel) + ".");
                total_cycles += res.cycles;
            }
        }
        stats_.setCounter(opt_.statsPrefix + "totalCycles",
                          total_cycles,
                          "sum of simulated cycles over all jobs");
        if (recoveryEnabled()) {
            std::uint64_t faults = 0;
            std::uint64_t retried = 0;
            std::uint64_t quarantined = 0;
            for (const Slot &s : slots_) {
                // Every attempt that did not produce a result is one
                // detected fault.
                faults += static_cast<std::uint64_t>(
                    s.failed ? s.attempts : s.attempts - 1);
                retried += static_cast<std::uint64_t>(
                    std::max(0, s.attempts - 1));
                if (s.failed)
                    ++quarantined;
            }
            stats_.setCounter("robust.faults_detected", faults,
                              "job attempts that threw or timed out");
            stats_.setCounter("robust.jobs_retried", retried,
                              "extra attempts made after a failure");
            stats_.setCounter("robust.jobs_quarantined", quarantined,
                              "jobs replaced by a zeroed result");
        }
        // One shared artifact cache feeds every job's operands; its
        // counters depend only on the corpus requested before this
        // barrier, never on worker count, so they keep the 1-vs-N
        // byte-identical stats guarantee.
        if (MatrixCache::global().enabled())
            MatrixCache::global().registerStats(stats_);
    }

    // Aggregate engine counters over multi-model jobs: tasks and
    // wall times sum; fan-out and peak-live are maxima. Only the
    // deterministic counter fields enter stats() — wall times would
    // break the 1-vs-N-worker byte-identical stats guarantee.
    bool any_multi = false;
    for (const Slot &s : slots_) {
        if (s.spec.fanout() <= 1)
            continue;
        any_multi = true;
        engineCounters_.tasksGenerated += s.counters.tasksGenerated;
        engineCounters_.modelsFanout =
            std::max(engineCounters_.modelsFanout,
                     s.counters.modelsFanout);
        engineCounters_.peakLiveTasks =
            std::max(engineCounters_.peakLiveTasks,
                     s.counters.peakLiveTasks);
        engineCounters_.enumerateSeconds +=
            s.counters.enumerateSeconds;
        engineCounters_.modelSeconds += s.counters.modelSeconds;
    }
    if (any_multi && opt_.collectStats) {
        engineCounters_.registerStats(stats_, "engine.",
                                      /*includeTiming=*/false);
    }

    if (opt_.tracePerJob > 0) {
        std::size_t total = 0;
        for (const Slot &s : slots_) {
            total += s.sink->size();
            for (const auto &extra : s.extraSinks)
                total += extra->size();
        }
        mergedTrace_ =
            std::make_unique<TraceSink>(std::max<std::size_t>(total,
                                                              1));
        for (const Slot &s : slots_) {
            mergedTrace_->mergeFrom(*s.sink);
            for (const auto &extra : s.extraSinks)
                mergedTrace_->mergeFrom(*extra);
        }
    }
}

const JobSpec &
SweepExecutor::spec(std::size_t i) const
{
    UNISTC_ASSERT(i < slots_.size(), "job index ", i,
                  " out of range");
    return slots_[i].spec;
}

const RunResult &
SweepExecutor::result(std::size_t i) const
{
    UNISTC_ASSERT(merged_, "SweepExecutor::result before wait()");
    UNISTC_ASSERT(i < slots_.size(), "job index ", i,
                  " out of range");
    return slots_[i].result;
}

std::size_t
SweepExecutor::fanout(std::size_t i) const
{
    UNISTC_ASSERT(i < slots_.size(), "job index ", i,
                  " out of range");
    return slots_[i].spec.fanout();
}

const RunResult &
SweepExecutor::resultOf(std::size_t i, std::size_t m) const
{
    UNISTC_ASSERT(merged_, "SweepExecutor::resultOf before wait()");
    UNISTC_ASSERT(i < slots_.size(), "job index ", i,
                  " out of range");
    const Slot &s = slots_[i];
    UNISTC_ASSERT(m < s.spec.fanout(), "model index ", m,
                  " out of range for job ", i);
    if (s.results.empty()) {
        // A job that never ran its attempt loop (defensive; the
        // quarantine path always fills results).
        return s.result;
    }
    return s.results[m];
}

const PipelineCounters &
SweepExecutor::countersOf(std::size_t i) const
{
    UNISTC_ASSERT(merged_, "SweepExecutor::countersOf before wait()");
    UNISTC_ASSERT(i < slots_.size(), "job index ", i,
                  " out of range");
    return slots_[i].counters;
}

const PipelineCounters &
SweepExecutor::pipelineCounters() const
{
    UNISTC_ASSERT(merged_,
                  "SweepExecutor::pipelineCounters before wait()");
    return engineCounters_;
}

SweepExecutor::JobOutcome
SweepExecutor::outcome(std::size_t i) const
{
    UNISTC_ASSERT(merged_, "SweepExecutor::outcome before wait()");
    UNISTC_ASSERT(i < slots_.size(), "job index ", i,
                  " out of range");
    const Slot &s = slots_[i];
    JobOutcome out;
    out.ok = !s.failed;
    out.timedOut = s.timedOut;
    out.attempts = std::max(1, s.attempts);
    out.error = s.error;
    return out;
}

SweepExecutor::RecoveryCounters
SweepExecutor::recoveryCounters() const
{
    UNISTC_ASSERT(merged_,
                  "SweepExecutor::recoveryCounters before wait()");
    RecoveryCounters rc;
    for (const Slot &s : slots_) {
        rc.faultsDetected += static_cast<std::uint64_t>(
            s.failed ? s.attempts : std::max(0, s.attempts - 1));
        rc.jobsRetried += static_cast<std::uint64_t>(
            std::max(0, s.attempts - 1));
        if (s.failed)
            ++rc.jobsQuarantined;
        if (s.timedOut)
            ++rc.jobsTimedOut;
    }
    return rc;
}

const StatRegistry &
SweepExecutor::stats() const
{
    UNISTC_ASSERT(merged_, "SweepExecutor::stats before wait()");
    return stats_;
}

const TraceSink *
SweepExecutor::trace() const
{
    UNISTC_ASSERT(merged_, "SweepExecutor::trace before wait()");
    return mergedTrace_.get();
}

int
SweepExecutor::resolveJobs(int requested, int fallback)
{
    if (requested > 0)
        return requested;
    const char *env = std::getenv("UNISTC_JOBS");
    if (env != nullptr && *env != '\0') {
        const std::string text(env);
        if (text == "0" || text == "auto")
            return ThreadPool::hardwareThreads();
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != nullptr && *end == '\0' && v > 0)
            return static_cast<int>(std::min<long>(v, 1024));
        UNISTC_WARN("ignoring bad UNISTC_JOBS '", text,
                    "' (want a positive integer or 'auto')");
    }
    return fallback;
}

} // namespace unistc
