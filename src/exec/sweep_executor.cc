#include "exec/sweep_executor.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "obs/metrics_export.hh"

namespace unistc
{

namespace
{

/** Base mixed into auto-assigned per-job seeds. */
constexpr std::uint64_t kJobSeedBase = 0x5EEDBA5Eu;

} // namespace

SweepExecutor::SweepExecutor() : SweepExecutor(Options()) {}

SweepExecutor::SweepExecutor(const Options &opt)
    : opt_(opt), pool_(opt.jobs <= 1 ? 0 : opt.jobs)
{
}

SweepExecutor::~SweepExecutor()
{
    pool_.wait();
}

std::size_t
SweepExecutor::submit(JobSpec spec)
{
    UNISTC_ASSERT(!merged_,
                  "SweepExecutor::submit after wait(): start a new "
                  "executor for a new sweep");
    const std::size_t index = slots_.size();
    if (spec.seed == 0) {
        // Seeded per-job (by submission index), never per-thread:
        // the stream is identical whichever worker runs the job.
        spec.seed = kJobSeedBase + static_cast<std::uint64_t>(index);
    }
    slots_.push_back(Slot{std::move(spec), RunResult{}, nullptr});
    Slot &slot = slots_.back();
    if (opt_.tracePerJob > 0) {
        slot.sink = std::make_unique<TraceSink>(opt_.tracePerJob);
        slot.sink->setProcess(static_cast<int>(index),
                              slot.spec.model + " | " +
                                  slot.spec.matrix);
    }
    pool_.submit([&slot] {
        slot.result = slot.spec.run(slot.sink.get());
    });
    return index;
}

void
SweepExecutor::wait()
{
    pool_.wait();
    if (merged_)
        return;
    merged_ = true;

    // Deterministic merge: strictly submission order, independent of
    // which worker finished when.
    if (opt_.collectStats) {
        stats_.setCounter(opt_.statsPrefix + "jobCount",
                          slots_.size(),
                          "jobs executed by this sweep");
        std::uint64_t total_cycles = 0;
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            const Slot &s = slots_[i];
            registerRunResult(stats_, s.result,
                              opt_.statsPrefix + std::to_string(i) +
                                  "." + s.spec.matrix + "." +
                                  s.spec.model + "." +
                                  toString(s.spec.kernel) + ".");
            total_cycles += s.result.cycles;
        }
        stats_.setCounter(opt_.statsPrefix + "totalCycles",
                          total_cycles,
                          "sum of simulated cycles over all jobs");
    }
    if (opt_.tracePerJob > 0) {
        std::size_t total = 0;
        for (const Slot &s : slots_)
            total += s.sink->size();
        mergedTrace_ =
            std::make_unique<TraceSink>(std::max<std::size_t>(total,
                                                              1));
        for (const Slot &s : slots_)
            mergedTrace_->mergeFrom(*s.sink);
    }
}

const JobSpec &
SweepExecutor::spec(std::size_t i) const
{
    UNISTC_ASSERT(i < slots_.size(), "job index ", i,
                  " out of range");
    return slots_[i].spec;
}

const RunResult &
SweepExecutor::result(std::size_t i) const
{
    UNISTC_ASSERT(merged_, "SweepExecutor::result before wait()");
    UNISTC_ASSERT(i < slots_.size(), "job index ", i,
                  " out of range");
    return slots_[i].result;
}

const StatRegistry &
SweepExecutor::stats() const
{
    UNISTC_ASSERT(merged_, "SweepExecutor::stats before wait()");
    return stats_;
}

const TraceSink *
SweepExecutor::trace() const
{
    UNISTC_ASSERT(merged_, "SweepExecutor::trace before wait()");
    return mergedTrace_.get();
}

int
SweepExecutor::resolveJobs(int requested, int fallback)
{
    if (requested > 0)
        return requested;
    const char *env = std::getenv("UNISTC_JOBS");
    if (env != nullptr && *env != '\0') {
        const std::string text(env);
        if (text == "0" || text == "auto")
            return ThreadPool::hardwareThreads();
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != nullptr && *end == '\0' && v > 0)
            return static_cast<int>(std::min<long>(v, 1024));
        UNISTC_WARN("ignoring bad UNISTC_JOBS '", text,
                    "' (want a positive integer or 'auto')");
    }
    return fallback;
}

} // namespace unistc
