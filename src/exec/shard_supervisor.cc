#include "exec/shard_supervisor.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define UNISTC_SHARD_POSIX 1
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/logging.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"

namespace unistc
{

void
registerShardStats(StatRegistry &stats, int shards,
                   const ShardRecoveryCounters &sc)
{
    stats.setCounter("robust.shard_count",
                     static_cast<std::uint64_t>(shards),
                     "worker processes the sweep was split into");
    stats.setCounter("robust.shard_spawned", sc.spawned,
                     "shard attempts fork/exec'd");
    stats.setCounter("robust.shard_completed", sc.completed,
                     "shards that ended with exit status 0");
    stats.setCounter("robust.shard_killed_wall_clock",
                     sc.killedWallClock,
                     "SIGKILLs for wall-clock budget overrun");
    stats.setCounter("robust.shard_killed_heartbeat",
                     sc.killedHeartbeat,
                     "SIGKILLs for heartbeat silence");
    stats.setCounter("robust.shard_crashed", sc.crashed,
                     "attempts that died on their own (exit/signal)");
    stats.setCounter("robust.shard_retried", sc.retried,
                     "backoff restarts issued");
    stats.setCounter("robust.shard_quarantined", sc.quarantined,
                     "shards given up on (units report zeros)");
    stats.setCounter("robust.shard_heartbeats", sc.heartbeats,
                     "heartbeat bytes received across attempts");
}

void
shardHeartbeat()
{
#ifdef UNISTC_SHARD_POSIX
    static const int fd = [] {
        const char *env = std::getenv(kShardHeartbeatFdEnv);
        if (env == nullptr || *env == '\0')
            return -1;
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end == nullptr || *end != '\0' || v < 0)
            return -1;
        // The supervisor may already be gone; never let its death
        // kill the worker via SIGPIPE.
        ::signal(SIGPIPE, SIG_IGN);
        return static_cast<int>(v);
    }();
    if (fd < 0)
        return;
    const char beat = '.';
    // Best-effort: a full pipe or dead reader is the supervisor's
    // problem, not ours.
    (void)!::write(fd, &beat, 1);
#endif
}

int
shardAttemptFromEnv()
{
    const char *env = std::getenv(kShardAttemptEnv);
    if (env == nullptr || *env == '\0')
        return 0;
    char *end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == nullptr || *end != '\0' || v < 0)
        return 0;
    return static_cast<int>(v);
}

#ifdef UNISTC_SHARD_POSIX

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Supervisor-side state of one shard across its attempts. */
struct ShardState
{
    enum class Phase
    {
        Pending, ///< Waiting for its (backoff) start time.
        Running,
        Done, ///< Completed or quarantined.
    };

    Phase phase = Phase::Pending;
    pid_t pid = -1;
    int heartbeatFd = -1;
    int attempt = 0; ///< 0-based attempt about to run / running.
    Clock::time_point startedAt;
    Clock::time_point lastBeat;
    Clock::time_point startAt; ///< Earliest next spawn (backoff).
    bool killedWall = false;
    bool killedBeat = false;
    ShardOutcome outcome;
};

/** fork/exec one attempt; fills pid + heartbeat read fd. */
Status
spawnShard(const ShardProcess &proc, int attempt, ShardState &st)
{
    if (proc.argv.empty())
        return invalidArgument("shard process has an empty argv");
    int fds[2];
    if (::pipe(fds) != 0)
        return ioError("pipe() for shard heartbeat failed");
    // Only the read end is ours to keep; mark it close-on-exec and
    // non-blocking so the poll loop never stalls on a slow child.
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return ioError("fork() for shard failed");
    }
    if (pid == 0) {
        // Child: expose the write end + attempt number, exec.
        ::close(fds[0]);
        ::setenv(kShardHeartbeatFdEnv,
                 std::to_string(fds[1]).c_str(), 1);
        ::setenv(kShardAttemptEnv, std::to_string(attempt).c_str(), 1);
        std::vector<char *> argv;
        argv.reserve(proc.argv.size() + 1);
        for (const std::string &a : proc.argv)
            argv.push_back(const_cast<char *>(a.c_str()));
        argv.push_back(nullptr);
        ::execvp(argv[0], argv.data());
        // exec failed: there is no supervisor-visible stderr contract,
        // so just die with the conventional "cannot exec" status.
        std::_Exit(127);
    }
    // Parent.
    ::close(fds[1]);
    st.pid = pid;
    st.heartbeatFd = fds[0];
    st.startedAt = Clock::now();
    st.lastBeat = st.startedAt;
    st.killedWall = false;
    st.killedBeat = false;
    return Status();
}

} // namespace

Result<std::vector<ShardOutcome>>
ShardSupervisor::run(const std::vector<ShardProcess> &procs,
                     TraceSink *trace)
{
    const std::uint64_t traceTs = 0; // wall-time events, cycle 0
    std::vector<ShardState> states(procs.size());
    std::size_t live = states.size();
    for (ShardState &st : states)
        st.startAt = Clock::now();

    const auto traceEvent = [&](std::size_t i, const char *what) {
        if (trace == nullptr)
            return;
        std::ostringstream name;
        name << "shard " << i << " " << what;
        UNISTC_TRACE_INSTANT(trace, TraceTrack::Runner, name.str(),
                             traceTs);
    };

    // One attempt just finished (reaped or found dead): decide
    // completed / retry / quarantine / strict failure.
    std::string strictError;
    const auto settle = [&](std::size_t i, int waitStatus) {
        ShardState &st = states[i];
        ShardOutcome &out = st.outcome;
        ::close(st.heartbeatFd);
        st.heartbeatFd = -1;
        st.pid = -1;
        if (WIFEXITED(waitStatus)) {
            out.exitCode = WEXITSTATUS(waitStatus);
            out.termSignal = 0;
        } else if (WIFSIGNALED(waitStatus)) {
            out.exitCode = -1;
            out.termSignal = WTERMSIG(waitStatus);
        }
        if (out.exitCode == 0) {
            out.ok = true;
            st.phase = ShardState::Phase::Done;
            counters_.completed++;
            traceEvent(i, "completed");
            --live;
            return;
        }
        counters_.crashed += st.killedWall || st.killedBeat ? 0 : 1;
        std::ostringstream why;
        if (st.killedWall) {
            why << "killed after exceeding the "
                << policy_.maxShardSeconds << "s wall-clock budget";
        } else if (st.killedBeat) {
            why << "killed after " << policy_.heartbeatSeconds
                << "s of heartbeat silence";
        } else if (out.termSignal != 0) {
            why << "died on signal " << out.termSignal;
        } else {
            why << "exited with status " << out.exitCode;
        }
        if (st.attempt < policy_.maxRetries) {
            // Exponential backoff: base * 2^(retry#).
            const double delay = policy_.backoffSeconds *
                static_cast<double>(1u << st.attempt);
            UNISTC_WARN("shard ", i, " attempt ", st.attempt, " ",
                        why.str(), "; retrying in ", delay, "s");
            counters_.retried++;
            st.attempt++;
            st.phase = ShardState::Phase::Pending;
            st.startAt = Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(delay));
            traceEvent(i, "retry");
            return;
        }
        out.error = why.str();
        st.phase = ShardState::Phase::Done;
        --live;
        if (policy_.quarantine) {
            UNISTC_WARN("shard ", i, " ", why.str(), " on its last ",
                        "attempt; quarantining (its units report ",
                        "zeroed results)");
            out.quarantined = true;
            counters_.quarantined++;
            traceEvent(i, "quarantined");
        } else {
            traceEvent(i, "failed");
            if (strictError.empty()) {
                strictError = "shard " + std::to_string(i) + " " +
                              why.str();
            }
        }
    };

    while (live > 0) {
        const Clock::time_point now = Clock::now();

        // Phase 1: start every pending shard whose backoff elapsed.
        for (std::size_t i = 0; i < states.size(); ++i) {
            ShardState &st = states[i];
            if (st.phase != ShardState::Phase::Pending ||
                now < st.startAt)
                continue;
            Status sp = spawnShard(procs[i], st.attempt, st);
            if (!sp.ok())
                return sp;
            st.phase = ShardState::Phase::Running;
            st.outcome.attempts++;
            counters_.spawned++;
            traceEvent(i, st.attempt == 0 ? "spawned" : "respawned");
        }

        // Phase 2: wait for heartbeats / exits, bounded so budget
        // and backoff deadlines are honoured promptly.
        std::vector<pollfd> fds;
        std::vector<std::size_t> fdShard;
        for (std::size_t i = 0; i < states.size(); ++i) {
            if (states[i].phase == ShardState::Phase::Running) {
                fds.push_back({states[i].heartbeatFd, POLLIN, 0});
                fdShard.push_back(i);
            }
        }
        if (!fds.empty()) {
            const int rc =
                ::poll(fds.data(),
                       static_cast<nfds_t>(fds.size()), 50);
            if (rc < 0 && errno != EINTR)
                return ioError("poll() on shard heartbeats failed");
            for (std::size_t f = 0; rc > 0 && f < fds.size(); ++f) {
                if ((fds[f].revents & POLLIN) == 0)
                    continue;
                ShardState &st = states[fdShard[f]];
                char buf[256];
                ssize_t n;
                while ((n = ::read(st.heartbeatFd, buf,
                                   sizeof(buf))) > 0) {
                    st.outcome.heartbeats +=
                        static_cast<std::uint64_t>(n);
                    counters_.heartbeats +=
                        static_cast<std::uint64_t>(n);
                    st.lastBeat = Clock::now();
                }
            }
        } else {
            // Only backoff timers left: sleep a tick.
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }

        // Phase 3: reap exits, enforce budgets.
        for (std::size_t i = 0; i < states.size(); ++i) {
            ShardState &st = states[i];
            if (st.phase != ShardState::Phase::Running)
                continue;
            int waitStatus = 0;
            const pid_t r = ::waitpid(st.pid, &waitStatus, WNOHANG);
            if (r == st.pid) {
                settle(i, waitStatus);
                continue;
            }
            const bool overWall = policy_.maxShardSeconds > 0 &&
                secondsSince(st.startedAt) > policy_.maxShardSeconds;
            const bool overBeat = policy_.heartbeatSeconds > 0 &&
                secondsSince(st.lastBeat) > policy_.heartbeatSeconds;
            if (!overWall && !overBeat)
                continue;
            if (overWall) {
                st.killedWall = true;
                st.outcome.killsWallClock++;
                counters_.killedWallClock++;
            } else {
                st.killedBeat = true;
                st.outcome.killsHeartbeat++;
                counters_.killedHeartbeat++;
            }
            traceEvent(i, overWall ? "killed (wall clock)"
                                   : "killed (heartbeat)");
            // SIGKILL is the whole point: non-cooperative, cannot be
            // caught, ends even a hard-hung child. Reap it now so a
            // retry can start immediately.
            ::kill(st.pid, SIGKILL);
            int ks = 0;
            while (::waitpid(st.pid, &ks, 0) < 0 && errno == EINTR) {
            }
            settle(i, ks);
        }

        if (!strictError.empty()) {
            // Strict mode: kill everything still running and fail.
            for (ShardState &st : states) {
                if (st.phase == ShardState::Phase::Running) {
                    ::kill(st.pid, SIGKILL);
                    int ks = 0;
                    while (::waitpid(st.pid, &ks, 0) < 0 &&
                           errno == EINTR) {
                    }
                    ::close(st.heartbeatFd);
                    st.heartbeatFd = -1;
                }
            }
            return internalError(strictError);
        }
    }

    std::vector<ShardOutcome> outcomes;
    outcomes.reserve(states.size());
    for (ShardState &st : states)
        outcomes.push_back(std::move(st.outcome));
    return outcomes;
}

#else // !UNISTC_SHARD_POSIX

Result<std::vector<ShardOutcome>>
ShardSupervisor::run(const std::vector<ShardProcess> &procs,
                     TraceSink *trace)
{
    (void)procs;
    (void)trace;
    return failedPrecondition(
        "sharded execution needs a POSIX host (fork/exec)");
}

#endif // UNISTC_SHARD_POSIX

} // namespace unistc
