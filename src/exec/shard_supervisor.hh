/**
 * @file
 * Process supervisor for crash-isolated sharded sweeps
 * (docs/SHARDING.md).
 *
 * The PR 3 watchdog is cooperative: a hung or crashing in-process job
 * cannot be killed mid-flight, so one wild model bug still takes the
 * whole sweep down. The ShardSupervisor moves the failure domain out
 * of the process: each shard runs as a fork/exec'd child with a
 * heartbeat pipe, and the supervisor enforces *hard* budgets — a
 * shard that exceeds its wall-clock budget or goes heartbeat-silent
 * is SIGKILLed, retried with exponential backoff up to a bounded
 * attempt count, and finally quarantined (its units report zeroed
 * results while the rest of the run completes) or, in strict mode,
 * fails the run.
 *
 * Child contract: the supervisor passes the heartbeat pipe's write
 * end via UNISTC_SHARD_HEARTBEAT_FD and the 0-based attempt number
 * via UNISTC_SHARD_ATTEMPT. Workers call shardHeartbeat() once at
 * startup and once per finished unit; crash recovery rides on the
 * shard manifest (exec/shard_plan.hh), so a retried attempt resumes
 * where the killed one durably left off.
 */

#ifndef UNISTC_EXEC_SHARD_SUPERVISOR_HH
#define UNISTC_EXEC_SHARD_SUPERVISOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "robust/status.hh"

namespace unistc
{

class StatRegistry;
class TraceSink;

/** Environment variable carrying the heartbeat pipe's write fd. */
inline constexpr const char *kShardHeartbeatFdEnv =
    "UNISTC_SHARD_HEARTBEAT_FD";

/** Environment variable carrying the 0-based attempt number. */
inline constexpr const char *kShardAttemptEnv = "UNISTC_SHARD_ATTEMPT";

/** Environment variable carrying injected process faults. */
inline constexpr const char *kShardFaultEnv = "UNISTC_SHARD_FAULT";

/**
 * Worker side: emit one heartbeat byte on the supervisor's pipe.
 * No-op when UNISTC_SHARD_HEARTBEAT_FD is unset (e.g. a worker run
 * by hand); EPIPE/EBADF are swallowed — a worker must never die
 * because its supervisor already gave up on it.
 */
void shardHeartbeat();

/** Worker side: 0-based attempt number from the environment. */
int shardAttemptFromEnv();

/** Kill/retry/quarantine policy one supervisor applies to all shards. */
struct ShardPolicy
{
    /** SIGKILL a shard running longer than this; 0 = no budget. */
    double maxShardSeconds = 0.0;

    /** SIGKILL a shard silent longer than this; 0 = no budget. */
    double heartbeatSeconds = 0.0;

    /** Retries after the first attempt (so maxRetries+1 attempts). */
    int maxRetries = 1;

    /** First retry delay; doubles on every further retry. */
    double backoffSeconds = 0.25;

    /**
     * On final failure: true quarantines the shard (run completes,
     * its units zeroed), false fails the whole run ("strict").
     */
    bool quarantine = true;
};

/** One child process to supervise (argv[0] is the executable). */
struct ShardProcess
{
    std::vector<std::string> argv;
};

/** What happened to one shard across all its attempts. */
struct ShardOutcome
{
    bool ok = false;          ///< Some attempt exited 0.
    bool quarantined = false; ///< All attempts failed; zeroed out.
    int attempts = 0;         ///< Attempts actually started.
    int killsWallClock = 0;   ///< SIGKILLs for wall-clock overrun.
    int killsHeartbeat = 0;   ///< SIGKILLs for heartbeat silence.
    int exitCode = -1;        ///< Last attempt's exit code (-1: signal).
    int termSignal = 0;       ///< Last attempt's fatal signal (0: none).
    std::uint64_t heartbeats = 0; ///< Beats received across attempts.
    std::string error;        ///< Human-readable failure summary.
};

/** Aggregate recovery tallies, surfaced as robust.shard_* stats. */
struct ShardRecoveryCounters
{
    std::uint64_t spawned = 0;        ///< Attempts fork/exec'd.
    std::uint64_t completed = 0;      ///< Shards that ended ok.
    std::uint64_t killedWallClock = 0;
    std::uint64_t killedHeartbeat = 0;
    std::uint64_t crashed = 0;        ///< Nonzero exit or signal.
    std::uint64_t retried = 0;        ///< Backoff restarts issued.
    std::uint64_t quarantined = 0;    ///< Shards given up on.
    std::uint64_t heartbeats = 0;     ///< Total beats received.
};

/**
 * Publish @p sc as robust.shard_* counters (plus robust.shard_count
 * = @p shards) into @p stats — the stats-JSON twin of
 * warehouse::BenchSink::noteShards, read back by `unistc_query
 * recovery`.
 */
void registerShardStats(StatRegistry &stats, int shards,
                        const ShardRecoveryCounters &sc);

/**
 * Babysits a set of shard children to completion. One-shot: build,
 * run(), read counters. POSIX-only (fork/exec); run() returns a
 * typed error elsewhere.
 */
class ShardSupervisor
{
  public:
    explicit ShardSupervisor(ShardPolicy policy) : policy_(policy) {}

    /**
     * Run all @p procs concurrently and supervise until every shard
     * is completed or quarantined. Returns one outcome per shard (in
     * input order), or an error when a shard fails in strict mode or
     * a spawn is impossible. @p trace, when given, receives instant
     * events for every spawn/kill/retry/quarantine on the Runner
     * track.
     */
    Result<std::vector<ShardOutcome>>
    run(const std::vector<ShardProcess> &procs,
        TraceSink *trace = nullptr);

    const ShardRecoveryCounters &counters() const { return counters_; }

  private:
    ShardPolicy policy_;
    ShardRecoveryCounters counters_;
};

} // namespace unistc

#endif // UNISTC_EXEC_SHARD_SUPERVISOR_HH
