/**
 * @file
 * Fixed-size worker-thread pool for fanning independent simulation
 * jobs across cores. The pool is deliberately minimal: FIFO task
 * queue, a wait() barrier, and an inline mode (zero workers) in which
 * submit() runs the task on the calling thread — so single-threaded
 * and multi-threaded executions share one code path and differ only
 * in scheduling, never in results.
 *
 * Tasks are expected to handle their own failures: callers that need
 * recovery (SweepExecutor's retry/quarantine machinery) catch inside
 * the task. As a backstop, an exception that does escape a task is
 * caught by the pool and reported via UNISTC_PANIC with its message —
 * a deliberate, attributed abort instead of an opaque std::terminate
 * from a detached worker stack.
 */

#ifndef UNISTC_EXEC_THREAD_POOL_HH
#define UNISTC_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace unistc
{

/** FIFO thread pool with a completion barrier. */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers. 0 (or negative) means inline mode:
     * no threads are spawned and submit() executes immediately on
     * the caller.
     */
    explicit ThreadPool(int threads);

    /** Drains outstanding tasks, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task (or run it now in inline mode). */
    void submit(std::function<void()> task);

    /**
     * Block until every task submitted so far has finished. The
     * pool is reusable afterwards: more submit() calls may follow.
     */
    void wait();

    /** Worker threads owned by the pool (0 in inline mode). */
    int threadCount() const
    {
        return static_cast<int>(workers_.size());
    }

    /** Tasks submitted over the pool's lifetime. */
    std::uint64_t submitted() const;

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mu_;
    std::condition_variable workCv_; ///< Signals queued work / stop.
    std::condition_variable idleCv_; ///< Signals inFlight_ == 0.
    std::size_t inFlight_ = 0;       ///< Queued + currently running.
    std::uint64_t submitted_ = 0;
    bool stop_ = false;
};

} // namespace unistc

#endif // UNISTC_EXEC_THREAD_POOL_HH
