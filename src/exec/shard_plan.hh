/**
 * @file
 * Deterministic shard planning + the per-shard result manifest
 * (docs/SHARDING.md).
 *
 * A sweep is a numbered sequence of *units* — one unit per
 * runKernel()/runKernelLineup() call site, numbered identically in
 * every process because the bench body is deterministic. The
 * ShardPlan maps each unit to exactly one of K shards (round-robin,
 * so heavy matrices spread evenly); a shard worker executes only its
 * own units and appends each finished unit to a *manifest*: a
 * line-oriented file speaking the checkpoint-log dialect
 * (%-escaping, IEEE-754 bit-pattern hex) with the same durability
 * discipline (one write(2) per record + fdatasync, prefix recovery
 * on load, atomic tmp+fsync+rename repair of a torn tail).
 *
 * Format:
 *   unistc-shard-hdr-v1 <shard-hex> <shards-hex>
 *   unistc-shard-unit-v1 <unit-hex> <n-hex> <n checkpoint entries
 *       inline, kCheckpointEntryTokens tokens each>
 *       [E <tasksGenerated> <modelsFanout> <peakLiveTasks>]
 *
 * The optional E suffix carries the KernelPipeline counters of a
 * lineup unit (timing is deliberately absent: wall-clock seconds are
 * not reproducible across processes, so sharded runs zero them —
 * exactly like checkpoint-resumed runs already do).
 */

#ifndef UNISTC_EXEC_SHARD_PLAN_HH
#define UNISTC_EXEC_SHARD_PLAN_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "robust/checkpoint.hh"
#include "robust/status.hh"

namespace unistc
{

/**
 * On-disk shard manifest format version — the "v1" in the
 * "unistc-shard-hdr-v1" / "unistc-shard-unit-v1" line tags below.
 * Reported by every binary's --version; bump alongside the tags.
 */
constexpr int kShardManifestVersion = 1;

/**
 * Deterministic unit → shard assignment. Pure arithmetic, so the
 * supervisor, every worker, and the serve pass all agree without
 * communicating.
 */
struct ShardPlan
{
    int shards = 1;

    /** Shard that owns @p unit (round-robin). */
    int shardOf(std::uint64_t unit) const
    {
        return static_cast<int>(unit %
                                static_cast<std::uint64_t>(shards));
    }

    bool owns(std::uint64_t unit, int shard) const
    {
        return shardOf(unit) == shard;
    }

    /** Units out of @p total that shard @p i executes. */
    std::uint64_t unitsFor(std::uint64_t total, int i) const;
};

/** Validate a `--shards K --shard i` pair (K >= 1, 0 <= i < K). */
Status validateShardArgs(int shards, int shard);

/** One finished unit: its per-model results + optional engine counters. */
struct ShardUnitRecord
{
    std::uint64_t unit = 0;

    /** Results in the order the unit produced them (one per model). */
    std::vector<CheckpointEntry> entries;

    /** KernelPipeline counters for lineup units (timing excluded). */
    bool hasEngine = false;
    std::uint64_t engTasksGenerated = 0;
    std::uint64_t engModelsFanout = 0;
    std::uint64_t engPeakLiveTasks = 0;
};

/** Serialize @p rec as one manifest line (no trailing newline). */
std::string encodeShardUnit(const ShardUnitRecord &rec);

/** Parse one manifest unit line; typed error on malformation. */
Result<ShardUnitRecord> decodeShardUnit(const std::string &line);

/** Serialize a manifest header line. */
std::string encodeShardHeader(int shard, int shards);

/** Parse a manifest header line into (shard, shards). */
Status decodeShardHeader(const std::string &line, int &shard,
                         int &shards);

/**
 * In-memory view of one shard's manifest, indexed by unit number.
 * Within a file, a re-recorded unit wins by last occurrence (a
 * retried worker may legitimately re-execute a unit whose record
 * was torn away).
 */
class ShardManifest
{
  public:
    /**
     * Load @p path. Missing file = empty manifest (fresh workers and
     * resumed workers share one code path). A corrupt line ends the
     * valid prefix and sets truncated(); everything after is
     * discarded.
     */
    static Result<ShardManifest> load(const std::string &path);

    const ShardUnitRecord *find(std::uint64_t unit) const;

    /** Header fields; shard() is -1 for an empty/missing file. */
    int shard() const { return shard_; }
    int shards() const { return shards_; }

    std::size_t size() const { return units_.size(); }
    bool empty() const { return units_.empty(); }
    bool truncated() const { return truncated_; }

    const std::vector<ShardUnitRecord> &units() const { return units_; }

  private:
    int shard_ = -1;
    int shards_ = 0;
    std::vector<ShardUnitRecord> units_;
    std::unordered_map<std::uint64_t, std::size_t> byUnit_;
    bool truncated_ = false;

    friend class ShardManifestWriter;
};

/**
 * Appends unit records to a shard manifest with checkpoint-grade
 * durability. open() doubles as crash recovery: it loads whatever a
 * previous (possibly SIGKILLed) attempt left behind, repairs a torn
 * tail in place via atomic rewrite, and hands the surviving records
 * back so the worker can skip already-finished units.
 */
class ShardManifestWriter
{
  public:
    /**
     * Open @p path for shard @p shard of @p shards. An existing
     * manifest with a matching header is resumed into @p resumed; a
     * missing, torn-empty, or mismatched file is started fresh. The
     * file on disk is left with a valid prefix + open append fd.
     */
    Status open(const std::string &path, int shard, int shards,
                ShardManifest *resumed);

    /** Append one finished unit (single write + sync). */
    Status append(const ShardUnitRecord &rec);

    /** Close the underlying descriptor (idempotent). */
    void close() { file_.close(); }

    bool isOpen() const { return file_.isOpen(); }

  private:
    DurableAppendFile file_;
};

/**
 * Merged view over all shard manifests of a run: unit → record.
 * Ownership makes shards disjoint, so merging is a union; a unit
 * recorded by a shard that does not own it is a fatal plan mismatch.
 */
class ShardMergeView
{
  public:
    /** Merge @p manifests (validated against @p plan). */
    static Result<ShardMergeView>
    merge(const std::vector<ShardManifest> &manifests,
          const ShardPlan &plan);

    const ShardUnitRecord *find(std::uint64_t unit) const;
    std::size_t size() const { return byUnit_.size(); }

  private:
    std::vector<ShardUnitRecord> units_;
    std::unordered_map<std::uint64_t, std::size_t> byUnit_;
};

} // namespace unistc

#endif // UNISTC_EXEC_SHARD_PLAN_HH
