#include "isa/uwmma.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "engine/task_stream.hh"
#include "runner/spgemm_runner.hh"
#include "runner/spmv_runner.hh"
#include "unistc/sdpu.hh"
#include "unistc/tms.hh"

namespace unistc
{

const char *
mnemonic(UwmmaOp op)
{
    switch (op) {
      case UwmmaOp::LoadMetaMv:
        return "stc.load.meta_mv";
      case UwmmaOp::LoadMetaMm:
        return "stc.load.meta_mm";
      case UwmmaOp::LoadA:
        return "stc.load.a";
      case UwmmaOp::TaskGenMv:
        return "stc.task_gen.mv";
      case UwmmaOp::TaskGenMm:
        return "stc.task_gen.mm";
      case UwmmaOp::NumericMv:
        return "stc.numeric.mv";
      case UwmmaOp::NumericMm:
        return "stc.numeric.mm";
    }
    return "?";
}

namespace
{

TaskBundle
buildTaskBundleFromMeta(const PatternMeta &a_meta,
                        const PatternMeta &b_meta, bool is_mv,
                        const MachineConfig &cfg)
{
    TaskBundle bundle;

    // Synchronous loads: meta (1 cycle) + A values (2 cycles).
    bundle.instrs.push_back({is_mv ? UwmmaOp::LoadMetaMv
                                   : UwmmaOp::LoadMetaMm,
                             1});
    bundle.instrs.push_back({UwmmaOp::LoadA, 2});
    bundle.loadCycles = 3;

    // Task generation: the TMS emits up to numDpgs T3 tasks per
    // cycle into the Tile queue. Table V bounds: MV 1-4, MM 1-8.
    const int n_tile_cols = is_mv ? 1 : kTilesPerEdge;
    const TileTaskList tasks =
        generateTileTasks(a_meta, b_meta, n_tile_cols,
                          TaskOrdering::OuterProduct);
    const int gen_max = is_mv ? 4 : 8;
    int gen = static_cast<int>(
        ceilDiv(tasks.size(), static_cast<std::uint64_t>(
                                  std::max(1, cfg.numDpgs))));
    gen = std::clamp(gen, 1, gen_max);
    bundle.taskGenCycles = gen;
    bundle.instrs.push_back({is_mv ? UwmmaOp::TaskGenMv
                                   : UwmmaOp::TaskGenMm,
                             gen});

    // Numeric: the SDPU packing determines the cycle count. Table V
    // bounds: MV 1-8, MM 1-64.
    int numeric = 1;
    if (!tasks.empty()) {
        int cycles = 0;
        forEachSdpuCycle(
            std::span<const TileTask>(tasks.data(), tasks.size()),
            cfg.numDpgs, cfg.macCount, /*check_conflicts=*/!is_mv,
            [&](const SdpuCycleView &) { ++cycles; });
        numeric = cycles;
    }
    numeric = std::clamp(numeric, 1, is_mv ? 8 : 64);
    bundle.numericCycles = numeric;
    bundle.instrs.push_back({is_mv ? UwmmaOp::NumericMv
                                   : UwmmaOp::NumericMm,
                             numeric});
    return bundle;
}

} // namespace

TaskBundle
buildTaskBundle(const BlockPattern &a, const BlockPattern &b,
                bool is_mv, const MachineConfig &cfg)
{
    return buildTaskBundleFromMeta(computePatternMeta(a),
                                   computePatternMeta(b), is_mv, cfg);
}

TaskBundle
buildTaskBundle(const BlockTask &task, const MachineConfig &cfg)
{
    return buildTaskBundleFromMeta(task.aInfo(), task.bInfo(),
                                   task.isMv, cfg);
}

LifecycleStats
simulateLifecycle(const std::vector<TaskBundle> &tasks,
                  bool async_task_gen)
{
    LifecycleStats stats;
    // Cycle at which the task queues of the *current* task become
    // READY, relative to the global clock.
    std::uint64_t clock = 0;
    std::uint64_t queues_ready = 0;

    for (const auto &t : tasks) {
        stats.instructions += t.instrs.size();
        stats.loadCycles += t.loadCycles;
        stats.numericCycles +=
            static_cast<std::uint64_t>(t.numericCycles);

        // Loads are synchronous on the SM.
        clock += static_cast<std::uint64_t>(t.loadCycles);

        if (async_task_gen) {
            // stc.task_gen retires immediately; generation runs in
            // the background starting now.
            queues_ready = clock +
                static_cast<std::uint64_t>(t.taskGenCycles);
            // stc.numeric stalls while the flag is BUSY.
            if (queues_ready > clock) {
                const std::uint64_t stall =
                    std::min<std::uint64_t>(queues_ready - clock,
                                            t.taskGenCycles);
                // The SDPU can begin draining as soon as the first
                // queue entries land; model a one-cycle fill stall
                // only when generation has not produced anything yet.
                const std::uint64_t observed_stall =
                    stall > static_cast<std::uint64_t>(
                                t.numericCycles)
                    ? stall - t.numericCycles
                    : 0;
                stats.taskGenStalls += observed_stall;
                clock += observed_stall;
            }
            clock += static_cast<std::uint64_t>(t.numericCycles);
        } else {
            // Serialised ablation: generation completes before the
            // numeric phase starts.
            clock += static_cast<std::uint64_t>(t.taskGenCycles);
            stats.taskGenStalls +=
                static_cast<std::uint64_t>(t.taskGenCycles);
            clock += static_cast<std::uint64_t>(t.numericCycles);
        }
    }
    stats.totalCycles = clock;
    return stats;
}

std::vector<TaskBundle>
bundleStream(TaskStream &stream, const MachineConfig &cfg)
{
    std::vector<TaskBundle> out;
    StreamedTask item;
    while (stream.next(item))
        out.push_back(buildTaskBundle(item.task, cfg));
    return out;
}

std::vector<TaskBundle>
traceSpmv(const BbcMatrix &a, const MachineConfig &cfg)
{
    const SpmvPlan plan(a);
    const auto stream = plan.stream();
    return bundleStream(*stream, cfg);
}

std::vector<TaskBundle>
traceSpmm(const BbcMatrix &a, int b_cols, const MachineConfig &cfg)
{
    UNISTC_ASSERT(b_cols > 0, "SpMM needs a B width");
    const int b_block_cols =
        static_cast<int>(ceilDiv(b_cols, kBlockSize));
    std::vector<TaskBundle> out;
    out.reserve(a.numBlocks() * b_block_cols);
    const BlockPattern dense_b = BlockPattern::dense();
    for (std::int64_t blk = 0; blk < a.numBlocks(); ++blk) {
        const BlockPattern pattern = a.blockPattern(blk);
        // Every dense-B block column induces the identical bundle.
        const TaskBundle bundle = buildTaskBundle(pattern, dense_b,
                                                  /*is_mv=*/false,
                                                  cfg);
        for (int bj = 0; bj < b_block_cols; ++bj)
            out.push_back(bundle);
    }
    return out;
}

std::vector<TaskBundle>
traceSpgemm(const BbcMatrix &a, const BbcMatrix &b,
            const MachineConfig &cfg)
{
    const SpgemmPlan plan(a, b);
    const auto stream = plan.stream();
    return bundleStream(*stream, cfg);
}

} // namespace unistc
