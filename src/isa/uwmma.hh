/**
 * @file
 * The UWMMA instruction set (§IV-F, Table V) and execution lifecycle
 * (§IV-G). Each T1 block task is driven by a short instruction
 * sequence:
 *
 *   stc.load.meta_*  — operand collector fills the Meta Buffer (1 cy)
 *   stc.load.a       — matrix A block values into the A buffer (2 cy)
 *   stc.task_gen.*   — ASYNCHRONOUS: TMS+DPGs fill the task queues
 *                      (MV 1-4 cy, MM 1-8 cy); the SM retires the
 *                      instruction immediately
 *   stc.numeric.*    — SDPU execution (MV 1-8 cy, MM 1-64 cy);
 *                      stalls while the queues are not READY
 *
 * The lifecycle simulator below reproduces the overlap: task
 * generation for task i hides behind the numeric phase of task i-1,
 * so in steady state the pipeline is bound by max(numeric, taskgen)
 * plus the synchronous load cycles.
 */

#ifndef UNISTC_ISA_UWMMA_HH
#define UNISTC_ISA_UWMMA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bbc/bbc_matrix.hh"
#include "common/small_vector.hh"
#include "sim/config.hh"

namespace unistc
{

class TaskStream;
struct BlockTask;

/** UWMMA opcodes (Table V). */
enum class UwmmaOp
{
    LoadMetaMv,
    LoadMetaMm,
    LoadA,
    TaskGenMv,
    TaskGenMm,
    NumericMv,
    NumericMm,
};

/** Assembly-style mnemonic ("stc.task_gen.mm", ...). */
const char *mnemonic(UwmmaOp op);

/** One issued instruction with its resolved cycle cost. */
struct UwmmaInstr
{
    UwmmaOp op;
    int cycles = 0;
};

/** Per-T1-task instruction bundle. */
struct TaskBundle
{
    int loadCycles = 0;    ///< Synchronous meta + value loads.
    int taskGenCycles = 0; ///< Asynchronous TMS+DPG work.
    int numericCycles = 0; ///< SDPU execution.
    /** The issued sequence — always the 4-instruction Table V shape. */
    SmallVector<UwmmaInstr, 4> instrs;
};

/**
 * Build the instruction bundle of one T1 task on Uni-STC.
 *
 * @param a A block pattern.
 * @param b B block (or embedded vector) pattern.
 * @param is_mv MV-variant instructions and cycle bounds.
 * @param cfg machine configuration (DPG count bounds task_gen).
 */
TaskBundle buildTaskBundle(const BlockPattern &a, const BlockPattern &b,
                           bool is_mv, const MachineConfig &cfg);

/**
 * Allocation-free variant over a T1 block task: reuses the task's
 * (possibly primed) pattern summaries and counts SDPU cycles without
 * materialising the schedule. Produces the identical bundle.
 */
TaskBundle buildTaskBundle(const BlockTask &task,
                           const MachineConfig &cfg);

/** Outcome of running an instruction stream through the lifecycle. */
struct LifecycleStats
{
    std::uint64_t totalCycles = 0;   ///< End-to-end cycles.
    std::uint64_t loadCycles = 0;    ///< Synchronous load total.
    std::uint64_t numericCycles = 0; ///< SDPU busy cycles.
    std::uint64_t taskGenStalls = 0; ///< Numeric stalls on BUSY flag.
    std::uint64_t instructions = 0;  ///< Instructions issued.
};

/**
 * Execute a stream of task bundles through the §IV-G lifecycle.
 *
 * @param async_task_gen when true (the Uni-STC design) task
 *        generation overlaps the previous task's numeric phase; when
 *        false every phase serialises (the ablation baseline).
 */
LifecycleStats simulateLifecycle(const std::vector<TaskBundle> &tasks,
                                 bool async_task_gen);

/**
 * Drain a T1 task stream (engine/task_stream.hh) into one UWMMA
 * bundle per task, in stream order — the ISA layer's consumer of the
 * unified kernel plans.
 */
std::vector<TaskBundle> bundleStream(TaskStream &stream,
                                     const MachineConfig &cfg);

/**
 * Build the full instruction stream of SpMV over a BBC matrix
 * (Algorithm 1) or of SpGEMM C = A x B (Algorithm 2). Both are
 * bundleStream() over the corresponding kernel plan's stream.
 */
std::vector<TaskBundle> traceSpmv(const BbcMatrix &a,
                                  const MachineConfig &cfg);
std::vector<TaskBundle> traceSpgemm(const BbcMatrix &a,
                                    const BbcMatrix &b,
                                    const MachineConfig &cfg);

/** Instruction stream of SpMM with a dense b_cols-wide B. */
std::vector<TaskBundle> traceSpmm(const BbcMatrix &a, int b_cols,
                                  const MachineConfig &cfg);

} // namespace unistc

#endif // UNISTC_ISA_UWMMA_HH
