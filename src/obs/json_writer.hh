/**
 * @file
 * Minimal streaming JSON writer used by the observability exporters
 * (Chrome trace serialisation, stats JSON). Emits syntactically valid
 * JSON with automatic comma/indent management; no DOM, no external
 * dependency.
 */

#ifndef UNISTC_OBS_JSON_WRITER_HH
#define UNISTC_OBS_JSON_WRITER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace unistc
{

/**
 * Stack-based JSON emitter. Usage:
 *
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("cycles"); w.value(std::uint64_t{42});
 *   w.key("models"); w.beginArray(); w.value("Uni-STC"); w.endArray();
 *   w.endObject();
 *
 * Double policy (audited for bit-exact round-trips):
 *
 *  - Finite values emit the SHORTEST decimal form that strtod()
 *    parses back to the identical bit pattern, falling back to
 *    max_digits10 (17) significant digits. -0.0 keeps its sign.
 *  - Non-finite values emit the quoted strings "nan", "inf" and
 *    "-inf" — JSON has no Infinity/NaN literals, and the previous
 *    null encoding conflated all three irrecoverably. This mirrors
 *    the Histogram convention of an explicit "nan" record instead
 *    of silently losing the information (docs/OBSERVABILITY.md).
 *
 * JsonReader::doubleValue() decodes both forms back losslessly.
 */
class JsonWriter
{
  public:
    /** @param indent spaces per nesting level; 0 = compact one-line. */
    explicit JsonWriter(std::ostream &os, int indent = 2);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; must be inside an object. */
    void key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v);
    void value(bool v);
    void null();

    /** Escape a string for embedding in a JSON document (no quotes). */
    static std::string escape(const std::string &s);

    /**
     * The exact token value(double) emits (sans quoting for the
     * non-finite strings): shortest round-trip decimal for finite
     * input, "nan" / "inf" / "-inf" otherwise. Exposed so tests and
     * readers share one formatting contract.
     */
    static std::string formatDouble(double v);

  private:
    enum class Scope { Object, Array };

    /** Comma/newline/indent bookkeeping before a value or key. */
    void preValue();
    void preKey();
    void newline();

    std::ostream &os_;
    int indent_;
    std::vector<Scope> stack_;
    bool firstInScope_ = true;
    bool afterKey_ = false;
};

} // namespace unistc

#endif // UNISTC_OBS_JSON_WRITER_HH
