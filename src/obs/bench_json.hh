/**
 * @file
 * The canonical bench JSON serialisation (schema "unistc-bench",
 * version 2), factored out of bench_common.hh's ResultLog so two
 * producers share one byte-identical writer:
 *
 *   - ResultLog::dumpJson() (the UNISTC_BENCH_JSON dump at bench
 *     exit), and
 *   - unistc_query export-bench, which reconstructs the same
 *     document from warehouse rows (docs/WAREHOUSE.md) — this is
 *     what makes committed BENCH_*.json baselines reproducible from
 *     the longitudinal store.
 */

#ifndef UNISTC_OBS_BENCH_JSON_HH
#define UNISTC_OBS_BENCH_JSON_HH

#include <ostream>
#include <string>
#include <vector>

#include "engine/kernel_pipeline.hh"
#include "sim/result.hh"

namespace unistc
{

/** Bench JSON envelope identity. Bump the version on key changes. */
inline constexpr const char *kBenchSchemaName = "unistc-bench";
inline constexpr int kBenchSchemaVersion = 2;

/** One per-(kernel, model, matrix) record of the "entries" array. */
struct BenchJsonEntry
{
    std::string kernel;
    std::string model;
    std::string matrix;
    RunResult result;
};

/**
 * One engine pass record of the optional "engine" array. Wall-clock
 * seconds are serialised only when @ref timed is set — untimed
 * passes must stay byte-identical across --jobs worker counts.
 */
struct BenchJsonEngineEntry
{
    std::string kernel;
    std::string matrix;
    PipelineCounters counters;
    bool timed = false;
};

/**
 * Write the whole bench JSON document: schema envelope, "entries"
 * array (stats via registerRunResult), and an "engine" array only
 * when @p engine is non-empty.
 */
void writeBenchJson(std::ostream &os,
                    const std::vector<BenchJsonEntry> &entries,
                    const std::vector<BenchJsonEngineEntry> &engine);

} // namespace unistc

#endif // UNISTC_OBS_BENCH_JSON_HH
