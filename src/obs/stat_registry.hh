/**
 * @file
 * Named statistics registry in the gem5 tradition: components export
 * their counters, derived scalars, histograms and labels under
 * hierarchical dotted names ("models.Uni-STC.traffic.readsA"), and
 * exporters walk the registry instead of knowing every struct field.
 * The hot path keeps accumulating into plain RunResult fields; the
 * registry is the *export* surface filled once per run.
 */

#ifndef UNISTC_OBS_STAT_REGISTRY_HH
#define UNISTC_OBS_STAT_REGISTRY_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace unistc
{

/** Kind of a registered statistic. */
enum class StatKind
{
    Counter,   ///< Monotonic event count (uint64).
    Scalar,    ///< Derived floating-point quantity.
    Text,      ///< Label/metadata (not merged numerically).
    Histogram, ///< Fixed-bucket distribution.
};

/** Printable kind name ("counter", ...). */
const char *toString(StatKind kind);

/**
 * Registry of named statistics with deterministic (sorted) order.
 *
 * Thread safety: every member serialises on an internal mutex, so
 * concurrent registration from sweep workers is safe. Accessors
 * returning references (text(), histogram(), description()) hand out
 * stable map-node storage; mutating the *same* entry while another
 * thread reads that reference is still a caller-side race — the
 * sweep executor avoids it by sharding per job and merging only at
 * the barrier.
 */
class StatRegistry
{
  public:
    StatRegistry() = default;
    StatRegistry(const StatRegistry &other);
    StatRegistry &operator=(const StatRegistry &other);

    void setCounter(const std::string &name, std::uint64_t v,
                    const std::string &desc = "");

    /** Add @p delta to a counter, creating it at zero if absent. */
    void addCounter(const std::string &name, std::uint64_t delta,
                    const std::string &desc = "");

    void setScalar(const std::string &name, double v,
                   const std::string &desc = "");

    void setText(const std::string &name, const std::string &v,
                 const std::string &desc = "");

    void setHistogram(const std::string &name, const Histogram &h,
                      const std::string &desc = "");

    bool has(const std::string &name) const;

    /** Kind of an existing entry; asserts when absent. */
    StatKind kind(const std::string &name) const;

    /** Typed accessors; assert on missing name or kind mismatch. */
    std::uint64_t counter(const std::string &name) const;
    double scalar(const std::string &name) const;
    const std::string &text(const std::string &name) const;
    const Histogram &histogram(const std::string &name) const;

    /** Description attached at registration ("" when none). */
    const std::string &description(const std::string &name) const;

    /** All names in sorted order. */
    std::vector<std::string> names() const;

    std::size_t size() const;
    bool empty() const { return size() == 0; }
    void clear();

    /**
     * Fold another registry into this one: counters and scalars add,
     * histograms merge (same shape required), text entries copy when
     * absent and must agree when present. Kind mismatches are
     * simulator bugs (assert).
     */
    void merge(const StatRegistry &other);

    /**
     * Write the registry body as one JSON object: counters as
     * integers, scalars as numbers, text as strings and histograms as
     * {"lo", "hi", "counts", "total"} objects. (The schema envelope
     * lives in metrics_export.)
     */
    void writeJson(std::ostream &os, int indent = 2) const;

  private:
    struct Entry
    {
        StatKind kind = StatKind::Counter;
        std::uint64_t c = 0;
        double d = 0.0;
        std::string s;
        Histogram h;
        std::string desc;
    };

    /** Lookup without locking; callers hold mu_. */
    const Entry &find(const std::string &name) const;

    mutable std::mutex mu_;
    std::map<std::string, Entry> entries_;
};

} // namespace unistc

#endif // UNISTC_OBS_STAT_REGISTRY_HH
