/**
 * @file
 * JSON metrics exporter: standard registrations that mirror every
 * RunResult / config / memory-model quantity into a StatRegistry
 * under stable, schema-versioned keys, plus the stats-JSON envelope
 * writer the CLI and bench harnesses share.
 */

#ifndef UNISTC_OBS_METRICS_EXPORT_HH
#define UNISTC_OBS_METRICS_EXPORT_HH

#include <ostream>
#include <string>

#include "obs/stat_registry.hh"
#include "sim/config.hh"
#include "sim/memory.hh"
#include "sim/result.hh"

namespace unistc
{

class TraceSink;

/** Stats JSON envelope identity. Bump the version on key changes. */
inline constexpr const char *kStatsSchemaName = "unistc-stats";
inline constexpr int kStatsSchemaVersion = 1;

/**
 * Register every RunResult field under @p prefix: raw counters
 * (cycles, products, macSlots, tasksT1/T3, stallCycles, traffic.*),
 * derived scalars (utilisation, avgActiveDpgs, avgCNetScale,
 * energy.*) and the per-cycle MAC utilisation histogram.
 */
void registerRunResult(StatRegistry &reg, const RunResult &res,
                       const std::string &prefix = "");

/** Register the machine configuration under @p prefix. */
void registerMachineConfig(StatRegistry &reg, const MachineConfig &cfg,
                           const std::string &prefix = "config.");

/** Register a DRAM traffic estimate under @p prefix. */
void registerDramTraffic(StatRegistry &reg, const DramTraffic &traffic,
                         const std::string &prefix = "dram.");

/** Register a roofline verdict under @p prefix. */
void registerRoofline(StatRegistry &reg, const RooflineVerdict &v,
                      const std::string &prefix = "roofline.");

/** Register tracer health counters (recorded/dropped) of @p sink. */
void registerTraceSinkStats(StatRegistry &reg, const TraceSink &sink,
                            const std::string &prefix = "trace.");

/**
 * Register a RunningStat under @p prefix: always an explicit
 * "<prefix>count" record (0 for an empty stat — a sweep that yields
 * zero samples must still export), with min/max/mean/sum only when
 * at least one sample exists (min()/max() assert on empty stats).
 */
void registerRunningStat(StatRegistry &reg, const RunningStat &stat,
                         const std::string &prefix,
                         const std::string &desc = "");

/**
 * Write the schema envelope around the registry body:
 *   {"schema": "unistc-stats", "version": 1, "stats": {...}}
 */
void writeStatsJson(const StatRegistry &reg, std::ostream &os);

/** writeStatsJson() to @p path; fatal() on I/O failure. */
void writeStatsJsonFile(const StatRegistry &reg,
                        const std::string &path);

/** Whole envelope as a string (tests, log embedding). */
std::string statsJson(const StatRegistry &reg);

} // namespace unistc

#endif // UNISTC_OBS_METRICS_EXPORT_HH
