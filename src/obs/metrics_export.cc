#include "obs/metrics_export.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "obs/json_writer.hh"
#include "obs/trace.hh"

namespace unistc
{

void
registerRunResult(StatRegistry &reg, const RunResult &res,
                  const std::string &prefix)
{
    // Raw event counters (the RunResult accumulator fields).
    reg.setCounter(prefix + "cycles", res.cycles,
                   "execution cycles");
    reg.setCounter(prefix + "products", res.products,
                   "effective multiply-accumulates");
    reg.setCounter(prefix + "macSlots", res.macSlots,
                   "cycles * macCount (capacity)");
    reg.setCounter(prefix + "tasksT1", res.tasksT1,
                   "T1 block tasks issued");
    reg.setCounter(prefix + "tasksT3", res.tasksT3,
                   "T3 tile tasks scheduled");
    reg.setCounter(prefix + "stallCycles", res.stallCycles,
                   "cycles lost to C write conflicts");
    reg.setCounter(prefix + "dpgActiveAccum", res.dpgActiveAccum,
                   "sum over cycles of active DPGs");
    reg.setCounter(prefix + "cNetScaleAccum", res.cNetScaleAccum,
                   "sum over cycles of C-network scale");

    // Operand traffic (element granularity).
    reg.setCounter(prefix + "traffic.readsA", res.traffic.readsA,
                   "effective A operand fetches");
    reg.setCounter(prefix + "traffic.wastedA", res.traffic.wastedA,
                   "A fetch slots with no useful work");
    reg.setCounter(prefix + "traffic.readsB", res.traffic.readsB,
                   "effective B operand fetches");
    reg.setCounter(prefix + "traffic.wastedB", res.traffic.wastedB,
                   "B fetch slots with no useful work");
    reg.setCounter(prefix + "traffic.writesC", res.traffic.writesC,
                   "partial-sum write-backs to C");
    reg.setCounter(prefix + "traffic.totalA", res.traffic.totalA(),
                   "total A fetch slots");
    reg.setCounter(prefix + "traffic.totalB", res.traffic.totalB(),
                   "total B fetch slots");

    // Derived scalars the figures report.
    reg.setScalar(prefix + "utilisation", res.utilisation(),
                  "overall MAC utilisation [0,1]");
    reg.setScalar(prefix + "avgActiveDpgs", res.avgActiveDpgs(),
                  "average active DPGs per cycle");
    reg.setScalar(prefix + "avgCNetScale", res.avgCNetScale(),
                  "average C-write network scale");

    // Energy split (Fig. 18), picojoules.
    reg.setScalar(prefix + "energy.fetchA", res.energy.fetchA,
                  "A fetch energy (pJ)");
    reg.setScalar(prefix + "energy.fetchB", res.energy.fetchB,
                  "B fetch energy (pJ)");
    reg.setScalar(prefix + "energy.writeC", res.energy.writeC,
                  "C write-back energy (pJ)");
    reg.setScalar(prefix + "energy.schedule", res.energy.schedule,
                  "task-preparation energy (pJ)");
    reg.setScalar(prefix + "energy.compute", res.energy.compute,
                  "MAC array energy (pJ)");
    reg.setScalar(prefix + "energy.total", res.energy.total(),
                  "total energy (pJ)");

    // Per-cycle utilisation distribution (Fig. 5 buckets).
    reg.setHistogram(prefix + "utilHist", res.utilHist,
                     "per-cycle MAC utilisation buckets");
}

void
registerMachineConfig(StatRegistry &reg, const MachineConfig &cfg,
                      const std::string &prefix)
{
    reg.setText(prefix + "precision", toString(cfg.precision),
                "MAC precision");
    reg.setCounter(prefix + "macCount",
                   static_cast<std::uint64_t>(cfg.macCount),
                   "multipliers in the MAC array");
    reg.setCounter(prefix + "numDpgs",
                   static_cast<std::uint64_t>(cfg.numDpgs),
                   "Uni-STC dot-product generators");
    reg.setScalar(prefix + "freqGhz", cfg.freqGhz, "clock (GHz)");
}

void
registerDramTraffic(StatRegistry &reg, const DramTraffic &traffic,
                    const std::string &prefix)
{
    reg.setCounter(prefix + "readA", traffic.readA,
                   "A operand DRAM bytes");
    reg.setCounter(prefix + "readB", traffic.readB,
                   "B operand DRAM bytes");
    reg.setCounter(prefix + "writeC", traffic.writeC,
                   "C result DRAM bytes");
    reg.setCounter(prefix + "total", traffic.total(),
                   "total DRAM bytes");
}

void
registerRoofline(StatRegistry &reg, const RooflineVerdict &v,
                 const std::string &prefix)
{
    reg.setScalar(prefix + "computeNs", v.computeNs,
                  "device-wide STC time (ns)");
    reg.setScalar(prefix + "memoryNs", v.memoryNs,
                  "DRAM streaming time (ns)");
    reg.setScalar(prefix + "ratio", v.ratio,
                  "compute/memory time ratio");
    reg.setCounter(prefix + "computeBound", v.computeBound ? 1 : 0,
                   "1 when compute-bound");
}

void
registerTraceSinkStats(StatRegistry &reg, const TraceSink &sink,
                       const std::string &prefix)
{
    reg.setCounter(prefix + "recorded", sink.recorded(),
                   "trace events recorded");
    reg.setCounter(prefix + "dropped", sink.dropped(),
                   "trace events lost to ring wraparound");
    reg.setCounter(prefix + "capacity",
                   static_cast<std::uint64_t>(sink.capacity()),
                   "trace ring capacity");
}

void
registerRunningStat(StatRegistry &reg, const RunningStat &stat,
                    const std::string &prefix,
                    const std::string &desc)
{
    reg.setCounter(prefix + "count", stat.count(), desc);
    if (stat.count() == 0)
        return;
    reg.setScalar(prefix + "min", stat.min());
    reg.setScalar(prefix + "max", stat.max());
    reg.setScalar(prefix + "mean", stat.mean());
    reg.setScalar(prefix + "sum", stat.sum());
}

void
writeStatsJson(const StatRegistry &reg, std::ostream &os)
{
    // Open the envelope by hand so the registry body (itself a
    // complete JSON object) nests at the right indentation.
    os << "{\n  \"schema\": \"" << kStatsSchemaName
       << "\",\n  \"version\": " << kStatsSchemaVersion
       << ",\n  \"stats\": ";
    std::ostringstream body;
    reg.writeJson(body, 2);
    // Re-indent the body two spaces to sit inside the envelope.
    const std::string s = body.str();
    for (const char c : s) {
        os << c;
        if (c == '\n')
            os << "  ";
    }
    os << "\n}\n";
}

void
writeStatsJsonFile(const StatRegistry &reg, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        UNISTC_FATAL("cannot open stats output file '", path, "'");
    writeStatsJson(reg, os);
    if (!os.good())
        UNISTC_FATAL("error writing stats file '", path, "'");
}

std::string
statsJson(const StatRegistry &reg)
{
    std::ostringstream os;
    writeStatsJson(reg, os);
    return os.str();
}

} // namespace unistc
