#include "obs/json_reader.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace unistc
{

bool
JsonValue::boolean() const
{
    UNISTC_ASSERT(kind_ == Kind::Bool, "JSON value is not a bool");
    return b_;
}

double
JsonValue::number() const
{
    UNISTC_ASSERT(kind_ == Kind::Number, "JSON value is not a number");
    return d_;
}

const std::string &
JsonValue::string() const
{
    UNISTC_ASSERT(kind_ == Kind::String, "JSON value is not a string");
    return s_;
}

const std::vector<JsonValue> &
JsonValue::array() const
{
    UNISTC_ASSERT(kind_ == Kind::Array, "JSON value is not an array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    UNISTC_ASSERT(kind_ == Kind::Object,
                  "JSON value is not an object");
    return members_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

bool
JsonValue::doubleValue(double *out) const
{
    if (kind_ == Kind::Number) {
        *out = d_;
        return true;
    }
    // The writer's non-finite sentinels (json_writer.hh policy).
    if (kind_ == Kind::String) {
        if (s_ == "nan") {
            *out = std::numeric_limits<double>::quiet_NaN();
            return true;
        }
        if (s_ == "inf") {
            *out = std::numeric_limits<double>::infinity();
            return true;
        }
        if (s_ == "-inf") {
            *out = -std::numeric_limits<double>::infinity();
            return true;
        }
    }
    return false;
}

bool
JsonValue::counterValue(std::uint64_t *out) const
{
    if (kind_ != Kind::Number || !std::isfinite(d_) || d_ < 0)
        return false;
    const std::uint64_t v = static_cast<std::uint64_t>(d_);
    // Counters above 2^53 would already have been lossy to emit as a
    // JSON number; reject anything the double cannot represent.
    if (static_cast<double>(v) != d_)
        return false;
    *out = v;
    return true;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.b_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double d)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.d_ = d;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.s_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.items_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(
    std::vector<std::pair<std::string, JsonValue>> members)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.members_ = std::move(members);
    return v;
}

namespace
{

/** Hand-rolled recursive-descent parser with location tracking. */
class Parser
{
  public:
    Parser(const std::string &text, const std::string &label)
        : text_(text), label_(label)
    {
    }

    Result<JsonValue>
    parseDocument()
    {
        Result<JsonValue> v = parseValue(0);
        if (!v.ok())
            return v;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing garbage after the document");
        return v;
    }

  private:
    static constexpr int kMaxDepth = 64;

    Status
    error(const std::string &msg) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        std::ostringstream os;
        os << label_ << ":" << line << ":" << col << ": " << msg;
        return parseError(os.str());
    }

    Result<JsonValue> fail(const std::string &msg) const
    {
        return Result<JsonValue>(error(msg));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(const char *w)
    {
        const std::size_t n = std::string(w).size();
        if (text_.compare(pos_, n, w) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Result<JsonValue>
    parseValue(int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting deeper than 64 levels");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(depth);
          case '[':
            return parseArray(depth);
          case '"': {
            std::string s;
            if (Status st = parseString(&s); !st.ok())
                return Result<JsonValue>(st);
            return JsonValue::makeString(std::move(s));
          }
          case 't':
            if (consumeWord("true"))
                return JsonValue::makeBool(true);
            return fail("bad literal (expected 'true')");
          case 'f':
            if (consumeWord("false"))
                return JsonValue::makeBool(false);
            return fail("bad literal (expected 'false')");
          case 'n':
            if (consumeWord("null"))
                return JsonValue::makeNull();
            return fail("bad literal (expected 'null')");
          default:
            return parseNumber();
        }
    }

    Result<JsonValue>
    parseObject(int depth)
    {
        consume('{');
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWs();
        if (consume('}'))
            return JsonValue::makeObject(std::move(members));
        for (;;) {
            skipWs();
            std::string key;
            if (Status st = parseString(&key); !st.ok())
                return Result<JsonValue>(st);
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after object key");
            Result<JsonValue> v = parseValue(depth + 1);
            if (!v.ok())
                return v;
            members.emplace_back(std::move(key),
                                 std::move(v).value());
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return JsonValue::makeObject(std::move(members));
            return fail("expected ',' or '}' in object");
        }
    }

    Result<JsonValue>
    parseArray(int depth)
    {
        consume('[');
        std::vector<JsonValue> items;
        skipWs();
        if (consume(']'))
            return JsonValue::makeArray(std::move(items));
        for (;;) {
            Result<JsonValue> v = parseValue(depth + 1);
            if (!v.ok())
                return v;
            items.push_back(std::move(v).value());
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return JsonValue::makeArray(std::move(items));
            return fail("expected ',' or ']' in array");
        }
    }

    Status
    parseString(std::string *out)
    {
        if (!consume('"'))
            return error("expected '\"'");
        std::string s;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') {
                *out = std::move(s);
                return Status::okStatus();
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return error("unescaped control character in string");
            if (c != '\\') {
                s += c;
                continue;
            }
            if (pos_ >= text_.size())
                return error("dangling escape at end of input");
            const char e = text_[pos_++];
            switch (e) {
              case '"':
                s += '"';
                break;
              case '\\':
                s += '\\';
                break;
              case '/':
                s += '/';
                break;
              case 'b':
                s += '\b';
                break;
              case 'f':
                s += '\f';
                break;
              case 'n':
                s += '\n';
                break;
              case 'r':
                s += '\r';
                break;
              case 't':
                s += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return error("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else
                        return error("bad hex digit in \\u escape");
                }
                // The writer only emits \u00XX for control bytes;
                // decode the Basic Latin range directly and encode
                // anything else as UTF-8.
                if (code < 0x80) {
                    s += static_cast<char>(code);
                } else if (code < 0x800) {
                    s += static_cast<char>(0xC0 | (code >> 6));
                    s += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    s += static_cast<char>(0xE0 | (code >> 12));
                    s += static_cast<char>(0x80 |
                                           ((code >> 6) & 0x3F));
                    s += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return error("unknown escape sequence");
            }
        }
        return error("unterminated string");
    }

    Result<JsonValue>
    parseNumber()
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a JSON value");
        const std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0' || end == tok.c_str()) {
            pos_ = start;
            return fail("malformed number '" + tok + "'");
        }
        return JsonValue::makeNumber(d);
    }

    const std::string &text_;
    const std::string &label_;
    std::size_t pos_ = 0;
};

} // namespace

Result<JsonValue>
parseJson(const std::string &text, const std::string &label)
{
    Parser p(text, label);
    return p.parseDocument();
}

Result<JsonValue>
parseJsonFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return Result<JsonValue>(
            ioError("cannot open '" + path + "' for reading"));
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    if (is.bad()) {
        return Result<JsonValue>(
            ioError("read failure on '" + path + "'"));
    }
    return parseJson(buf.str(), path);
}

} // namespace unistc
