#include "obs/json_writer.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace unistc
{

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{
}

void
JsonWriter::newline()
{
    if (indent_ <= 0)
        return;
    os_ << '\n';
    const int depth = static_cast<int>(stack_.size());
    for (int i = 0; i < depth * indent_; ++i)
        os_ << ' ';
}

void
JsonWriter::preValue()
{
    if (afterKey_) {
        afterKey_ = false;
        return;
    }
    if (!stack_.empty()) {
        if (!firstInScope_)
            os_ << ',';
        newline();
    }
    firstInScope_ = false;
}

void
JsonWriter::preKey()
{
    UNISTC_ASSERT(!stack_.empty() && stack_.back() == Scope::Object,
                  "JSON key outside an object");
    UNISTC_ASSERT(!afterKey_, "JSON key after a dangling key");
    if (!firstInScope_)
        os_ << ',';
    newline();
    firstInScope_ = false;
}

void
JsonWriter::beginObject()
{
    preValue();
    os_ << '{';
    stack_.push_back(Scope::Object);
    firstInScope_ = true;
}

void
JsonWriter::endObject()
{
    UNISTC_ASSERT(!stack_.empty() && stack_.back() == Scope::Object,
                  "unbalanced JSON endObject");
    const bool empty = firstInScope_;
    stack_.pop_back();
    firstInScope_ = false;
    if (!empty)
        newline();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    preValue();
    os_ << '[';
    stack_.push_back(Scope::Array);
    firstInScope_ = true;
}

void
JsonWriter::endArray()
{
    UNISTC_ASSERT(!stack_.empty() && stack_.back() == Scope::Array,
                  "unbalanced JSON endArray");
    const bool empty = firstInScope_;
    stack_.pop_back();
    firstInScope_ = false;
    if (!empty)
        newline();
    os_ << ']';
}

void
JsonWriter::key(const std::string &k)
{
    preKey();
    os_ << '"' << escape(k) << "\": ";
    afterKey_ = true;
}

void
JsonWriter::value(const std::string &v)
{
    preValue();
    os_ << '"' << escape(v) << '"';
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    preValue();
    if (!std::isfinite(v)) {
        // Quoted sentinel strings instead of null: null loses which
        // of NaN/+Inf/-Inf the value was (the scalar analogue of the
        // Histogram "nan" record; see the header policy note).
        os_ << '"' << formatDouble(v) << '"';
        return;
    }
    os_ << formatDouble(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(int v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    preValue();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::null()
{
    preValue();
    os_ << "null";
}

std::string
JsonWriter::formatDouble(double v)
{
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v < 0 ? "-inf" : "inf";
    // Shortest representation whose strtod() round-trip reproduces
    // the exact bit pattern (== compares -0.0 equal to 0.0, but every
    // %g rendering of -0.0 keeps the sign, so signed zero survives).
    // Always valid JSON: %g never produces a bare exponent and the
    // "C" numeric locale of snprintf is the repo-wide default.
    for (int prec = 1; prec < 17; ++prec) {
        char trial[32];
        std::snprintf(trial, sizeof(trial), "%.*g", prec, v);
        if (std::strtod(trial, nullptr) == v)
            return trial;
    }
    // max_digits10 == 17 digits round-trip any finite double.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace unistc
