#include "obs/bench_json.hh"

#include "obs/json_writer.hh"
#include "obs/metrics_export.hh"
#include "obs/stat_registry.hh"

namespace unistc
{

// Moved verbatim from ResultLog::dumpJson (bench_common.hh) — any
// byte of drift here breaks both the committed baselines and the
// warehouse-vs-direct differential tests.
void
writeBenchJson(std::ostream &os,
               const std::vector<BenchJsonEntry> &entries,
               const std::vector<BenchJsonEngineEntry> &engine)
{
    os << "{\n  \"schema\": \"" << kBenchSchemaName << "\",\n"
       << "  \"version\": " << kBenchSchemaVersion
       << ",\n  \"entries\": [";
    bool first = true;
    for (const auto &e : entries) {
        StatRegistry reg;
        registerRunResult(reg, e.result);
        os << (first ? "\n" : ",\n")
           << "    {\n      \"kernel\": \""
           << JsonWriter::escape(e.kernel)
           << "\",\n      \"model\": \""
           << JsonWriter::escape(e.model)
           << "\",\n      \"matrix\": \""
           << JsonWriter::escape(e.matrix)
           << "\",\n      \"stats\": ";
        reg.writeJson(os, 6);
        os << "\n    }";
        first = false;
    }
    os << (first ? "]" : "\n  ]");
    if (!engine.empty()) {
        os << ",\n  \"engine\": [";
        bool efirst = true;
        for (const auto &e : engine) {
            StatRegistry reg;
            e.counters.registerStats(reg, "engine.",
                                     /*includeTiming=*/e.timed);
            os << (efirst ? "\n" : ",\n")
               << "    {\n      \"kernel\": \""
               << JsonWriter::escape(e.kernel)
               << "\",\n      \"matrix\": \""
               << JsonWriter::escape(e.matrix)
               << "\",\n      \"stats\": ";
            reg.writeJson(os, 6);
            os << "\n    }";
            efirst = false;
        }
        os << "\n  ]";
    }
    os << "\n}\n";
}

} // namespace unistc
