#include "obs/stat_registry.hh"

#include "common/logging.hh"
#include "obs/json_writer.hh"

namespace unistc
{

const char *
toString(StatKind kind)
{
    switch (kind) {
      case StatKind::Counter:
        return "counter";
      case StatKind::Scalar:
        return "scalar";
      case StatKind::Text:
        return "text";
      case StatKind::Histogram:
        return "histogram";
    }
    return "?";
}

void
StatRegistry::setCounter(const std::string &name, std::uint64_t v,
                         const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entries_[name];
    e.kind = StatKind::Counter;
    e.c = v;
    if (!desc.empty())
        e.desc = desc;
}

void
StatRegistry::addCounter(const std::string &name, std::uint64_t delta,
                         const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entries_[name];
    UNISTC_ASSERT(e.kind == StatKind::Counter,
                  "addCounter on non-counter stat '", name, "'");
    e.c += delta;
    if (!desc.empty())
        e.desc = desc;
}

void
StatRegistry::setScalar(const std::string &name, double v,
                        const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entries_[name];
    e.kind = StatKind::Scalar;
    e.d = v;
    if (!desc.empty())
        e.desc = desc;
}

void
StatRegistry::setText(const std::string &name, const std::string &v,
                      const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entries_[name];
    e.kind = StatKind::Text;
    e.s = v;
    if (!desc.empty())
        e.desc = desc;
}

void
StatRegistry::setHistogram(const std::string &name, const Histogram &h,
                           const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entries_[name];
    e.kind = StatKind::Histogram;
    e.h = h;
    if (!desc.empty())
        e.desc = desc;
}

bool
StatRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.count(name) > 0;
}

const StatRegistry::Entry &
StatRegistry::find(const std::string &name) const
{
    const auto it = entries_.find(name);
    UNISTC_ASSERT(it != entries_.end(), "unknown stat '", name, "'");
    return it->second;
}

StatKind
StatRegistry::kind(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return find(name).kind;
}

std::uint64_t
StatRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const Entry &e = find(name);
    UNISTC_ASSERT(e.kind == StatKind::Counter, "stat '", name,
                  "' is not a counter");
    return e.c;
}

double
StatRegistry::scalar(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const Entry &e = find(name);
    UNISTC_ASSERT(e.kind == StatKind::Scalar, "stat '", name,
                  "' is not a scalar");
    return e.d;
}

const std::string &
StatRegistry::text(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const Entry &e = find(name);
    UNISTC_ASSERT(e.kind == StatKind::Text, "stat '", name,
                  "' is not text");
    return e.s;
}

const Histogram &
StatRegistry::histogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const Entry &e = find(name);
    UNISTC_ASSERT(e.kind == StatKind::Histogram, "stat '", name,
                  "' is not a histogram");
    return e.h;
}

const std::string &
StatRegistry::description(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return find(name).desc;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

StatRegistry::StatRegistry(const StatRegistry &other)
{
    std::lock_guard<std::mutex> lock(other.mu_);
    entries_ = other.entries_;
}

StatRegistry &
StatRegistry::operator=(const StatRegistry &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(mu_, other.mu_);
    entries_ = other.entries_;
    return *this;
}

std::size_t
StatRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
StatRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
}

void
StatRegistry::merge(const StatRegistry &other)
{
    if (&other == this) {
        // Self-merge would double every counter; treat as a no-op
        // bug guard rather than deadlocking on one mutex twice.
        UNISTC_PANIC("StatRegistry::merge with itself");
    }
    std::scoped_lock lock(mu_, other.mu_);
    for (const auto &[name, theirs] : other.entries_) {
        const auto it = entries_.find(name);
        if (it == entries_.end()) {
            entries_[name] = theirs;
            continue;
        }
        Entry &ours = it->second;
        UNISTC_ASSERT(ours.kind == theirs.kind,
                      "stat kind mismatch merging '", name, "'");
        switch (ours.kind) {
          case StatKind::Counter:
            ours.c += theirs.c;
            break;
          case StatKind::Scalar:
            ours.d += theirs.d;
            break;
          case StatKind::Text:
            UNISTC_ASSERT(ours.s == theirs.s,
                          "conflicting text stat '", name, "': '",
                          ours.s, "' vs '", theirs.s, "'");
            break;
          case StatKind::Histogram:
            ours.h.merge(theirs.h);
            break;
        }
        if (ours.desc.empty())
            ours.desc = theirs.desc;
    }
}

void
StatRegistry::writeJson(std::ostream &os, int indent) const
{
    std::lock_guard<std::mutex> lock(mu_);
    JsonWriter w(os, indent);
    w.beginObject();
    for (const auto &[name, e] : entries_) {
        w.key(name);
        switch (e.kind) {
          case StatKind::Counter:
            w.value(e.c);
            break;
          case StatKind::Scalar:
            w.value(e.d);
            break;
          case StatKind::Text:
            w.value(e.s);
            break;
          case StatKind::Histogram:
            w.beginObject();
            w.key("lo");
            w.value(e.h.numBuckets() > 0 ? e.h.bucketLo(0) : 0.0);
            w.key("hi");
            w.value(e.h.numBuckets() > 0
                        ? e.h.bucketHi(e.h.numBuckets() - 1)
                        : 0.0);
            w.key("total");
            w.value(e.h.totalCount());
            // Keep NaN-free histograms byte-identical to the v1
            // layout; the overflow tally only appears when nonzero.
            if (e.h.nanCount() > 0) {
                w.key("nan");
                w.value(e.h.nanCount());
            }
            w.key("counts");
            w.beginArray();
            for (int b = 0; b < e.h.numBuckets(); ++b)
                w.value(e.h.bucketCount(b));
            w.endArray();
            w.endObject();
            break;
        }
    }
    w.endObject();
}

} // namespace unistc
