#include "obs/trace.hh"

#include <fstream>
#include <utility>

#include "common/logging.hh"
#include "obs/json_writer.hh"

namespace unistc
{

const char *
toString(TraceTrack track)
{
    switch (track) {
      case TraceTrack::Runner:
        return "runner";
      case TraceTrack::Tms:
        return "TMS";
      case TraceTrack::Dpg:
        return "DPG";
      case TraceTrack::Sdpu:
        return "SDPU";
      case TraceTrack::Memory:
        return "memory";
      case TraceTrack::Cache:
        return "cache";
    }
    return "?";
}

TraceSink::TraceSink(std::size_t capacity)
{
    UNISTC_ASSERT(capacity > 0, "trace ring needs capacity > 0");
    ring_.resize(capacity);
}

void
TraceSink::setProcess(int pid, const std::string &name)
{
    pid_ = pid;
    processNames_[pid] = name;
}

void
TraceSink::push(TraceEvent e)
{
    ring_[head_] = std::move(e);
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size())
        ++size_;
    ++recorded_;
}

void
TraceSink::mergeFrom(const TraceSink &other)
{
    for (auto &e : other.events())
        push(std::move(e));
    for (const auto &[pid, name] : other.processNames_)
        processNames_[pid] = name;
    // Events the source ring already overwrote are still "recorded":
    // keep dropped() = recorded() - size() consistent after a merge.
    recorded_ += other.dropped();
    unbalanced_ += other.unbalanced_;
}

void
TraceSink::begin(TraceTrack track, std::string name, std::uint64_t ts)
{
    if (!enabled_)
        return;
    stacks_[{pid_, static_cast<int>(track)}].push_back(
        {std::move(name), ts});
}

void
TraceSink::end(TraceTrack track, std::uint64_t ts)
{
    if (!enabled_)
        return;
    auto &stack = stacks_[{pid_, static_cast<int>(track)}];
    if (stack.empty()) {
        ++unbalanced_;
        return;
    }
    OpenSpan span = std::move(stack.back());
    stack.pop_back();
    TraceEvent e;
    e.phase = 'X';
    e.pid = pid_;
    e.tid = static_cast<int>(track);
    e.ts = span.ts;
    e.dur = ts >= span.ts ? ts - span.ts : 0;
    e.name = std::move(span.name);
    push(std::move(e));
}

void
TraceSink::complete(TraceTrack track, std::string name,
                    std::uint64_t ts, std::uint64_t dur)
{
    if (!enabled_)
        return;
    TraceEvent e;
    e.phase = 'X';
    e.pid = pid_;
    e.tid = static_cast<int>(track);
    e.ts = ts;
    e.dur = dur;
    e.name = std::move(name);
    push(std::move(e));
}

void
TraceSink::instant(TraceTrack track, std::string name,
                   std::uint64_t ts)
{
    if (!enabled_)
        return;
    TraceEvent e;
    e.phase = 'i';
    e.pid = pid_;
    e.tid = static_cast<int>(track);
    e.ts = ts;
    e.name = std::move(name);
    push(std::move(e));
}

void
TraceSink::counter(std::string name, std::uint64_t ts, double value)
{
    if (!enabled_)
        return;
    TraceEvent e;
    e.phase = 'C';
    e.pid = pid_;
    e.tid = 0;
    e.ts = ts;
    e.name = std::move(name);
    e.value = value;
    push(std::move(e));
}

int
TraceSink::openSpans() const
{
    int open = 0;
    for (const auto &[key, stack] : stacks_)
        open += static_cast<int>(stack.size());
    return open;
}

std::vector<TraceEvent>
TraceSink::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(size_);
    // Oldest event sits at head_ once the ring has wrapped.
    const std::size_t start =
        size_ < ring_.size() ? 0 : head_;
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

void
TraceSink::writeChromeTrace(std::ostream &os) const
{
    JsonWriter w(os, /*indent=*/0);
    w.beginObject();
    w.key("displayTimeUnit");
    w.value("ms");
    w.key("otherData");
    w.beginObject();
    w.key("generator");
    w.value("unistc-tracer");
    w.key("timeUnit");
    w.value("cycles");
    w.key("eventsRecorded");
    w.value(recorded());
    w.key("eventsDropped");
    w.value(dropped());
    w.endObject();
    w.key("traceEvents");
    w.beginArray();

    // Metadata: process names (one per model) and track names.
    for (const auto &[pid, name] : processNames_) {
        w.beginObject();
        w.key("ph");
        w.value("M");
        w.key("pid");
        w.value(pid);
        w.key("tid");
        w.value(0);
        w.key("name");
        w.value("process_name");
        w.key("args");
        w.beginObject();
        w.key("name");
        w.value(name);
        w.endObject();
        w.endObject();
        for (const TraceTrack track :
             {TraceTrack::Runner, TraceTrack::Tms, TraceTrack::Dpg,
              TraceTrack::Sdpu, TraceTrack::Memory,
              TraceTrack::Cache}) {
            w.beginObject();
            w.key("ph");
            w.value("M");
            w.key("pid");
            w.value(pid);
            w.key("tid");
            w.value(static_cast<int>(track));
            w.key("name");
            w.value("thread_name");
            w.key("args");
            w.beginObject();
            w.key("name");
            w.value(toString(track));
            w.endObject();
            w.endObject();
        }
    }

    for (const TraceEvent &e : events()) {
        w.beginObject();
        w.key("ph");
        w.value(std::string(1, e.phase));
        w.key("pid");
        w.value(e.pid);
        w.key("tid");
        w.value(e.tid);
        w.key("ts");
        w.value(e.ts);
        if (e.phase == 'X') {
            w.key("dur");
            w.value(e.dur);
        }
        w.key("name");
        w.value(e.name);
        if (e.phase == 'i') {
            // Instant scope: thread.
            w.key("s");
            w.value("t");
        }
        if (e.phase == 'C') {
            w.key("args");
            w.beginObject();
            w.key("value");
            w.value(e.value);
            w.endObject();
        }
        w.endObject();
    }

    w.endArray();
    w.endObject();
    os << '\n';
}

void
TraceSink::writeChromeTraceFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        UNISTC_FATAL("cannot open trace output file '", path, "'");
    writeChromeTrace(os);
    if (!os.good())
        UNISTC_FATAL("error writing trace file '", path, "'");
}

} // namespace unistc
