/**
 * @file
 * Minimal recursive-descent JSON parser — the read-side counterpart
 * of JsonWriter. Parses the subset this repo emits (objects, arrays,
 * strings, numbers, booleans, null) into a small DOM and decodes the
 * writer's double policy: quoted "nan" / "inf" / "-inf" sentinels
 * come back as the original non-finite values via doubleValue().
 *
 * Consumers: the json round-trip regression tests, and unistc_query
 * reading committed BENCH_*.json baselines (docs/WAREHOUSE.md).
 * Errors are typed (robust/status.hh) with line/column context —
 * never asserts on malformed input.
 */

#ifndef UNISTC_OBS_JSON_READER_HH
#define UNISTC_OBS_JSON_READER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "robust/status.hh"

namespace unistc
{

/** One parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }

    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; assert on kind mismatch (use is*() first). */
    bool boolean() const;
    double number() const;
    const std::string &string() const;
    const std::vector<JsonValue> &array() const;

    /** Object members in document order (duplicate keys kept). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /** First member named @p key, or null when absent. */
    const JsonValue *find(const std::string &key) const;

    /**
     * The value as a double under the writer's policy: a plain number
     * parses directly, and the quoted sentinels "nan" / "inf" /
     * "-inf" decode to NaN / +Inf / -Inf. False when the value is
     * neither (callers see a typed mismatch, not a silent 0.0).
     */
    bool doubleValue(double *out) const;

    /** number() narrowed to uint64; false on lossy conversion. */
    bool counterValue(std::uint64_t *out) const;

    // Construction is internal to the parser but public for tests.
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double d);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> members);

  private:
    Kind kind_ = Kind::Null;
    bool b_ = false;
    double d_ = 0.0;
    std::string s_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage rejected). @p label names the source in errors.
 */
Result<JsonValue> parseJson(const std::string &text,
                            const std::string &label = "<json>");

/** parseJson() over the contents of @p path. */
Result<JsonValue> parseJsonFile(const std::string &path);

} // namespace unistc

#endif // UNISTC_OBS_JSON_READER_HH
