/**
 * @file
 * Structured pipeline event tracer. Components record spans (begin/
 * end or complete), instant events and counter samples against a
 * virtual clock measured in simulated cycles; the sink keeps them in
 * a bounded ring buffer (oldest events are overwritten, never
 * reallocating on the hot path) and serialises to Chrome trace-event
 * JSON loadable in Perfetto / chrome://tracing (1 "us" in the UI =
 * 1 simulated cycle).
 *
 * Tracing is zero-cost when off: every instrumentation site goes
 * through the UNISTC_TRACE_* macros, which compile to nothing when
 * UNISTC_TRACING_ENABLED is 0 and reduce to a null-pointer test when
 * no sink is attached (the common case). Events are grouped into
 * per-stage tracks (Chrome "threads") and per-model processes.
 */

#ifndef UNISTC_OBS_TRACE_HH
#define UNISTC_OBS_TRACE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace unistc
{

/** Pipeline stages, one trace track ("thread") each. */
enum class TraceTrack : int
{
    Runner = 0, ///< Kernel runner: T1 task issue (Algorithms 1/2).
    Tms = 1,    ///< Stage 1: TMS T3 task generation.
    Dpg = 2,    ///< Stage 2: DPG T4 expansion.
    Sdpu = 3,   ///< Stage 3: SDPU segment execution / write-back.
    Memory = 4, ///< Off-chip memory model events.
    Cache = 5,  ///< Matrix artifact cache key resolutions.
};

/** Printable track name (shown as the Perfetto thread name). */
const char *toString(TraceTrack track);

/** One recorded trace event. */
struct TraceEvent
{
    char phase = 'i';      ///< 'X' complete, 'i' instant, 'C' counter.
    int pid = 0;           ///< Process id (one per traced model).
    int tid = 0;           ///< Track id (TraceTrack).
    std::uint64_t ts = 0;  ///< Start timestamp in cycles.
    std::uint64_t dur = 0; ///< Duration in cycles ('X' only).
    std::string name;
    double value = 0.0;    ///< Counter sample ('C' only).
};

/**
 * Bounded event sink. Not thread-safe (the simulator is single-
 * threaded); all timestamps are supplied by the caller in simulated
 * cycles.
 */
class TraceSink
{
  public:
    static constexpr std::size_t kDefaultCapacity = std::size_t{1}
                                                    << 16;

    explicit TraceSink(std::size_t capacity = kDefaultCapacity);

    /** Runtime guard; a disabled sink records nothing. */
    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /**
     * Switch the current process (one per traced model) and record
     * its display name. Subsequent events carry @p pid.
     */
    void setProcess(int pid, const std::string &name);

    /** Open a span on @p track (spans may nest per track). */
    void begin(TraceTrack track, std::string name, std::uint64_t ts);

    /**
     * Close the innermost open span on @p track, emitting one 'X'
     * event. An end without a matching begin is counted (see
     * unbalanced()) and otherwise ignored.
     */
    void end(TraceTrack track, std::uint64_t ts);

    /** Emit a complete span in one call. */
    void complete(TraceTrack track, std::string name, std::uint64_t ts,
                  std::uint64_t dur);

    /** Emit an instant event. */
    void instant(TraceTrack track, std::string name, std::uint64_t ts);

    /** Emit a counter sample (rendered as a track graph). */
    void counter(std::string name, std::uint64_t ts, double value);

    /** Events currently held (<= capacity). */
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return ring_.size(); }

    /** Total events recorded over the sink's lifetime. */
    std::uint64_t recorded() const { return recorded_; }

    /** Events overwritten by ring wraparound. */
    std::uint64_t dropped() const { return recorded_ - size_; }

    /** end() calls that found no open span. */
    std::uint64_t unbalanced() const { return unbalanced_; }

    /** Spans begun but not yet ended, across all tracks. */
    int openSpans() const;

    /** Held events, oldest first. */
    std::vector<TraceEvent> events() const;

    /**
     * Append another sink's held events (oldest first) and process
     * names into this sink, preserving their pid/tid/timestamps.
     * Dropped and unbalanced tallies carry over so merged health
     * counters stay truthful. Used by the sweep executor to fold
     * per-job trace buffers together in submission order at the
     * barrier; like every other member it must not race with
     * concurrent writers.
     */
    void mergeFrom(const TraceSink &other);

    /** Serialise to Chrome trace-event JSON. */
    void writeChromeTrace(std::ostream &os) const;

    /** writeChromeTrace() to @p path; fatal() on I/O failure. */
    void writeChromeTraceFile(const std::string &path) const;

  private:
    void push(TraceEvent e);

    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0; ///< Next write slot.
    std::size_t size_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t unbalanced_ = 0;
    bool enabled_ = true;
    int pid_ = 0;
    std::map<int, std::string> processNames_;

    struct OpenSpan
    {
        std::string name;
        std::uint64_t ts;
    };
    /** Open-span stacks keyed by (pid, track). */
    std::map<std::pair<int, int>, std::vector<OpenSpan>> stacks_;
};

} // namespace unistc

/**
 * Compile-time switch: define UNISTC_TRACING_ENABLED=0 to compile all
 * trace sites out entirely (the runtime null-check is already ~free,
 * so the default build keeps them).
 */
#ifndef UNISTC_TRACING_ENABLED
#define UNISTC_TRACING_ENABLED 1
#endif

#if UNISTC_TRACING_ENABLED

/** True when @p sink is attached and recording. */
#define UNISTC_TRACE_ACTIVE(sink) \
    ((sink) != nullptr && (sink)->enabled())

#define UNISTC_TRACE_BEGIN(sink, track, name, ts) \
    do { \
        if (UNISTC_TRACE_ACTIVE(sink)) \
            (sink)->begin((track), (name), (ts)); \
    } while (0)

#define UNISTC_TRACE_END(sink, track, ts) \
    do { \
        if (UNISTC_TRACE_ACTIVE(sink)) \
            (sink)->end((track), (ts)); \
    } while (0)

#define UNISTC_TRACE_COMPLETE(sink, track, name, ts, dur) \
    do { \
        if (UNISTC_TRACE_ACTIVE(sink)) \
            (sink)->complete((track), (name), (ts), (dur)); \
    } while (0)

#define UNISTC_TRACE_INSTANT(sink, track, name, ts) \
    do { \
        if (UNISTC_TRACE_ACTIVE(sink)) \
            (sink)->instant((track), (name), (ts)); \
    } while (0)

#define UNISTC_TRACE_COUNTER(sink, name, ts, value) \
    do { \
        if (UNISTC_TRACE_ACTIVE(sink)) \
            (sink)->counter((name), (ts), (value)); \
    } while (0)

#else // !UNISTC_TRACING_ENABLED

#define UNISTC_TRACE_ACTIVE(sink) (false)
#define UNISTC_TRACE_BEGIN(sink, track, name, ts) ((void)0)
#define UNISTC_TRACE_END(sink, track, ts) ((void)0)
#define UNISTC_TRACE_COMPLETE(sink, track, name, ts, dur) ((void)0)
#define UNISTC_TRACE_INSTANT(sink, track, name, ts) ((void)0)
#define UNISTC_TRACE_COUNTER(sink, name, ts, value) ((void)0)

#endif // UNISTC_TRACING_ENABLED

#endif // UNISTC_OBS_TRACE_HH
