/**
 * @file
 * Compressed Sparse Column matrix; used where column access dominates
 * (outer-product baselines gather columns of A).
 */

#ifndef UNISTC_SPARSE_CSC_HH
#define UNISTC_SPARSE_CSC_HH

#include <cstdint>
#include <vector>

namespace unistc
{

/** CSC matrix mirroring CsrMatrix's layout, per column. */
class CscMatrix
{
  public:
    CscMatrix() = default;

    /** Empty (all-zero) matrix of the given shape. */
    CscMatrix(int rows, int cols);

    /** Construct from raw arrays (validated). */
    CscMatrix(int rows, int cols, std::vector<std::int64_t> col_ptr,
              std::vector<int> row_idx, std::vector<double> vals);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    std::int64_t nnz() const
    {
        return colPtr_.empty() ? 0 : colPtr_.back();
    }

    const std::vector<std::int64_t> &colPtr() const { return colPtr_; }
    const std::vector<int> &rowIdx() const { return rowIdx_; }
    const std::vector<double> &vals() const { return vals_; }

    /** Number of nonzeros in column @p c. */
    std::int64_t colNnz(int c) const
    {
        return colPtr_[c + 1] - colPtr_[c];
    }

    /** Abort if the structure is inconsistent or indices unsorted. */
    void validate() const;

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<std::int64_t> colPtr_{0};
    std::vector<int> rowIdx_;
    std::vector<double> vals_;
};

} // namespace unistc

#endif // UNISTC_SPARSE_CSC_HH
