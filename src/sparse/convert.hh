/**
 * @file
 * Conversions between the sparse formats. All conversions are exact
 * (structure and values) and validated; round-trips are covered by the
 * format tests.
 */

#ifndef UNISTC_SPARSE_CONVERT_HH
#define UNISTC_SPARSE_CONVERT_HH

#include "sparse/bsr.hh"
#include "sparse/coo.hh"
#include "sparse/csc.hh"
#include "sparse/csr.hh"
#include "sparse/dense.hh"

namespace unistc
{

/** COO (normalised internally) to CSR. */
CsrMatrix cooToCsr(CooMatrix coo);

/** CSR to COO (already sorted row-major). */
CooMatrix csrToCoo(const CsrMatrix &csr);

/** CSR to CSC (exact transpose of the index structure). */
CscMatrix csrToCsc(const CsrMatrix &csr);

/** CSC back to CSR. */
CsrMatrix cscToCsr(const CscMatrix &csc);

/** Structural + numerical transpose. */
CsrMatrix transposeCsr(const CsrMatrix &csr);

/** CSR to BSR with square blocks of @p block_size. */
BsrMatrix csrToBsr(const CsrMatrix &csr, int block_size);

/** BSR back to CSR (drops stored-zero fill). */
CsrMatrix bsrToCsr(const BsrMatrix &bsr);

/** CSR to dense. */
DenseMatrix csrToDense(const CsrMatrix &csr);

/** Dense to CSR keeping exact nonzeros. */
CsrMatrix denseToCsr(const DenseMatrix &dense);

} // namespace unistc

#endif // UNISTC_SPARSE_CONVERT_HH
