/**
 * @file
 * Compressed Sparse Row matrix — the repository's working format for
 * reference kernels and the source format for BBC construction.
 */

#ifndef UNISTC_SPARSE_CSR_HH
#define UNISTC_SPARSE_CSR_HH

#include <cstdint>
#include <vector>

namespace unistc
{

/** CSR matrix with 64-bit row pointers and 32-bit column indices. */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /** Empty (all-zero) matrix of the given shape. */
    CsrMatrix(int rows, int cols);

    /** Construct from raw arrays (validated). */
    CsrMatrix(int rows, int cols, std::vector<std::int64_t> row_ptr,
              std::vector<int> col_idx, std::vector<double> vals);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    std::int64_t nnz() const
    {
        return rowPtr_.empty() ? 0 : rowPtr_.back();
    }

    const std::vector<std::int64_t> &rowPtr() const { return rowPtr_; }
    const std::vector<int> &colIdx() const { return colIdx_; }
    const std::vector<double> &vals() const { return vals_; }
    std::vector<double> &vals() { return vals_; }

    /** Number of nonzeros in row @p r. */
    std::int64_t rowNnz(int r) const
    {
        return rowPtr_[r + 1] - rowPtr_[r];
    }

    /** Value at (r, c); 0 when structurally absent (binary search). */
    double at(int r, int c) const;

    /** Density nnz / (rows*cols); 0 for an empty shape. */
    double density() const;

    /**
     * Storage footprint in bytes with 4-byte column indices, 8-byte
     * row pointers and 8-byte FP64 values (Fig. 15 accounting).
     */
    std::uint64_t storageBytes() const;

    /** Abort if the structure is inconsistent or indices unsorted. */
    void validate() const;

    /** Structural + numerical equality within @p tol. */
    bool approxEquals(const CsrMatrix &other, double tol = 1e-9) const;

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<std::int64_t> rowPtr_{0};
    std::vector<int> colIdx_;
    std::vector<double> vals_;
};

} // namespace unistc

#endif // UNISTC_SPARSE_CSR_HH
