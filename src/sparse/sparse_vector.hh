/**
 * @file
 * Sparse vector (sorted index/value pairs) — the x operand of SpMSpV
 * and the frontier representation of the BFS example.
 */

#ifndef UNISTC_SPARSE_SPARSE_VECTOR_HH
#define UNISTC_SPARSE_SPARSE_VECTOR_HH

#include <cstdint>
#include <vector>

namespace unistc
{

/** Sorted sparse vector of doubles. */
class SparseVector
{
  public:
    SparseVector() = default;

    /** Empty vector of dimension @p size. */
    explicit SparseVector(int size);

    /** Construct from parallel arrays; sorted and validated. */
    SparseVector(int size, std::vector<int> idx,
                 std::vector<double> vals);

    int size() const { return size_; }
    std::int64_t nnz() const
    {
        return static_cast<std::int64_t>(idx_.size());
    }

    const std::vector<int> &idx() const { return idx_; }
    const std::vector<double> &vals() const { return vals_; }

    /** Append an entry with index greater than all existing ones. */
    void push(int index, double val);

    /** Expand into a dense vector of length size(). */
    std::vector<double> toDense() const;

    /** Build from a dense vector, keeping exact nonzeros. */
    static SparseVector fromDense(const std::vector<double> &dense);

    /** Abort if indices are out of range or unsorted. */
    void validate() const;

  private:
    int size_ = 0;
    std::vector<int> idx_;
    std::vector<double> vals_;
};

} // namespace unistc

#endif // UNISTC_SPARSE_SPARSE_VECTOR_HH
