/**
 * @file
 * Coordinate-list (COO) sparse matrix. The assembly format: generators
 * and the Matrix Market reader produce COO, which is then converted to
 * CSR for everything else.
 */

#ifndef UNISTC_SPARSE_COO_HH
#define UNISTC_SPARSE_COO_HH

#include <cstdint>
#include <vector>

namespace unistc
{

/** One nonzero element. */
struct CooEntry
{
    int row = 0;
    int col = 0;
    double val = 0.0;
};

/** Unordered triplet matrix. Duplicates are summed on normalize(). */
class CooMatrix
{
  public:
    CooMatrix() = default;

    /** Empty matrix of the given shape. */
    CooMatrix(int rows, int cols);

    /** Append one entry (no bounds/duplicate checking until normalize). */
    void add(int row, int col, double val);

    /**
     * Sort entries row-major, sum duplicates and drop explicit zeros.
     * Afterwards entries() is strictly ordered.
     */
    void normalize();

    /** Abort if any entry is out of bounds. */
    void validate() const;

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    std::int64_t nnz() const
    {
        return static_cast<std::int64_t>(entries_.size());
    }

    const std::vector<CooEntry> &entries() const { return entries_; }
    std::vector<CooEntry> &entries() { return entries_; }

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<CooEntry> entries_;
};

} // namespace unistc

#endif // UNISTC_SPARSE_COO_HH
