#include "sparse/convert.hh"

#include <map>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unistc
{

CsrMatrix
cooToCsr(CooMatrix coo)
{
    coo.normalize();
    const int rows = coo.rows();
    const int cols = coo.cols();
    std::vector<std::int64_t> row_ptr(rows + 1, 0);
    std::vector<int> col_idx;
    std::vector<double> vals;
    col_idx.reserve(coo.entries().size());
    vals.reserve(coo.entries().size());
    for (const auto &e : coo.entries())
        ++row_ptr[e.row + 1];
    for (int r = 0; r < rows; ++r)
        row_ptr[r + 1] += row_ptr[r];
    for (const auto &e : coo.entries()) {
        col_idx.push_back(e.col);
        vals.push_back(e.val);
    }
    return CsrMatrix(rows, cols, std::move(row_ptr),
                     std::move(col_idx), std::move(vals));
}

CooMatrix
csrToCoo(const CsrMatrix &csr)
{
    CooMatrix coo(csr.rows(), csr.cols());
    for (int r = 0; r < csr.rows(); ++r) {
        for (std::int64_t i = csr.rowPtr()[r]; i < csr.rowPtr()[r + 1];
             ++i) {
            coo.add(r, csr.colIdx()[i], csr.vals()[i]);
        }
    }
    return coo;
}

CscMatrix
csrToCsc(const CsrMatrix &csr)
{
    const int rows = csr.rows();
    const int cols = csr.cols();
    std::vector<std::int64_t> col_ptr(cols + 1, 0);
    for (int c : csr.colIdx())
        ++col_ptr[c + 1];
    for (int c = 0; c < cols; ++c)
        col_ptr[c + 1] += col_ptr[c];
    std::vector<int> row_idx(csr.nnz());
    std::vector<double> vals(csr.nnz());
    std::vector<std::int64_t> cursor(col_ptr.begin(),
                                     col_ptr.end() - 1);
    for (int r = 0; r < rows; ++r) {
        for (std::int64_t i = csr.rowPtr()[r]; i < csr.rowPtr()[r + 1];
             ++i) {
            const int c = csr.colIdx()[i];
            const std::int64_t pos = cursor[c]++;
            row_idx[pos] = r;
            vals[pos] = csr.vals()[i];
        }
    }
    return CscMatrix(rows, cols, std::move(col_ptr),
                     std::move(row_idx), std::move(vals));
}

CsrMatrix
cscToCsr(const CscMatrix &csc)
{
    CooMatrix coo(csc.rows(), csc.cols());
    for (int c = 0; c < csc.cols(); ++c) {
        for (std::int64_t i = csc.colPtr()[c]; i < csc.colPtr()[c + 1];
             ++i) {
            coo.add(csc.rowIdx()[i], c, csc.vals()[i]);
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
transposeCsr(const CsrMatrix &csr)
{
    const CscMatrix csc = csrToCsc(csr);
    // A CSC of A has exactly the CSR layout of A^T.
    return CsrMatrix(csr.cols(), csr.rows(), csc.colPtr(),
                     csc.rowIdx(), csc.vals());
}

BsrMatrix
csrToBsr(const CsrMatrix &csr, int block_size)
{
    BsrMatrix bsr(csr.rows(), csr.cols(), block_size);
    const int bs = block_size;
    const int brows = bsr.blockRows();

    // Pass 1: discover nonzero blocks per block row.
    std::vector<std::map<int, std::vector<double>>> block_rows(brows);
    for (int r = 0; r < csr.rows(); ++r) {
        const int br = r / bs;
        for (std::int64_t i = csr.rowPtr()[r]; i < csr.rowPtr()[r + 1];
             ++i) {
            const int c = csr.colIdx()[i];
            const int bc = c / bs;
            auto &blk = block_rows[br][bc];
            if (blk.empty())
                blk.assign(static_cast<std::size_t>(bs) * bs, 0.0);
            blk[(r % bs) * bs + (c % bs)] = csr.vals()[i];
        }
    }

    // Pass 2: flatten into BSR arrays.
    std::vector<std::int64_t> block_row_ptr(brows + 1, 0);
    std::vector<int> block_col_idx;
    std::vector<double> vals;
    for (int br = 0; br < brows; ++br) {
        block_row_ptr[br + 1] = block_row_ptr[br] +
            static_cast<std::int64_t>(block_rows[br].size());
        for (auto &[bc, blk] : block_rows[br]) {
            block_col_idx.push_back(bc);
            vals.insert(vals.end(), blk.begin(), blk.end());
        }
    }
    bsr.assign(std::move(block_row_ptr), std::move(block_col_idx),
               std::move(vals));
    return bsr;
}

CsrMatrix
bsrToCsr(const BsrMatrix &bsr)
{
    CooMatrix coo(bsr.rows(), bsr.cols());
    const int bs = bsr.blockSize();
    for (int br = 0; br < bsr.blockRows(); ++br) {
        for (std::int64_t i = bsr.blockRowPtr()[br];
             i < bsr.blockRowPtr()[br + 1]; ++i) {
            const int bc = bsr.blockColIdx()[i];
            for (int lr = 0; lr < bs; ++lr) {
                for (int lc = 0; lc < bs; ++lc) {
                    const double v = bsr.vals()[i * bs * bs +
                                                lr * bs + lc];
                    if (v != 0.0)
                        coo.add(br * bs + lr, bc * bs + lc, v);
                }
            }
        }
    }
    return cooToCsr(std::move(coo));
}

DenseMatrix
csrToDense(const CsrMatrix &csr)
{
    DenseMatrix out(csr.rows(), csr.cols());
    for (int r = 0; r < csr.rows(); ++r) {
        for (std::int64_t i = csr.rowPtr()[r]; i < csr.rowPtr()[r + 1];
             ++i) {
            out.at(r, csr.colIdx()[i]) = csr.vals()[i];
        }
    }
    return out;
}

CsrMatrix
denseToCsr(const DenseMatrix &dense)
{
    CooMatrix coo(dense.rows(), dense.cols());
    for (int r = 0; r < dense.rows(); ++r) {
        for (int c = 0; c < dense.cols(); ++c) {
            if (dense.at(r, c) != 0.0)
                coo.add(r, c, dense.at(r, c));
        }
    }
    return cooToCsr(std::move(coo));
}

} // namespace unistc
