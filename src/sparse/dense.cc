#include "sparse/dense.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/logging.hh"

namespace unistc
{

DenseMatrix::DenseMatrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, 0.0)
{
    UNISTC_ASSERT(rows >= 0 && cols >= 0, "negative matrix shape");
}

bool
DenseMatrix::approxEquals(const DenseMatrix &other, double tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        const double scale =
            std::max({1.0, std::fabs(data_[i]),
                      std::fabs(other.data_[i])});
        if (std::fabs(data_[i] - other.data_[i]) > tol * scale)
            return false;
    }
    return true;
}

std::int64_t
DenseMatrix::countNonzeros() const
{
    std::int64_t n = 0;
    for (double v : data_) {
        if (v != 0.0)
            ++n;
    }
    return n;
}

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    UNISTC_ASSERT(a.size() == b.size(), "size mismatch in maxAbsDiff");
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

double
norm2(const std::vector<double> &v)
{
    double s = 0.0;
    for (double x : v)
        s += x * x;
    return std::sqrt(s);
}

} // namespace unistc
