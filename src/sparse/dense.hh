/**
 * @file
 * Dense row-major matrix and vector helpers, used as the gold standard
 * in tests and as the B/C operands of SpMM.
 */

#ifndef UNISTC_SPARSE_DENSE_HH
#define UNISTC_SPARSE_DENSE_HH

#include <cstdint>
#include <vector>

namespace unistc
{

/** Dense row-major matrix of doubles. */
class DenseMatrix
{
  public:
    DenseMatrix() = default;

    /** Zero-initialised rows x cols matrix. */
    DenseMatrix(int rows, int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    double &at(int r, int c) { return data_[idx(r, c)]; }
    double at(int r, int c) const { return data_[idx(r, c)]; }

    const std::vector<double> &data() const { return data_; }
    std::vector<double> &data() { return data_; }

    /** Element-wise approximate equality within @p tol (relative). */
    bool approxEquals(const DenseMatrix &other, double tol = 1e-9) const;

    /** Number of elements whose value is not exactly zero. */
    std::int64_t countNonzeros() const;

  private:
    std::size_t
    idx(int r, int c) const
    {
        return static_cast<std::size_t>(r) * cols_ + c;
    }

    int rows_ = 0;
    int cols_ = 0;
    std::vector<double> data_;
};

/** Max-norm distance between two equally sized vectors. */
double maxAbsDiff(const std::vector<double> &a,
                  const std::vector<double> &b);

/** Euclidean norm. */
double norm2(const std::vector<double> &v);

} // namespace unistc

#endif // UNISTC_SPARSE_DENSE_HH
