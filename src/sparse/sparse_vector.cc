#include "sparse/sparse_vector.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace unistc
{

SparseVector::SparseVector(int size) : size_(size)
{
    UNISTC_ASSERT(size >= 0, "negative vector size");
}

SparseVector::SparseVector(int size, std::vector<int> idx,
                           std::vector<double> vals)
    : size_(size), idx_(std::move(idx)), vals_(std::move(vals))
{
    UNISTC_ASSERT(idx_.size() == vals_.size(),
                  "idx/vals size mismatch");
    // Sort by index if the caller handed us unsorted data.
    if (!std::is_sorted(idx_.begin(), idx_.end())) {
        std::vector<std::size_t> perm(idx_.size());
        std::iota(perm.begin(), perm.end(), 0);
        std::sort(perm.begin(), perm.end(),
                  [&](std::size_t a, std::size_t b) {
                      return idx_[a] < idx_[b];
                  });
        std::vector<int> si(idx_.size());
        std::vector<double> sv(vals_.size());
        for (std::size_t i = 0; i < perm.size(); ++i) {
            si[i] = idx_[perm[i]];
            sv[i] = vals_[perm[i]];
        }
        idx_ = std::move(si);
        vals_ = std::move(sv);
    }
    validate();
}

void
SparseVector::push(int index, double val)
{
    UNISTC_ASSERT(idx_.empty() || idx_.back() < index,
                  "push index must be strictly increasing");
    UNISTC_ASSERT(index >= 0 && index < size_, "push index out of range");
    idx_.push_back(index);
    vals_.push_back(val);
}

std::vector<double>
SparseVector::toDense() const
{
    std::vector<double> out(size_, 0.0);
    for (std::size_t i = 0; i < idx_.size(); ++i)
        out[idx_[i]] = vals_[i];
    return out;
}

SparseVector
SparseVector::fromDense(const std::vector<double> &dense)
{
    SparseVector out(static_cast<int>(dense.size()));
    for (std::size_t i = 0; i < dense.size(); ++i) {
        if (dense[i] != 0.0)
            out.push(static_cast<int>(i), dense[i]);
    }
    return out;
}

void
SparseVector::validate() const
{
    for (std::size_t i = 0; i < idx_.size(); ++i) {
        UNISTC_ASSERT(idx_[i] >= 0 && idx_[i] < size_,
                      "sparse vector index out of range");
        if (i > 0) {
            UNISTC_ASSERT(idx_[i - 1] < idx_[i],
                          "sparse vector indices unsorted/duplicated");
        }
    }
}

} // namespace unistc
