#include "sparse/bsr.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unistc
{

BsrMatrix::BsrMatrix(int rows, int cols, int block_size)
    : rows_(rows), cols_(cols), blockSize_(block_size)
{
    UNISTC_ASSERT(rows >= 0 && cols >= 0, "negative matrix shape");
    UNISTC_ASSERT(block_size > 0, "block size must be positive");
    blockRows_ = static_cast<int>(ceilDiv(rows, block_size));
    blockCols_ = static_cast<int>(ceilDiv(cols, block_size));
    blockRowPtr_.assign(blockRows_ + 1, 0);
}

double
BsrMatrix::at(int r, int c) const
{
    UNISTC_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                  "at(", r, ",", c, ") out of bounds");
    const int br = r / blockSize_;
    const int bc = c / blockSize_;
    const auto begin = blockColIdx_.begin() + blockRowPtr_[br];
    const auto end = blockColIdx_.begin() + blockRowPtr_[br + 1];
    const auto it = std::lower_bound(begin, end, bc);
    if (it == end || *it != bc)
        return 0.0;
    const std::int64_t blk = it - blockColIdx_.begin();
    const int lr = r % blockSize_;
    const int lc = c % blockSize_;
    return vals_[blk * blockSize_ * blockSize_ + lr * blockSize_ + lc];
}

std::int64_t
BsrMatrix::logicalNnz() const
{
    std::int64_t n = 0;
    for (double v : vals_) {
        if (v != 0.0)
            ++n;
    }
    return n;
}

std::uint64_t
BsrMatrix::storageBytes() const
{
    return static_cast<std::uint64_t>(blockRowPtr_.size()) * 8 +
        static_cast<std::uint64_t>(blockColIdx_.size()) * 4 +
        static_cast<std::uint64_t>(vals_.size()) * 8;
}

void
BsrMatrix::validate() const
{
    UNISTC_ASSERT(static_cast<int>(blockRowPtr_.size()) ==
                  blockRows_ + 1, "blockRowPtr size mismatch");
    UNISTC_ASSERT(blockRowPtr_.front() == 0, "blockRowPtr must start 0");
    UNISTC_ASSERT(blockRowPtr_.back() ==
                  static_cast<std::int64_t>(blockColIdx_.size()),
                  "blockRowPtr back != block count");
    UNISTC_ASSERT(vals_.size() == blockColIdx_.size() *
                  static_cast<std::size_t>(blockSize_) * blockSize_,
                  "vals size != blocks * blockSize^2");
    for (int br = 0; br < blockRows_; ++br) {
        UNISTC_ASSERT(blockRowPtr_[br] <= blockRowPtr_[br + 1],
                      "blockRowPtr not monotone");
        for (std::int64_t i = blockRowPtr_[br];
             i < blockRowPtr_[br + 1]; ++i) {
            UNISTC_ASSERT(blockColIdx_[i] >= 0 &&
                          blockColIdx_[i] < blockCols_,
                          "block column out of bounds");
            if (i > blockRowPtr_[br]) {
                UNISTC_ASSERT(blockColIdx_[i - 1] < blockColIdx_[i],
                              "block columns unsorted in row ", br);
            }
        }
    }
}

void
BsrMatrix::assign(std::vector<std::int64_t> block_row_ptr,
                  std::vector<int> block_col_idx,
                  std::vector<double> vals)
{
    blockRowPtr_ = std::move(block_row_ptr);
    blockColIdx_ = std::move(block_col_idx);
    vals_ = std::move(vals);
    validate();
}

} // namespace unistc
