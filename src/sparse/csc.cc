#include "sparse/csc.hh"

#include "common/logging.hh"

namespace unistc
{

CscMatrix::CscMatrix(int rows, int cols)
    : rows_(rows), cols_(cols), colPtr_(cols + 1, 0)
{
    UNISTC_ASSERT(rows >= 0 && cols >= 0, "negative matrix shape");
}

CscMatrix::CscMatrix(int rows, int cols,
                     std::vector<std::int64_t> col_ptr,
                     std::vector<int> row_idx, std::vector<double> vals)
    : rows_(rows), cols_(cols), colPtr_(std::move(col_ptr)),
      rowIdx_(std::move(row_idx)), vals_(std::move(vals))
{
    validate();
}

void
CscMatrix::validate() const
{
    UNISTC_ASSERT(static_cast<int>(colPtr_.size()) == cols_ + 1,
                  "colPtr size mismatch");
    UNISTC_ASSERT(colPtr_.front() == 0, "colPtr must start at 0");
    UNISTC_ASSERT(rowIdx_.size() == vals_.size(),
                  "rowIdx/vals size mismatch");
    UNISTC_ASSERT(colPtr_.back() ==
                  static_cast<std::int64_t>(rowIdx_.size()),
                  "colPtr back != nnz");
    for (int c = 0; c < cols_; ++c) {
        UNISTC_ASSERT(colPtr_[c] <= colPtr_[c + 1],
                      "colPtr not monotone at column ", c);
        for (std::int64_t i = colPtr_[c]; i < colPtr_[c + 1]; ++i) {
            UNISTC_ASSERT(rowIdx_[i] >= 0 && rowIdx_[i] < rows_,
                          "row index out of bounds in column ", c);
            if (i > colPtr_[c]) {
                UNISTC_ASSERT(rowIdx_[i - 1] < rowIdx_[i],
                              "rows unsorted/duplicated in column ", c);
            }
        }
    }
}

} // namespace unistc
