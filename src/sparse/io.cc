#include "sparse/io.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sparse/convert.hh"

namespace unistc
{

namespace
{

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

} // namespace

CsrMatrix
readMatrixMarket(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line))
        UNISTC_FATAL("empty Matrix Market stream");

    std::istringstream hdr(line);
    std::string banner, object, format, field, symmetry;
    hdr >> banner >> object >> format >> field >> symmetry;
    if (banner != "%%MatrixMarket")
        UNISTC_FATAL("missing %%MatrixMarket banner");
    object = toLower(object);
    format = toLower(format);
    field = toLower(field);
    symmetry = toLower(symmetry);
    if (object != "matrix" || format != "coordinate")
        UNISTC_FATAL("only 'matrix coordinate' files are supported");
    if (field != "real" && field != "integer" && field != "pattern")
        UNISTC_FATAL("unsupported field type '", field, "'");
    if (symmetry != "general" && symmetry != "symmetric")
        UNISTC_FATAL("unsupported symmetry '", symmetry, "'");

    // Skip comments, then read the size line.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    std::istringstream size_line(line);
    long rows = 0, cols = 0, nnz = 0;
    size_line >> rows >> cols >> nnz;
    if (rows <= 0 || cols <= 0 || nnz < 0)
        UNISTC_FATAL("bad Matrix Market size line: '", line, "'");

    CooMatrix coo(static_cast<int>(rows), static_cast<int>(cols));
    const bool pattern = field == "pattern";
    const bool symmetric = symmetry == "symmetric";
    for (long k = 0; k < nnz; ++k) {
        if (!std::getline(in, line))
            UNISTC_FATAL("truncated Matrix Market file at entry ", k);
        std::istringstream es(line);
        long r = 0, c = 0;
        double v = 1.0;
        es >> r >> c;
        if (!pattern)
            es >> v;
        if (r < 1 || r > rows || c < 1 || c > cols)
            UNISTC_FATAL("entry out of bounds at line for entry ", k);
        coo.add(static_cast<int>(r - 1), static_cast<int>(c - 1), v);
        if (symmetric && r != c) {
            coo.add(static_cast<int>(c - 1), static_cast<int>(r - 1),
                    v);
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
readMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        UNISTC_FATAL("cannot open '", path, "' for reading");
    return readMatrixMarket(in);
}

void
writeMatrixMarket(std::ostream &out, const CsrMatrix &m)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
    out.precision(17);
    for (int r = 0; r < m.rows(); ++r) {
        for (std::int64_t i = m.rowPtr()[r]; i < m.rowPtr()[r + 1];
             ++i) {
            out << (r + 1) << " " << (m.colIdx()[i] + 1) << " "
                << m.vals()[i] << "\n";
        }
    }
}

void
writeMatrixMarketFile(const std::string &path, const CsrMatrix &m)
{
    std::ofstream out(path);
    if (!out)
        UNISTC_FATAL("cannot open '", path, "' for writing");
    writeMatrixMarket(out, m);
}

} // namespace unistc
