#include "sparse/io.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "robust/validate.hh"
#include "sparse/convert.hh"

namespace unistc
{

namespace
{

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

/** True when @p line holds nothing but whitespace. */
bool
isBlank(const std::string &line)
{
    return std::all_of(line.begin(), line.end(), [](unsigned char c) {
        return std::isspace(c);
    });
}

/**
 * Parse one whole token as a long long, rejecting trailing junk and
 * out-of-range magnitudes — `std::istream >> long` silently clamps
 * on overflow, which is exactly the bug this replaces.
 */
bool
parseInt64(const std::string &token, long long &out)
{
    if (token.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(token.c_str(), &end, 10);
    if (errno == ERANGE || end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

Status
parseFailure(const std::string &label, long line_no,
             const std::string &why, const std::string &line)
{
    std::ostringstream os;
    os << label << ":" << line_no << ": " << why;
    if (!line.empty())
        os << " in '" << line << "'";
    return parseError(os.str());
}

} // namespace

Result<CsrMatrix>
tryReadMatrixMarket(std::istream &in, const std::string &label)
{
    std::string line;
    long line_no = 1;
    if (!std::getline(in, line))
        return parseError(label + ": empty Matrix Market stream");

    std::istringstream hdr(line);
    std::string banner, object, format, field, symmetry;
    hdr >> banner >> object >> format >> field >> symmetry;
    if (banner != "%%MatrixMarket")
        return parseFailure(label, line_no,
                            "missing %%MatrixMarket banner", line);
    object = toLower(object);
    format = toLower(format);
    field = toLower(field);
    symmetry = toLower(symmetry);
    if (object != "matrix" || format != "coordinate") {
        return parseFailure(label, line_no,
                            "only 'matrix coordinate' files are "
                            "supported", line);
    }
    if (field != "real" && field != "integer" && field != "pattern") {
        return parseFailure(label, line_no,
                            "unsupported field type '" + field + "'",
                            "");
    }
    if (symmetry != "general" && symmetry != "symmetric") {
        return parseFailure(label, line_no,
                            "unsupported symmetry '" + symmetry + "'",
                            "");
    }

    // Skip comments, then read the size line.
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line[0] != '%')
            break;
    }
    std::istringstream size_line(line);
    std::string rows_tok, cols_tok, nnz_tok, extra_tok;
    size_line >> rows_tok >> cols_tok >> nnz_tok >> extra_tok;
    long long rows = 0, cols = 0, nnz = 0;
    if (!parseInt64(rows_tok, rows) || !parseInt64(cols_tok, cols) ||
        !parseInt64(nnz_tok, nnz) || !extra_tok.empty()) {
        return parseFailure(label, line_no,
                            "bad Matrix Market size line", line);
    }
    // Overflow-safe shape limits: dimensions must fit the int-based
    // CSR container, and nnz can never exceed rows*cols (which fits
    // in 64 bits since each factor fits in 32).
    constexpr long long kMaxDim = std::numeric_limits<int>::max();
    if (rows <= 0 || cols <= 0 || rows > kMaxDim || cols > kMaxDim) {
        return parseFailure(label, line_no,
                            "matrix dimensions out of range", line);
    }
    if (nnz < 0 || nnz > rows * cols) {
        return parseFailure(label, line_no,
                            "entry count out of range for a " +
                                std::to_string(rows) + "x" +
                                std::to_string(cols) + " matrix",
                            line);
    }

    CooMatrix coo(static_cast<int>(rows), static_cast<int>(cols));
    const bool pattern = field == "pattern";
    const bool symmetric = symmetry == "symmetric";
    for (long long k = 0; k < nnz; ++k) {
        if (!std::getline(in, line)) {
            return parseError(label + ": truncated file: entry " +
                              std::to_string(k + 1) + " of " +
                              std::to_string(nnz) + " missing");
        }
        ++line_no;
        std::istringstream es(line);
        std::string r_tok, c_tok, v_tok, junk_tok;
        es >> r_tok >> c_tok;
        long long r = 0, c = 0;
        double v = 1.0;
        if (!parseInt64(r_tok, r) || !parseInt64(c_tok, c))
            return parseFailure(label, line_no, "bad entry", line);
        if (!pattern) {
            es >> v_tok;
            errno = 0;
            char *end = nullptr;
            v = v_tok.empty()
                ? std::nan("")
                : std::strtod(v_tok.c_str(), &end);
            if (v_tok.empty() || end == nullptr || *end != '\0') {
                return parseFailure(label, line_no,
                                    "bad or missing value", line);
            }
            if (!std::isfinite(v)) {
                return parseFailure(label, line_no,
                                    "non-finite value", line);
            }
        }
        es >> junk_tok;
        if (!junk_tok.empty()) {
            return parseFailure(label, line_no,
                                "trailing tokens after entry", line);
        }
        if (r < 1 || r > rows || c < 1 || c > cols) {
            return parseFailure(label, line_no,
                                "entry (" + std::to_string(r) + ", " +
                                    std::to_string(c) +
                                    ") out of bounds", line);
        }
        coo.add(static_cast<int>(r - 1), static_cast<int>(c - 1), v);
        if (symmetric && r != c) {
            coo.add(static_cast<int>(c - 1), static_cast<int>(r - 1),
                    v);
        }
    }

    // Anything after the last entry must be blank — content here
    // means the size line lied or the file was concatenated.
    while (std::getline(in, line)) {
        ++line_no;
        if (!isBlank(line)) {
            return parseFailure(label, line_no,
                                "trailing garbage after the last "
                                "entry", line);
        }
    }

    // The coordinate format forbids duplicate entries; summing them
    // silently (what normalize() would do) masks corrupt writers.
    {
        std::vector<std::pair<int, int>> seen;
        seen.reserve(coo.entries().size());
        for (const CooEntry &e : coo.entries())
            seen.emplace_back(e.row, e.col);
        std::sort(seen.begin(), seen.end());
        const auto dup = std::adjacent_find(seen.begin(), seen.end());
        if (dup != seen.end()) {
            return corruptData(
                label + ": duplicate entry at (" +
                std::to_string(dup->first + 1) + ", " +
                std::to_string(dup->second + 1) + ")" +
                (symmetric ? " (after symmetric expansion)" : ""));
        }
    }

    CsrMatrix csr = cooToCsr(std::move(coo));
    if (Status s = validateCsr(csr, label); !s.ok())
        return s;
    return csr;
}

Result<CsrMatrix>
tryReadMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return ioError("cannot open '" + path + "' for reading");
    return tryReadMatrixMarket(in, path);
}

CsrMatrix
readMatrixMarket(std::istream &in)
{
    return tryReadMatrixMarket(in).value();
}

CsrMatrix
readMatrixMarketFile(const std::string &path)
{
    return tryReadMatrixMarketFile(path).value();
}

void
writeMatrixMarket(std::ostream &out, const CsrMatrix &m)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
    out.precision(17);
    for (int r = 0; r < m.rows(); ++r) {
        for (std::int64_t i = m.rowPtr()[r]; i < m.rowPtr()[r + 1];
             ++i) {
            out << (r + 1) << " " << (m.colIdx()[i] + 1) << " "
                << m.vals()[i] << "\n";
        }
    }
}

void
writeMatrixMarketFile(const std::string &path, const CsrMatrix &m)
{
    std::ofstream out(path);
    if (!out)
        UNISTC_FATAL("cannot open '", path, "' for writing");
    writeMatrixMarket(out, m);
}

} // namespace unistc
