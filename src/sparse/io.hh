/**
 * @file
 * Matrix Market (.mtx) reader/writer. Supports the coordinate format
 * with real/integer/pattern fields and general/symmetric symmetry —
 * enough to load any SuiteSparse matrix a user drops into the corpus.
 */

#ifndef UNISTC_SPARSE_IO_HH
#define UNISTC_SPARSE_IO_HH

#include <iosfwd>
#include <string>

#include "sparse/csr.hh"

namespace unistc
{

/** Parse a Matrix Market stream into CSR. Aborts via fatal() on error. */
CsrMatrix readMatrixMarket(std::istream &in);

/** Load a .mtx file. */
CsrMatrix readMatrixMarketFile(const std::string &path);

/** Write CSR as "coordinate real general" Matrix Market. */
void writeMatrixMarket(std::ostream &out, const CsrMatrix &m);

/** Save a .mtx file. */
void writeMatrixMarketFile(const std::string &path, const CsrMatrix &m);

} // namespace unistc

#endif // UNISTC_SPARSE_IO_HH
