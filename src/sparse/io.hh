/**
 * @file
 * Matrix Market (.mtx) reader/writer. Supports the coordinate format
 * with real/integer/pattern fields and general/symmetric symmetry —
 * enough to load any SuiteSparse matrix a user drops into the corpus.
 *
 * The parser is defensive (docs/ROBUSTNESS.md): overflow-safe
 * dimension parsing, per-entry bounds and finiteness checks,
 * duplicate-entry rejection, truncation and trailing-garbage
 * detection — every failure is a typed error naming the offending
 * line. The try* functions return Result/Status and never
 * terminate; the classic wrappers raise() (throw or exit, per
 * FatalBehavior) on failure.
 */

#ifndef UNISTC_SPARSE_IO_HH
#define UNISTC_SPARSE_IO_HH

#include <iosfwd>
#include <string>

#include "robust/status.hh"
#include "sparse/csr.hh"

namespace unistc
{

/**
 * Parse a Matrix Market stream into CSR; @p label names the source
 * in error messages. Returns a typed error on malformed input.
 */
Result<CsrMatrix> tryReadMatrixMarket(std::istream &in,
                                      const std::string &label =
                                          "<stream>");

/** Load a .mtx file with full input validation. */
Result<CsrMatrix> tryReadMatrixMarketFile(const std::string &path);

/** Parse a Matrix Market stream into CSR; raise()s on error. */
CsrMatrix readMatrixMarket(std::istream &in);

/** Load a .mtx file; raise()s on error. */
CsrMatrix readMatrixMarketFile(const std::string &path);

/** Write CSR as "coordinate real general" Matrix Market. */
void writeMatrixMarket(std::ostream &out, const CsrMatrix &m);

/** Save a .mtx file. */
void writeMatrixMarketFile(const std::string &path, const CsrMatrix &m);

} // namespace unistc

#endif // UNISTC_SPARSE_IO_HH
