/**
 * @file
 * Block Sparse Row matrix with dense square blocks. Included primarily
 * for the Fig. 15 storage comparison (BSR 4x4 and BSR 16x16 vs BBC),
 * and usable as a conversion target.
 */

#ifndef UNISTC_SPARSE_BSR_HH
#define UNISTC_SPARSE_BSR_HH

#include <cstdint>
#include <vector>

namespace unistc
{

/** BSR matrix: CSR over block coordinates, dense blockSize^2 blocks. */
class BsrMatrix
{
  public:
    BsrMatrix() = default;

    /** Empty matrix; logical shape rows x cols, blocks of block_size. */
    BsrMatrix(int rows, int cols, int block_size);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int blockSize() const { return blockSize_; }
    int blockRows() const { return blockRows_; }
    int blockCols() const { return blockCols_; }

    std::int64_t numBlocks() const
    {
        return blockRowPtr_.empty() ? 0 : blockRowPtr_.back();
    }

    const std::vector<std::int64_t> &blockRowPtr() const
    {
        return blockRowPtr_;
    }
    const std::vector<int> &blockColIdx() const { return blockColIdx_; }

    /** Dense block storage, numBlocks * blockSize^2, row-major blocks. */
    const std::vector<double> &vals() const { return vals_; }

    /** Value at element coordinates (r, c); 0 when block absent. */
    double at(int r, int c) const;

    /** Logical (structural CSR) nonzero count, i.e. nonzero values. */
    std::int64_t logicalNnz() const;

    /**
     * Storage footprint in bytes: 8-byte block-row pointers, 4-byte
     * block column indices, 8-byte values for every (possibly zero)
     * element of every stored block — the overhead Fig. 15 charges BSR.
     */
    std::uint64_t storageBytes() const;

    /** Abort if the structure is inconsistent. */
    void validate() const;

    /** Used by the converter to install the structure wholesale. */
    void assign(std::vector<std::int64_t> block_row_ptr,
                std::vector<int> block_col_idx,
                std::vector<double> vals);

  private:
    int rows_ = 0;
    int cols_ = 0;
    int blockSize_ = 1;
    int blockRows_ = 0;
    int blockCols_ = 0;
    std::vector<std::int64_t> blockRowPtr_{0};
    std::vector<int> blockColIdx_;
    std::vector<double> vals_;
};

} // namespace unistc

#endif // UNISTC_SPARSE_BSR_HH
