#include "sparse/coo.hh"

#include <algorithm>

#include "common/logging.hh"

namespace unistc
{

CooMatrix::CooMatrix(int rows, int cols) : rows_(rows), cols_(cols)
{
    UNISTC_ASSERT(rows >= 0 && cols >= 0, "negative matrix shape");
}

void
CooMatrix::add(int row, int col, double val)
{
    entries_.push_back({row, col, val});
}

void
CooMatrix::normalize()
{
    validate();
    std::sort(entries_.begin(), entries_.end(),
              [](const CooEntry &a, const CooEntry &b) {
                  if (a.row != b.row)
                      return a.row < b.row;
                  return a.col < b.col;
              });
    std::vector<CooEntry> merged;
    merged.reserve(entries_.size());
    for (const auto &e : entries_) {
        if (!merged.empty() && merged.back().row == e.row &&
            merged.back().col == e.col) {
            merged.back().val += e.val;
        } else {
            merged.push_back(e);
        }
    }
    // Drop explicit zeros produced by cancellation or by generators.
    std::erase_if(merged, [](const CooEntry &e) { return e.val == 0.0; });
    entries_ = std::move(merged);
}

void
CooMatrix::validate() const
{
    for (const auto &e : entries_) {
        UNISTC_ASSERT(e.row >= 0 && e.row < rows_ &&
                      e.col >= 0 && e.col < cols_,
                      "COO entry (", e.row, ",", e.col,
                      ") out of bounds for ", rows_, "x", cols_);
    }
}

} // namespace unistc
