#include "sparse/csr.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace unistc
{

CsrMatrix::CsrMatrix(int rows, int cols)
    : rows_(rows), cols_(cols), rowPtr_(rows + 1, 0)
{
    UNISTC_ASSERT(rows >= 0 && cols >= 0, "negative matrix shape");
}

CsrMatrix::CsrMatrix(int rows, int cols,
                     std::vector<std::int64_t> row_ptr,
                     std::vector<int> col_idx, std::vector<double> vals)
    : rows_(rows), cols_(cols), rowPtr_(std::move(row_ptr)),
      colIdx_(std::move(col_idx)), vals_(std::move(vals))
{
    validate();
}

double
CsrMatrix::at(int r, int c) const
{
    UNISTC_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                  "at(", r, ",", c, ") out of bounds");
    const auto begin = colIdx_.begin() + rowPtr_[r];
    const auto end = colIdx_.begin() + rowPtr_[r + 1];
    const auto it = std::lower_bound(begin, end, c);
    if (it != end && *it == c)
        return vals_[it - colIdx_.begin()];
    return 0.0;
}

double
CsrMatrix::density() const
{
    const double cells = static_cast<double>(rows_) * cols_;
    return cells > 0.0 ? static_cast<double>(nnz()) / cells : 0.0;
}

std::uint64_t
CsrMatrix::storageBytes() const
{
    return static_cast<std::uint64_t>(rowPtr_.size()) * 8 +
        static_cast<std::uint64_t>(colIdx_.size()) * 4 +
        static_cast<std::uint64_t>(vals_.size()) * 8;
}

void
CsrMatrix::validate() const
{
    UNISTC_ASSERT(static_cast<int>(rowPtr_.size()) == rows_ + 1,
                  "rowPtr size ", rowPtr_.size(), " != rows+1 ",
                  rows_ + 1);
    UNISTC_ASSERT(rowPtr_.front() == 0, "rowPtr must start at 0");
    UNISTC_ASSERT(colIdx_.size() == vals_.size(),
                  "colIdx/vals size mismatch");
    UNISTC_ASSERT(rowPtr_.back() ==
                  static_cast<std::int64_t>(colIdx_.size()),
                  "rowPtr back != nnz");
    for (int r = 0; r < rows_; ++r) {
        UNISTC_ASSERT(rowPtr_[r] <= rowPtr_[r + 1],
                      "rowPtr not monotone at row ", r);
        for (std::int64_t i = rowPtr_[r]; i < rowPtr_[r + 1]; ++i) {
            UNISTC_ASSERT(colIdx_[i] >= 0 && colIdx_[i] < cols_,
                          "column index out of bounds at row ", r);
            if (i > rowPtr_[r]) {
                UNISTC_ASSERT(colIdx_[i - 1] < colIdx_[i],
                              "columns unsorted/duplicated in row ", r);
            }
        }
    }
}

bool
CsrMatrix::approxEquals(const CsrMatrix &other, double tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    if (rowPtr_ != other.rowPtr_ || colIdx_ != other.colIdx_)
        return false;
    for (std::size_t i = 0; i < vals_.size(); ++i) {
        const double scale =
            std::max({1.0, std::fabs(vals_[i]),
                      std::fabs(other.vals_[i])});
        if (std::fabs(vals_[i] - other.vals_[i]) > tol * scale)
            return false;
    }
    return true;
}

} // namespace unistc
