#include "warehouse/stattests.hh"

#include <cmath>

#include "common/logging.hh"

namespace unistc
{
namespace warehouse
{

namespace
{

/**
 * Regularised incomplete beta I_x(a, b) by Lentz's continued
 * fraction; accurate to ~1e-12 for the (a, b) ranges a t-test needs.
 */
double
betacf(double a, double b, double x)
{
    constexpr int kMaxIter = 200;
    constexpr double kEps = 3e-14;
    constexpr double kFpMin = 1e-300;
    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < kFpMin)
        d = kFpMin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIter; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kFpMin)
            d = kFpMin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < kFpMin)
            c = kFpMin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x /
             ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kFpMin)
            d = kFpMin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < kFpMin)
            c = kFpMin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < kEps)
            break;
    }
    return h;
}

double
incompleteBeta(double a, double b, double x)
{
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;
    const double lnBeta = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
    const double front = std::exp(lnBeta);
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betacf(a, b, x) / a;
    return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

} // namespace

PairedSummary
summarizeRatios(const std::vector<double> &ratios)
{
    PairedSummary s;
    double sumLog = 0.0;
    std::vector<double> logs;
    logs.reserve(ratios.size());
    for (const double r : ratios) {
        if (!(r > 0.0) || !std::isfinite(r))
            continue;
        const double lr = std::log(r);
        logs.push_back(lr);
        sumLog += lr;
        if (logs.size() == 1) {
            s.minRatio = s.maxRatio = r;
        } else {
            s.minRatio = std::min(s.minRatio, r);
            s.maxRatio = std::max(s.maxRatio, r);
        }
    }
    s.n = logs.size();
    if (s.n == 0)
        return s;
    s.meanLog = sumLog / static_cast<double>(s.n);
    double ss = 0.0;
    for (const double lr : logs) {
        const double d = lr - s.meanLog;
        ss += d * d;
    }
    s.sdLog = s.n > 1
                  ? std::sqrt(ss / static_cast<double>(s.n - 1))
                  : 0.0;
    s.geomean = std::exp(s.meanLog);
    return s;
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
studentTCdf(double t, double df)
{
    UNISTC_ASSERT(df > 0.0, "t CDF needs positive df, got ", df);
    const double x = df / (df + t * t);
    const double tail = 0.5 * incompleteBeta(df / 2.0, 0.5, x);
    return t >= 0.0 ? 1.0 - tail : tail;
}

double
pValueMeanAbove(const PairedSummary &s, double logThreshold)
{
    if (s.n < 2 || s.sdLog <= 0.0)
        return 1.0;
    const double se = s.sdLog / std::sqrt(static_cast<double>(s.n));
    const double t = (s.meanLog - logThreshold) / se;
    return 1.0 - studentTCdf(t, static_cast<double>(s.n - 1));
}

bool
significantShift(const PairedSummary &s, double ratioThreshold,
                 double alpha)
{
    UNISTC_ASSERT(ratioThreshold > 1.0,
                  "ratio threshold must exceed 1, got ",
                  ratioThreshold);
    if (s.n == 0)
        return false;
    const double logThreshold = std::log(ratioThreshold);
    const double magnitude = std::fabs(s.meanLog);
    if (magnitude <= logThreshold)
        return false;
    if (s.n < 2 || s.sdLog <= 0.0) {
        // Deterministic sims: every pair moved by the same factor.
        // The shift is real by construction; significance reduces to
        // the magnitude test above.
        return true;
    }
    // One-sided t-test on |meanLog| against the threshold, so the
    // same rule covers regressions and improvements symmetrically.
    PairedSummary folded = s;
    folded.meanLog = magnitude;
    return pValueMeanAbove(folded, logThreshold) < alpha;
}

} // namespace warehouse
} // namespace unistc
