/**
 * @file
 * Read side of the results warehouse: enumerate runs, resolve
 * selectors ("latest", a run id, a label) and load rows back into
 * the in-memory types the writer started from (schema.hh).
 *
 * Recovery contract: a run that crashed mid-append — no COMMIT
 * marker, possibly torn column files — still loads. The reader takes
 * the longest consistent row prefix (minimum whole-element count
 * across the group's columns) and drops any trailing rows whose
 * dictionary ids never made it to disk; it never invents data.
 * Runs written by a NEWER schema are rejected with a typed error.
 */

#ifndef UNISTC_WAREHOUSE_READER_HH
#define UNISTC_WAREHOUSE_READER_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "robust/status.hh"
#include "warehouse/schema.hh"

namespace unistc
{
namespace warehouse
{

/** Decoded META commit record of one run. */
struct RunMeta
{
    std::string id;     ///< "000042".
    std::string dir;    ///< Absolute-ish run directory path.
    int schema = 0;     ///< Writer's schema version.
    std::string bench;  ///< Producing harness name.
    std::string label;  ///< Optional user tag ("" when untagged).
    std::string gitSha;
    std::string time;   ///< ISO-8601 UTC start time ("" if unknown).
    std::string argvLine;
    std::vector<std::pair<std::string, std::string>> env;
    /** finalize()-time counters ("cache.hits", ...). */
    std::map<std::string, std::uint64_t> counters;
    /** Row totals recorded at finalize (absent on crashed runs). */
    std::uint64_t declaredResultRows = 0;
    std::uint64_t declaredEngineRows = 0;
    bool hasDeclaredRows = false;
    bool committed = false; ///< COMMIT marker present.
};

/** One fully-loaded run: commit record + decoded rows. */
struct RunData
{
    RunMeta meta;
    std::vector<ResultRow> results;
    std::vector<EngineRow> engine;
    /** Rows dropped by truncation recovery (0 on clean runs). */
    std::uint64_t recoveredDrops = 0;
};

/** Enumerates and loads runs of one warehouse directory. */
class WarehouseReader
{
  public:
    explicit WarehouseReader(std::string dir) : dir_(std::move(dir))
    {
    }

    /**
     * Commit records of every run, ascending by run id. Runs whose
     * META is unreadable or from a newer schema are skipped with a
     * warning — one bad run must not hide the rest of the store.
     */
    std::vector<RunMeta> runs() const;

    /**
     * Resolve a run selector to a loadable run id:
     *   "latest"        -> newest run (of @p bench when non-empty),
     *   "000042"        -> that run id verbatim,
     *   anything else   -> newest run whose META label matches.
     */
    Result<std::string> resolve(const std::string &selector,
                                const std::string &bench = "") const;

    /** Load one run's rows; see the file header for recovery. */
    Result<RunData> load(const std::string &runId) const;

    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
};

/** Parse one run directory's META (exposed for tests). */
Result<RunMeta> readRunMeta(const std::string &runDir,
                            const std::string &runId);

} // namespace warehouse
} // namespace unistc

#endif // UNISTC_WAREHOUSE_READER_HH
