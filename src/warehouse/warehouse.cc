#include "warehouse/warehouse.hh"

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#define UNISTC_WAREHOUSE_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#else
#define UNISTC_WAREHOUSE_POSIX 0
#endif

namespace unistc
{
namespace warehouse
{

namespace fs = std::filesystem;

namespace
{

/** fsync a stdio stream (no-op off POSIX). */
void
syncFile(std::FILE *f)
{
#if UNISTC_WAREHOUSE_POSIX
    if (f != nullptr)
        ::fsync(fileno(f));
#else
    (void)f;
#endif
}

/** Little-endian fixed-width append. */
bool
writeLe(std::FILE *f, std::uint64_t v, std::size_t width)
{
    unsigned char buf[8];
    for (std::size_t i = 0; i < width; ++i)
        buf[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
    return std::fwrite(buf, 1, width, f) == width;
}

/**
 * Highest allocatable run id: formatRunId() must keep the fixed
 * 6-digit form isRunId() recognises. One past this and a 7-digit
 * directory name would be invisible to the next scan, restarting
 * numbering at 000001 and racing writers into old directories —
 * allocation fails with a clear Status instead.
 */
constexpr unsigned kMaxRunId = 999999;

std::string
formatRunId(unsigned seq)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%06u", seq);
    return buf;
}

} // namespace

bool
isRunId(const std::string &s)
{
    if (s.size() != 6)
        return false;
    for (const char c : s) {
        if (c < '0' || c > '9')
            return false;
    }
    return true;
}

Result<std::unique_ptr<RunWriter>>
RunWriter::open(const RunWriterOptions &opt)
{
    using Ptr = std::unique_ptr<RunWriter>;
    if (opt.dir.empty()) {
        return Result<Ptr>(
            invalidArgument("warehouse directory is empty"));
    }
    std::error_code ec;
    fs::create_directories(opt.dir, ec);
    if (ec) {
        return Result<Ptr>(ioError("cannot create warehouse '" +
                                   opt.dir + "': " + ec.message()));
    }

    // Next run id: one past the highest existing id. mkdir() is the
    // arbiter — two processes scanning concurrently race to the same
    // seq, exactly one create_directory succeeds, the loser retries
    // with the next number.
    unsigned seq = 1;
    for (const auto &entry : fs::directory_iterator(opt.dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (isRunId(name))
            seq = std::max(seq, 1 +
                static_cast<unsigned>(std::stoul(name)));
    }
    Ptr w(new RunWriter());
    for (; seq <= kMaxRunId; ++seq) {
        const fs::path dir = fs::path(opt.dir) / formatRunId(seq);
        std::error_code mkec;
        if (fs::create_directory(dir, mkec) && !mkec) {
            w->runId_ = formatRunId(seq);
            w->runDir_ = dir.string();
            break;
        }
        if (mkec && mkec != std::errc::file_exists) {
            return Result<Ptr>(
                ioError("cannot create run directory '" +
                        dir.string() + "': " + mkec.message()));
        }
    }
    if (w->runDir_.empty()) {
        return Result<Ptr>(internalError(
            "warehouse run id space exhausted in '" + opt.dir +
            "': run " + formatRunId(kMaxRunId) + " already exists; "
            "archive or rotate the warehouse directory"));
    }
    w->fsyncEvery_ = opt.fsyncEvery;

    const std::string metaPath = w->runDir_ + "/META";
    w->meta_ = std::fopen(metaPath.c_str(), "wb");
    if (w->meta_ == nullptr) {
        return Result<Ptr>(ioError("cannot open '" + metaPath +
                                   "': " + std::strerror(errno)));
    }
    // The open-time commit record. Counters and row totals are
    // appended by finalize(); a crashed run keeps this prefix.
    std::string head;
    head += "schema=" + std::to_string(kSchemaVersion) + "\n";
    head += "run=" + w->runId_ + "\n";
    head += "bench=" + escapeField(opt.bench) + "\n";
    if (!opt.label.empty())
        head += "label=" + escapeField(opt.label) + "\n";
    if (!opt.gitSha.empty())
        head += "git_sha=" + escapeField(opt.gitSha) + "\n";
    if (!opt.timeIso.empty())
        head += "time=" + escapeField(opt.timeIso) + "\n";
    std::string argvLine;
    for (const std::string &a : opt.argv) {
        if (!argvLine.empty())
            argvLine += ' ';
        argvLine += a;
    }
    if (!argvLine.empty())
        head += "argv=" + escapeField(argvLine) + "\n";
    for (const auto &[k, v] : opt.env)
        head += "env." + escapeField(k) + "=" + escapeField(v) + "\n";
    if (std::fwrite(head.data(), 1, head.size(), w->meta_) !=
        head.size()) {
        return Result<Ptr>(ioError("short write on '" + metaPath +
                                   "'"));
    }
    std::fflush(w->meta_);
    syncFile(w->meta_);

    const std::string dictPath = w->runDir_ + "/strings.dict";
    w->dict_ = std::fopen(dictPath.c_str(), "wb");
    if (w->dict_ == nullptr) {
        return Result<Ptr>(ioError("cannot open '" + dictPath +
                                   "': " + std::strerror(errno)));
    }
    return Result<Ptr>(std::move(w));
}

RunWriter::~RunWriter()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::FILE *f : resultCols_) {
        if (f != nullptr)
            std::fclose(f);
    }
    for (std::FILE *f : engineCols_) {
        if (f != nullptr)
            std::fclose(f);
    }
    if (dict_ != nullptr)
        std::fclose(dict_);
    if (meta_ != nullptr)
        std::fclose(meta_);
}

Status
RunWriter::openColumns(const std::vector<ColumnDef> &defs,
                       const char *prefix,
                       std::vector<std::FILE *> *out)
{
    out->reserve(defs.size());
    for (const ColumnDef &def : defs) {
        const std::string path = runDir_ + "/" + prefix + def.name +
                                 ".bin";
        std::FILE *f = std::fopen(path.c_str(), "wb");
        if (f == nullptr) {
            return ioError("cannot open column '" + path +
                           "': " + std::strerror(errno));
        }
        // Header: magic, schema version (u16 LE), width (u16 LE).
        unsigned char hdr[kColumnHeaderBytes];
        std::memcpy(hdr, kColumnMagic, 4);
        hdr[4] = static_cast<unsigned char>(kSchemaVersion & 0xff);
        hdr[5] = static_cast<unsigned char>((kSchemaVersion >> 8) &
                                            0xff);
        const std::size_t width = colWidth(def.type);
        hdr[6] = static_cast<unsigned char>(width & 0xff);
        hdr[7] = static_cast<unsigned char>((width >> 8) & 0xff);
        if (std::fwrite(hdr, 1, sizeof(hdr), f) != sizeof(hdr)) {
            std::fclose(f);
            return ioError("short header write on '" + path + "'");
        }
        out->push_back(f);
    }
    return Status::okStatus();
}

std::uint32_t
RunWriter::dictId(const std::string &s)
{
    const auto it = dictIds_.find(s);
    if (it != dictIds_.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(dictIds_.size());
    dictIds_.emplace(s, id);
    // The dictionary line lands before any column data referencing
    // the id is flushed (flushAll syncs the dict first), so readers
    // recovering a torn run drop rows, never misname them.
    const std::string line = escapeField(s) + "\n";
    if (std::fwrite(line.data(), 1, line.size(), dict_) !=
        line.size()) {
        ioFailed_ = true;
    }
    return id;
}

Status
RunWriter::writeSlot(std::FILE *f, ColType type, std::uint64_t v)
{
    if (!writeLe(f, v, colWidth(type)))
        return ioError("short column write");
    return Status::okStatus();
}

void
RunWriter::flushAll(bool sync)
{
    // Dictionary first: column bytes must never be more durable than
    // the strings their ids point at.
    std::fflush(dict_);
    if (sync)
        syncFile(dict_);
    for (std::FILE *f : resultCols_)
        std::fflush(f);
    for (std::FILE *f : engineCols_)
        std::fflush(f);
    if (sync) {
        for (std::FILE *f : resultCols_)
            syncFile(f);
        for (std::FILE *f : engineCols_)
            syncFile(f);
    }
}

void
RunWriter::appendResult(const ResultRow &row)
{
    std::lock_guard<std::mutex> lock(mu_);
    UNISTC_ASSERT(!finalized_,
                  "appendResult on a finalized warehouse run");
    if (resultCols_.empty()) {
        if (Status s = openColumns(resultColumns(), "r_",
                                   &resultCols_);
            !s.ok()) {
            if (!ioFailed_)
                UNISTC_WARN("warehouse append failed: ",
                            s.message());
            ioFailed_ = true;
            return;
        }
    }
    std::vector<std::uint64_t> slots;
    slots.reserve(resultColumns().size());
    slots.push_back(dictId(row.kernel));
    slots.push_back(dictId(row.model));
    slots.push_back(dictId(row.matrix));
    for (const std::uint64_t v : packResult(row.result))
        slots.push_back(v);
    const auto &defs = resultColumns();
    for (std::size_t c = 0; c < defs.size(); ++c) {
        if (Status s = writeSlot(resultCols_[c], defs[c].type,
                                 slots[c]);
            !s.ok() && !ioFailed_) {
            UNISTC_WARN("warehouse append failed: ", s.message());
            ioFailed_ = true;
        }
    }
    ++resultRows_;
    ++sinceSync_;
    flushAll(fsyncEvery_ > 0 &&
             sinceSync_ >= static_cast<std::uint64_t>(fsyncEvery_));
    if (fsyncEvery_ > 0 &&
        sinceSync_ >= static_cast<std::uint64_t>(fsyncEvery_))
        sinceSync_ = 0;
}

void
RunWriter::appendEngine(const EngineRow &row)
{
    std::lock_guard<std::mutex> lock(mu_);
    UNISTC_ASSERT(!finalized_,
                  "appendEngine on a finalized warehouse run");
    if (engineCols_.empty()) {
        if (Status s = openColumns(engineColumns(), "e_",
                                   &engineCols_);
            !s.ok()) {
            if (!ioFailed_)
                UNISTC_WARN("warehouse append failed: ",
                            s.message());
            ioFailed_ = true;
            return;
        }
    }
    std::vector<std::uint64_t> slots;
    slots.reserve(engineColumns().size());
    slots.push_back(dictId(row.kernel));
    slots.push_back(dictId(row.matrix));
    for (const std::uint64_t v : packEngine(row.counters, row.timed))
        slots.push_back(v);
    const auto &defs = engineColumns();
    for (std::size_t c = 0; c < defs.size(); ++c) {
        if (Status s = writeSlot(engineCols_[c], defs[c].type,
                                 slots[c]);
            !s.ok() && !ioFailed_) {
            UNISTC_WARN("warehouse append failed: ", s.message());
            ioFailed_ = true;
        }
    }
    ++engineRows_;
    ++sinceSync_;
    flushAll(fsyncEvery_ > 0 &&
             sinceSync_ >= static_cast<std::uint64_t>(fsyncEvery_));
    if (fsyncEvery_ > 0 &&
        sinceSync_ >= static_cast<std::uint64_t>(fsyncEvery_))
        sinceSync_ = 0;
}

void
RunWriter::noteCounter(const std::string &name, std::uint64_t v)
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += v;
}

std::uint64_t
RunWriter::resultRows() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return resultRows_;
}

std::uint64_t
RunWriter::engineRows() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return engineRows_;
}

Status
RunWriter::finalize()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (finalized_)
        return Status::okStatus();
    finalized_ = true;
    flushAll(/*sync=*/true);

    // Close-time commit fields: row totals + accumulated counters.
    std::string tail;
    tail += "rows.results=" + std::to_string(resultRows_) + "\n";
    tail += "rows.engine=" + std::to_string(engineRows_) + "\n";
    for (const auto &[name, v] : counters_) {
        tail += "counter." + escapeField(name) + "=" +
                std::to_string(v) + "\n";
    }
    if (std::fwrite(tail.data(), 1, tail.size(), meta_) !=
        tail.size()) {
        return ioError("short write appending counters to META");
    }
    std::fflush(meta_);
    syncFile(meta_);
    if (ioFailed_) {
        // Rows were lost: leave the run uncommitted so readers see
        // it as partial rather than trusting an incomplete commit.
        return ioError("warehouse run '" + runId_ +
                       "' had append failures; left uncommitted");
    }

    const std::string commitPath = runDir_ + "/COMMIT";
    std::FILE *commit = std::fopen(commitPath.c_str(), "wb");
    if (commit == nullptr) {
        return ioError("cannot open '" + commitPath +
                       "': " + std::strerror(errno));
    }
    const char ok[] = "ok\n";
    const bool wrote = std::fwrite(ok, 1, 3, commit) == 3;
    std::fflush(commit);
    syncFile(commit);
    std::fclose(commit);
    if (!wrote)
        return ioError("short write on '" + commitPath + "'");
#if UNISTC_WAREHOUSE_POSIX
    // Make the COMMIT directory entry itself durable.
    const int dfd = ::open(runDir_.c_str(), O_RDONLY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
#endif
    return Status::okStatus();
}

} // namespace warehouse
} // namespace unistc
