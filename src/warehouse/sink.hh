/**
 * @file
 * BenchSink: the bridge from a running bench harness to the results
 * warehouse (warehouse.hh). Off by default; UNISTC_WAREHOUSE_DIR
 * turns it on, and the generated main() in bench/bench_common.hh
 * calls configure() before the bench body so every ResultLog record
 * is mirrored into a warehouse run as it happens.
 *
 * The existing UNISTC_BENCH_JSON output is untouched by this sink —
 * both paths serialise through obs/bench_json.hh, which is what
 * keeps `unistc_query export-bench` byte-identical to a direct dump.
 *
 * Environment:
 *   UNISTC_WAREHOUSE_DIR    warehouse root (enables the sink)
 *   UNISTC_WAREHOUSE_LABEL  optional run label (baseline lookup key)
 *   UNISTC_GIT_SHA          source revision recorded in META
 *   UNISTC_WAREHOUSE_FSYNC  rows per fsync batch (default 16;
 *                           0 = fsync only at commit; anything else
 *                           is rejected with a warning)
 */

#ifndef UNISTC_WAREHOUSE_SINK_HH
#define UNISTC_WAREHOUSE_SINK_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/kernel_pipeline.hh"
#include "exec/shard_supervisor.hh"
#include "exec/sweep_executor.hh"
#include "sim/result.hh"
#include "warehouse/warehouse.hh"

namespace unistc
{
namespace warehouse
{

/**
 * Parse an UNISTC_WAREHOUSE_FSYNC value: a non-negative integer
 * (0 = fsync only at commit). Garbage, trailing characters, negative
 * or overflowing values warn and return @p fallback — the old bare
 * std::atoi silently turned them into "durability off".
 */
int parseFsyncEnv(const char *text, int fallback);

/** Process-wide warehouse sink for bench harnesses. */
class BenchSink
{
  public:
    static BenchSink &instance();

    /**
     * Read the environment and, when UNISTC_WAREHOUSE_DIR is set,
     * open a run whose commit record captures @p argv, the UNISTC_*
     * environment and the wall-clock start time. Safe to call once
     * per process; failures warn and leave the sink disabled (a
     * broken warehouse must never fail the bench).
     */
    void configure(int argc, char **argv);

    bool enabled() const { return writer_ != nullptr; }

    /** Mirror one ResultLog entry into the run. */
    void record(const std::string &kernel, const std::string &model,
                const std::string &matrix, const RunResult &result);

    /**
     * Mirror one engine pass. Wall-clock seconds are zeroed unless
     * @p timed — they differ between --jobs 1 and --jobs N, and the
     * warehouse row content must not (docs/WAREHOUSE.md).
     */
    void recordEngine(const std::string &kernel,
                      const std::string &matrix,
                      const PipelineCounters &counters, bool timed);

    /** Fold a sweep's recovery tallies into the commit counters. */
    void noteRecovery(const SweepExecutor::RecoveryCounters &rc);

    /**
     * Fold a shard supervisor's recovery tallies into the commit
     * counters (robust.shard_* keys, read back by `unistc_query
     * recovery`). Lands in META only, so sharded and single-process
     * runs keep byte-identical row files.
     */
    void noteShards(int shards, const ShardRecoveryCounters &sc);

    /**
     * Seal the run: snapshot the matrix-cache counters, commit.
     * Registered atexit by configure(); idempotent. A crash before
     * this point leaves the incrementally-flushed rows readable.
     */
    void finalize();

    /** Run id of the open run ("" when disabled). */
    std::string runId() const;

    /**
     * Serve-daemon ownership (docs/SERVING.md): under manual mode
     * configure() is a no-op, and the daemon opens one warehouse run
     * per admitted request — per-request bench/label/argv in the
     * commit record — instead of one run per process.
     */
    void setManual(bool on);

    /**
     * Open a run for one serve request (no-op when
     * UNISTC_WAREHOUSE_DIR is unset). An earlier manual run still
     * open is sealed first. @p label falls back to
     * UNISTC_WAREHOUSE_LABEL when empty.
     */
    void beginManualRun(const std::string &bench,
                        const std::string &label,
                        const std::vector<std::string> &argv);

    /**
     * Seal the current manual run, folding @p counters (the daemon's
     * robust.serve_* tallies) into META. No-op when no run is open.
     */
    void finishManualRun(
        const std::map<std::string, std::uint64_t> &counters);

  private:
    BenchSink() = default;

    /** finalize() body; the caller holds mu_. */
    void finalizeLocked();

    mutable std::mutex mu_;
    bool configured_ = false;
    bool manual_ = false;
    std::unique_ptr<RunWriter> writer_;
};

} // namespace warehouse
} // namespace unistc

#endif // UNISTC_WAREHOUSE_SINK_HH
