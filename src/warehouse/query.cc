#include "warehouse/query.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <ostream>

#include "common/logging.hh"
#include "obs/bench_json.hh"

namespace unistc
{
namespace warehouse
{

namespace
{

/** Row identity for pairing across runs. */
std::string
rowKey(const ResultRow &r)
{
    // Names are single-line (warehouse escaping guarantees it), so
    // newline is a safe separator.
    return r.kernel + "\n" + r.model + "\n" + r.matrix;
}

std::string
prettyKey(const ResultRow &r)
{
    return r.kernel + " " + r.model + " " + r.matrix;
}

std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

} // namespace

std::string
matrixFamily(const std::string &matrix)
{
    // Path-style names (dlmc corpora): the leading component.
    const std::size_t slash = matrix.find('/');
    if (slash != std::string::npos)
        return matrix.substr(0, slash);
    // Synthetic-suite names are "<family>_<index>" (corpus/suite.cc);
    // strip a trailing all-digit segment. Named real matrices
    // ("shipsec1") are their own family.
    const std::size_t us = matrix.find_last_of('_');
    if (us == std::string::npos || us + 1 >= matrix.size())
        return matrix;
    for (std::size_t i = us + 1; i < matrix.size(); ++i) {
        if (matrix[i] < '0' || matrix[i] > '9')
            return matrix;
    }
    return matrix.substr(0, us);
}

bool
metricValue(const ResultRow &row, const std::string &metric,
            double *out)
{
    const RunResult &r = row.result;
    if (metric == "cycles") {
        *out = static_cast<double>(r.cycles);
    } else if (metric == "energy") {
        *out = r.energy.total();
    } else if (metric == "utilisation") {
        *out = r.utilisation();
    } else if (metric == "stalls") {
        *out = static_cast<double>(r.stallCycles);
    } else if (metric == "products") {
        *out = static_cast<double>(r.products);
    } else if (metric == "traffic") {
        *out = static_cast<double>(r.traffic.totalA() +
                                   r.traffic.totalB() +
                                   r.traffic.writesC);
    } else {
        return false;
    }
    return true;
}

bool
metricHigherIsBetter(const std::string &metric)
{
    return metric == "utilisation" || metric == "products";
}

Result<std::vector<TrendPoint>>
geomeanSpeedupTrend(const WarehouseReader &reader,
                    const std::string &bench,
                    const std::string &metric)
{
    using R = Result<std::vector<TrendPoint>>;
    {
        double probeOut = 0.0;
        ResultRow probe;
        if (!metricValue(probe, metric, &probeOut))
            return R(invalidArgument("unknown metric '" + metric +
                                     "'"));
    }
    const bool higherBetter = metricHigherIsBetter(metric);
    std::vector<TrendPoint> out;
    std::map<std::string, double> reference;
    for (const RunMeta &meta : reader.runs()) {
        if (!bench.empty() && meta.bench != bench)
            continue;
        auto run = reader.load(meta.id);
        if (!run.ok()) {
            UNISTC_WARN("trend skips run ", meta.id, ": ",
                        run.status().message());
            continue;
        }
        TrendPoint pt;
        pt.runId = meta.id;
        pt.time = meta.time;
        pt.gitSha = meta.gitSha;
        std::vector<double> speedups;
        for (const ResultRow &row : run.value().results) {
            double v = 0.0;
            metricValue(row, metric, &v);
            if (reference.empty())
                continue; // This IS the reference run.
            const auto it = reference.find(rowKey(row));
            if (it == reference.end())
                continue;
            // Oriented so >1 is always an improvement.
            if (v > 0.0 && it->second > 0.0)
                speedups.push_back(higherBetter ? v / it->second
                                                : it->second / v);
        }
        if (reference.empty()) {
            for (const ResultRow &row : run.value().results) {
                double v = 0.0;
                metricValue(row, metric, &v);
                reference.emplace(rowKey(row), v);
            }
            pt.pairs = run.value().results.size();
            pt.geomeanSpeedup = 1.0; // Reference compares to itself.
        } else {
            const PairedSummary s = summarizeRatios(speedups);
            pt.pairs = s.n;
            pt.geomeanSpeedup = s.geomean;
        }
        out.push_back(std::move(pt));
    }
    if (out.empty()) {
        return R(invalidArgument(
            "no loadable runs" +
            (bench.empty() ? std::string()
                           : " from bench '" + bench + "'")));
    }
    return R(std::move(out));
}

Result<std::vector<DriftPoint>>
utilisationDrift(const WarehouseReader &reader,
                 const std::string &bench)
{
    using R = Result<std::vector<DriftPoint>>;
    std::vector<RunMeta> metas;
    for (RunMeta &m : reader.runs()) {
        if (bench.empty() || m.bench == bench)
            metas.push_back(std::move(m));
    }
    if (metas.empty())
        return R(invalidArgument("no runs to compute drift over"));
    auto first = reader.load(metas.front().id);
    if (!first.ok())
        return R(first.status());
    auto last = reader.load(metas.back().id);
    if (!last.ok())
        return R(last.status());

    struct Accum
    {
        double sum = 0.0;
        std::size_t n = 0;
    };
    const auto familyMeans = [](const RunData &run) {
        std::map<std::string, Accum> acc;
        for (const ResultRow &row : run.results) {
            Accum &a = acc[matrixFamily(row.matrix)];
            a.sum += row.result.utilisation();
            ++a.n;
        }
        return acc;
    };
    const auto firstAcc = familyMeans(first.value());
    const auto lastAcc = familyMeans(last.value());
    std::vector<DriftPoint> out;
    for (const auto &[family, a] : firstAcc) {
        const auto it = lastAcc.find(family);
        if (it == lastAcc.end() || a.n == 0 || it->second.n == 0)
            continue;
        DriftPoint p;
        p.family = family;
        p.firstRun = metas.front().id;
        p.lastRun = metas.back().id;
        p.firstUtil = a.sum / static_cast<double>(a.n);
        p.lastUtil =
            it->second.sum / static_cast<double>(it->second.n);
        out.push_back(std::move(p));
    }
    return R(std::move(out));
}

std::vector<CacheRatePoint>
cacheRates(const WarehouseReader &reader, const std::string &bench)
{
    std::vector<CacheRatePoint> out;
    for (const RunMeta &meta : reader.runs()) {
        if (!bench.empty() && meta.bench != bench)
            continue;
        CacheRatePoint p;
        p.runId = meta.id;
        p.bench = meta.bench;
        const auto hits = meta.counters.find("cache.hits");
        const auto misses = meta.counters.find("cache.misses");
        if (hits != meta.counters.end())
            p.hits = hits->second;
        if (misses != meta.counters.end())
            p.misses = misses->second;
        const std::uint64_t total = p.hits + p.misses;
        p.hitRate = total > 0 ? static_cast<double>(p.hits) /
                                    static_cast<double>(total)
                              : 0.0;
        out.push_back(std::move(p));
    }
    return out;
}

std::vector<ResultRow>
slowestMatrices(const RunData &run, std::size_t n)
{
    std::vector<ResultRow> rows = run.results;
    std::stable_sort(rows.begin(), rows.end(),
                     [](const ResultRow &a, const ResultRow &b) {
                         return a.result.cycles > b.result.cycles;
                     });
    if (rows.size() > n)
        rows.resize(n);
    return rows;
}

bool
RegressionReport::hasRegression() const
{
    for (const MetricCheck &c : checks) {
        if (c.verdict == Verdict::Regressed)
            return true;
    }
    return false;
}

namespace
{

/** Build one check from worse-oriented ratios. */
MetricCheck
judge(std::string metric, std::string scope,
      const std::vector<double> &worseRatios,
      const std::vector<std::pair<std::string, double>> &keyed,
      const RegressionOptions &opt)
{
    MetricCheck c;
    c.metric = std::move(metric);
    c.scope = std::move(scope);
    c.summary = summarizeRatios(worseRatios);
    for (const auto &[key, ratio] : keyed) {
        if (ratio > c.worstRatio) {
            c.worstRatio = ratio;
            c.worstKey = key;
        }
    }
    if (significantShift(c.summary, opt.ratioThreshold, opt.alpha)) {
        c.verdict = c.summary.meanLog > 0.0 ? Verdict::Regressed
                                            : Verdict::Improved;
    }
    return c;
}

} // namespace

RegressionReport
checkRegressions(const std::vector<ResultRow> &baseline,
                 const std::vector<ResultRow> &current,
                 const RegressionOptions &opt)
{
    RegressionReport report;
    std::map<std::string, const ResultRow *> base;
    for (const ResultRow &row : baseline)
        base.emplace(rowKey(row), &row);

    struct Pair
    {
        const ResultRow *before;
        const ResultRow *after;
    };
    std::vector<Pair> pairs;
    std::map<std::string, bool> matched;
    for (const ResultRow &row : current) {
        const auto it = base.find(rowKey(row));
        if (it == base.end()) {
            ++report.currentOnly;
            continue;
        }
        matched[it->first] = true;
        pairs.push_back({it->second, &row});
    }
    report.pairedRows = pairs.size();
    for (const auto &[key, ptr] : base) {
        if (!matched.count(key))
            ++report.baselineOnly;
    }

    const char *metrics[] = {"cycles", "energy", "utilisation"};
    for (const char *metric : metrics) {
        const bool higherBetter = metricHigherIsBetter(metric);
        std::vector<double> all;
        std::vector<std::pair<std::string, double>> allKeyed;
        std::map<std::string, std::vector<double>> byKernel;
        for (const Pair &p : pairs) {
            double before = 0.0, after = 0.0;
            metricValue(*p.before, metric, &before);
            metricValue(*p.after, metric, &after);
            if (!(before > 0.0) || !(after > 0.0))
                continue; // No signal in a zero sample.
            // Oriented so >1 always means "got worse".
            const double worse = higherBetter ? before / after
                                              : after / before;
            all.push_back(worse);
            allKeyed.emplace_back(prettyKey(*p.after), worse);
            byKernel[p.after->kernel].push_back(worse);
        }
        if (all.size() >= opt.minPairs) {
            report.checks.push_back(
                judge(metric, "all", all, allKeyed, opt));
        }
        // Per-kernel scopes catch a regression in one kernel that
        // the overall geomean would dilute away; cycles only, to
        // keep the report small. Skip when there is just one kernel
        // — the "all" scope already is that kernel.
        if (std::string(metric) == "cycles" && byKernel.size() > 1) {
            for (const auto &[kernel, ratios] : byKernel) {
                if (ratios.size() < opt.minPairs)
                    continue;
                report.checks.push_back(judge(
                    metric, "kernel=" + kernel, ratios, {}, opt));
            }
        }
    }
    return report;
}

void
printRegressionReport(std::ostream &os,
                      const RegressionReport &report,
                      const RegressionOptions &opt)
{
    os << "rows: " << report.pairedRows << " paired, "
       << report.baselineOnly << " baseline-only, "
       << report.currentOnly << " current-only\n";
    os << "thresholds: geomean > " << fmt(opt.ratioThreshold)
       << "x, alpha " << fmt(opt.alpha) << "\n";
    std::vector<const MetricCheck *> order;
    order.reserve(report.checks.size());
    for (const MetricCheck &c : report.checks)
        order.push_back(&c);
    std::stable_sort(order.begin(), order.end(),
                     [](const MetricCheck *a, const MetricCheck *b) {
                         return static_cast<int>(a->verdict) >
                                static_cast<int>(b->verdict);
                     });
    std::size_t regressions = 0;
    for (const MetricCheck *c : order) {
        const char *tag = c->verdict == Verdict::Regressed
                              ? "[REGRESSED]"
                          : c->verdict == Verdict::Improved
                              ? "[improved] "
                              : "[ok]       ";
        if (c->verdict == Verdict::Regressed)
            ++regressions;
        os << "  " << tag << " " << c->metric << " @ " << c->scope
           << ": geomean " << fmt(c->summary.geomean)
           << "x worse-ratio over " << c->summary.n
           << " pair(s), sd(log) " << fmt(c->summary.sdLog);
        if (!c->worstKey.empty()) {
            os << ", worst " << fmt(c->worstRatio) << "x ("
               << c->worstKey << ")";
        }
        os << "\n";
    }
    if (report.checks.empty())
        os << "  (no comparable metric scopes)\n";
    os << (regressions == 0
               ? "verdict: no significant regressions\n"
               : "verdict: " + std::to_string(regressions) +
                     " significant regression(s)\n");
}

Result<std::vector<ResultRow>>
resultRowsFromBenchJson(const JsonValue &doc,
                        const std::string &label)
{
    using R = Result<std::vector<ResultRow>>;
    const auto bad = [&label](const std::string &what) {
        return corruptData(label + ": " + what);
    };
    if (!doc.isObject())
        return R(bad("top level is not an object"));
    const JsonValue *schema = doc.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->string() != kBenchSchemaName) {
        return R(bad("schema is not '" +
                     std::string(kBenchSchemaName) + "'"));
    }
    const JsonValue *version = doc.find("version");
    std::uint64_t ver = 0;
    if (version == nullptr || !version->isNumber() ||
        !version->counterValue(&ver)) {
        return R(bad("missing or malformed version"));
    }
    if (ver > static_cast<std::uint64_t>(kBenchSchemaVersion)) {
        return R(failedPrecondition(
            label + ": written by bench schema version " +
            std::to_string(ver) + "; this reader understands <= " +
            std::to_string(kBenchSchemaVersion)));
    }
    const JsonValue *entries = doc.find("entries");
    if (entries == nullptr || !entries->isArray())
        return R(bad("missing entries array"));

    std::vector<ResultRow> rows;
    rows.reserve(entries->array().size());
    for (const JsonValue &entry : entries->array()) {
        if (!entry.isObject())
            return R(bad("entry is not an object"));
        ResultRow row;
        const auto str = [&entry](const char *key,
                                  std::string *out) {
            const JsonValue *v = entry.find(key);
            if (v == nullptr || !v->isString())
                return false;
            *out = v->string();
            return true;
        };
        if (!str("kernel", &row.kernel) ||
            !str("model", &row.model) ||
            !str("matrix", &row.matrix)) {
            return R(bad("entry lacks kernel/model/matrix names"));
        }
        const JsonValue *stats = entry.find("stats");
        if (stats == nullptr || !stats->isObject())
            return R(bad("entry '" + row.matrix +
                         "' lacks a stats object"));
        const auto counter = [stats](const char *key,
                                     std::uint64_t *out) {
            const JsonValue *v = stats->find(key);
            return v != nullptr && v->counterValue(out);
        };
        const auto scalar = [stats](const char *key, double *out) {
            const JsonValue *v = stats->find(key);
            return v != nullptr && v->doubleValue(out);
        };
        RunResult &res = row.result;
        const bool countersOk =
            counter("cycles", &res.cycles) &&
            counter("products", &res.products) &&
            counter("macSlots", &res.macSlots) &&
            counter("tasksT1", &res.tasksT1) &&
            counter("tasksT3", &res.tasksT3) &&
            counter("stallCycles", &res.stallCycles) &&
            counter("dpgActiveAccum", &res.dpgActiveAccum) &&
            counter("cNetScaleAccum", &res.cNetScaleAccum) &&
            counter("traffic.readsA", &res.traffic.readsA) &&
            counter("traffic.wastedA", &res.traffic.wastedA) &&
            counter("traffic.readsB", &res.traffic.readsB) &&
            counter("traffic.wastedB", &res.traffic.wastedB) &&
            counter("traffic.writesC", &res.traffic.writesC);
        const bool energyOk =
            scalar("energy.fetchA", &res.energy.fetchA) &&
            scalar("energy.fetchB", &res.energy.fetchB) &&
            scalar("energy.writeC", &res.energy.writeC) &&
            scalar("energy.schedule", &res.energy.schedule) &&
            scalar("energy.compute", &res.energy.compute);
        if (!countersOk || !energyOk) {
            return R(bad("entry '" + row.matrix +
                         "' has missing or malformed stats"));
        }

        const JsonValue *hist = stats->find("utilHist");
        if (hist == nullptr || !hist->isObject())
            return R(bad("entry '" + row.matrix +
                         "' lacks the utilHist histogram"));
        double lo = 0.0, hi = 0.0;
        std::uint64_t total = 0, nan = 0;
        const JsonValue *loV = hist->find("lo");
        const JsonValue *hiV = hist->find("hi");
        const JsonValue *totalV = hist->find("total");
        const JsonValue *countsV = hist->find("counts");
        if (loV == nullptr || !loV->doubleValue(&lo) ||
            hiV == nullptr || !hiV->doubleValue(&hi) ||
            totalV == nullptr || !totalV->counterValue(&total) ||
            countsV == nullptr || !countsV->isArray()) {
            return R(bad("entry '" + row.matrix +
                         "' has a malformed utilHist"));
        }
        const JsonValue *nanV = hist->find("nan");
        if (nanV != nullptr && !nanV->counterValue(&nan))
            return R(bad("entry '" + row.matrix +
                         "' has a malformed utilHist nan count"));
        const auto &counts = countsV->array();
        if (counts.empty() || !std::isfinite(lo) ||
            !std::isfinite(hi) || !(lo < hi)) {
            return R(bad("entry '" + row.matrix +
                         "' has a degenerate utilHist range"));
        }
        Histogram h(static_cast<int>(counts.size()), lo, hi);
        std::uint64_t sum = 0;
        for (int b = 0; b < h.numBuckets(); ++b) {
            std::uint64_t count = 0;
            if (!counts[static_cast<std::size_t>(b)].counterValue(
                    &count)) {
                return R(bad("entry '" + row.matrix +
                             "' has a malformed utilHist bucket"));
            }
            sum += count;
            if (count > 0)
                h.add((h.bucketLo(b) + h.bucketHi(b)) / 2.0, count);
        }
        if (nan > 0)
            h.add(std::numeric_limits<double>::quiet_NaN(), nan);
        if (sum != total || h.totalCount() != total ||
            h.nanCount() != nan) {
            return R(bad("entry '" + row.matrix +
                         "' utilHist counts disagree with total"));
        }
        res.utilHist = h;
        rows.push_back(std::move(row));
    }
    return R(std::move(rows));
}

void
exportBenchJson(const RunData &run, std::ostream &os)
{
    std::vector<BenchJsonEntry> entries;
    entries.reserve(run.results.size());
    for (const ResultRow &row : run.results)
        entries.push_back(
            {row.kernel, row.model, row.matrix, row.result});
    std::vector<BenchJsonEngineEntry> engine;
    engine.reserve(run.engine.size());
    for (const EngineRow &row : run.engine)
        engine.push_back(
            {row.kernel, row.matrix, row.counters, row.timed});
    writeBenchJson(os, entries, engine);
}

} // namespace warehouse
} // namespace unistc
