#include "warehouse/schema.hh"

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.hh"

namespace unistc
{
namespace warehouse
{

std::size_t
colWidth(ColType t)
{
    return t == ColType::U32 ? 4 : 8;
}

const std::vector<ColumnDef> &
resultColumns()
{
    // Order is the on-disk contract: new columns append at the end
    // under a schema-version bump, never reorder.
    static const std::vector<ColumnDef> cols = {
        {"kernel", ColType::U32},
        {"model", ColType::U32},
        {"matrix", ColType::U32},
        {"cycles", ColType::U64},
        {"products", ColType::U64},
        {"mac_slots", ColType::U64},
        {"tasks_t1", ColType::U64},
        {"tasks_t3", ColType::U64},
        {"stall_cycles", ColType::U64},
        {"dpg_active_accum", ColType::U64},
        {"cnet_scale_accum", ColType::U64},
        {"traffic_reads_a", ColType::U64},
        {"traffic_wasted_a", ColType::U64},
        {"traffic_reads_b", ColType::U64},
        {"traffic_wasted_b", ColType::U64},
        {"traffic_writes_c", ColType::U64},
        {"energy_fetch_a", ColType::F64},
        {"energy_fetch_b", ColType::F64},
        {"energy_write_c", ColType::F64},
        {"energy_schedule", ColType::F64},
        {"energy_compute", ColType::F64},
        {"hist_lo", ColType::F64},
        {"hist_hi", ColType::F64},
        {"hist_total", ColType::U64},
        {"hist_nan", ColType::U64},
        {"hist_b0", ColType::U64},
        {"hist_b1", ColType::U64},
        {"hist_b2", ColType::U64},
        {"hist_b3", ColType::U64},
    };
    return cols;
}

const std::vector<ColumnDef> &
engineColumns()
{
    static const std::vector<ColumnDef> cols = {
        {"kernel", ColType::U32},
        {"matrix", ColType::U32},
        {"timed", ColType::U32},
        {"tasks_generated", ColType::U64},
        {"models_fanout", ColType::U64},
        {"peak_live_tasks", ColType::U64},
        {"enumerate_seconds", ColType::F64},
        {"model_seconds", ColType::F64},
    };
    return cols;
}

namespace
{

std::uint64_t
f2u(double d)
{
    return std::bit_cast<std::uint64_t>(d);
}

double
u2f(std::uint64_t u)
{
    return std::bit_cast<double>(u);
}

/** Fixed bucket count of RunResult::utilHist (sim/result.cc). */
constexpr int kUtilBuckets = 4;

} // namespace

std::vector<std::uint64_t>
packResult(const RunResult &r)
{
    UNISTC_ASSERT(r.utilHist.numBuckets() == kUtilBuckets,
                  "warehouse schema expects the ", kUtilBuckets,
                  "-bucket utilisation histogram, got ",
                  r.utilHist.numBuckets(), " buckets");
    std::vector<std::uint64_t> s;
    s.reserve(resultColumns().size() - kResultDictColumns);
    s.push_back(r.cycles);
    s.push_back(r.products);
    s.push_back(r.macSlots);
    s.push_back(r.tasksT1);
    s.push_back(r.tasksT3);
    s.push_back(r.stallCycles);
    s.push_back(r.dpgActiveAccum);
    s.push_back(r.cNetScaleAccum);
    s.push_back(r.traffic.readsA);
    s.push_back(r.traffic.wastedA);
    s.push_back(r.traffic.readsB);
    s.push_back(r.traffic.wastedB);
    s.push_back(r.traffic.writesC);
    s.push_back(f2u(r.energy.fetchA));
    s.push_back(f2u(r.energy.fetchB));
    s.push_back(f2u(r.energy.writeC));
    s.push_back(f2u(r.energy.schedule));
    s.push_back(f2u(r.energy.compute));
    s.push_back(f2u(r.utilHist.bucketLo(0)));
    s.push_back(f2u(r.utilHist.bucketHi(kUtilBuckets - 1)));
    s.push_back(r.utilHist.totalCount());
    s.push_back(r.utilHist.nanCount());
    for (int b = 0; b < kUtilBuckets; ++b)
        s.push_back(r.utilHist.bucketCount(b));
    UNISTC_ASSERT(s.size() ==
                      resultColumns().size() - kResultDictColumns,
                  "packResult slot count drifted from the schema");
    return s;
}

Result<RunResult>
unpackResult(const std::vector<std::uint64_t> &s)
{
    if (s.size() != resultColumns().size() - kResultDictColumns) {
        return Result<RunResult>(corruptData(
            "result row has " + std::to_string(s.size()) +
            " slots, schema expects " +
            std::to_string(resultColumns().size() -
                           kResultDictColumns)));
    }
    RunResult r;
    std::size_t i = 0;
    r.cycles = s[i++];
    r.products = s[i++];
    r.macSlots = s[i++];
    r.tasksT1 = s[i++];
    r.tasksT3 = s[i++];
    r.stallCycles = s[i++];
    r.dpgActiveAccum = s[i++];
    r.cNetScaleAccum = s[i++];
    r.traffic.readsA = s[i++];
    r.traffic.wastedA = s[i++];
    r.traffic.readsB = s[i++];
    r.traffic.wastedB = s[i++];
    r.traffic.writesC = s[i++];
    r.energy.fetchA = u2f(s[i++]);
    r.energy.fetchB = u2f(s[i++]);
    r.energy.writeC = u2f(s[i++]);
    r.energy.schedule = u2f(s[i++]);
    r.energy.compute = u2f(s[i++]);
    const double lo = u2f(s[i++]);
    const double hi = u2f(s[i++]);
    const std::uint64_t total = s[i++];
    const std::uint64_t nan = s[i++];
    if (!std::isfinite(lo) || !std::isfinite(hi) || !(lo < hi)) {
        return Result<RunResult>(corruptData(
            "result row carries a degenerate histogram range"));
    }
    // Replay the counts into a fresh histogram of the same shape:
    // adding each bucket's midpoint with the stored weight lands in
    // exactly that bucket, so the rebuilt counts are bit-identical.
    Histogram h(kUtilBuckets, lo, hi);
    std::uint64_t sum = 0;
    for (int b = 0; b < kUtilBuckets; ++b) {
        const std::uint64_t count = s[i++];
        sum += count;
        if (count > 0)
            h.add((h.bucketLo(b) + h.bucketHi(b)) / 2.0, count);
    }
    if (nan > 0)
        h.add(std::numeric_limits<double>::quiet_NaN(), nan);
    if (sum != total || h.totalCount() != total ||
        h.nanCount() != nan) {
        return Result<RunResult>(corruptData(
            "result row histogram counts disagree with its total"));
    }
    r.utilHist = h;
    return r;
}

std::vector<std::uint64_t>
packEngine(const PipelineCounters &c, bool timed)
{
    std::vector<std::uint64_t> s;
    s.reserve(engineColumns().size() - kEngineDictColumns);
    s.push_back(timed ? 1 : 0);
    s.push_back(c.tasksGenerated);
    s.push_back(c.modelsFanout);
    s.push_back(c.peakLiveTasks);
    s.push_back(f2u(c.enumerateSeconds));
    s.push_back(f2u(c.modelSeconds));
    UNISTC_ASSERT(s.size() ==
                      engineColumns().size() - kEngineDictColumns,
                  "packEngine slot count drifted from the schema");
    return s;
}

void
unpackEngine(const std::vector<std::uint64_t> &s, PipelineCounters *c,
             bool *timed)
{
    UNISTC_ASSERT(s.size() ==
                      engineColumns().size() - kEngineDictColumns,
                  "unpackEngine slot count drifted from the schema");
    std::size_t i = 0;
    *timed = s[i++] != 0;
    c->tasksGenerated = s[i++];
    c->modelsFanout = s[i++];
    c->peakLiveTasks = s[i++];
    c->enumerateSeconds = u2f(s[i++]);
    c->modelSeconds = u2f(s[i++]);
}

std::string
escapeField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '%':
            out += "%25";
            break;
          case '\n':
            out += "%0a";
            break;
          case '\r':
            out += "%0d";
            break;
          default:
            out += c;
        }
    }
    return out;
}

Result<std::string>
unescapeField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%') {
            out += s[i];
            continue;
        }
        if (i + 2 >= s.size()) {
            return Result<std::string>(
                corruptData("truncated % escape in field"));
        }
        auto hex = [](char c) -> int {
            if (c >= '0' && c <= '9')
                return c - '0';
            if (c >= 'a' && c <= 'f')
                return c - 'a' + 10;
            if (c >= 'A' && c <= 'F')
                return c - 'A' + 10;
            return -1;
        };
        const int h = hex(s[i + 1]), l = hex(s[i + 2]);
        if (h < 0 || l < 0) {
            return Result<std::string>(
                corruptData("bad hex digits in % escape"));
        }
        out += static_cast<char>(h * 16 + l);
        i += 2;
    }
    return out;
}

} // namespace warehouse
} // namespace unistc
