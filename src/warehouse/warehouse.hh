/**
 * @file
 * Write side of the results warehouse: RunWriter appends one bench
 * run — a commit record plus per-(kernel, model, matrix) metric rows
 * — to a warehouse directory (schema.hh, docs/WAREHOUSE.md).
 *
 * Durability contract (the crash-resilience satellite of PR 6):
 * every append is written through to the OS immediately (fflush) and
 * fsync'd in small batches, so a crashed or watchdog-killed bench
 * leaves a run that is queryable up to the failure point — atexit
 * alone would lose everything. finalize() seals the run: counters
 * are appended to META, everything is fsync'd, and a COMMIT marker
 * is written last; a run without COMMIT reads back as partial but
 * valid.
 *
 * Concurrency: appends are mutex-serialised (sweep replay is serial,
 * but tests hammer this concurrently); run-directory allocation uses
 * mkdir() atomicity so concurrent benches sharing one warehouse
 * (ctest -j) always get distinct run ids.
 */

#ifndef UNISTC_WAREHOUSE_WAREHOUSE_HH
#define UNISTC_WAREHOUSE_WAREHOUSE_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "robust/status.hh"
#include "warehouse/schema.hh"

namespace unistc
{
namespace warehouse
{

/** Everything a commit record (META) captures at open time. */
struct RunWriterOptions
{
    std::string dir;    ///< Warehouse root (created when absent).
    std::string bench;  ///< Producing harness ("bench_tab08_...").
    std::string label;  ///< Optional user tag (baseline lookup key).
    std::string gitSha; ///< Source revision ("" when unknown).
    std::string timeIso; ///< Wall-clock start, ISO-8601 UTC.
    std::vector<std::string> argv; ///< Full command line.
    /** Captured environment (UNISTC_* by convention). */
    std::vector<std::pair<std::string, std::string>> env;
    /** Rows per fsync batch; <= 0 fsyncs only at finalize(). */
    int fsyncEvery = 16;
};

/** Appends one run; see the file header for the contract. */
class RunWriter
{
  public:
    /**
     * Allocate the next run directory under opt.dir, write the
     * open-time META record and return the writer. Typed error when
     * the directory cannot be created or written.
     */
    static Result<std::unique_ptr<RunWriter>>
    open(const RunWriterOptions &opt);

    /** Closes files. Does NOT commit: an unfinalized run stays
     * partial on disk (that is the crash story, not a leak). */
    ~RunWriter();

    RunWriter(const RunWriter &) = delete;
    RunWriter &operator=(const RunWriter &) = delete;

    /** Append one metric row (thread-safe, incremental flush). */
    void appendResult(const ResultRow &row);

    /** Append one engine-pass row (thread-safe). */
    void appendEngine(const EngineRow &row);

    /**
     * Accumulate a named commit counter ("cache.hits", ...); summed
     * across calls and appended to META by finalize().
     */
    void noteCounter(const std::string &name, std::uint64_t v);

    /**
     * Seal the run: flush + fsync every file, append the counters
     * and row totals to META, then write the COMMIT marker.
     * Idempotent; appends after finalize() are a lifecycle bug.
     */
    Status finalize();

    const std::string &runId() const { return runId_; }
    const std::string &runDir() const { return runDir_; }
    std::uint64_t resultRows() const;
    std::uint64_t engineRows() const;

  private:
    RunWriter() = default;

    /** Open (create + header) every column file of a group. */
    Status openColumns(const std::vector<ColumnDef> &defs,
                       const char *prefix,
                       std::vector<std::FILE *> *out);

    /** Dictionary id of @p s, appending a new entry when needed. */
    std::uint32_t dictId(const std::string &s);

    Status writeSlot(std::FILE *f, ColType type, std::uint64_t v);

    /** fflush every open file; fsync too when @p sync. */
    void flushAll(bool sync);

    mutable std::mutex mu_;
    std::string runId_;
    std::string runDir_;
    int fsyncEvery_ = 16;
    bool finalized_ = false;
    bool ioFailed_ = false; ///< Warn once, then degrade silently.

    std::FILE *meta_ = nullptr;
    std::FILE *dict_ = nullptr;
    std::map<std::string, std::uint32_t> dictIds_;
    std::vector<std::FILE *> resultCols_;
    std::vector<std::FILE *> engineCols_;
    std::uint64_t resultRows_ = 0;
    std::uint64_t engineRows_ = 0;
    std::uint64_t sinceSync_ = 0;
    std::map<std::string, std::uint64_t> counters_;
};

/** True when @p s is a valid warehouse run id ("000042"). */
bool isRunId(const std::string &s);

} // namespace warehouse
} // namespace unistc

#endif // UNISTC_WAREHOUSE_WAREHOUSE_HH
