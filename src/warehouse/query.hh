/**
 * @file
 * Analytics over the results warehouse: the trend/drift/cache-rate/
 * slowest-N queries behind unistc_query, plus the regression check
 * (--check-regressions) that compares the latest run against a named
 * baseline using the summary statistics in stattests.hh.
 *
 * Baselines come in two forms: a warehouse run (resolved by id or
 * label) or a committed BENCH_*.json file (bench/baselines/), parsed
 * back into rows by resultRowsFromBenchJson(). Both reduce to
 * std::vector<ResultRow>, so every query works on either.
 */

#ifndef UNISTC_WAREHOUSE_QUERY_HH
#define UNISTC_WAREHOUSE_QUERY_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json_reader.hh"
#include "robust/status.hh"
#include "warehouse/reader.hh"
#include "warehouse/stattests.hh"

namespace unistc
{
namespace warehouse
{

/**
 * Matrix family of a corpus name: the component before '/' for
 * path-style names, the prefix before a trailing "_<index>" for the
 * synthetic suite ("rand_d3_0" -> "rand_d3"), the whole name
 * otherwise ("shipsec1").
 */
std::string matrixFamily(const std::string &matrix);

/**
 * Per-row value of a named metric. Supported: "cycles",
 * "energy" (total pJ), "utilisation", "stalls", "products",
 * "traffic" (total A+B+C element moves). False on unknown names.
 */
bool metricValue(const ResultRow &row, const std::string &metric,
                 double *out);

/** True when larger @p metric values are better (utilisation). */
bool metricHigherIsBetter(const std::string &metric);

/** One run's aggregate position in a longitudinal trend. */
struct TrendPoint
{
    std::string runId;
    std::string time;
    std::string gitSha;
    std::size_t pairs = 0;   ///< Rows matched against the reference.
    double geomeanSpeedup = 1.0; ///< >1: better than the reference.
};

/**
 * Geomean speedup of @p metric over time: every run of @p bench
 * (all benches when empty), paired row-by-row against the EARLIEST
 * such run. Speedup is oriented so >1 always means improvement.
 */
Result<std::vector<TrendPoint>>
geomeanSpeedupTrend(const WarehouseReader &reader,
                    const std::string &bench,
                    const std::string &metric);

/** Utilisation drift of one matrix family across the store. */
struct DriftPoint
{
    std::string family;
    std::string firstRun;
    std::string lastRun;
    double firstUtil = 0.0; ///< Mean utilisation in the first run.
    double lastUtil = 0.0;  ///< Mean utilisation in the last run.
};

/** Per-family mean utilisation, earliest vs latest run. */
Result<std::vector<DriftPoint>>
utilisationDrift(const WarehouseReader &reader,
                 const std::string &bench);

/** Matrix-cache effectiveness of one run (META counters). */
struct CacheRatePoint
{
    std::string runId;
    std::string bench;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    double hitRate = 0.0; ///< hits / (hits + misses), 0 when idle.
};

/** Cache hit-rate per run, ascending by run id. */
std::vector<CacheRatePoint> cacheRates(const WarehouseReader &reader,
                                       const std::string &bench);

/** The N slowest (kernel, model, matrix) rows of one run. */
std::vector<ResultRow> slowestMatrices(const RunData &run,
                                       std::size_t n);

/** Knobs of the regression decision (see stattests.hh). */
struct RegressionOptions
{
    double ratioThreshold = 1.05; ///< Geomean shift that matters.
    double alpha = 0.05;          ///< One-sided t-test level.
    std::size_t minPairs = 1;     ///< Skip scopes with fewer pairs.
};

enum class Verdict
{
    Ok,
    Improved,
    Regressed,
};

/** One (metric, scope) comparison in a regression report. */
struct MetricCheck
{
    std::string metric;
    std::string scope; ///< "all" or "kernel=<name>".
    PairedSummary summary; ///< Ratios oriented so >1 means worse.
    Verdict verdict = Verdict::Ok;
    std::string worstKey;   ///< Row with the worst ratio.
    double worstRatio = 1.0;
};

struct RegressionReport
{
    std::size_t pairedRows = 0;
    std::size_t baselineOnly = 0; ///< Rows only in the baseline.
    std::size_t currentOnly = 0;  ///< Rows only in the current run.
    std::vector<MetricCheck> checks;

    bool hasRegression() const;
};

/**
 * Compare @p current against @p baseline: cycles, energy and
 * utilisation, overall and per kernel, each judged by
 * significantShift(). Rows pair on (kernel, model, matrix).
 */
RegressionReport checkRegressions(
    const std::vector<ResultRow> &baseline,
    const std::vector<ResultRow> &current,
    const RegressionOptions &opt);

/** Human-readable report; one line per check, worst-first. */
void printRegressionReport(std::ostream &os,
                           const RegressionReport &report,
                           const RegressionOptions &opt);

/**
 * Decode a bench JSON document ("unistc-bench", version <= 2) back
 * into result rows — the committed-baseline read path. Derived stats
 * (utilisation, energy.total) are recomputed, not trusted.
 */
Result<std::vector<ResultRow>>
resultRowsFromBenchJson(const JsonValue &doc,
                        const std::string &label);

/**
 * Serialise a loaded run in the exact UNISTC_BENCH_JSON format
 * (obs/bench_json.hh) — byte-identical to what the producing bench
 * would have written directly.
 */
void exportBenchJson(const RunData &run, std::ostream &os);

} // namespace warehouse
} // namespace unistc

#endif // UNISTC_WAREHOUSE_QUERY_HH
