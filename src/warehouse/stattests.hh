/**
 * @file
 * Small, self-contained summary statistics for regression checking
 * (query.hh). Works on paired per-matrix metric ratios: the natural
 * scale is logarithmic (a 2x slowdown and a 2x speedup should be
 * symmetric), so everything here summarises log-ratios.
 *
 * The simulator is deterministic, so identical binaries produce
 * ratios of exactly 1.0 and a zero-variance sample; the t-test
 * degenerates there and the verdict falls back to comparing the
 * geomean against the threshold directly (see significantShift).
 */

#ifndef UNISTC_WAREHOUSE_STATTESTS_HH
#define UNISTC_WAREHOUSE_STATTESTS_HH

#include <cstddef>
#include <vector>

namespace unistc
{
namespace warehouse
{

/** Moments of a paired log-ratio sample. */
struct PairedSummary
{
    std::size_t n = 0;    ///< Number of pairs.
    double meanLog = 0.0; ///< Mean of log(after/before).
    double sdLog = 0.0;   ///< Sample standard deviation (n-1).
    double geomean = 1.0; ///< exp(meanLog): geometric mean ratio.
    double minRatio = 1.0;
    double maxRatio = 1.0;
};

/**
 * Summarise strictly-positive after/before ratios. Non-positive or
 * non-finite ratios are skipped (a zero-cycle run carries no signal).
 */
PairedSummary summarizeRatios(const std::vector<double> &ratios);

/** Standard normal CDF. */
double normalCdf(double z);

/**
 * Student's t CDF with @p df degrees of freedom, via the regularised
 * incomplete beta function (continued fraction, Numerical-Recipes
 * style).
 */
double studentTCdf(double t, double df);

/**
 * One-sided p-value for "the mean log-ratio exceeds log(threshold)"
 * — i.e. the metric really did get at least `threshold`x worse.
 * Returns 1.0 when n < 2 (no evidence either way from variance).
 */
double pValueMeanAbove(const PairedSummary &s, double logThreshold);

/**
 * The decision used by --check-regressions: does this sample show a
 * significant shift past `threshold`x (in the direction of
 * meanLog's sign)? Degenerate zero-variance samples — deterministic
 * sims — compare |meanLog| against log(threshold) directly.
 */
bool significantShift(const PairedSummary &s, double ratioThreshold,
                      double alpha);

} // namespace warehouse
} // namespace unistc

#endif // UNISTC_WAREHOUSE_STATTESTS_HH
