#include "warehouse/sink.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <limits>

#include "cache/matrix_cache.hh"
#include "common/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
extern char **environ;
#define UNISTC_SINK_HAVE_ENVIRON 1
#else
#define UNISTC_SINK_HAVE_ENVIRON 0
#endif

namespace unistc
{
namespace warehouse
{

namespace
{

std::string
isoUtcNow()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
#if defined(_WIN32)
    gmtime_s(&tm, &now);
#else
    gmtime_r(&now, &tm);
#endif
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

std::string
baseName(const char *argv0)
{
    std::string s = argv0 != nullptr ? argv0 : "bench";
    const std::size_t slash = s.find_last_of("/\\");
    return slash == std::string::npos ? s : s.substr(slash + 1);
}

/** UNISTC_* environment, sorted for a deterministic META. */
std::vector<std::pair<std::string, std::string>>
capturedEnv()
{
    std::vector<std::pair<std::string, std::string>> out;
#if UNISTC_SINK_HAVE_ENVIRON
    for (char **e = environ; e != nullptr && *e != nullptr; ++e) {
        const char *eq = std::strchr(*e, '=');
        if (eq == nullptr)
            continue;
        const std::string key(*e, eq - *e);
        if (key.rfind("UNISTC_", 0) != 0)
            continue;
        out.emplace_back(key, std::string(eq + 1));
    }
    std::sort(out.begin(), out.end());
#endif
    return out;
}

/** Shared open-time options: environment + identity fields. */
RunWriterOptions
makeOptions(const std::string &bench, const std::string &label,
            const std::vector<std::string> &argv)
{
    RunWriterOptions opt;
    opt.dir = std::getenv("UNISTC_WAREHOUSE_DIR");
    opt.bench = bench;
    opt.label = label;
    if (opt.label.empty()) {
        if (const char *env = std::getenv("UNISTC_WAREHOUSE_LABEL"))
            opt.label = env;
    }
    if (const char *sha = std::getenv("UNISTC_GIT_SHA"))
        opt.gitSha = sha;
    opt.timeIso = isoUtcNow();
    opt.argv = argv;
    opt.env = capturedEnv();
    if (const char *fsync = std::getenv("UNISTC_WAREHOUSE_FSYNC"))
        opt.fsyncEvery = parseFsyncEnv(fsync, opt.fsyncEvery);
    return opt;
}

} // namespace

int
parseFsyncEnv(const char *text, int fallback)
{
    if (text == nullptr || *text == '\0')
        return fallback;
    char *end = nullptr;
    errno = 0;
    const long v = std::strtol(text, &end, 10);
    if (end == nullptr || *end != '\0' || errno == ERANGE || v < 0 ||
        v > std::numeric_limits<int>::max()) {
        UNISTC_WARN("ignoring bad UNISTC_WAREHOUSE_FSYNC '", text,
                    "' (want a non-negative integer; 0 = fsync only "
                    "at commit); keeping ", fallback);
        return fallback;
    }
    return static_cast<int>(v);
}

BenchSink &
BenchSink::instance()
{
    // Intentionally leaked, like ResultLog: the atexit finalize hook
    // must outlive static destruction.
    static BenchSink *sink = new BenchSink();
    return *sink;
}

void
BenchSink::configure(int argc, char **argv)
{
    std::lock_guard<std::mutex> lock(mu_);
    // Manual mode: the serve daemon opens one run per request via
    // beginManualRun(); the per-request DriverSession must not grab
    // a process-wide run here.
    if (configured_ || manual_)
        return;
    configured_ = true;
    const char *dir = std::getenv("UNISTC_WAREHOUSE_DIR");
    if (dir == nullptr || *dir == '\0')
        return;

    std::vector<std::string> args;
    for (int i = 0; i < argc; ++i)
        args.emplace_back(argv[i]);
    const RunWriterOptions opt = makeOptions(
        baseName(argc > 0 ? argv[0] : nullptr), "", args);

    auto writer = RunWriter::open(opt);
    if (!writer.ok()) {
        UNISTC_WARN("warehouse sink disabled: ",
                    writer.status().message());
        return;
    }
    writer_ = std::move(writer).value();
    UNISTC_INFORM("warehouse run ", writer_->runId(), " -> ",
                  writer_->runDir());
    std::atexit([] { BenchSink::instance().finalize(); });
}

void
BenchSink::record(const std::string &kernel, const std::string &model,
                  const std::string &matrix, const RunResult &result)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (writer_ == nullptr)
        return;
    ResultRow row;
    row.kernel = kernel;
    row.model = model;
    row.matrix = matrix;
    row.result = result;
    writer_->appendResult(row);
}

void
BenchSink::recordEngine(const std::string &kernel,
                        const std::string &matrix,
                        const PipelineCounters &counters, bool timed)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (writer_ == nullptr)
        return;
    EngineRow row;
    row.kernel = kernel;
    row.matrix = matrix;
    row.counters = counters;
    row.timed = timed;
    if (!timed) {
        // Untimed passes carry wall-clock noise in these fields;
        // zeroing them keeps row content identical across --jobs
        // worker counts and repeat runs.
        row.counters.enumerateSeconds = 0.0;
        row.counters.modelSeconds = 0.0;
    }
    writer_->appendEngine(row);
}

void
BenchSink::noteRecovery(const SweepExecutor::RecoveryCounters &rc)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (writer_ == nullptr)
        return;
    writer_->noteCounter("robust.faults_detected", rc.faultsDetected);
    writer_->noteCounter("robust.jobs_retried", rc.jobsRetried);
    writer_->noteCounter("robust.jobs_quarantined",
                         rc.jobsQuarantined);
    writer_->noteCounter("robust.jobs_timed_out", rc.jobsTimedOut);
}

void
BenchSink::noteShards(int shards, const ShardRecoveryCounters &sc)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (writer_ == nullptr)
        return;
    writer_->noteCounter("robust.shard_count",
                         static_cast<std::uint64_t>(shards));
    writer_->noteCounter("robust.shard_spawned", sc.spawned);
    writer_->noteCounter("robust.shard_completed", sc.completed);
    writer_->noteCounter("robust.shard_killed_wall_clock",
                         sc.killedWallClock);
    writer_->noteCounter("robust.shard_killed_heartbeat",
                         sc.killedHeartbeat);
    writer_->noteCounter("robust.shard_crashed", sc.crashed);
    writer_->noteCounter("robust.shard_retried", sc.retried);
    writer_->noteCounter("robust.shard_quarantined", sc.quarantined);
    writer_->noteCounter("robust.shard_heartbeats", sc.heartbeats);
}

void
BenchSink::setManual(bool on)
{
    std::lock_guard<std::mutex> lock(mu_);
    manual_ = on;
}

void
BenchSink::beginManualRun(const std::string &bench,
                          const std::string &label,
                          const std::vector<std::string> &argv)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (writer_ != nullptr)
        finalizeLocked();
    const char *dir = std::getenv("UNISTC_WAREHOUSE_DIR");
    if (dir == nullptr || *dir == '\0')
        return;
    auto writer = RunWriter::open(makeOptions(bench, label, argv));
    if (!writer.ok()) {
        UNISTC_WARN("warehouse sink disabled: ",
                    writer.status().message());
        return;
    }
    writer_ = std::move(writer).value();
    UNISTC_INFORM("warehouse run ", writer_->runId(), " -> ",
                  writer_->runDir());
    if (!configured_) {
        // Crash safety: an unexpected daemon death still seals the
        // run that was open at the time.
        configured_ = true;
        std::atexit([] { BenchSink::instance().finalize(); });
    }
}

void
BenchSink::finishManualRun(
    const std::map<std::string, std::uint64_t> &counters)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (writer_ == nullptr)
        return;
    for (const auto &kv : counters)
        writer_->noteCounter(kv.first, kv.second);
    finalizeLocked();
}

void
BenchSink::finalize()
{
    std::lock_guard<std::mutex> lock(mu_);
    finalizeLocked();
}

void
BenchSink::finalizeLocked()
{
    if (writer_ == nullptr)
        return;
    const MatrixCache &cache = MatrixCache::global();
    if (cache.enabled()) {
        const CacheCounters c = cache.counters();
        writer_->noteCounter("cache.hits", c.hits);
        writer_->noteCounter("cache.misses", c.misses);
        writer_->noteCounter("cache.bytesRead", c.bytesRead);
        writer_->noteCounter("cache.bytesWritten", c.bytesWritten);
        writer_->noteCounter("cache.loadFailures", c.loadFailures);
        writer_->noteCounter("cache.storeFailures", c.storeFailures);
    }
    if (Status s = writer_->finalize(); !s.ok())
        UNISTC_WARN("warehouse commit failed: ", s.message());
    writer_.reset();
}

std::string
BenchSink::runId() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return writer_ != nullptr ? writer_->runId() : std::string();
}

} // namespace warehouse
} // namespace unistc
