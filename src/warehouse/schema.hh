/**
 * @file
 * On-disk schema of the results warehouse (docs/WAREHOUSE.md).
 *
 * A warehouse is a directory of runs; one bench run = one commit:
 *
 *   <dir>/<run-id>/META          text commit record (key=value lines)
 *   <dir>/<run-id>/COMMIT        marker, written last on clean close
 *   <dir>/<run-id>/strings.dict  string table, one escaped line per id
 *   <dir>/<run-id>/r_<col>.bin   result columns (one file per column)
 *   <dir>/<run-id>/e_<col>.bin   engine-pass columns
 *
 * Column files are append-only binary: an 8-byte header (magic,
 * schema version, element width) followed by little-endian elements.
 * Strings (kernel/model/matrix names) are dictionary-encoded as u32
 * ids into strings.dict; numeric columns are u64 (doubles stored as
 * their IEEE-754 bit pattern, so round-trips are bit-exact). A
 * truncated file — crashed or killed bench — loses at most the
 * partial trailing element: readers recover the longest consistent
 * row prefix instead of failing.
 */

#ifndef UNISTC_WAREHOUSE_SCHEMA_HH
#define UNISTC_WAREHOUSE_SCHEMA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "engine/kernel_pipeline.hh"
#include "robust/status.hh"
#include "sim/result.hh"

namespace unistc
{
namespace warehouse
{

/** Whole-store schema version; readers reject anything newer. */
inline constexpr int kSchemaVersion = 1;

/** Column file magic, serialised as the bytes 'U' 'C' 'O' 'L'. */
inline constexpr char kColumnMagic[4] = {'U', 'C', 'O', 'L'};

/** Size of the column file header in bytes. */
inline constexpr std::size_t kColumnHeaderBytes = 8;

/** Element encoding of one column. */
enum class ColType : std::uint8_t
{
    U32, ///< Little-endian uint32 (dictionary ids, flags).
    U64, ///< Little-endian uint64 (counters).
    F64, ///< IEEE-754 double bit pattern in a little-endian uint64.
};

/** Element width in bytes. */
std::size_t colWidth(ColType t);

/** One column of a row group. */
struct ColumnDef
{
    const char *name; ///< File stem ("cycles" -> r_cycles.bin).
    ColType type;
};

/**
 * Result-row columns, in pack order: the string-dictionary columns
 * (kernel, model, matrix) followed by the numeric payload produced
 * by packResult().
 */
const std::vector<ColumnDef> &resultColumns();

/** Engine-row columns: (kernel, matrix) dict ids + packEngine(). */
const std::vector<ColumnDef> &engineColumns();

/** Dictionary-id columns leading resultColumns()/engineColumns(). */
inline constexpr std::size_t kResultDictColumns = 3;
inline constexpr std::size_t kEngineDictColumns = 2;

/** One per-(kernel, model, matrix) metric row. */
struct ResultRow
{
    std::string kernel;
    std::string model;
    std::string matrix;
    RunResult result;
};

/** One engine pass (shared task stream fan-out) row. */
struct EngineRow
{
    std::string kernel;
    std::string matrix;
    PipelineCounters counters;
    bool timed = false;
};

/**
 * Numeric payload of a result row, one u64 slot per numeric column
 * of resultColumns() (doubles bit-cast). The 4-bucket utilisation
 * histogram is stored exploded (lo, hi, total, nan, b0..b3) so the
 * row is fixed-width.
 */
std::vector<std::uint64_t> packResult(const RunResult &res);

/**
 * Rebuild a RunResult from packResult() slots — bit-exact, including
 * the histogram (counts are replayed into the original buckets).
 * Typed error when the slots are internally inconsistent.
 */
Result<RunResult> unpackResult(const std::vector<std::uint64_t> &s);

/** Numeric payload of an engine row. */
std::vector<std::uint64_t> packEngine(const PipelineCounters &c,
                                      bool timed);

/** Inverse of packEngine(). */
void unpackEngine(const std::vector<std::uint64_t> &s,
                  PipelineCounters *c, bool *timed);

/**
 * %-escape @p s for single-line storage (META values, dictionary
 * lines): '%', newline, carriage return — and nothing else, so the
 * common case stays readable.
 */
std::string escapeField(const std::string &s);

/** Inverse of escapeField(); typed error on malformed escapes. */
Result<std::string> unescapeField(const std::string &s);

} // namespace warehouse
} // namespace unistc

#endif // UNISTC_WAREHOUSE_SCHEMA_HH
