#include "warehouse/reader.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/logging.hh"
#include "warehouse/warehouse.hh"

namespace unistc
{
namespace warehouse
{

namespace fs = std::filesystem;

namespace
{

/** Whole file as a string ("" + error when unreadable). */
Result<std::string>
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        return Result<std::string>(ioError(
            "cannot open '" + path + "': " + std::strerror(errno)));
    }
    std::string out;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

/**
 * Split into complete lines; an unterminated trailing fragment is a
 * torn write and is dropped, matching the writer's line-at-a-time
 * append discipline.
 */
std::vector<std::string>
completeLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '\n') {
            lines.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return lines;
}

bool
parseU64(const std::string &s, std::uint64_t *out)
{
    if (s.empty())
        return false;
    std::uint64_t v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    *out = v;
    return true;
}

/**
 * One decoded column: whole little-endian elements after a valid
 * header. A missing file or torn header reads as zero elements; a
 * header from a newer schema is a typed error.
 */
Result<std::vector<std::uint64_t>>
readColumn(const std::string &path, ColType type, bool *missing)
{
    using R = Result<std::vector<std::uint64_t>>;
    *missing = false;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        *missing = true;
        return R(std::vector<std::uint64_t>{});
    }
    unsigned char hdr[kColumnHeaderBytes];
    if (std::fread(hdr, 1, sizeof(hdr), f) != sizeof(hdr)) {
        // Torn before the header completed: no rows to recover.
        std::fclose(f);
        return R(std::vector<std::uint64_t>{});
    }
    if (std::memcmp(hdr, kColumnMagic, 4) != 0) {
        std::fclose(f);
        return R(corruptData("'" + path +
                             "' is not a warehouse column file"));
    }
    const int version = hdr[4] | (hdr[5] << 8);
    if (version > kSchemaVersion) {
        std::fclose(f);
        return R(failedPrecondition(
            "'" + path + "' was written by schema version " +
            std::to_string(version) + "; this reader understands <= " +
            std::to_string(kSchemaVersion)));
    }
    const std::size_t width =
        static_cast<std::size_t>(hdr[6] | (hdr[7] << 8));
    if (width != colWidth(type)) {
        std::fclose(f);
        return R(corruptData(
            "'" + path + "' declares " + std::to_string(width) +
            "-byte elements, schema expects " +
            std::to_string(colWidth(type))));
    }
    std::vector<std::uint64_t> vals;
    unsigned char buf[8];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, width, f)) == width) {
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < width; ++i)
            v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
        vals.push_back(v);
    }
    // n < width here: a torn trailing element, silently dropped.
    std::fclose(f);
    return R(std::move(vals));
}

/**
 * All columns of one row group, truncated to the longest consistent
 * row prefix. @p drops counts rows lost to truncation.
 */
Result<std::vector<std::vector<std::uint64_t>>>
readColumnGroup(const std::string &runDir,
                const std::vector<ColumnDef> &defs, const char *prefix,
                std::uint64_t *drops)
{
    using R = Result<std::vector<std::vector<std::uint64_t>>>;
    std::vector<std::vector<std::uint64_t>> cols;
    cols.reserve(defs.size());
    std::size_t minRows = 0, maxRows = 0;
    bool anyPresent = false;
    for (const ColumnDef &def : defs) {
        const std::string path =
            runDir + "/" + prefix + def.name + ".bin";
        bool missing = false;
        auto col = readColumn(path, def.type, &missing);
        if (!col.ok())
            return R(col.status());
        if (!missing)
            anyPresent = true;
        const std::size_t rows = col.value().size();
        if (cols.empty())
            minRows = maxRows = rows;
        minRows = std::min(minRows, rows);
        maxRows = std::max(maxRows, rows);
        cols.push_back(std::move(col).value());
    }
    if (!anyPresent) {
        // The group was never opened: a legal empty run, not a torn
        // one.
        for (auto &c : cols)
            c.clear();
        return R(std::move(cols));
    }
    *drops += maxRows - minRows;
    for (auto &c : cols)
        c.resize(minRows);
    return R(std::move(cols));
}

} // namespace

Result<RunMeta>
readRunMeta(const std::string &runDir, const std::string &runId)
{
    auto text = slurp(runDir + "/META");
    if (!text.ok())
        return Result<RunMeta>(text.status());
    RunMeta meta;
    meta.id = runId;
    meta.dir = runDir;
    for (const std::string &line : completeLines(text.value())) {
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        const std::string key = line.substr(0, eq);
        auto value = unescapeField(line.substr(eq + 1));
        if (!value.ok()) {
            return Result<RunMeta>(corruptData(
                "bad META line in '" + runDir +
                "': " + value.status().message()));
        }
        const std::string &v = value.value();
        std::uint64_t u = 0;
        if (key == "schema") {
            if (!parseU64(v, &u)) {
                return Result<RunMeta>(corruptData(
                    "unparseable schema version in '" + runDir +
                    "/META'"));
            }
            meta.schema = static_cast<int>(u);
        } else if (key == "bench") {
            meta.bench = v;
        } else if (key == "label") {
            meta.label = v;
        } else if (key == "git_sha") {
            meta.gitSha = v;
        } else if (key == "time") {
            meta.time = v;
        } else if (key == "argv") {
            meta.argvLine = v;
        } else if (key.rfind("env.", 0) == 0) {
            auto envKey = unescapeField(key.substr(4));
            if (envKey.ok())
                meta.env.emplace_back(envKey.value(), v);
        } else if (key == "rows.results" && parseU64(v, &u)) {
            meta.declaredResultRows = u;
            meta.hasDeclaredRows = true;
        } else if (key == "rows.engine" && parseU64(v, &u)) {
            meta.declaredEngineRows = u;
            meta.hasDeclaredRows = true;
        } else if (key.rfind("counter.", 0) == 0 && parseU64(v, &u)) {
            auto name = unescapeField(key.substr(8));
            if (name.ok())
                meta.counters[name.value()] = u;
        }
        // Unknown keys from an older-compatible writer are ignored.
    }
    if (meta.schema <= 0) {
        return Result<RunMeta>(
            corruptData("'" + runDir + "/META' lacks a schema line"));
    }
    if (meta.schema > kSchemaVersion) {
        return Result<RunMeta>(failedPrecondition(
            "run '" + runId + "' was written by schema version " +
            std::to_string(meta.schema) +
            "; this reader understands <= " +
            std::to_string(kSchemaVersion)));
    }
    std::error_code ec;
    meta.committed = fs::exists(fs::path(runDir) / "COMMIT", ec);
    return meta;
}

std::vector<RunMeta>
WarehouseReader::runs() const
{
    std::vector<RunMeta> out;
    std::error_code ec;
    fs::directory_iterator it(dir_, ec);
    if (ec)
        return out;
    for (const auto &entry : it) {
        const std::string name = entry.path().filename().string();
        if (!isRunId(name))
            continue;
        auto meta = readRunMeta(entry.path().string(), name);
        if (!meta.ok()) {
            UNISTC_WARN("skipping warehouse run ", name, ": ",
                        meta.status().message());
            continue;
        }
        out.push_back(std::move(meta).value());
    }
    std::sort(out.begin(), out.end(),
              [](const RunMeta &a, const RunMeta &b) {
                  return a.id < b.id;
              });
    return out;
}

Result<std::string>
WarehouseReader::resolve(const std::string &selector,
                         const std::string &bench) const
{
    using R = Result<std::string>;
    if (isRunId(selector)) {
        std::error_code ec;
        if (!fs::exists(fs::path(dir_) / selector / "META", ec)) {
            return R(invalidArgument("no run '" + selector +
                                     "' in warehouse '" + dir_ +
                                     "'"));
        }
        return R(selector);
    }
    const std::vector<RunMeta> all = runs();
    const bool wantLatest = selector == "latest";
    for (auto it = all.rbegin(); it != all.rend(); ++it) {
        if (!bench.empty() && it->bench != bench)
            continue;
        if (wantLatest || it->label == selector)
            return R(it->id);
    }
    if (wantLatest) {
        return R(invalidArgument(
            "warehouse '" + dir_ + "' has no runs" +
            (bench.empty() ? "" : " from bench '" + bench + "'")));
    }
    return R(invalidArgument("no run labelled '" + selector +
                             "' in warehouse '" + dir_ + "'"));
}

Result<RunData>
WarehouseReader::load(const std::string &runId) const
{
    using R = Result<RunData>;
    const std::string runDir =
        (fs::path(dir_) / runId).string();
    auto meta = readRunMeta(runDir, runId);
    if (!meta.ok())
        return R(meta.status());
    RunData data;
    data.meta = std::move(meta).value();

    // The dictionary; a torn trailing line (no newline) is dropped,
    // and any row still pointing past the recovered table is dropped
    // with it below.
    std::vector<std::string> dict;
    {
        auto text = slurp(runDir + "/strings.dict");
        if (text.ok()) {
            for (const std::string &line :
                 completeLines(text.value())) {
                auto s = unescapeField(line);
                if (!s.ok()) {
                    return R(corruptData(
                        "bad dictionary line in run '" + runId +
                        "': " + s.status().message()));
                }
                dict.push_back(std::move(s).value());
            }
        }
    }
    const auto dictAt =
        [&dict](std::uint64_t id, std::string *out) -> bool {
        if (id >= dict.size())
            return false;
        *out = dict[static_cast<std::size_t>(id)];
        return true;
    };

    auto rcols = readColumnGroup(runDir, resultColumns(), "r_",
                                 &data.recoveredDrops);
    if (!rcols.ok())
        return R(rcols.status());
    const auto &rc = rcols.value();
    const std::size_t rrows = rc.empty() ? 0 : rc[0].size();
    for (std::size_t row = 0; row < rrows; ++row) {
        ResultRow out;
        if (!dictAt(rc[0][row], &out.kernel) ||
            !dictAt(rc[1][row], &out.model) ||
            !dictAt(rc[2][row], &out.matrix)) {
            ++data.recoveredDrops;
            continue;
        }
        std::vector<std::uint64_t> slots;
        slots.reserve(rc.size() - kResultDictColumns);
        for (std::size_t c = kResultDictColumns; c < rc.size(); ++c)
            slots.push_back(rc[c][row]);
        auto res = unpackResult(slots);
        if (!res.ok()) {
            return R(corruptData("run '" + runId + "' row " +
                                 std::to_string(row) + ": " +
                                 res.status().message()));
        }
        out.result = std::move(res).value();
        data.results.push_back(std::move(out));
    }

    auto ecols = readColumnGroup(runDir, engineColumns(), "e_",
                                 &data.recoveredDrops);
    if (!ecols.ok())
        return R(ecols.status());
    const auto &ec2 = ecols.value();
    const std::size_t erows = ec2.empty() ? 0 : ec2[0].size();
    for (std::size_t row = 0; row < erows; ++row) {
        EngineRow out;
        if (!dictAt(ec2[0][row], &out.kernel) ||
            !dictAt(ec2[1][row], &out.matrix)) {
            ++data.recoveredDrops;
            continue;
        }
        std::vector<std::uint64_t> slots;
        slots.reserve(ec2.size() - kEngineDictColumns);
        for (std::size_t c = kEngineDictColumns; c < ec2.size(); ++c)
            slots.push_back(ec2[c][row]);
        unpackEngine(slots, &out.counters, &out.timed);
        data.engine.push_back(std::move(out));
    }

    if (data.recoveredDrops > 0) {
        UNISTC_WARN("warehouse run ", runId, " recovered with ",
                    data.recoveredDrops, " dropped row(s)");
    }
    return R(std::move(data));
}

} // namespace warehouse
} // namespace unistc
