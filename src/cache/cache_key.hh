/**
 * @file
 * Content-addressed cache keys for generated matrices. A MatrixSpec
 * captures everything that determines a generator's output — family
 * name, ordered numeric arguments, seed — plus the format parameters
 * baked into the cached artifact (block geometry, value type). Its
 * canonical serialization is the cache identity: the FNV-1a 64 hash
 * of that string names the on-disk entry, and the string itself is
 * stored in the sidecar record so a hash collision or a stale entry
 * is detected on load instead of silently returning the wrong
 * matrix (docs/CACHING.md).
 */

#ifndef UNISTC_CACHE_CACHE_KEY_HH
#define UNISTC_CACHE_CACHE_KEY_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace unistc
{

/**
 * Builder for a generator-spec cache key. Arguments are serialised
 * in insertion order, so every generator wrapper lists its
 * parameters in signature order and two different generators can
 * never produce the same canonical string (the family name leads).
 *
 *   MatrixSpec("banded").arg("n", 1024).arg("hb", 16)
 *       .arg("fill", 0.5).seed(1).canonical()
 *     == "banded(n=1024,hb=16,fill=0.5);seed=1;block=16;values=f64"
 */
class MatrixSpec
{
  public:
    explicit MatrixSpec(std::string family);

    /** Append an integer argument. */
    MatrixSpec &arg(const std::string &name, std::int64_t v);

    /** Disambiguates int literals from the double overload. */
    MatrixSpec &
    arg(const std::string &name, int v)
    {
        return arg(name, static_cast<std::int64_t>(v));
    }

    /**
     * Append a real argument, serialised with max_digits10
     * precision so distinct doubles always get distinct keys and
     * the same double always serialises identically.
     */
    MatrixSpec &arg(const std::string &name, double v);

    /** Set the generator seed (default 0 for seedless families). */
    MatrixSpec &seed(std::uint64_t s);

    const std::string &family() const { return family_; }

    /**
     * Canonical serialization:
     *   family(name=value,...);seed=S;block=16;values=f64
     * The trailing format fields invalidate every entry if the BBC
     * block geometry or the stored value type ever changes.
     */
    std::string canonical() const;

    /** FNV-1a 64 hash of canonical(). */
    std::uint64_t key() const;

    /** key() as 16 lower-case hex digits — the entry's file stem. */
    std::string keyHex() const;

  private:
    std::string family_;
    std::vector<std::pair<std::string, std::string>> args_;
    std::uint64_t seed_ = 0;
};

} // namespace unistc

#endif // UNISTC_CACHE_CACHE_KEY_HH
