#include "cache/matrix_cache.hh"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "bbc/bbc_io.hh"
#include "common/logging.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"
#include "robust/checksum.hh"

namespace unistc
{

namespace
{

constexpr const char *kMetaHeader = "unistc-cache-meta v1";

/** Whole-string strict integer parse (no sign for unsigned types). */
template <typename T>
bool
parseWholeInt(const std::string &text, T &out)
{
    if (text.empty())
        return false;
    const char *first = text.data();
    const char *last = text.data() + text.size();
    const auto r = std::from_chars(first, last, out);
    return r.ec == std::errc() && r.ptr == last;
}

/** Slurp a whole file; empty optional on any I/O failure. */
bool
readFileBytes(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!in.good() && !in.eof())
        return false;
    out = ss.str();
    return true;
}

/** Atomic write: temp file in the same directory, then rename. */
Status
writeFileAtomic(const std::string &path, const std::string &bytes)
{
#if defined(__unix__) || defined(__APPLE__)
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
#else
    const std::string tmp = path + ".tmp";
#endif
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return ioError("cannot open '" + tmp + "' for writing");
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out.good()) {
            std::remove(tmp.c_str());
            return ioError("short write to '" + tmp + "'");
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return ioError("cannot rename '" + tmp + "' to '" + path +
                       "'");
    }
    return Status::okStatus();
}

} // namespace

bool
parseCacheMode(const std::string &text, CacheMode &out)
{
    if (text == "off") {
        out = CacheMode::Off;
        return true;
    }
    if (text == "ro") {
        out = CacheMode::ReadOnly;
        return true;
    }
    if (text == "rw") {
        out = CacheMode::ReadWrite;
        return true;
    }
    return false;
}

const char *
toString(CacheMode mode)
{
    switch (mode) {
      case CacheMode::Off:
        return "off";
      case CacheMode::ReadOnly:
        return "ro";
      case CacheMode::ReadWrite:
        return "rw";
    }
    return "?";
}

std::string
formatCacheMeta(const CacheMeta &meta)
{
    std::string out = kMetaHeader;
    out += '\n';
    out += "spec: " + meta.spec + '\n';
    out += "rows: " + std::to_string(meta.rows) + '\n';
    out += "cols: " + std::to_string(meta.cols) + '\n';
    out += "nnz: " + std::to_string(meta.nnz) + '\n';
    out += "blocks: " + std::to_string(meta.blocks) + '\n';
    out += "payload_bytes: " + std::to_string(meta.payloadBytes) +
        '\n';
    return out;
}

Result<CacheMeta>
parseCacheMeta(const std::string &text, const std::string &label)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != kMetaHeader) {
        return parseError(label + ": missing '" +
                          std::string(kMetaHeader) + "' header");
    }
    CacheMeta meta;
    bool haveSpec = false, haveRows = false, haveCols = false;
    bool haveNnz = false, haveBlocks = false, havePayload = false;
    int lineNo = 1;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto sep = line.find(": ");
        if (sep == std::string::npos || sep == 0) {
            return parseError(label + ": line " +
                              std::to_string(lineNo) +
                              " is not 'key: value'");
        }
        const std::string key = line.substr(0, sep);
        const std::string value = line.substr(sep + 2);
        auto dup = [&] {
            return parseError(label + ": duplicate '" + key +
                              "' field");
        };
        auto badInt = [&] {
            return parseError(label + ": bad integer '" + value +
                              "' for '" + key + "'");
        };
        if (key == "spec") {
            if (haveSpec)
                return dup();
            if (value.empty())
                return parseError(label + ": empty spec field");
            meta.spec = value;
            haveSpec = true;
        } else if (key == "rows") {
            if (haveRows)
                return dup();
            if (!parseWholeInt(value, meta.rows) || meta.rows < 0)
                return badInt();
            haveRows = true;
        } else if (key == "cols") {
            if (haveCols)
                return dup();
            if (!parseWholeInt(value, meta.cols) || meta.cols < 0)
                return badInt();
            haveCols = true;
        } else if (key == "nnz") {
            if (haveNnz)
                return dup();
            if (!parseWholeInt(value, meta.nnz) || meta.nnz < 0)
                return badInt();
            haveNnz = true;
        } else if (key == "blocks") {
            if (haveBlocks)
                return dup();
            if (!parseWholeInt(value, meta.blocks) ||
                meta.blocks < 0)
                return badInt();
            haveBlocks = true;
        } else if (key == "payload_bytes") {
            if (havePayload)
                return dup();
            if (!parseWholeInt(value, meta.payloadBytes))
                return badInt();
            havePayload = true;
        } else {
            return parseError(label + ": unknown field '" + key +
                              "'");
        }
    }
    if (!haveSpec || !haveRows || !haveCols || !haveNnz ||
        !haveBlocks || !havePayload) {
        return parseError(label + ": missing required field(s)");
    }
    return meta;
}

void
MatrixCache::configure(std::string dir, CacheMode mode)
{
    std::lock_guard<std::mutex> lock(mu_);
    dir_ = std::move(dir);
    mode_ = dir_.empty() ? CacheMode::Off : mode;
    entries_.clear();
    byContent_.clear();
    counters_ = CacheCounters();
    entryBytes_ = RunningStat();
    timings_.clear();
    if (mode_ == CacheMode::Off) {
        dir_.clear();
        return;
    }
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec && !std::filesystem::is_directory(dir_)) {
        UNISTC_WARN("matrix cache disabled: cannot create '", dir_,
                    "': ", ec.message());
        dir_.clear();
        mode_ = CacheMode::Off;
    }
}

bool
MatrixCache::enabled() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return mode_ != CacheMode::Off;
}

CacheMode
MatrixCache::mode() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return mode_;
}

std::string
MatrixCache::dir() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dir_;
}

std::string
MatrixCache::entryPath(const MatrixSpec &spec) const
{
    return dir() + "/" + spec.keyHex() + ".bbc";
}

std::string
MatrixCache::metaPath(const MatrixSpec &spec) const
{
    return dir() + "/" + spec.keyHex() + ".meta";
}

Result<BbcMatrix>
MatrixCache::tryLoadEntry(const MatrixSpec &spec,
                          std::uint64_t *bytes)
{
    const std::string bbcPath = entryPath(spec);
    const std::string metaText0 = metaPath(spec);
    std::string payload;
    if (!readFileBytes(bbcPath, payload))
        return ioError("no cache entry at '" + bbcPath + "'");
    std::string metaText;
    if (!readFileBytes(metaText0, metaText)) {
        return corruptData("cache entry '" + bbcPath +
                           "' has no sidecar record");
    }
    Result<CacheMeta> meta = parseCacheMeta(metaText, metaText0);
    if (!meta.ok())
        return meta.status();
    if (meta.value().spec != spec.canonical()) {
        return corruptData("cache entry '" + bbcPath +
                           "' holds spec '" + meta.value().spec +
                           "', wanted '" + spec.canonical() + "'");
    }
    if (meta.value().payloadBytes != payload.size()) {
        return corruptData(
            "cache entry '" + bbcPath + "' is " +
            std::to_string(payload.size()) + " B, sidecar says " +
            std::to_string(meta.value().payloadBytes) + " B");
    }
    std::istringstream in(payload);
    Result<BbcMatrix> loaded = tryLoadBbc(in, bbcPath);
    if (!loaded.ok())
        return loaded.status();
    const BbcMatrix &m = loaded.value();
    if (m.rows() != meta.value().rows ||
        m.cols() != meta.value().cols ||
        m.nnz() != meta.value().nnz ||
        m.numBlocks() != meta.value().blocks) {
        return corruptData("cache entry '" + bbcPath +
                           "' shape disagrees with its sidecar");
    }
    *bytes = payload.size() + metaText.size();
    return loaded;
}

Status
MatrixCache::storeEntry(const MatrixSpec &spec, const BbcMatrix &bbc,
                        std::uint64_t *bytes)
{
    std::ostringstream out;
    if (Status s = trySaveBbc(out, bbc, entryPath(spec)); !s.ok())
        return s;
    const std::string payload = out.str();
    CacheMeta meta;
    meta.spec = spec.canonical();
    meta.rows = bbc.rows();
    meta.cols = bbc.cols();
    meta.nnz = bbc.nnz();
    meta.blocks = bbc.numBlocks();
    meta.payloadBytes = payload.size();
    const std::string metaText = formatCacheMeta(meta);
    if (Status s = writeFileAtomic(entryPath(spec), payload);
        !s.ok())
        return s;
    if (Status s = writeFileAtomic(metaPath(spec), metaText);
        !s.ok())
        return s;
    *bytes = payload.size() + metaText.size();
    return Status::okStatus();
}

void
MatrixCache::recordOutcome(const MatrixSpec &spec, bool hit,
                           std::uint64_t micros)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (hit)
        ++counters_.hits;
    else
        ++counters_.misses;
    CacheKeyTiming t;
    t.keyHex = spec.keyHex();
    t.spec = spec.canonical();
    t.hit = hit;
    t.micros = micros;
    timings_.push_back(std::move(t));
}

std::shared_ptr<const BbcMatrix>
MatrixCache::getOrBuild(const MatrixSpec &spec,
                        const std::function<CsrMatrix()> &build)
{
    CacheMode mode;
    std::shared_ptr<Entry> ent;
    {
        std::lock_guard<std::mutex> lock(mu_);
        mode = mode_;
        if (mode != CacheMode::Off) {
            auto &slot = entries_[spec.key()];
            if (slot == nullptr) {
                slot = std::make_shared<Entry>();
                slot->spec = spec.canonical();
            }
            ent = slot;
        }
    }
    if (mode == CacheMode::Off) {
        return std::make_shared<const BbcMatrix>(
            BbcMatrix::fromCsr(build()));
    }
    if (ent->spec != spec.canonical()) {
        // In-process FNV collision between two live specs: serve
        // this request uncached rather than corrupt either entry.
        UNISTC_WARN("matrix cache key collision between '",
                    ent->spec, "' and '", spec.canonical(),
                    "'; bypassing the cache for the latter");
        return std::make_shared<const BbcMatrix>(
            BbcMatrix::fromCsr(build()));
    }

    const auto t0 = std::chrono::steady_clock::now();
    // Per-key lock: concurrent requests for the same key serialise
    // here, so the generator runs at most once per key per process.
    std::lock_guard<std::mutex> keyLock(ent->mu);
    if (ent->bbc != nullptr) {
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        recordOutcome(spec, /*hit=*/true,
                      static_cast<std::uint64_t>(us));
        return ent->bbc;
    }

    std::uint64_t bytes = 0;
    bool hit = false;
    Result<BbcMatrix> loaded = tryLoadEntry(spec, &bytes);
    if (loaded.ok()) {
        ent->bbc = std::make_shared<const BbcMatrix>(
            std::move(loaded).value());
        hit = true;
        std::lock_guard<std::mutex> lock(mu_);
        counters_.bytesRead += bytes;
        entryBytes_.add(static_cast<double>(bytes));
    } else {
        // A plain IoError means the entry simply isn't there (cold
        // cache); anything else is a damaged entry worth a warning.
        if (loaded.status().code() != ErrorCode::IoError) {
            UNISTC_WARN("matrix cache entry for '", spec.canonical(),
                        "' is invalid (", loaded.status().toString(),
                        "); regenerating");
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.loadFailures;
        }
        ent->bbc = std::make_shared<const BbcMatrix>(
            BbcMatrix::fromCsr(build()));
        if (mode == CacheMode::ReadWrite) {
            std::uint64_t written = 0;
            if (Status s = storeEntry(spec, *ent->bbc, &written);
                s.ok()) {
                std::lock_guard<std::mutex> lock(mu_);
                counters_.bytesWritten += written;
                entryBytes_.add(static_cast<double>(written));
            } else {
                UNISTC_WARN("matrix cache store for '",
                            spec.canonical(), "' failed: ",
                            s.toString());
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.storeFailures;
            }
        }
    }
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    recordOutcome(spec, hit, static_cast<std::uint64_t>(us));
    return ent->bbc;
}

std::uint64_t
csrFingerprint(const CsrMatrix &csr)
{
    const std::int64_t shape[3] = {csr.rows(), csr.cols(),
                                   csr.nnz()};
    std::uint64_t h = fnv1a64(shape, sizeof shape);
    h = fnv1a64(csr.rowPtr().data(),
                csr.rowPtr().size() * sizeof csr.rowPtr()[0], h);
    h = fnv1a64(csr.colIdx().data(),
                csr.colIdx().size() * sizeof csr.colIdx()[0], h);
    h = fnv1a64(csr.vals().data(),
                csr.vals().size() * sizeof csr.vals()[0], h);
    return h;
}

std::shared_ptr<const BbcMatrix>
MatrixCache::findBbcFor(const CsrMatrix &csr) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (mode_ == CacheMode::Off)
        return nullptr;
    const auto it = byContent_.find(csrFingerprint(csr));
    return it == byContent_.end() ? nullptr : it->second;
}

void
MatrixCache::noteCsr(const CsrMatrix &csr,
                     std::shared_ptr<const BbcMatrix> bbc)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (mode_ == CacheMode::Off)
        return;
    byContent_[csrFingerprint(csr)] = std::move(bbc);
}

CacheCounters
MatrixCache::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

std::vector<CacheKeyTiming>
MatrixCache::keyTimings() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return timings_;
}

void
MatrixCache::registerStats(StatRegistry &reg,
                           const std::string &prefix) const
{
    CacheCounters c;
    RunningStat entryBytes;
    {
        std::lock_guard<std::mutex> lock(mu_);
        c = counters_;
        entryBytes = entryBytes_;
    }
    reg.setCounter(prefix + "hits", c.hits,
                   "cache requests served without generating");
    reg.setCounter(prefix + "misses", c.misses,
                   "cache requests that ran the generator");
    reg.setCounter(prefix + "bytes_read", c.bytesRead,
                   "entry + sidecar bytes loaded from the cache");
    reg.setCounter(prefix + "bytes_written", c.bytesWritten,
                   "entry + sidecar bytes stored into the cache");
    reg.setCounter(prefix + "load_failures", c.loadFailures,
                   "corrupt or invalid entries regenerated");
    reg.setCounter(prefix + "store_failures", c.storeFailures,
                   "entry writes that failed");
    // Explicit count-0 record when nothing moved (empty-stat JSON
    // contract; min/max only exist once there is a sample).
    reg.setCounter(prefix + "entry_bytes.count", entryBytes.count(),
                   "cache entries moved (read or written)");
    if (entryBytes.count() > 0) {
        reg.setScalar(prefix + "entry_bytes.min", entryBytes.min());
        reg.setScalar(prefix + "entry_bytes.max", entryBytes.max());
        reg.setScalar(prefix + "entry_bytes.mean",
                      entryBytes.mean());
    }
}

void
MatrixCache::appendTraceEvents(TraceSink &sink, int pid) const
{
    const std::vector<CacheKeyTiming> timings = keyTimings();
    if (timings.empty())
        return;
    sink.setProcess(pid, "matrix-cache");
    // Key resolutions render back to back on the cache track; the
    // trace's virtual clock is simulated cycles elsewhere, so these
    // wall-clock micros live in their own process.
    std::uint64_t ts = 0;
    for (const CacheKeyTiming &t : timings) {
        const std::uint64_t dur = std::max<std::uint64_t>(t.micros,
                                                          1);
        sink.complete(TraceTrack::Cache,
                      std::string(t.hit ? "hit " : "miss ") + t.spec,
                      ts, dur);
        ts += dur;
    }
}

MatrixCache &
MatrixCache::global()
{
    static MatrixCache cache;
    static const bool configured = [] {
        const char *modeText = std::getenv("UNISTC_CACHE");
        CacheMode mode = CacheMode::ReadWrite;
        if (modeText != nullptr && *modeText != '\0' &&
            !parseCacheMode(modeText, mode)) {
            UNISTC_WARN("ignoring UNISTC_CACHE='", modeText,
                        "' (use off|ro|rw); cache disabled");
            mode = CacheMode::Off;
        }
        const char *dir = std::getenv("UNISTC_CACHE_DIR");
        if (mode != CacheMode::Off && dir != nullptr &&
            *dir != '\0') {
            cache.configure(dir, mode);
        } else if (mode != CacheMode::Off && modeText != nullptr &&
                   *modeText != '\0') {
            UNISTC_WARN("UNISTC_CACHE is set but UNISTC_CACHE_DIR "
                        "is not; cache disabled");
        }
        return true;
    }();
    (void)configured;
    return cache;
}

CsrMatrix
cachedCsr(const MatrixSpec &spec,
          const std::function<CsrMatrix()> &build)
{
    MatrixCache &cache = MatrixCache::global();
    if (!cache.enabled())
        return build();
    const std::shared_ptr<const BbcMatrix> bbc =
        cache.getOrBuild(spec, build);
    // Decode the CSR from the artifact on hits AND misses: one code
    // path, so cold- and warm-cache runs are identical bytes by
    // construction (toCsr() is the exact fromCsr() inverse).
    CsrMatrix csr = bbc->toCsr();
    cache.noteCsr(csr, bbc);
    return csr;
}

} // namespace unistc
