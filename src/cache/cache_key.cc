#include "cache/cache_key.hh"

#include <cstdio>

#include "bbc/block_pattern.hh"
#include "common/logging.hh"
#include "robust/checksum.hh"

namespace unistc
{

MatrixSpec::MatrixSpec(std::string family) : family_(std::move(family))
{
    UNISTC_ASSERT(!family_.empty(), "cache spec needs a family name");
}

MatrixSpec &
MatrixSpec::arg(const std::string &name, std::int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(v));
    args_.emplace_back(name, buf);
    return *this;
}

MatrixSpec &
MatrixSpec::arg(const std::string &name, double v)
{
    // %.17g is a round-trip representation for IEEE doubles: equal
    // bits serialise equally, distinct bits serialise distinctly.
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    args_.emplace_back(name, buf);
    return *this;
}

MatrixSpec &
MatrixSpec::seed(std::uint64_t s)
{
    seed_ = s;
    return *this;
}

std::string
MatrixSpec::canonical() const
{
    std::string out = family_;
    out += '(';
    for (std::size_t i = 0; i < args_.size(); ++i) {
        if (i > 0)
            out += ',';
        out += args_[i].first;
        out += '=';
        out += args_[i].second;
    }
    out += ");seed=";
    out += std::to_string(seed_);
    // Format parameters: changing the block geometry or the value
    // type changes every key, so stale artifacts are never loaded.
    out += ";block=";
    out += std::to_string(kBlockSize);
    out += ";values=f64";
    return out;
}

std::uint64_t
MatrixSpec::key() const
{
    const std::string c = canonical();
    return fnv1a64(c.data(), c.size());
}

std::string
MatrixSpec::keyHex() const
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(key()));
    return buf;
}

} // namespace unistc
