/**
 * @file
 * Content-addressed, on-disk artifact cache for generated matrices.
 * Entries are keyed by a MatrixSpec's FNV-1a hash (cache_key.hh) and
 * stored as two files:
 *
 *   <dir>/<key>.bbc    the BBC v2 checksummed container (bbc_io.hh)
 *   <dir>/<key>.meta   sidecar record: canonical spec + shape fields
 *
 * Loads are validated end to end — the sidecar's spec string must
 * match the requested key (collision/staleness guard), the BBC
 * loader verifies magic/length/checksum/structure, and the decoded
 * shape is cross-checked against the sidecar. Any failure is a typed
 * error that falls back to regeneration (and, in read-write mode, a
 * rewrite of the entry) instead of crashing. Stores are atomic:
 * write to a temp file, then rename.
 *
 * Thread safety: getOrBuild() is safe for concurrent callers and
 * builds each key at most once per process (per-key mutex); the
 * in-memory memo then serves every later request for that key. See
 * docs/CACHING.md.
 */

#ifndef UNISTC_CACHE_MATRIX_CACHE_HH
#define UNISTC_CACHE_MATRIX_CACHE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bbc/bbc_matrix.hh"
#include "cache/cache_key.hh"
#include "common/stats.hh"
#include "robust/status.hh"
#include "sparse/csr.hh"

namespace unistc
{

class StatRegistry;
class TraceSink;

/** Cache operating mode (the --cache=off|ro|rw CLI values). */
enum class CacheMode
{
    Off,       ///< Disabled: every request regenerates.
    ReadOnly,  ///< Serve existing entries; never write new ones.
    ReadWrite, ///< Serve existing entries and store misses.
};

/** Parse "off" | "ro" | "rw" into @p out; false on anything else. */
bool parseCacheMode(const std::string &text, CacheMode &out);

const char *toString(CacheMode mode);

/** Monotonic cache activity counters (the cache.* stats keys). */
struct CacheCounters
{
    std::uint64_t hits = 0;   ///< Requests served without building.
    std::uint64_t misses = 0; ///< Requests that ran the generator.
    std::uint64_t bytesRead = 0;     ///< Entry + sidecar bytes loaded.
    std::uint64_t bytesWritten = 0;  ///< Entry + sidecar bytes stored.
    std::uint64_t loadFailures = 0;  ///< Corrupt/invalid entries hit.
    std::uint64_t storeFailures = 0; ///< Failed entry writes.
};

/** Parsed sidecar record of one cache entry. */
struct CacheMeta
{
    std::string spec; ///< Canonical MatrixSpec serialization.
    int rows = 0;
    int cols = 0;
    std::int64_t nnz = 0;
    std::int64_t blocks = 0;
    std::uint64_t payloadBytes = 0; ///< Size of the .bbc file.
};

/** Serialise a sidecar record (the .meta file contents). */
std::string formatCacheMeta(const CacheMeta &meta);

/**
 * Parse a sidecar record. Strict: exact header line, every field
 * required exactly once, whole-field integer parses, no unknown or
 * duplicate keys, no trailing garbage. Every failure is a typed
 * error naming @p label — this is the fuzz_cache_meta entry point.
 */
Result<CacheMeta> parseCacheMeta(const std::string &text,
                                 const std::string &label = "<meta>");

/** Wall-clock record of one key resolution (Chrome trace export). */
struct CacheKeyTiming
{
    std::string keyHex;
    std::string spec;
    bool hit = false;
    std::uint64_t micros = 0;
};

/**
 * The cache proper. A default-constructed cache is disabled (every
 * getOrBuild() call builds); configure() points it at a directory.
 * One process-wide instance, configured from UNISTC_CACHE_DIR /
 * UNISTC_CACHE on first use, is shared by the generator wrappers,
 * the bench harnesses and the sweep executor: global().
 */
class MatrixCache
{
  public:
    MatrixCache() = default;
    MatrixCache(const MatrixCache &) = delete;
    MatrixCache &operator=(const MatrixCache &) = delete;

    /**
     * Point the cache at @p dir with @p mode, creating the directory
     * if needed (read-write mode only). An empty @p dir or
     * CacheMode::Off disables the cache. Resets counters, timings
     * and the in-memory memo; a failure to create the directory
     * warns and leaves the cache disabled.
     */
    void configure(std::string dir, CacheMode mode);

    bool enabled() const;
    CacheMode mode() const;
    std::string dir() const;

    /**
     * Return the BBC artifact for @p spec, loading it from disk when
     * a valid entry exists and otherwise running @p build and
     * converting (storing the result in read-write mode). Safe for
     * concurrent callers; @p build runs at most once per key per
     * process. On a disabled cache this simply builds + converts.
     */
    std::shared_ptr<const BbcMatrix>
    getOrBuild(const MatrixSpec &spec,
               const std::function<CsrMatrix()> &build);

    /**
     * Conversion side-table: the BBC artifact previously produced
     * for a CSR matrix with @p csr's exact contents, or null. Lets
     * downstream CSR→BBC conversion sites (bench Prepared, the CLI)
     * reuse the cached conversion with zero call-site plumbing.
     */
    std::shared_ptr<const BbcMatrix>
    findBbcFor(const CsrMatrix &csr) const;

    /** Record @p bbc as the conversion of @p csr's contents. */
    void noteCsr(const CsrMatrix &csr,
                 std::shared_ptr<const BbcMatrix> bbc);

    CacheCounters counters() const;

    /** Per-key resolution timings, in request-completion order. */
    std::vector<CacheKeyTiming> keyTimings() const;

    /**
     * Register the cache.* keys into @p reg: activity counters plus
     * an entry-size summary (explicit count of 0 when no entries
     * moved). Deterministic — no wall-clock values.
     */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix = "cache.") const;

    /**
     * Append one 'X' span per key resolution to @p sink on the
     * Cache track under process @p pid (wall-clock micros on the
     * trace's virtual time axis).
     */
    void appendTraceEvents(TraceSink &sink, int pid) const;

    /** On-disk paths of @p spec's entry (tests, tooling). */
    std::string entryPath(const MatrixSpec &spec) const;
    std::string metaPath(const MatrixSpec &spec) const;

    /** The process-wide cache (env-configured on first use). */
    static MatrixCache &global();

  private:
    struct Entry
    {
        std::mutex mu;
        std::string spec; ///< Canonical string (collision check).
        std::shared_ptr<const BbcMatrix> bbc;
    };

    /** Try to load + validate the entry for @p spec from disk. */
    Result<BbcMatrix> tryLoadEntry(const MatrixSpec &spec,
                                   std::uint64_t *bytes);

    /** Atomically store @p bbc + sidecar; Status on failure. */
    Status storeEntry(const MatrixSpec &spec, const BbcMatrix &bbc,
                      std::uint64_t *bytes);

    void recordOutcome(const MatrixSpec &spec, bool hit,
                       std::uint64_t micros);

    mutable std::mutex mu_;
    std::string dir_;
    CacheMode mode_ = CacheMode::Off;
    std::map<std::uint64_t, std::shared_ptr<Entry>> entries_;
    std::map<std::uint64_t, std::shared_ptr<const BbcMatrix>>
        byContent_;
    CacheCounters counters_;
    RunningStat entryBytes_; ///< .bbc payload sizes moved (r or w).
    std::vector<CacheKeyTiming> timings_;
};

/**
 * Generator-side convenience: the CSR matrix for @p spec, through
 * the global cache when enabled and straight from @p build when not.
 * The cached path always decodes the CSR from the BBC artifact, so
 * cold and warm runs take one code path and are identical by
 * construction; the conversion side-table is primed so later
 * fromCsr() sites reuse the artifact.
 */
CsrMatrix cachedCsr(const MatrixSpec &spec,
                    const std::function<CsrMatrix()> &build);

/** Content fingerprint used by the conversion side-table. */
std::uint64_t csrFingerprint(const CsrMatrix &csr);

} // namespace unistc

#endif // UNISTC_CACHE_MATRIX_CACHE_HH
