#include "sim/config.hh"

#include "common/logging.hh"

namespace unistc
{

std::string
toString(Precision p)
{
    return p == Precision::FP64 ? "fp64" : "fp32";
}

int
MachineConfig::bytesPerValue() const
{
    return precision == Precision::FP64 ? 8 : 4;
}

MachineConfig
MachineConfig::fp64()
{
    return MachineConfig{Precision::FP64, 64, 8, 1.5};
}

MachineConfig
MachineConfig::fp32()
{
    return MachineConfig{Precision::FP32, 128, 8, 1.5};
}

MachineConfig
MachineConfig::fp64WithDpgs(int dpgs)
{
    UNISTC_ASSERT(dpgs > 0, "DPG count must be positive");
    MachineConfig cfg = fp64();
    cfg.numDpgs = dpgs;
    return cfg;
}

} // namespace unistc
