/**
 * @file
 * Machine configuration shared by every STC model. The paper evaluates
 * two throughput-aligned configurations: 64 MAC @ FP64 and 128 MAC @
 * FP32 (§VI-A), both at the A100's 1.5 GHz tensor-core clock.
 */

#ifndef UNISTC_SIM_CONFIG_HH
#define UNISTC_SIM_CONFIG_HH

#include <string>

namespace unistc
{

/** Arithmetic precision of the MAC array. */
enum class Precision
{
    FP64,
    FP32,
};

/** Name for printing ("fp64"/"fp32"). */
std::string toString(Precision p);

/** Per-run hardware configuration. */
struct MachineConfig
{
    Precision precision = Precision::FP64;
    int macCount = 64;    ///< Multipliers in the MAC array.
    int numDpgs = 8;      ///< Uni-STC dot-product generators.
    double freqGhz = 1.5; ///< Target clock (A100).

    /** Operand width in bytes (8 for FP64, 4 for FP32). */
    int bytesPerValue() const;

    /** The paper's default FP64 configuration (64 MACs, 8 DPGs). */
    static MachineConfig fp64();

    /** The paper's FP32 configuration (128 MACs, 8 DPGs). */
    static MachineConfig fp32();

    /** FP64 configuration with a non-default DPG count (Fig. 22). */
    static MachineConfig fp64WithDpgs(int dpgs);
};

} // namespace unistc

#endif // UNISTC_SIM_CONFIG_HH
