#include "sim/network.hh"

#include <cmath>

namespace unistc
{

namespace
{
// Calibration constant: pJ per byte per sqrt(port product). Chosen so
// the flat 64x256 crossbar costs ~3.8 pJ/byte, in the range register-
// file-to-FU movement costs at 7 nm occupy in the literature, and so
// the relative dense-workload energies of §VI-C-1 reproduce.
constexpr double kNetPjPerByteUnit = 0.03;
} // namespace

double
crossbarPjPerByte(int in_ports, int out_ports)
{
    return kNetPjPerByteUnit *
        std::sqrt(static_cast<double>(in_ports) * out_ports);
}

double
flatCrossbarPjPerByte()
{
    return crossbarPjPerByte(64, 256);
}

} // namespace unistc
