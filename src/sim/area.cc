#include "sim/area.hh"

#include "common/logging.hh"

namespace unistc
{

namespace
{

// Linear SRAM curve calibrated against Table IX's CACTI-7 numbers
// (45 nm scaled to 7 nm): 144 B -> 0.0005 mm2, 1 KiB -> 0.003 mm2,
// 2 KiB -> 0.007 mm2.
constexpr double kSramMm2PerKiB = 0.0034;
constexpr double kSramFixedMm2 = 0.0001;

// Logic constants (mm2). TMS+DPG splits into a fixed TMS part and a
// per-DPG part so the Fig. 22 DPG sweep scales the right modules;
// at the default 8 DPGs the sums match Table IX exactly.
constexpr double kTmsMm2 = 0.004;
constexpr double kPerDpgMm2 = 0.001;          // 8 -> 0.012 with TMS.
constexpr double kBenesMuxPerDpgMm2 = 0.00025; // 8 -> 0.002.
constexpr double kSdpuExtraAddersMm2 = 0.018;

} // namespace

double
AreaModel::sramAreaMm2(int bytes)
{
    UNISTC_ASSERT(bytes >= 0, "negative SRAM size");
    return kSramFixedMm2 + kSramMm2PerKiB * (bytes / 1024.0);
}

std::vector<AreaItem>
AreaModel::uniStcBreakdown(int num_dpgs)
{
    UNISTC_ASSERT(num_dpgs > 0, "DPG count must be positive");
    auto pct = [](double mm2) {
        return mm2 * kUnitsPerDie / kDieAreaMm2 * 100.0;
    };

    std::vector<AreaItem> items;
    auto push = [&](const std::string &name, double mm2) {
        items.push_back({name, mm2, pct(mm2)});
    };

    push("Benes & MUX networks", kBenesMuxPerDpgMm2 * num_dpgs);
    push("TMS & DPG", kTmsMm2 + kPerDpgMm2 * num_dpgs);
    push("Extra adders in SDPU", kSdpuExtraAddersMm2);
    push("Meta data buffer (144B)", sramAreaMm2(144));
    push("Accumulate buffer (1KB)", sramAreaMm2(1024));
    push("Matrix A buffer (2KB)", sramAreaMm2(2048));

    double total = 0.0;
    for (const auto &item : items)
        total += item.mm2;
    push("Total Overhead", total);
    return items;
}

double
AreaModel::uniStcOverheadMm2(int num_dpgs)
{
    const auto items = uniStcBreakdown(num_dpgs);
    return items.back().mm2;
}

double
AreaModel::rmStcOverheadMm2()
{
    // Uni-STC@8DPG carries 18% more dedicated-module area than RM-STC.
    return uniStcOverheadMm2(8) / 1.18;
}

double
AreaModel::dsStcOverheadMm2()
{
    // DS-STC's outer-product accumulation buffers make its dedicated
    // modules slightly smaller than RM-STC's (no row-merge decoder,
    // larger accumulator): calibrated between the two designs.
    return rmStcOverheadMm2() * 0.92;
}

} // namespace unistc
