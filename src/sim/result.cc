#include "sim/result.hh"

#include "common/logging.hh"

namespace unistc
{

void
TrafficCounters::merge(const TrafficCounters &o)
{
    readsA += o.readsA;
    wastedA += o.wastedA;
    readsB += o.readsB;
    wastedB += o.wastedB;
    writesC += o.writesC;
}

void
EnergyBreakdown::merge(const EnergyBreakdown &o)
{
    fetchA += o.fetchA;
    fetchB += o.fetchB;
    writeC += o.writeC;
    schedule += o.schedule;
    compute += o.compute;
}

RunResult::RunResult() : utilHist(4, 0.0, 1.0 + 1e-12)
{
}

void
RunResult::recordCycle(int mac_count, int eff, int active_dpgs,
                       int c_net_units)
{
    UNISTC_ASSERT(eff >= 0 && eff <= mac_count,
                  "cycle products ", eff, " out of [0, ", mac_count,
                  "]");
    ++cycles;
    products += eff;
    macSlots += mac_count;
    dpgActiveAccum += active_dpgs;
    cNetScaleAccum += c_net_units;
    utilHist.addRatio(eff, mac_count);
}

double
RunResult::utilisation() const
{
    return macSlots ? static_cast<double>(products) / macSlots : 0.0;
}

double
RunResult::avgActiveDpgs() const
{
    return cycles ? static_cast<double>(dpgActiveAccum) / cycles : 0.0;
}

double
RunResult::avgCNetScale() const
{
    return cycles ? static_cast<double>(cNetScaleAccum) / cycles : 0.0;
}

double
RunResult::timeNs(double freq_ghz) const
{
    return static_cast<double>(cycles) / freq_ghz;
}

void
RunResult::scale(std::uint64_t factor)
{
    cycles *= factor;
    products *= factor;
    macSlots *= factor;
    tasksT1 *= factor;
    tasksT3 *= factor;
    stallCycles *= factor;
    dpgActiveAccum *= factor;
    cNetScaleAccum *= factor;
    utilHist.scale(factor);
    traffic.readsA *= factor;
    traffic.wastedA *= factor;
    traffic.readsB *= factor;
    traffic.wastedB *= factor;
    traffic.writesC *= factor;
    const double f = static_cast<double>(factor);
    energy.fetchA *= f;
    energy.fetchB *= f;
    energy.writeC *= f;
    energy.schedule *= f;
    energy.compute *= f;
}

void
RunResult::merge(const RunResult &o)
{
    cycles += o.cycles;
    products += o.products;
    macSlots += o.macSlots;
    tasksT1 += o.tasksT1;
    tasksT3 += o.tasksT3;
    stallCycles += o.stallCycles;
    dpgActiveAccum += o.dpgActiveAccum;
    cNetScaleAccum += o.cNetScaleAccum;
    utilHist.merge(o.utilHist);
    traffic.merge(o.traffic);
    energy.merge(o.energy);
}

} // namespace unistc
