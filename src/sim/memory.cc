#include "sim/memory.hh"

#include "common/logging.hh"

namespace unistc
{

DramTraffic
kernelDramTraffic(Kernel kernel, const BbcMatrix &a, int b_cols,
                  const BbcMatrix *b, std::int64_t c_nnz,
                  const MachineConfig &cfg)
{
    DramTraffic t;
    const std::uint64_t bytes = cfg.bytesPerValue();
    const std::uint64_t a_image = a.metadataBytes() +
        static_cast<std::uint64_t>(a.nnz()) * bytes;

    switch (kernel) {
      case Kernel::SpMV:
      case Kernel::SpMSpV:
        t.readA = a_image;
        // Dense x (or the sparse x image); y written once. Both are
        // vector-sized.
        t.readB = static_cast<std::uint64_t>(a.cols()) * bytes;
        t.writeC = static_cast<std::uint64_t>(a.rows()) * bytes;
        break;
      case Kernel::SpMM:
        UNISTC_ASSERT(b_cols > 0, "SpMM needs a B width");
        t.readA = a_image;
        t.readB = static_cast<std::uint64_t>(a.cols()) * b_cols *
            bytes;
        t.writeC = static_cast<std::uint64_t>(a.rows()) * b_cols *
            bytes;
        break;
      case Kernel::SpGEMM: {
        UNISTC_ASSERT(b != nullptr, "SpGEMM needs a B operand");
        UNISTC_ASSERT(c_nnz >= 0, "SpGEMM needs the result size");
        t.readA = a_image;
        // B's block rows are revisited once per referencing A block;
        // the L2 absorbs part of the reuse, the rest hits DRAM. A
        // single full stream of B is the floor.
        t.readB = b->metadataBytes() +
            static_cast<std::uint64_t>(b->nnz()) * bytes;
        t.writeC = static_cast<std::uint64_t>(c_nnz) *
            (bytes + 4 /* column index */);
        break;
      }
    }
    return t;
}

RooflineVerdict
roofline(const RunResult &run, const DramTraffic &traffic,
         const MachineConfig &cfg, const MemoryConfig &mem)
{
    RooflineVerdict v;
    // Compute time with the run's cycles spread over every STC unit
    // on the device (optimistic compute => conservative verdict).
    const double unit_ns = run.timeNs(cfg.freqGhz);
    v.computeNs = unit_ns / mem.stcUnitsPerDevice;

    // DRAM time: the traffic model already counts each operand image
    // streamed exactly once (re-reads are assumed L2-resident, which
    // mem.l2HitRate documents), so every counted byte hits DRAM.
    const double bytes_per_ns = mem.bandwidthGBs; // GB/s == B/ns
    v.memoryNs = static_cast<double>(traffic.total()) / bytes_per_ns;

    v.computeBound = v.computeNs >= v.memoryNs;
    v.ratio = v.memoryNs > 0.0 ? v.computeNs / v.memoryNs : 1e9;
    return v;
}

} // namespace unistc
