/**
 * @file
 * Raw event counters produced by an STC model run, plus the derived
 * metrics (utilisation, energy, network scale) the figures report.
 */

#ifndef UNISTC_SIM_RESULT_HH
#define UNISTC_SIM_RESULT_HH

#include <cstdint>

#include "common/stats.hh"

namespace unistc
{

/** Operand-movement counters (element granularity). */
struct TrafficCounters
{
    std::uint64_t readsA = 0;   ///< A operand fetches (effective).
    std::uint64_t wastedA = 0;  ///< A fetch slots with no useful work.
    std::uint64_t readsB = 0;   ///< B operand fetches (effective).
    std::uint64_t wastedB = 0;  ///< B fetch slots with no useful work.
    std::uint64_t writesC = 0;  ///< Partial-sum write-backs to C.

    void merge(const TrafficCounters &o);

    std::uint64_t totalA() const { return readsA + wastedA; }
    std::uint64_t totalB() const { return readsB + wastedB; }
};

/** Energy split the paper's Fig. 18 reports (picojoules). */
struct EnergyBreakdown
{
    double fetchA = 0.0;   ///< Reading matrix A operands.
    double fetchB = 0.0;   ///< Reading matrix B / vector operands.
    double writeC = 0.0;   ///< Writing matrix C partial sums.
    double schedule = 0.0; ///< TMS/DPG/queue (task preparation).
    double compute = 0.0;  ///< MAC array.

    double total() const
    {
        return fetchA + fetchB + writeC + schedule + compute;
    }

    void merge(const EnergyBreakdown &o);
};

/** Accumulated outcome of simulating a stream of T1 block tasks. */
struct RunResult
{
    RunResult();

    std::uint64_t cycles = 0;     ///< Execution cycles.
    std::uint64_t products = 0;   ///< Effective multiply-accumulates.
    std::uint64_t macSlots = 0;   ///< cycles * macCount (capacity).
    std::uint64_t tasksT1 = 0;    ///< T1 block tasks issued.
    std::uint64_t tasksT3 = 0;    ///< T3 (tile-level) tasks scheduled.
    std::uint64_t stallCycles = 0;///< Cycles lost to write conflicts.

    /** Sum over cycles of active DPGs (Uni-STC dynamic gating). */
    std::uint64_t dpgActiveAccum = 0;

    /**
     * Sum over cycles of the C-write network scale in active 16x16
     * network units; avg = cNetScaleAccum / cycles (Fig. 19).
     */
    std::uint64_t cNetScaleAccum = 0;

    /** Per-cycle MAC utilisation in 4 buckets: 0-25/25-50/50-75/75-100. */
    Histogram utilHist;

    TrafficCounters traffic;
    EnergyBreakdown energy; ///< Filled in by EnergyModel::finalize().

    /** Record one execution cycle with @p eff effective products. */
    void recordCycle(int mac_count, int eff, int active_dpgs = 0,
                     int c_net_units = 0);

    /** Overall MAC utilisation in [0, 1]. */
    double utilisation() const;

    /** Average active DPG count per cycle. */
    double avgActiveDpgs() const;

    /** Average C-write network scale (16x16 network units). */
    double avgCNetScale() const;

    /** Wall time at @p freq_ghz, in nanoseconds. */
    double timeNs(double freq_ghz) const;

    /** Fold another result into this one (same machine config). */
    void merge(const RunResult &o);

    /**
     * Multiply every counter (and the finalized energy) by @p factor —
     * used to account for a workload executed @p factor times, e.g.
     * the same SpMV in every AMG V-cycle.
     */
    void scale(std::uint64_t factor);
};

} // namespace unistc

#endif // UNISTC_SIM_RESULT_HH
