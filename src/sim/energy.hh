/**
 * @file
 * Event-count energy model (Sparseloop methodology, §VI-A): every
 * architectural event — MAC, operand fetch, partial-sum write-back,
 * task-scheduling step, network traversal — carries a per-event energy
 * and the total is the weighted event count.
 */

#ifndef UNISTC_SIM_ENERGY_HH
#define UNISTC_SIM_ENERGY_HH

#include "sim/config.hh"
#include "sim/network.hh"
#include "sim/result.hh"

namespace unistc
{

/** Per-event energies in picojoules (7 nm-class values). */
struct EnergyParams
{
    double macFp64Pj = 16.0;  ///< FP64 multiply + add.
    double macFp32Pj = 4.5;   ///< FP32 multiply + add.
    double regReadPj = 1.2;   ///< Register-file read per operand.
    double regWritePj = 1.5;  ///< Register-file write per operand.
    double queueOpPj = 0.15;  ///< Task-queue push or pop (code only).
    double schedT3Pj = 0.9;   ///< TMS+DPG work per T3 task.
    double schedT1Pj = 2.5;   ///< Per-T1 metadata handling.
    /** Static network/control power per cycle per DPG lane. */
    double lanePjPerCycle = 0.6;

    /** MAC energy for the configured precision. */
    double macPj(const MachineConfig &cfg) const;
};

/**
 * Computes the EnergyBreakdown of a finished run from its raw event
 * counters and the architecture's network description, and stores it
 * in @p res.energy.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyParams params = {});

    /**
     * Fill @p res.energy.
     *
     * @param cfg machine configuration the run used.
     * @param net the architecture's interconnect description.
     * @param res run to finalize (energy is overwritten).
     */
    void finalize(const MachineConfig &cfg, const NetworkConfig &net,
                  RunResult &res) const;

    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
};

} // namespace unistc

#endif // UNISTC_SIM_ENERGY_HH
