/**
 * @file
 * Analytical area model reproducing the paper's Table IX flow:
 * buffers via a CACTI-style linear SRAM curve (45 nm scaled to 7 nm),
 * logic modules via synthesis-calibrated constants, and a projected
 * 432-unit deployment (4 per SM x 108 SMs) on an A100's 826 mm2 die.
 */

#ifndef UNISTC_SIM_AREA_HH
#define UNISTC_SIM_AREA_HH

#include <string>
#include <vector>

namespace unistc
{

/** One row of the Table IX breakdown. */
struct AreaItem
{
    std::string module;
    double mm2 = 0.0;      ///< Per Uni-STC unit.
    double percent = 0.0;  ///< 432 units relative to the A100 die.
};

/** Area model for Uni-STC and the baselines' dedicated modules. */
class AreaModel
{
  public:
    /** A100 die area the percentages are relative to (mm2). */
    static constexpr double kDieAreaMm2 = 826.0;

    /** Projected deployment: 4 Uni-STCs per SM x 108 SMs. */
    static constexpr int kUnitsPerDie = 432;

    /** SRAM macro area at 7 nm for @p bytes of storage (mm2). */
    static double sramAreaMm2(int bytes);

    /**
     * Table IX breakdown for a Uni-STC with @p num_dpgs DPGs.
     * The final row is the total overhead.
     */
    static std::vector<AreaItem> uniStcBreakdown(int num_dpgs = 8);

    /** Total dedicated-module overhead of one Uni-STC unit (mm2). */
    static double uniStcOverheadMm2(int num_dpgs = 8);

    /**
     * Dedicated-module overhead of RM-STC. §I reports Uni-STC carries
     * an 18% area overhead over RM-STC; §IV-D attributes 16.67% of
     * RM-STC's overhead to its hardware decoder.
     */
    static double rmStcOverheadMm2();

    /** Dedicated-module overhead of DS-STC (outer-product buffers). */
    static double dsStcOverheadMm2();
};

} // namespace unistc

#endif // UNISTC_SIM_AREA_HH
