#include "sim/energy.hh"

namespace unistc
{

double
EnergyParams::macPj(const MachineConfig &cfg) const
{
    return cfg.precision == Precision::FP64 ? macFp64Pj : macFp32Pj;
}

EnergyModel::EnergyModel(EnergyParams params) : params_(params)
{
}

void
EnergyModel::finalize(const MachineConfig &cfg, const NetworkConfig &net,
                      RunResult &res) const
{
    const EnergyParams &p = params_;
    const double bytes = cfg.bytesPerValue();
    const double flat = flatCrossbarPjPerByte();

    EnergyBreakdown e;

    // Operand fetch: register-file read + network traversal for every
    // engaged operand slot (wasted slots still toggle the datapath).
    const double a_net = flat / net.aFactor;
    const double b_net = flat / net.bFactor;
    e.fetchA = static_cast<double>(res.traffic.totalA()) *
        (p.regReadPj + bytes * a_net);
    e.fetchB = static_cast<double>(res.traffic.totalB()) *
        (p.regReadPj + bytes * b_net);

    // Partial-sum write-back: accumulator write + network traversal.
    // Architectures with dynamic gating shrink the active C network
    // with the measured average scale (Fig. 19); static designs pay
    // the full configured scale.
    double c_net = flat / net.cFactor;
    if (net.dynamicGating && res.cycles > 0) {
        const double active = res.avgCNetScale();
        const double full = static_cast<double>(net.cNetUnits);
        if (full > 0.0 && active > 0.0 && active < full)
            c_net *= active / full;
    }
    e.writeC = static_cast<double>(res.traffic.writesC) *
        (p.regWritePj + bytes * c_net);

    // Task preparation: per-T1 metadata, per-T3 scheduling work, and a
    // queue push + pop per T3 task.
    e.schedule = static_cast<double>(res.tasksT1) * p.schedT1Pj +
        static_cast<double>(res.tasksT3) *
            (p.schedT3Pj + 2.0 * p.queueOpPj);

    // Static per-cycle lane power. Gated designs pay only for active
    // lanes; always-on designs pay every lane every cycle.
    const double lanes = static_cast<double>(cfg.numDpgs);
    double lane_cycles;
    if (net.dynamicGating) {
        lane_cycles = static_cast<double>(res.dpgActiveAccum);
    } else {
        lane_cycles = static_cast<double>(res.cycles) * lanes;
    }
    e.schedule += lane_cycles * p.lanePjPerCycle;

    // Compute: effective MACs only (idle multipliers are data-gated).
    e.compute = static_cast<double>(res.products) * p.macPj(cfg);

    res.energy = e;
}

} // namespace unistc
