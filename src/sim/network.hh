/**
 * @file
 * On-chip network model. §IV-C identifies network scale and data
 * traffic as the primary energy drivers in STCs. Each architecture is
 * described by the effective energy-per-byte of its A/B/C delivery
 * paths, expressed as a *reduction factor* relative to the flat
 * 64x256 crossbars a naive design would need. Uni-STC's hierarchical
 * two-layer design achieves 7.16x / 5.33x / 2.83x (paper §IV-C-2);
 * baseline factors are calibrated from the relative energies the
 * paper reports (see DESIGN.md §4).
 */

#ifndef UNISTC_SIM_NETWORK_HH
#define UNISTC_SIM_NETWORK_HH

namespace unistc
{

/** Per-architecture interconnect description. */
struct NetworkConfig
{
    /** Energy-per-byte reduction of the A path vs a flat crossbar. */
    double aFactor = 1.0;
    /** Energy-per-byte reduction of the B path vs a flat crossbar. */
    double bFactor = 1.0;
    /** Energy-per-byte reduction of the C path vs a flat crossbar. */
    double cFactor = 1.0;
    /**
     * Static C-write network scale in 16x16-network units (Fig. 19).
     * Uni-STC overrides this dynamically via RunResult::cNetScaleAccum.
     */
    int cNetUnits = 16;
    /** True when unused DPG datapaths are power-gated (Uni-STC). */
    bool dynamicGating = false;
};

/**
 * Crossbar traversal energy in picojoules per byte for a network with
 * @p in_ports inputs and @p out_ports outputs. Wire length (and hence
 * energy per bit) grows roughly with the geometric mean of the port
 * counts; the constant is calibrated so a flat 64x256 crossbar matches
 * the reference energy the factors above divide.
 */
double crossbarPjPerByte(int in_ports, int out_ports);

/** Reference flat-crossbar energy (64x256) in pJ/byte. */
double flatCrossbarPjPerByte();

} // namespace unistc

#endif // UNISTC_SIM_NETWORK_HH
