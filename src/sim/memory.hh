/**
 * @file
 * Off-chip memory substrate (extension). The paper's evaluation is
 * compute-side: it integrates the STC into Accel-Sim "with added
 * support for asynchronous memory access" and reports kernel cycles.
 * This module supplies the missing sanity check: a DRAM traffic and
 * roofline model that verifies the evaluated kernels stay compute-
 * bound on an A100-class memory system — i.e. that comparing STCs by
 * compute cycles is legitimate — and flags the operating points
 * where they do not.
 */

#ifndef UNISTC_SIM_MEMORY_HH
#define UNISTC_SIM_MEMORY_HH

#include <cstdint>

#include "bbc/bbc_matrix.hh"
#include "runner/report.hh"
#include "sim/config.hh"
#include "sim/result.hh"

namespace unistc
{

/** Device memory-system parameters (A100-class defaults). */
struct MemoryConfig
{
    double bandwidthGBs = 1555.0; ///< HBM2e bandwidth.
    double l2HitRate = 0.5;       ///< Fraction of re-reads served on chip.
    int stcUnitsPerDevice = 432;  ///< 4 per SM x 108 SMs.
};

/** DRAM traffic of one kernel invocation (bytes). */
struct DramTraffic
{
    std::uint64_t readA = 0;  ///< BBC image of A (streamed once).
    std::uint64_t readB = 0;  ///< B operand (dense or BBC image).
    std::uint64_t writeC = 0; ///< Result write-back.

    std::uint64_t total() const { return readA + readB + writeC; }
};

/**
 * Compute the DRAM traffic of a kernel on BBC operands. Operand
 * images stream from DRAM once (block reuse hits in the L2 per
 * l2HitRate); the result is written once.
 *
 * @param kernel which kernel.
 * @param a the (BBC) A operand.
 * @param b_cols dense-B width for SpMM.
 * @param b the BBC B operand for SpGEMM (ignored otherwise).
 * @param c_nnz result nonzeros (pass the symbolic count).
 */
DramTraffic kernelDramTraffic(Kernel kernel, const BbcMatrix &a,
                              int b_cols, const BbcMatrix *b,
                              std::int64_t c_nnz,
                              const MachineConfig &cfg);

/** Roofline verdict for one simulated run. */
struct RooflineVerdict
{
    double computeNs = 0.0; ///< STC time (device-wide).
    double memoryNs = 0.0;  ///< DRAM streaming time.
    bool computeBound = false;
    /** computeNs / memoryNs: > 1 means compute-bound. */
    double ratio = 0.0;
};

/**
 * Compare the device-level compute time of a run against its DRAM
 * streaming time. The run's cycles are divided across the device's
 * STC units (perfect scaling — optimistic for compute, i.e. a
 * conservative compute-bound verdict).
 */
RooflineVerdict roofline(const RunResult &run,
                         const DramTraffic &traffic,
                         const MachineConfig &cfg,
                         const MemoryConfig &mem = {});

} // namespace unistc

#endif // UNISTC_SIM_MEMORY_HH
