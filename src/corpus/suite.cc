#include "corpus/suite.hh"

#include "corpus/generators.hh"

namespace unistc
{

std::vector<NamedMatrix>
syntheticSuite(int scale, std::uint64_t seed)
{
    std::vector<NamedMatrix> suite;
    std::uint64_t s = seed;
    auto next_seed = [&s]() { return ++s; };
    auto name = [](const std::string &family, int i) {
        return family + "_" + std::to_string(i);
    };

    for (int i = 0; i < scale; ++i) {
        // Uniform random across four density decades.
        suite.push_back({name("rand_d3", i),
                         genRandomUniform(1024, 1024, 1e-3,
                                          next_seed())});
        suite.push_back({name("rand_d2", i),
                         genRandomUniform(1024, 1024, 1e-2,
                                          next_seed())});
        suite.push_back({name("rand_d1", i),
                         genRandomUniform(768, 768, 5e-2,
                                          next_seed())});
        suite.push_back({name("rand_dense", i),
                         genRandomUniform(512, 512, 0.2,
                                          next_seed())});

        // FEM-style bands of varying width and fill.
        suite.push_back({name("band_narrow", i),
                         genBanded(1536, 8, 0.8, next_seed())});
        suite.push_back({name("band_mid", i),
                         genBanded(1536, 32, 0.3, next_seed())});
        suite.push_back({name("band_wide", i),
                         genBanded(1536, 96, 0.08, next_seed())});

        // 2D Poisson stencils (the AMG fine grids).
        suite.push_back({name("stencil5", i),
                         genStencil2d(36 + 4 * i, false)});
        suite.push_back({name("stencil9", i),
                         genStencil2d(32 + 4 * i, true)});

        // Power-law graphs (GNN/BFS workloads).
        suite.push_back({name("plaw_soft", i),
                         genPowerLaw(1024, 8.0, 2.5, next_seed())});
        suite.push_back({name("plaw_hard", i),
                         genPowerLaw(1024, 16.0, 2.1, next_seed())});

        // Blocky FEM clusters.
        suite.push_back({name("blocky_small", i),
                         genBlockDense(1024, 8, 0.3, 0.7,
                                       next_seed())});
        suite.push_back({name("blocky_large", i),
                         genBlockDense(1024, 32, 0.25, 0.5,
                                       next_seed())});

        // Diagonal-dominant operators.
        suite.push_back({name("diag", i),
                         genDiagonalHeavy(1536, 7, next_seed())});

        // Long-row outliers.
        suite.push_back({name("longrow", i),
                         genLongRows(768, 12, 0.6, 0.01,
                                     next_seed())});

        // R-MAT social/web graphs (heavy-tailed, clustered).
        suite.push_back({name("rmat", i),
                         genRmat(10, 8, 0.57, 0.19, 0.19,
                                 next_seed())});

        // Triangular factors (solver workloads).
        suite.push_back({name("tri", i),
                         lowerTriangular(genBanded(1024, 24, 0.4,
                                                   next_seed()))});

        // Symmetric operators.
        suite.push_back({name("sym", i),
                         symmetrize(genRandomUniform(768, 768, 0.01,
                                                     next_seed()))});
    }
    const int clamp = corpusClamp();
    if (clamp >= 0 && static_cast<std::size_t>(clamp) < suite.size())
        suite.resize(static_cast<std::size_t>(clamp));
    return suite;
}

} // namespace unistc
