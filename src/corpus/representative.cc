#include "corpus/representative.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "corpus/generators.hh"

namespace unistc
{

namespace
{

std::vector<NamedMatrix>
fullRepresentativeMatrices()
{
    std::vector<NamedMatrix> out;
    // Family and parameter choices (per Table VII's plots):
    //  consph     FEM sphere: medium band, moderate fill.
    //  shipsec1   FEM ship section: wider band, similar fill.
    //  crankseg_2 FEM with long rows from constraint coupling.
    //  cant       FEM cantilever: narrow band, high fill near diag.
    //  opt1       optimisation KKT: small, blocky and dense-ish.
    //  pdb1HYS    protein: dense clusters (blocky).
    //  pwtk       wind tunnel: regular band, high fill.
    //  gupta3     nearly dense rows: the extreme density outlier.
    out.push_back({"consph", genBanded(2048, 28, 0.28, 101)});
    out.push_back({"shipsec1", genBanded(2304, 44, 0.26, 102)});
    out.push_back({"crankseg_2",
                   genFemLongRows(1536, 22, 0.44, 8, 0.15, 0.95,
                                  103)});
    out.push_back({"cant", genBanded(1792, 18, 0.55, 104)});
    out.push_back({"opt1", genBlockDense(1024, 16, 0.35, 0.34, 105)});
    out.push_back({"pdb1HYS",
                   genBlockDense(1280, 24, 0.30, 0.50, 106)});
    out.push_back({"pwtk", genBanded(2048, 24, 0.58, 107)});
    out.push_back({"gupta3",
                   genArrow(1024, 96, 0.58, 10, 0.85, 108)});
    return out;
}

} // namespace

int
corpusClamp()
{
    const char *env = std::getenv("UNISTC_CORPUS_CLAMP");
    if (env == nullptr || *env == '\0')
        return -1;
    char *end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == nullptr || *end != '\0' || v < 0) {
        UNISTC_WARN("ignoring bad UNISTC_CORPUS_CLAMP '", env,
                    "' (want a non-negative integer)");
        return -1;
    }
    return static_cast<int>(v);
}

std::vector<NamedMatrix>
representativeMatrices()
{
    auto out = fullRepresentativeMatrices();
    const int clamp = corpusClamp();
    if (clamp >= 0 && static_cast<std::size_t>(clamp) < out.size())
        out.resize(static_cast<std::size_t>(clamp));
    return out;
}

CsrMatrix
representativeMatrix(const std::string &name)
{
    // Lookup by name ignores the clamp: a bench pinned to one
    // specific matrix must keep it even in smoke mode.
    for (auto &nm : fullRepresentativeMatrices()) {
        if (nm.name == name)
            return std::move(nm.matrix);
    }
    UNISTC_FATAL("unknown representative matrix '", name, "'");
}

} // namespace unistc
