/**
 * @file
 * Miniature analogues of the paper's eight representative SuiteSparse
 * matrices (Table VII). The real matrices are 15K-218K rows; these
 * are seed-deterministic synthetic stand-ins of ~1-3K rows built from
 * the same structural family each original belongs to, ordered so the
 * average intermediate-products-per-T1-task (#inter-prod/blk) climbs
 * across the set the way Table VII's does.
 */

#ifndef UNISTC_CORPUS_REPRESENTATIVE_HH
#define UNISTC_CORPUS_REPRESENTATIVE_HH

#include <string>
#include <vector>

#include "sparse/csr.hh"

namespace unistc
{

/** A matrix with a display name. */
struct NamedMatrix
{
    std::string name;
    CsrMatrix matrix;
};

/** The eight Table VII analogues, in the paper's order. */
std::vector<NamedMatrix> representativeMatrices();

/**
 * Corpus size clamp from UNISTC_CORPUS_CLAMP: the maximum number of
 * matrices syntheticSuite() / representativeMatrices() each return,
 * or a negative value when unset/invalid (no clamp). Bench smoke
 * runs (--smoke) set this so every harness finishes in seconds.
 */
int corpusClamp();

/** One representative matrix by name (aborts when unknown). */
CsrMatrix representativeMatrix(const std::string &name);

} // namespace unistc

#endif // UNISTC_CORPUS_REPRESENTATIVE_HH
