#include "corpus/dlmc.hh"

#include <algorithm>
#include <cmath>

#include "cache/matrix_cache.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "sparse/convert.hh"

namespace unistc
{

namespace
{

CsrMatrix
genPrunedWeightsImpl(int rows, int cols, double sparsity,
                     std::uint64_t seed)
{
    Rng rng(seed);
    const double keep = 1.0 - sparsity;
    CooMatrix coo(rows, cols);
    for (int r = 0; r < rows; ++r) {
        // Row population ~ Binomial(cols, keep), clamped to >= 1.
        double expect = keep * cols;
        int k = static_cast<int>(std::floor(expect));
        if (rng.nextBool(expect - k))
            ++k;
        k = std::clamp(k, 1, cols);
        for (int c : rng.sampleDistinct(cols, k)) {
            // Magnitude-pruned survivors are bounded away from zero.
            const double mag = 0.05 + std::fabs(rng.nextGaussian());
            coo.add(r, c, rng.nextBool(0.5) ? mag : -mag);
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
genStructured24Impl(int rows, int cols, std::uint64_t seed)
{
    Rng rng(seed);
    CooMatrix coo(rows, cols);
    for (int r = 0; r < rows; ++r) {
        for (int g = 0; g < cols; g += 4) {
            // Exactly two survivors per 4-wide group.
            const auto keep = rng.sampleDistinct(4, 2);
            for (int k : keep) {
                const double mag = 0.05 + std::fabs(rng.nextGaussian());
                coo.add(r, g + k, rng.nextBool(0.5) ? mag : -mag);
            }
        }
    }
    return cooToCsr(std::move(coo));
}

} // namespace

CsrMatrix
genPrunedWeights(int rows, int cols, double sparsity,
                 std::uint64_t seed)
{
    UNISTC_ASSERT(sparsity >= 0.0 && sparsity < 1.0,
                  "sparsity out of range");
    return cachedCsr(MatrixSpec("dlmc_pruned")
                         .arg("rows", rows)
                         .arg("cols", cols)
                         .arg("sparsity", sparsity)
                         .seed(seed),
                     [&] {
                         return genPrunedWeightsImpl(rows, cols,
                                                     sparsity, seed);
                     });
}

CsrMatrix
genStructured24(int rows, int cols, std::uint64_t seed)
{
    UNISTC_ASSERT(cols % 4 == 0,
                  "2:4 structure needs cols divisible by 4");
    return cachedCsr(MatrixSpec("dlmc_24")
                         .arg("rows", rows)
                         .arg("cols", cols)
                         .seed(seed),
                     [&] {
                         return genStructured24Impl(rows, cols,
                                                    seed);
                     });
}

} // namespace unistc
