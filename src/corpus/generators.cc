#include "corpus/generators.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "cache/matrix_cache.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "sparse/convert.hh"

namespace unistc
{

namespace
{

double
val(Rng &rng)
{
    return rng.nextDouble(0.1, 1.0);
}

CsrMatrix
genRandomUniformImpl(int rows, int cols, double density, std::uint64_t seed)
{
    UNISTC_ASSERT(density >= 0.0 && density <= 1.0,
                  "density out of range");
    Rng rng(seed);
    CooMatrix coo(rows, cols);
    if (density > 0.02) {
        // Dense-ish: per-entry Bernoulli.
        for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c) {
                if (rng.nextBool(density))
                    coo.add(r, c, val(rng));
            }
        }
    } else {
        // Sparse: sample a distinct column set per row.
        for (int r = 0; r < rows; ++r) {
            const double expect = density * cols;
            int k = static_cast<int>(std::floor(expect));
            if (rng.nextBool(expect - k))
                ++k;
            k = std::min(k, cols);
            for (int c : rng.sampleDistinct(cols, k))
                coo.add(r, c, val(rng));
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
genBandedImpl(int n, int half_bandwidth, double fill, std::uint64_t seed)
{
    Rng rng(seed);
    CooMatrix coo(n, n);
    for (int r = 0; r < n; ++r) {
        const int lo = std::max(0, r - half_bandwidth);
        const int hi = std::min(n - 1, r + half_bandwidth);
        for (int c = lo; c <= hi; ++c) {
            if (c == r || rng.nextBool(fill))
                coo.add(r, c, val(rng));
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
genStencil2dImpl(int grid, bool nine_point)
{
    const int n = grid * grid;
    CooMatrix coo(n, n);
    auto idx = [grid](int i, int j) { return i * grid + j; };
    for (int i = 0; i < grid; ++i) {
        for (int j = 0; j < grid; ++j) {
            const int me = idx(i, j);
            coo.add(me, me, nine_point ? 8.0 : 4.0);
            const int di[] = {-1, 1, 0, 0, -1, -1, 1, 1};
            const int dj[] = {0, 0, -1, 1, -1, 1, -1, 1};
            const int neighbors = nine_point ? 8 : 4;
            for (int d = 0; d < neighbors; ++d) {
                const int ni = i + di[d];
                const int nj = j + dj[d];
                if (ni >= 0 && ni < grid && nj >= 0 && nj < grid)
                    coo.add(me, idx(ni, nj), -1.0);
            }
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
genPowerLawImpl(int n, double avg_degree, double alpha, std::uint64_t seed)
{
    UNISTC_ASSERT(alpha > 1.0, "power-law exponent must exceed 1");
    Rng rng(seed);

    // Zipf-like degree sequence scaled to the requested mean.
    std::vector<double> weight(n);
    double wsum = 0.0;
    for (int r = 0; r < n; ++r) {
        weight[r] = std::pow(static_cast<double>(r + 1), -1.0 / (alpha
                                                                 - 1.0));
        wsum += weight[r];
    }
    const double scale = avg_degree * n / wsum;

    CooMatrix coo(n, n);
    for (int r = 0; r < n; ++r) {
        int deg = static_cast<int>(std::floor(weight[r] * scale));
        if (rng.nextBool(weight[r] * scale - deg))
            ++deg;
        deg = std::clamp(deg, 1, n);
        for (int c : rng.sampleDistinct(n, deg))
            coo.add(r, c, val(rng));
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
genBlockDenseImpl(int n, int block, double block_density, double fill,
              std::uint64_t seed)
{
    Rng rng(seed);
    CooMatrix coo(n, n);
    const int blocks = (n + block - 1) / block;
    for (int bi = 0; bi < blocks; ++bi) {
        for (int bj = std::max(0, bi - 3);
             bj <= std::min(blocks - 1, bi + 3); ++bj) {
            const bool on_diag = bi == bj;
            if (!on_diag && !rng.nextBool(block_density))
                continue;
            for (int r = bi * block;
                 r < std::min(n, (bi + 1) * block); ++r) {
                for (int c = bj * block;
                     c < std::min(n, (bj + 1) * block); ++c) {
                    if (r == c || rng.nextBool(fill))
                        coo.add(r, c, val(rng));
                }
            }
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
genDiagonalHeavyImpl(int n, int num_diags, std::uint64_t seed)
{
    Rng rng(seed);
    CooMatrix coo(n, n);
    // The main diagonal plus random offsets.
    std::vector<int> offsets = {0};
    for (int d = 1; d < num_diags; ++d) {
        offsets.push_back(
            static_cast<int>(rng.nextInRange(-n / 2, n / 2)));
    }
    for (int off : offsets) {
        for (int r = 0; r < n; ++r) {
            const int c = r + off;
            if (c >= 0 && c < n)
                coo.add(r, c, val(rng));
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
genLongRowsImpl(int n, int num_long_rows, double long_density,
            double bg_density, std::uint64_t seed)
{
    Rng rng(seed);
    CooMatrix coo(n, n);
    std::vector<int> long_rows =
        Rng(seed ^ 0x517cc1b7ull).sampleDistinct(n,
                                                 std::min(num_long_rows,
                                                          n));
    std::vector<bool> is_long(n, false);
    for (int r : long_rows)
        is_long[r] = true;

    for (int r = 0; r < n; ++r) {
        const double density = is_long[r] ? long_density : bg_density;
        for (int c = 0; c < n; ++c) {
            if (c == r || rng.nextBool(density))
                coo.add(r, c, val(rng));
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
genGraphLaplacianImpl(int n, double avg_degree, double alpha,
                  std::uint64_t seed)
{
    const CsrMatrix adj = genPowerLaw(n, avg_degree, alpha, seed);
    // Symmetrise structurally and build L = D - A + 0.01 I.
    CooMatrix coo(n, n);
    std::vector<double> degree(n, 0.0);
    for (int r = 0; r < n; ++r) {
        for (std::int64_t i = adj.rowPtr()[r]; i < adj.rowPtr()[r + 1];
             ++i) {
            const int c = adj.colIdx()[i];
            if (c == r)
                continue;
            // Each directed edge contributes both orientations with
            // weight -0.5 (duplicates merge in normalize()).
            coo.add(r, c, -0.5);
            coo.add(c, r, -0.5);
            degree[r] += 0.5;
            degree[c] += 0.5;
        }
    }
    for (int r = 0; r < n; ++r)
        coo.add(r, r, degree[r] + 0.01);
    return cooToCsr(std::move(coo));
}

CsrMatrix
genFemLongRowsImpl(int n, int half_bandwidth, double fill,
               int num_long_rows, double long_span,
               double long_density, std::uint64_t seed)
{
    Rng rng(seed);
    CooMatrix coo(n, n);
    const auto long_rows =
        Rng(seed ^ 0x2545F491ull).sampleDistinct(n, num_long_rows);
    std::vector<bool> is_long(n, false);
    for (int r : long_rows)
        is_long[r] = true;
    const int span = std::max(1, static_cast<int>(long_span * n));

    for (int r = 0; r < n; ++r) {
        const int lo = std::max(0, r - half_bandwidth);
        const int hi = std::min(n - 1, r + half_bandwidth);
        for (int c = lo; c <= hi; ++c) {
            if (c == r || rng.nextBool(fill))
                coo.add(r, c, val(rng));
        }
        if (is_long[r]) {
            // Dense window at a random offset: long rows keep their
            // nonzeros block-clustered, like FEM constraint rows.
            const int start = static_cast<int>(
                rng.nextBelow(std::max(1, n - span)));
            for (int c = start; c < start + span; ++c) {
                if ((c < lo || c > hi) && rng.nextBool(long_density))
                    coo.add(r, c, val(rng));
            }
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
genArrowImpl(int n, int head, double head_fill, int half_bandwidth,
         double band_fill, std::uint64_t seed)
{
    UNISTC_ASSERT(head >= 0 && head <= n, "arrow head out of range");
    Rng rng(seed);
    CooMatrix coo(n, n);
    for (int r = 0; r < n; ++r) {
        const bool head_row = r < head;
        const int lo = std::max(0, r - half_bandwidth);
        const int hi = std::min(n - 1, r + half_bandwidth);
        for (int c = 0; c < n; ++c) {
            const bool in_head = head_row || c < head;
            const bool in_band = c >= lo && c <= hi;
            if (c == r) {
                coo.add(r, c, val(rng));
            } else if (in_head && rng.nextBool(head_fill)) {
                coo.add(r, c, val(rng));
            } else if (in_band && rng.nextBool(band_fill)) {
                coo.add(r, c, val(rng));
            }
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
genRmatImpl(int scale, int edges_per_vertex, double a, double b, double c,
        std::uint64_t seed)
{
    UNISTC_ASSERT(scale >= 1 && scale <= 24, "R-MAT scale 1..24");
    const double d = 1.0 - a - b - c;
    UNISTC_ASSERT(a >= 0 && b >= 0 && c >= 0 && d >= -1e-12,
                  "R-MAT probabilities must sum to <= 1");
    Rng rng(seed);
    const int n = 1 << scale;
    const std::int64_t edges =
        static_cast<std::int64_t>(n) * edges_per_vertex;

    CooMatrix coo(n, n);
    for (std::int64_t e = 0; e < edges; ++e) {
        int r = 0, col = 0;
        for (int bit = scale - 1; bit >= 0; --bit) {
            const double p = rng.nextDouble();
            if (p < a) {
                // top-left quadrant
            } else if (p < a + b) {
                col |= 1 << bit;
            } else if (p < a + b + c) {
                r |= 1 << bit;
            } else {
                r |= 1 << bit;
                col |= 1 << bit;
            }
        }
        coo.add(r, col, val(rng));
    }
    // Duplicate edges merge (values sum) in normalize().
    return cooToCsr(std::move(coo));
}

} // namespace

// Public generators: each routes through the global matrix artifact
// cache (cache/matrix_cache.hh), keyed by the full generator spec;
// with the cache disabled cachedCsr() runs the builder directly.

CsrMatrix
genRandomUniform(int rows, int cols, double density,
                 std::uint64_t seed)
{
    UNISTC_ASSERT(density >= 0.0 && density <= 1.0,
                  "density out of range");
    return cachedCsr(MatrixSpec("random_uniform")
                         .arg("rows", rows)
                         .arg("cols", cols)
                         .arg("density", density)
                         .seed(seed),
                     [&] {
                         return genRandomUniformImpl(rows, cols,
                                                     density, seed);
                     });
}

CsrMatrix
genBanded(int n, int half_bandwidth, double fill, std::uint64_t seed)
{
    return cachedCsr(MatrixSpec("banded")
                         .arg("n", n)
                         .arg("hb", half_bandwidth)
                         .arg("fill", fill)
                         .seed(seed),
                     [&] {
                         return genBandedImpl(n, half_bandwidth,
                                              fill, seed);
                     });
}

CsrMatrix
genStencil2d(int grid, bool nine_point)
{
    return cachedCsr(MatrixSpec("stencil2d")
                         .arg("grid", grid)
                         .arg("nine", nine_point ? 1 : 0),
                     [&] {
                         return genStencil2dImpl(grid, nine_point);
                     });
}

CsrMatrix
genPowerLaw(int n, double avg_degree, double alpha,
            std::uint64_t seed)
{
    UNISTC_ASSERT(alpha > 1.0, "power-law exponent must exceed 1");
    return cachedCsr(MatrixSpec("powerlaw")
                         .arg("n", n)
                         .arg("deg", avg_degree)
                         .arg("alpha", alpha)
                         .seed(seed),
                     [&] {
                         return genPowerLawImpl(n, avg_degree,
                                                alpha, seed);
                     });
}

CsrMatrix
genBlockDense(int n, int block, double block_density, double fill,
              std::uint64_t seed)
{
    return cachedCsr(MatrixSpec("blockdense")
                         .arg("n", n)
                         .arg("block", block)
                         .arg("bdens", block_density)
                         .arg("fill", fill)
                         .seed(seed),
                     [&] {
                         return genBlockDenseImpl(n, block,
                                                  block_density,
                                                  fill, seed);
                     });
}

CsrMatrix
genDiagonalHeavy(int n, int num_diags, std::uint64_t seed)
{
    return cachedCsr(MatrixSpec("diagheavy")
                         .arg("n", n)
                         .arg("diags", num_diags)
                         .seed(seed),
                     [&] {
                         return genDiagonalHeavyImpl(n, num_diags,
                                                     seed);
                     });
}

CsrMatrix
genLongRows(int n, int num_long_rows, double long_density,
            double bg_density, std::uint64_t seed)
{
    return cachedCsr(MatrixSpec("longrows")
                         .arg("n", n)
                         .arg("long", num_long_rows)
                         .arg("ldens", long_density)
                         .arg("bgdens", bg_density)
                         .seed(seed),
                     [&] {
                         return genLongRowsImpl(n, num_long_rows,
                                                long_density,
                                                bg_density, seed);
                     });
}

CsrMatrix
genGraphLaplacian(int n, double avg_degree, double alpha,
                  std::uint64_t seed)
{
    return cachedCsr(MatrixSpec("laplacian")
                         .arg("n", n)
                         .arg("deg", avg_degree)
                         .arg("alpha", alpha)
                         .seed(seed),
                     [&] {
                         return genGraphLaplacianImpl(n, avg_degree,
                                                      alpha, seed);
                     });
}

CsrMatrix
genFemLongRows(int n, int half_bandwidth, double fill,
               int num_long_rows, double long_span,
               double long_density, std::uint64_t seed)
{
    return cachedCsr(MatrixSpec("femlongrows")
                         .arg("n", n)
                         .arg("hb", half_bandwidth)
                         .arg("fill", fill)
                         .arg("long", num_long_rows)
                         .arg("span", long_span)
                         .arg("ldens", long_density)
                         .seed(seed),
                     [&] {
                         return genFemLongRowsImpl(
                             n, half_bandwidth, fill, num_long_rows,
                             long_span, long_density, seed);
                     });
}

CsrMatrix
genArrow(int n, int head, double head_fill, int half_bandwidth,
         double band_fill, std::uint64_t seed)
{
    UNISTC_ASSERT(head >= 0 && head <= n, "arrow head out of range");
    return cachedCsr(MatrixSpec("arrow")
                         .arg("n", n)
                         .arg("head", head)
                         .arg("hfill", head_fill)
                         .arg("hb", half_bandwidth)
                         .arg("bfill", band_fill)
                         .seed(seed),
                     [&] {
                         return genArrowImpl(n, head, head_fill,
                                             half_bandwidth,
                                             band_fill, seed);
                     });
}

CsrMatrix
genRmat(int scale, int edges_per_vertex, double a, double b, double c,
        std::uint64_t seed)
{
    UNISTC_ASSERT(scale >= 1 && scale <= 24, "R-MAT scale 1..24");
    return cachedCsr(MatrixSpec("rmat")
                         .arg("scale", scale)
                         .arg("epv", edges_per_vertex)
                         .arg("a", a)
                         .arg("b", b)
                         .arg("c", c)
                         .seed(seed),
                     [&] {
                         return genRmatImpl(scale, edges_per_vertex,
                                            a, b, c, seed);
                     });
}

CsrMatrix
lowerTriangular(const CsrMatrix &m)
{
    CooMatrix coo(m.rows(), m.cols());
    for (int r = 0; r < m.rows(); ++r) {
        for (std::int64_t i = m.rowPtr()[r]; i < m.rowPtr()[r + 1];
             ++i) {
            if (m.colIdx()[i] <= r)
                coo.add(r, m.colIdx()[i], m.vals()[i]);
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
symmetrize(const CsrMatrix &m)
{
    UNISTC_ASSERT(m.rows() == m.cols(),
                  "symmetrize needs a square matrix");
    CooMatrix coo(m.rows(), m.cols());
    for (int r = 0; r < m.rows(); ++r) {
        for (std::int64_t i = m.rowPtr()[r]; i < m.rowPtr()[r + 1];
             ++i) {
            const int c = m.colIdx()[i];
            coo.add(r, c, 0.5 * m.vals()[i]);
            coo.add(c, r, 0.5 * m.vals()[i]);
        }
    }
    return cooToCsr(std::move(coo));
}

void
randomizeValues(CsrMatrix &m, std::uint64_t seed)
{
    Rng rng(seed);
    for (auto &v : m.vals())
        v = val(rng);
}

CsrMatrix
generateFromSpec(const std::string &spec)
{
    const auto colon = spec.find(':');
    const std::string family = spec.substr(0, colon);

    // Parse the comma-separated numeric fields strictly: every field
    // (including the one after a trailing comma) must be a complete
    // number — std::stod leftovers, empty fields and overflow all
    // report the offending spec instead of throwing out of main().
    std::vector<double> args;
    if (colon != std::string::npos) {
        const std::string rest = spec.substr(colon + 1);
        std::size_t pos = 0;
        while (true) {
            const auto comma = rest.find(',', pos);
            const std::string field =
                comma == std::string::npos
                    ? rest.substr(pos)
                    : rest.substr(pos, comma - pos);
            double v = 0.0;
            std::size_t used = 0;
            bool ok = !field.empty();
            if (ok) {
                try {
                    v = std::stod(field, &used);
                } catch (const std::exception &) {
                    ok = false;
                }
            }
            if (ok && used != field.size())
                ok = false;
            if (ok && !std::isfinite(v))
                ok = false;
            if (!ok) {
                UNISTC_FATAL("malformed --gen spec '", spec,
                             "': bad numeric field '", field, "'");
            }
            args.push_back(v);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }

    auto arg = [&](std::size_t i, double dflt) {
        return i < args.size() ? args[i] : dflt;
    };
    if (family == "banded") {
        return genBanded(static_cast<int>(arg(0, 1024)),
                         static_cast<int>(arg(1, 16)), arg(2, 0.5),
                         1);
    }
    if (family == "random") {
        const int n = static_cast<int>(arg(0, 1024));
        return genRandomUniform(n, n, arg(1, 0.01), 1);
    }
    if (family == "powerlaw") {
        return genPowerLaw(static_cast<int>(arg(0, 1024)),
                           arg(1, 8.0), arg(2, 2.3), 1);
    }
    if (family == "stencil")
        return genStencil2d(static_cast<int>(arg(0, 32)));
    UNISTC_FATAL("malformed --gen spec '", spec,
                 "': unknown generator family '", family, "'");
}

} // namespace unistc
