/**
 * @file
 * DLMC-style pruned-weight generator. The paper evaluates DNN
 * inference on 302 DLMC weight matrices at 70% and 98% sparsity;
 * DLMC holds unstructured magnitude-pruned weights, which this
 * generator reproduces as i.i.d. keep-masks with mild per-row
 * balance (magnitude pruning keeps row populations close to the
 * global keep rate).
 */

#ifndef UNISTC_CORPUS_DLMC_HH
#define UNISTC_CORPUS_DLMC_HH

#include <cstdint>

#include "sparse/csr.hh"

namespace unistc
{

/**
 * Pruned weight matrix of shape rows x cols with the given sparsity
 * (fraction of zeros, e.g. 0.7 or 0.98). Every row keeps at least
 * one weight, matching pruned checkpoints that never empty a neuron.
 */
CsrMatrix genPrunedWeights(int rows, int cols, double sparsity,
                           std::uint64_t seed);

/**
 * 2:4 structured-pruned weights: exactly two survivors in every
 * 4-wide group of each row (50% sparsity, the A100 Sparse Tensor
 * Core's supported pattern). @p cols must be a multiple of 4.
 */
CsrMatrix genStructured24(int rows, int cols, std::uint64_t seed);

} // namespace unistc

#endif // UNISTC_CORPUS_DLMC_HH
