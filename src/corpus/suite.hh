/**
 * @file
 * The synthetic SuiteSparse-style corpus: a deterministic sweep over
 * structural families, sizes and densities standing in for the
 * paper's 2,893-matrix evaluation set (DESIGN.md substitution table).
 */

#ifndef UNISTC_CORPUS_SUITE_HH
#define UNISTC_CORPUS_SUITE_HH

#include <cstdint>

#include "corpus/representative.hh"

namespace unistc
{

/**
 * Build the corpus. @p scale multiplies the per-family instance count
 * (scale 1 ~= 42 matrices, covering every family x density level);
 * all matrices are square so SpGEMM (C = A^2) runs on the full set.
 */
std::vector<NamedMatrix> syntheticSuite(int scale = 1,
                                        std::uint64_t seed = 2026);

} // namespace unistc

#endif // UNISTC_CORPUS_SUITE_HH
