/**
 * @file
 * Synthetic sparse-matrix generators covering the structural families
 * the SuiteSparse collection exhibits (DESIGN.md substitution table):
 * uniform random, banded/FEM, 2D stencils, power-law graphs, blocky
 * FEM clusters, diagonal-dominant and long-row patterns. All
 * generators are deterministic in their seed.
 */

#ifndef UNISTC_CORPUS_GENERATORS_HH
#define UNISTC_CORPUS_GENERATORS_HH

#include <cstdint>
#include <string>

#include "sparse/csr.hh"

namespace unistc
{

/**
 * Build a matrix from a textual generator spec, the `--gen` syntax of
 * simulate_cli:
 *
 *   banded:n,half_bandwidth,fill | random:n,density |
 *   powerlaw:n,avg_degree,alpha  | stencil:grid
 *
 * Omitted numeric fields take family defaults. Malformed specs
 * (unknown family, non-numeric or empty fields, trailing commas)
 * report the offending spec via fatal() instead of throwing.
 */
CsrMatrix generateFromSpec(const std::string &spec);

/** i.i.d. uniform random pattern with the given element density. */
CsrMatrix genRandomUniform(int rows, int cols, double density,
                           std::uint64_t seed);

/**
 * Banded matrix: entries within @p half_bandwidth of the diagonal are
 * present with probability @p fill (FEM-style stencils).
 */
CsrMatrix genBanded(int n, int half_bandwidth, double fill,
                    std::uint64_t seed);

/** 2D Poisson stencil on a grid x grid mesh (5- or 9-point). */
CsrMatrix genStencil2d(int grid, bool nine_point = false);

/**
 * Power-law (scale-free) graph adjacency: out-degrees follow a
 * Zipf-like law with exponent @p alpha and mean ~@p avg_degree.
 */
CsrMatrix genPowerLaw(int n, double avg_degree, double alpha,
                      std::uint64_t seed);

/**
 * Blocky FEM-like pattern: dense @p block x @p block clusters placed
 * near the diagonal; a fraction @p block_density of candidate cluster
 * slots is populated, each filled to @p fill.
 */
CsrMatrix genBlockDense(int n, int block, double block_density,
                        double fill, std::uint64_t seed);

/** A few full (sub)diagonals at random offsets. */
CsrMatrix genDiagonalHeavy(int n, int num_diags, std::uint64_t seed);

/**
 * Shifted graph Laplacian L = D - A + 0.01 I of a symmetrised
 * power-law graph — an irregular, diagonally dominant operator for
 * unstructured AMG runs (row degrees vary by orders of magnitude).
 */
CsrMatrix genGraphLaplacian(int n, double avg_degree, double alpha,
                            std::uint64_t seed);

/**
 * Mostly-sparse background plus @p num_long_rows nearly dense rows
 * (the pattern that stresses fixed-K task shapes, e.g. crankseg_2).
 */
CsrMatrix genLongRows(int n, int num_long_rows, double long_density,
                      double bg_density, std::uint64_t seed);

/**
 * FEM band plus long rows: a banded base (half-bandwidth, fill) with
 * @p num_long_rows additional rows densified to @p long_density over
 * a contiguous window of @p long_span x n columns — the
 * crankseg_2-style constraint-coupling pattern (long rows stay
 * block-dense rather than scattering into singleton blocks).
 */
CsrMatrix genFemLongRows(int n, int half_bandwidth, double fill,
                         int num_long_rows, double long_span,
                         double long_density, std::uint64_t seed);

/**
 * Arrow matrix: the first @p head rows AND columns are dense with
 * probability @p head_fill, plus a filled diagonal band of half-width
 * @p half_bandwidth. Clusters intermediate products into dense
 * blocks — the structure behind gupta3's extreme #inter-prod/blk.
 */
CsrMatrix genArrow(int n, int head, double head_fill,
                   int half_bandwidth, double band_fill,
                   std::uint64_t seed);

/**
 * R-MAT / Kronecker-style graph: edges recursively biased into one
 * quadrant with probabilities (a, b, c, d), a >= b, c >= d,
 * a+b+c+d = 1. Produces the heavy-tailed, community-clustered
 * patterns of social/web graphs (Graph500 uses a=0.57, b=c=0.19).
 */
CsrMatrix genRmat(int scale, int edges_per_vertex, double a, double b,
                  double c, std::uint64_t seed);

/** Lower-triangular part (including the diagonal) of @p m. */
CsrMatrix lowerTriangular(const CsrMatrix &m);

/** Structural+numerical symmetrisation: (M + M^T) / 2. */
CsrMatrix symmetrize(const CsrMatrix &m);

/** Random values in [0.1, 1.0) written onto an existing structure. */
void randomizeValues(CsrMatrix &m, std::uint64_t seed);

} // namespace unistc

#endif // UNISTC_CORPUS_GENERATORS_HH
