/**
 * @file
 * Conjugate-gradient solver with optional preconditioning — a second
 * SpMV-dominated solver substrate beside AMG. Composed with one AMG
 * V-cycle as the preconditioner it forms AMG-PCG, the configuration
 * production solvers (and the paper's AmgT/AmgR lineage) actually
 * deploy; its kernel stream is SpMV-only and maps directly onto the
 * STC models.
 */

#ifndef UNISTC_APPS_SOLVERS_CG_HH
#define UNISTC_APPS_SOLVERS_CG_HH

#include <functional>
#include <vector>

#include "sparse/csr.hh"

namespace unistc
{

/** Outcome of a CG solve. */
struct CgStats
{
    int iterations = 0;
    double finalResidual = 0.0; ///< Relative residual norm.
    bool converged = false;
    std::vector<double> residualHistory;
    std::int64_t spmvCount = 0; ///< SpMV invocations performed.
};

/**
 * Preconditioner: z = M^-1 r. The identity (no preconditioning) is
 * the default; AMG-PCG passes one V-cycle.
 */
using Preconditioner =
    std::function<std::vector<double>(const std::vector<double> &)>;

/**
 * Solve A x = b with (preconditioned) conjugate gradients. A must be
 * symmetric positive definite.
 *
 * @param x initial guess on entry, solution on exit.
 * @param tol relative residual tolerance.
 * @param max_iters iteration cap.
 * @param precond optional preconditioner (identity when empty).
 */
CgStats conjugateGradient(const CsrMatrix &a, std::vector<double> &x,
                          const std::vector<double> &b, double tol,
                          int max_iters,
                          const Preconditioner &precond = {});

} // namespace unistc

#endif // UNISTC_APPS_SOLVERS_CG_HH
