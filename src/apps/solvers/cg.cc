#include "apps/solvers/cg.hh"

#include <cmath>

#include "common/logging.hh"
#include "kernels/reference.hh"
#include "sparse/dense.hh"

namespace unistc
{

namespace
{

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += a[i] * b[i];
    return s;
}

} // namespace

CgStats
conjugateGradient(const CsrMatrix &a, std::vector<double> &x,
                  const std::vector<double> &b, double tol,
                  int max_iters, const Preconditioner &precond)
{
    UNISTC_ASSERT(a.rows() == a.cols(), "CG needs a square matrix");
    UNISTC_ASSERT(x.size() == b.size() &&
                  static_cast<int>(b.size()) == a.rows(),
                  "CG vector size mismatch");

    CgStats stats;
    const double b_norm = std::max(norm2(b), 1e-300);

    // r = b - A x.
    std::vector<double> r = spmvRef(a, x);
    ++stats.spmvCount;
    for (std::size_t i = 0; i < r.size(); ++i)
        r[i] = b[i] - r[i];

    std::vector<double> z = precond ? precond(r) : r;
    std::vector<double> p = z;
    double rz = dot(r, z);

    for (int it = 0; it < max_iters; ++it) {
        const std::vector<double> ap = spmvRef(a, p);
        ++stats.spmvCount;
        const double p_ap = dot(p, ap);
        if (p_ap == 0.0)
            break; // breakdown: p is A-null
        const double alpha = rz / p_ap;
        for (std::size_t i = 0; i < x.size(); ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }

        const double rel = norm2(r) / b_norm;
        stats.residualHistory.push_back(rel);
        stats.iterations = it + 1;
        stats.finalResidual = rel;
        if (rel < tol) {
            stats.converged = true;
            break;
        }

        z = precond ? precond(r) : r;
        const double rz_next = dot(r, z);
        const double beta = rz_next / rz;
        rz = rz_next;
        for (std::size_t i = 0; i < p.size(); ++i)
            p[i] = z[i] + beta * p[i];
    }
    return stats;
}

} // namespace unistc
