#include "apps/dnn/layers.hh"

#include <algorithm>

namespace unistc
{

std::vector<DnnLayer>
resnet50Layers()
{
    // Lowered convolution shapes (M = out channels, K = in channels x
    // kernel area), one representative layer per residual stage; the
    // activation tile N is fixed at 64 columns, the paper's SpMM B
    // width.
    return {
        {"res50_conv1", 64, 147, 64},     // 7x7x3 stem
        {"res50_l10", 64, 576, 64},       // layer 10: 3x3x64
        {"res50_l22", 128, 1152, 64},     // layer 22: 3x3x128
        {"res50_l40", 256, 2304, 64},     // layer 40: 3x3x256
        {"res50_l49", 512, 4608, 64},     // layer 49: 3x3x512
    };
}

std::vector<DnnLayer>
transformerLayers()
{
    // Transformer-base (d_model 512, FFN 2048), 64-token tile.
    return {
        {"xfmr_qkv", 512, 512, 64},   // fused per-head projection
        {"xfmr_attn_out", 512, 512, 64},
        {"xfmr_ffn1", 2048, 512, 64},
        {"xfmr_ffn2", 512, 2048, 64},
    };
}

namespace
{

/** Spatial sites of each ResNet-50 stage on a 224x224 input. */
int
tilesFor(int spatial)
{
    // Sites = spatial^2; activation tiles of 64 columns each.
    return std::max(1, spatial * spatial / 64);
}

} // namespace

std::vector<DnnLayerRep>
resnet50FullStack()
{
    std::vector<DnnLayerRep> stack;
    // Stem: 7x7x3 -> 64 at 112x112.
    stack.push_back({{"conv1", 64, 147, 64}, tilesFor(112)});

    struct Stage
    {
        const char *name;
        int blocks;
        int width;   // bottleneck width (1x1 reduce / 3x3)
        int out;     // block output channels (4x width)
        int spatial; // output spatial resolution
    };
    const Stage stages[] = {
        {"res2", 3, 64, 256, 56},
        {"res3", 4, 128, 512, 28},
        {"res4", 6, 256, 1024, 14},
        {"res5", 3, 512, 2048, 7},
    };

    int in_ch = 64;
    for (const Stage &s : stages) {
        const int tiles = tilesFor(s.spatial);
        for (int b = 0; b < s.blocks; ++b) {
            const std::string base =
                std::string(s.name) + "_" + std::to_string(b);
            const int block_in = b == 0 ? in_ch : s.out;
            // 1x1 reduce.
            stack.push_back({{base + "_a", s.width, block_in, 64},
                             tiles});
            // 3x3.
            stack.push_back({{base + "_b", s.width, s.width * 9, 64},
                             tiles});
            // 1x1 expand.
            stack.push_back({{base + "_c", s.out, s.width, 64},
                             tiles});
            if (b == 0) {
                // Projection shortcut.
                stack.push_back({{base + "_proj", s.out, block_in,
                                  64},
                                 tiles});
            }
        }
        in_ch = s.out;
    }
    return stack;
}

std::vector<DnnLayerRep>
transformerFullStack(int num_layers, int seq_tiles)
{
    std::vector<DnnLayerRep> stack;
    for (int l = 0; l < num_layers; ++l) {
        const std::string base = "enc" + std::to_string(l);
        stack.push_back({{base + "_qkv", 1536, 512, 64}, seq_tiles});
        stack.push_back({{base + "_out", 512, 512, 64}, seq_tiles});
        stack.push_back({{base + "_ffn1", 2048, 512, 64},
                         seq_tiles});
        stack.push_back({{base + "_ffn2", 512, 2048, 64},
                         seq_tiles});
    }
    return stack;
}

} // namespace unistc
