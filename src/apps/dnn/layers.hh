/**
 * @file
 * DNN inference substrate: layer descriptors for ResNet-50-shaped
 * (convolutions lowered to GEMM via im2col) and Transformer-shaped
 * stacks, matching the models the paper evaluates on DLMC weights
 * (§VI-A: 70% / 98% sparsity, Fig. 17 right).
 */

#ifndef UNISTC_APPS_DNN_LAYERS_HH
#define UNISTC_APPS_DNN_LAYERS_HH

#include <string>
#include <vector>

namespace unistc
{

/** One GEMM-lowered layer: weights (M x K) x activations (K x N). */
struct DnnLayer
{
    std::string name;
    int m = 0; ///< Output channels / features.
    int k = 0; ///< Input channels x kernel window (im2col K).
    int n = 0; ///< Spatial sites / tokens in the activation tile.
};

/**
 * Representative ResNet-50 layers (lowered convolutions, one per
 * stage) at an evaluation-friendly activation tile.
 */
std::vector<DnnLayer> resnet50Layers();

/** Representative Transformer-base layers (proj + FFN). */
std::vector<DnnLayer> transformerLayers();

/**
 * The full ResNet-50 convolution stack lowered to GEMMs: all 53
 * convolutions (stem + 16 bottleneck blocks of 1x1/3x3/1x1 plus the
 * four projection shortcuts), each tagged with how many 64-column
 * activation tiles one 224x224 inference pushes through it.
 */
struct DnnLayerRep
{
    DnnLayer layer;
    int repeats = 1; ///< Activation tiles per inference.
};
std::vector<DnnLayerRep> resnet50FullStack();

/** Transformer-base encoder: 6 layers x (QKV, out, FFN1, FFN2). */
std::vector<DnnLayerRep> transformerFullStack(int num_layers = 6,
                                              int seq_tiles = 2);

} // namespace unistc

#endif // UNISTC_APPS_DNN_LAYERS_HH
