/**
 * @file
 * DNN inference driver: runs a layer's weight GEMM on an STC model.
 * Dense-activation inference maps to SpMM (sparse weights x dense
 * activations); sparse-activation inference (post-ReLU / pruned
 * attention, "convolution treated as SpGEMM" in §VI-C-2) maps to
 * SpGEMM with a sparse activation matrix.
 */

#ifndef UNISTC_APPS_DNN_DNN_DRIVER_HH
#define UNISTC_APPS_DNN_DNN_DRIVER_HH

#include <cstdint>

#include "apps/dnn/layers.hh"
#include "sim/energy.hh"
#include "sim/result.hh"
#include "stc/stc_model.hh"

namespace unistc
{

/** Activation regime of a layer execution. */
enum class ActivationMode
{
    Dense,  ///< SpMM: sparse weights x dense activations.
    Sparse, ///< SpGEMM: sparse weights x sparse activations.
};

/**
 * Simulate one layer on @p model.
 *
 * @param layer GEMM shape.
 * @param weight_sparsity fraction of pruned weights (0.7 / 0.98).
 * @param mode dense- or sparse-activation inference.
 * @param activation_sparsity activation zero fraction (Sparse mode).
 * @param seed weight/activation pattern seed.
 */
RunResult runDnnLayer(const StcModel &model, const DnnLayer &layer,
                      double weight_sparsity, ActivationMode mode,
                      double activation_sparsity, std::uint64_t seed,
                      const EnergyModel &energy = EnergyModel());

/** End-to-end inference latency projection on a full device. */
struct InferenceLatency
{
    std::uint64_t makespanCycles = 0; ///< Slowest SM's cycles.
    double latencyUs = 0.0;           ///< At the configured clock.
    double unitUtilisation = 0.0;     ///< Device-wide STC busy share.
    std::uint64_t bundles = 0;        ///< T1 bundles executed.
};

/**
 * Project the dense-activation inference latency of a full layer
 * stack (e.g. resnet50FullStack()) on Uni-STC units across the
 * device: per layer, the SpMM UWMMA stream is generated once per
 * activation tile and scheduled via the SM model.
 *
 * @param num_sms SMs on the device (A100: 108).
 * @param stc_per_sm Uni-STC units per SM (paper: 4).
 * @param warps concurrent warps per SM.
 */
InferenceLatency estimateInferenceLatency(
    const std::vector<DnnLayerRep> &stack, double weight_sparsity,
    const MachineConfig &cfg, int num_sms, int stc_per_sm, int warps,
    std::uint64_t seed);

} // namespace unistc

#endif // UNISTC_APPS_DNN_DNN_DRIVER_HH
