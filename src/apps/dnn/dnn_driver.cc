#include "apps/dnn/dnn_driver.hh"

#include "bbc/bbc_matrix.hh"
#include "corpus/dlmc.hh"
#include "corpus/generators.hh"
#include "isa/uwmma.hh"
#include "runner/spgemm_runner.hh"
#include "runner/spmm_runner.hh"
#include "sm/sm_model.hh"

namespace unistc
{

RunResult
runDnnLayer(const StcModel &model, const DnnLayer &layer,
            double weight_sparsity, ActivationMode mode,
            double activation_sparsity, std::uint64_t seed,
            const EnergyModel &energy)
{
    const CsrMatrix weights =
        genPrunedWeights(layer.m, layer.k, weight_sparsity, seed);
    const BbcMatrix w_bbc = BbcMatrix::fromCsr(weights);

    if (mode == ActivationMode::Dense)
        return runSpmm(model, w_bbc, layer.n, energy);

    // Sparse activations: K x N activation matrix with the given
    // zero fraction (post-ReLU statistics).
    const CsrMatrix acts = genRandomUniform(
        layer.k, layer.n, 1.0 - activation_sparsity, seed ^ 0xA5A5u);
    const BbcMatrix a_bbc = BbcMatrix::fromCsr(acts);
    return runSpgemm(model, w_bbc, a_bbc, energy);
}

InferenceLatency
estimateInferenceLatency(const std::vector<DnnLayerRep> &stack,
                         double weight_sparsity,
                         const MachineConfig &cfg, int num_sms,
                         int stc_per_sm, int warps,
                         std::uint64_t seed)
{
    InferenceLatency out;
    std::uint64_t total_busy = 0;

    // Layers execute back to back (each consumes the previous one's
    // activations); within a layer all activation tiles are
    // independent and spread across the device.
    for (const auto &rep : stack) {
        const CsrMatrix weights = genPrunedWeights(
            rep.layer.m, rep.layer.k, weight_sparsity, seed++);
        const BbcMatrix bbc = BbcMatrix::fromCsr(weights);
        const auto one_tile = traceSpmm(bbc, rep.layer.n, cfg);
        // Replicate the per-tile stream for every activation tile.
        std::vector<TaskBundle> bundles;
        bundles.reserve(one_tile.size() * rep.repeats);
        for (int t = 0; t < rep.repeats; ++t) {
            bundles.insert(bundles.end(), one_tile.begin(),
                           one_tile.end());
        }
        const SmStats s = simulateDevice(
            bundles, SmConfig{stc_per_sm, warps}, num_sms);
        out.makespanCycles += s.makespanCycles;
        out.bundles += s.tasksIssued;
        total_busy += s.busyUnitCycles;
    }

    out.latencyUs =
        static_cast<double>(out.makespanCycles) / cfg.freqGhz / 1e3;
    const double capacity = static_cast<double>(out.makespanCycles) *
        num_sms * stc_per_sm;
    out.unitUtilisation =
        capacity > 0.0 ? static_cast<double>(total_busy) / capacity
                       : 0.0;
    return out;
}

} // namespace unistc
