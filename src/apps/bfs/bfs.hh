/**
 * @file
 * Breadth-first search via iterated SpMSpV over the boolean semiring
 * — the Table II workload that motivates SpMV + SpMSpV support. The
 * frontier is a sparse vector; each iteration multiplies it by the
 * transposed adjacency structure and masks out visited vertices.
 */

#ifndef UNISTC_APPS_BFS_BFS_HH
#define UNISTC_APPS_BFS_BFS_HH

#include <vector>

#include "sparse/csr.hh"
#include "sparse/sparse_vector.hh"

namespace unistc
{

/** Result of a BFS run. */
struct BfsResult
{
    std::vector<int> level;              ///< -1 when unreachable.
    std::vector<SparseVector> frontiers; ///< Frontier per iteration.
    int iterations = 0;
};

/**
 * BFS from @p source over the directed graph whose adjacency matrix
 * is @p adj (edge u->v means adj(u, v) != 0). Frontier expansion is
 * expressed as SpMSpV with the transposed adjacency so the recorded
 * frontiers can be replayed on an STC model.
 */
BfsResult bfsSpmspv(const CsrMatrix &adj, int source);

} // namespace unistc

#endif // UNISTC_APPS_BFS_BFS_HH
