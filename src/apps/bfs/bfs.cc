#include "apps/bfs/bfs.hh"

#include "common/logging.hh"
#include "kernels/reference.hh"
#include "sparse/convert.hh"

namespace unistc
{

BfsResult
bfsSpmspv(const CsrMatrix &adj, int source)
{
    UNISTC_ASSERT(adj.rows() == adj.cols(), "adjacency must be square");
    UNISTC_ASSERT(source >= 0 && source < adj.rows(),
                  "BFS source out of range");
    const int n = adj.rows();

    // y = A^T * frontier reaches the out-neighbours of the frontier.
    const CsrMatrix adj_t = transposeCsr(adj);

    BfsResult out;
    out.level.assign(n, -1);
    out.level[source] = 0;

    SparseVector frontier(n);
    frontier.push(source, 1.0);

    int depth = 0;
    while (frontier.nnz() > 0) {
        out.frontiers.push_back(frontier);
        ++depth;
        const SparseVector reached = spmspvRef(adj_t, frontier);
        SparseVector next(n);
        for (std::size_t i = 0; i < reached.idx().size(); ++i) {
            const int v = reached.idx()[i];
            if (out.level[v] == -1) {
                out.level[v] = depth;
                next.push(v, 1.0);
            }
        }
        frontier = std::move(next);
    }
    out.iterations = depth;
    return out;
}

} // namespace unistc
