/**
 * @file
 * Triangle counting via masked SpGEMM — the canonical GraphBLAS
 * SpGEMM workload (and a GNN/graph-analytics companion to the BFS
 * and SSSP substrates): with L the lower-triangular part of the
 * symmetric adjacency, the triangle count is sum(L .* (L x L)).
 */

#ifndef UNISTC_APPS_GRAPH_TRIANGLES_HH
#define UNISTC_APPS_GRAPH_TRIANGLES_HH

#include <cstdint>

#include "sparse/csr.hh"

namespace unistc
{

/** Result of a triangle count. */
struct TriangleCount
{
    std::int64_t triangles = 0;
    std::int64_t spgemmFlops = 0; ///< Intermediate products of LxL.
};

/**
 * Count triangles of an undirected graph. @p adj is symmetrised
 * internally (structure only; weights are ignored) and self-loops
 * are dropped.
 */
TriangleCount countTriangles(const CsrMatrix &adj);

} // namespace unistc

#endif // UNISTC_APPS_GRAPH_TRIANGLES_HH
