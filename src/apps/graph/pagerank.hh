/**
 * @file
 * PageRank by damped power iteration — the classic SpMV-iterative
 * graph workload, rounding out the graph-application suite (BFS,
 * SSSP, triangles). Each iteration is one SpMV with the transposed,
 * column-stochastic adjacency, directly replayable on the STCs.
 */

#ifndef UNISTC_APPS_GRAPH_PAGERANK_HH
#define UNISTC_APPS_GRAPH_PAGERANK_HH

#include <vector>

#include "sparse/csr.hh"

namespace unistc
{

/** PageRank outcome. */
struct PageRankResult
{
    std::vector<double> rank; ///< Sums to 1.
    int iterations = 0;
    double finalDelta = 0.0; ///< L1 change of the last iteration.
    bool converged = false;
};

/**
 * PageRank of the directed graph whose adjacency is @p adj (edge
 * u->v means adj(u, v) != 0; weights are ignored). Dangling-node
 * mass is redistributed uniformly.
 *
 * @param damping the damping factor (0.85 classically).
 * @param tol L1 convergence tolerance.
 */
PageRankResult pageRank(const CsrMatrix &adj, double damping = 0.85,
                        double tol = 1e-10, int max_iters = 200);

/**
 * The column-stochastic transition structure P^T used by the power
 * iteration (row r of the result lists the in-neighbours of r with
 * weight 1/outdeg). Exposed so callers can replay the per-iteration
 * SpMV on an STC model.
 */
CsrMatrix transitionTranspose(const CsrMatrix &adj);

} // namespace unistc

#endif // UNISTC_APPS_GRAPH_PAGERANK_HH
