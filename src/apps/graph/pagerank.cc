#include "apps/graph/pagerank.hh"

#include <cmath>

#include "common/logging.hh"
#include "kernels/reference.hh"
#include "sparse/convert.hh"

namespace unistc
{

CsrMatrix
transitionTranspose(const CsrMatrix &adj)
{
    UNISTC_ASSERT(adj.rows() == adj.cols(),
                  "PageRank needs a square adjacency");
    CooMatrix coo(adj.rows(), adj.cols());
    for (int u = 0; u < adj.rows(); ++u) {
        const std::int64_t deg = adj.rowNnz(u);
        if (deg == 0)
            continue; // dangling: handled analytically
        const double w = 1.0 / static_cast<double>(deg);
        for (std::int64_t i = adj.rowPtr()[u]; i < adj.rowPtr()[u + 1];
             ++i) {
            coo.add(adj.colIdx()[i], u, w);
        }
    }
    return cooToCsr(std::move(coo));
}

PageRankResult
pageRank(const CsrMatrix &adj, double damping, double tol,
         int max_iters)
{
    UNISTC_ASSERT(damping > 0.0 && damping < 1.0,
                  "damping must lie in (0, 1)");
    const int n = adj.rows();
    const CsrMatrix pt = transitionTranspose(adj);

    std::vector<bool> dangling(n, false);
    for (int u = 0; u < n; ++u)
        dangling[u] = adj.rowNnz(u) == 0;

    PageRankResult out;
    out.rank.assign(n, 1.0 / n);

    for (int it = 0; it < max_iters; ++it) {
        // Dangling mass redistributes uniformly.
        double dangling_mass = 0.0;
        for (int u = 0; u < n; ++u) {
            if (dangling[u])
                dangling_mass += out.rank[u];
        }
        std::vector<double> next = spmvRef(pt, out.rank);
        const double base =
            (1.0 - damping) / n + damping * dangling_mass / n;
        double delta = 0.0;
        for (int v = 0; v < n; ++v) {
            next[v] = base + damping * next[v];
            delta += std::fabs(next[v] - out.rank[v]);
        }
        out.rank = std::move(next);
        out.iterations = it + 1;
        out.finalDelta = delta;
        if (delta < tol) {
            out.converged = true;
            break;
        }
    }
    return out;
}

} // namespace unistc
