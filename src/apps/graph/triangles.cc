#include "apps/graph/triangles.hh"

#include "common/logging.hh"
#include "corpus/generators.hh"
#include "kernels/reference.hh"
#include "sparse/convert.hh"

namespace unistc
{

TriangleCount
countTriangles(const CsrMatrix &adj)
{
    UNISTC_ASSERT(adj.rows() == adj.cols(),
                  "triangle counting needs a square adjacency");

    // Structural symmetrisation without self-loops, unit weights.
    CooMatrix coo(adj.rows(), adj.cols());
    for (int r = 0; r < adj.rows(); ++r) {
        for (std::int64_t i = adj.rowPtr()[r];
             i < adj.rowPtr()[r + 1]; ++i) {
            const int c = adj.colIdx()[i];
            if (c == r)
                continue;
            coo.add(r, c, 1.0);
            coo.add(c, r, 1.0);
        }
    }
    coo.normalize();
    // Clamp merged duplicates back to unit weight.
    CsrMatrix sym = cooToCsr(std::move(coo));
    for (auto &v : sym.vals())
        v = 1.0;

    const CsrMatrix l = lowerTriangular(sym);
    // Strictly lower: lowerTriangular keeps the (empty) diagonal.

    TriangleCount out;
    out.spgemmFlops = spgemmFlops(l, l);

    // sum(L .* (L x L)): for each edge (r, c) of L, count common
    // lower-neighbours, i.e. (L x L)(r, c).
    const CsrMatrix l2 = spgemmRef(l, l);
    double total = 0.0;
    for (int r = 0; r < l.rows(); ++r) {
        for (std::int64_t i = l.rowPtr()[r]; i < l.rowPtr()[r + 1];
             ++i) {
            total += l2.at(r, l.colIdx()[i]);
        }
    }
    out.triangles = static_cast<std::int64_t>(total + 0.5);
    return out;
}

} // namespace unistc
