#include "apps/amg/amg_driver.hh"

#include "engine/kernel_pipeline.hh"
#include "kernels/reference.hh"
#include "runner/spgemm_runner.hh"
#include "runner/spmv_runner.hh"

namespace unistc
{

AmgWorkload
simulateAmg(const StcModel &model, const AmgHierarchy &hierarchy,
            int num_vcycles, const EnergyModel &energy)
{
    return std::move(simulateAmgLineup({&model}, hierarchy,
                                       num_vcycles, energy)
                         .front());
}

std::vector<AmgWorkload>
simulateAmgLineup(const std::vector<const StcModel *> &models,
                  const AmgHierarchy &hierarchy, int num_vcycles,
                  const EnergyModel &energy)
{
    std::vector<AmgWorkload> out(models.size());
    std::vector<KernelPipeline::ModelSlot> slots;
    slots.reserve(models.size());
    for (const StcModel *m : models)
        slots.push_back({m, nullptr});

    // One shared stream per kernel invocation: every model consumes
    // the same enumeration, so per-model results equal solo runs.
    const auto mergeSpmv = [&](const BbcMatrix &bbc,
                               std::uint64_t times) {
        const SpmvPlan plan(bbc);
        std::vector<RunResult> rs =
            KernelPipeline::run(plan, slots, energy);
        for (std::size_t i = 0; i < rs.size(); ++i) {
            rs[i].scale(times);
            out[i].spmv.merge(rs[i]);
        }
    };
    const auto mergeSpgemm = [&](const BbcMatrix &a,
                                 const BbcMatrix &b) {
        const SpgemmPlan plan(a, b);
        const std::vector<RunResult> rs =
            KernelPipeline::run(plan, slots, energy);
        for (std::size_t i = 0; i < rs.size(); ++i)
            out[i].spgemm.merge(rs[i]);
    };

    const AmgOptions &opts = hierarchy.options();
    const int levels = hierarchy.numLevels();

    // Solve phase: per V-cycle SpMV invocations of each operator.
    for (int l = 0; l < levels; ++l) {
        const AmgLevel &lev = hierarchy.level(l);
        const bool coarsest = l == levels - 1;

        // Smoother sweeps + residual computation on this level.
        std::uint64_t a_spmvs;
        if (coarsest) {
            a_spmvs = static_cast<std::uint64_t>(opts.coarseSweeps);
        } else {
            a_spmvs = static_cast<std::uint64_t>(opts.preSmooth +
                                                 opts.postSmooth + 2);
        }
        const BbcMatrix a_bbc = BbcMatrix::fromCsr(lev.a);
        mergeSpmv(a_bbc, a_spmvs * num_vcycles);

        // Grid-transfer SpMVs (R on the residual, P on the coarse
        // correction), once per V-cycle each.
        if (l > 0) {
            for (const CsrMatrix *t : {&lev.r, &lev.p}) {
                const BbcMatrix t_bbc = BbcMatrix::fromCsr(*t);
                mergeSpmv(t_bbc, static_cast<std::uint64_t>(
                                     num_vcycles));
            }
        }
    }

    // Setup phase: the Galerkin triple product on every coarse level
    // (Ac = R * (A * P), two SpGEMMs).
    for (int l = 1; l < levels; ++l) {
        const AmgLevel &fine = hierarchy.level(l - 1);
        const AmgLevel &coarse = hierarchy.level(l);
        const BbcMatrix a_bbc = BbcMatrix::fromCsr(fine.a);
        const BbcMatrix p_bbc = BbcMatrix::fromCsr(coarse.p);
        const BbcMatrix r_bbc = BbcMatrix::fromCsr(coarse.r);

        mergeSpgemm(a_bbc, p_bbc);

        const CsrMatrix ap = spgemmRef(fine.a, coarse.p);
        const BbcMatrix ap_bbc = BbcMatrix::fromCsr(ap);
        mergeSpgemm(r_bbc, ap_bbc);
    }
    return out;
}

} // namespace unistc
