#include "apps/amg/amg_driver.hh"

#include "kernels/reference.hh"
#include "runner/spgemm_runner.hh"
#include "runner/spmv_runner.hh"

namespace unistc
{

AmgWorkload
simulateAmg(const StcModel &model, const AmgHierarchy &hierarchy,
            int num_vcycles, const EnergyModel &energy)
{
    AmgWorkload out;
    const AmgOptions &opts = hierarchy.options();
    const int levels = hierarchy.numLevels();

    // Solve phase: per V-cycle SpMV invocations of each operator.
    for (int l = 0; l < levels; ++l) {
        const AmgLevel &lev = hierarchy.level(l);
        const bool coarsest = l == levels - 1;

        // Smoother sweeps + residual computation on this level.
        std::uint64_t a_spmvs;
        if (coarsest) {
            a_spmvs = static_cast<std::uint64_t>(opts.coarseSweeps);
        } else {
            a_spmvs = static_cast<std::uint64_t>(opts.preSmooth +
                                                 opts.postSmooth + 2);
        }
        const BbcMatrix a_bbc = BbcMatrix::fromCsr(lev.a);
        RunResult a_run = runSpmv(model, a_bbc, energy);
        a_run.scale(a_spmvs * num_vcycles);
        out.spmv.merge(a_run);

        // Grid-transfer SpMVs (R on the residual, P on the coarse
        // correction), once per V-cycle each.
        if (l > 0) {
            for (const CsrMatrix *t : {&lev.r, &lev.p}) {
                const BbcMatrix t_bbc = BbcMatrix::fromCsr(*t);
                RunResult t_run = runSpmv(model, t_bbc, energy);
                t_run.scale(num_vcycles);
                out.spmv.merge(t_run);
            }
        }
    }

    // Setup phase: the Galerkin triple product on every coarse level
    // (Ac = R * (A * P), two SpGEMMs).
    for (int l = 1; l < levels; ++l) {
        const AmgLevel &fine = hierarchy.level(l - 1);
        const AmgLevel &coarse = hierarchy.level(l);
        const BbcMatrix a_bbc = BbcMatrix::fromCsr(fine.a);
        const BbcMatrix p_bbc = BbcMatrix::fromCsr(coarse.p);
        const BbcMatrix r_bbc = BbcMatrix::fromCsr(coarse.r);

        out.spgemm.merge(runSpgemm(model, a_bbc, p_bbc, energy));

        const CsrMatrix ap = spgemmRef(fine.a, coarse.p);
        const BbcMatrix ap_bbc = BbcMatrix::fromCsr(ap);
        out.spgemm.merge(runSpgemm(model, r_bbc, ap_bbc, energy));
    }
    return out;
}

} // namespace unistc
