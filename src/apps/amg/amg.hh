/**
 * @file
 * Algebraic multigrid solver (§VI-D case study substrate). A complete
 * aggregation-based AMG: strength-of-connection filtering, greedy
 * aggregation, piecewise-constant prolongation, Galerkin coarse
 * operators (R * A * P via SpGEMM), weighted-Jacobi smoothing and a
 * V-cycle driver. Its kernel mix — SpGEMM in setup, SpMV in every
 * cycle — is exactly the combination Table II attributes to AMG.
 */

#ifndef UNISTC_APPS_AMG_AMG_HH
#define UNISTC_APPS_AMG_AMG_HH

#include <vector>

#include "sparse/csr.hh"

namespace unistc
{

/** One multigrid level. */
struct AmgLevel
{
    CsrMatrix a; ///< Operator on this level.
    CsrMatrix p; ///< Prolongation to this level (empty on finest).
    CsrMatrix r; ///< Restriction from this level (empty on finest).
};

/** AMG setup parameters. */
struct AmgOptions
{
    int maxLevels = 10;        ///< Hierarchy depth cap.
    int minCoarseSize = 32;    ///< Stop coarsening below this size.
    double strengthTheta = 0.25; ///< Strength-of-connection threshold.
    double jacobiWeight = 0.66;  ///< Weighted-Jacobi damping.
    /**
     * Smooth the tentative prolongation with one damped-Jacobi step,
     * P = (I - w D^-1 A) P_hat (smoothed aggregation). Markedly
     * better convergence than plain aggregation on elliptic problems.
     */
    bool smoothProlongation = true;
    int preSmooth = 1;         ///< Pre-smoothing sweeps.
    int postSmooth = 1;        ///< Post-smoothing sweeps.
    int coarseSweeps = 30;     ///< Jacobi sweeps on the coarsest grid.
};

/** Outcome of an AMG solve. */
struct AmgSolveStats
{
    int iterations = 0;
    double finalResidual = 0.0;
    bool converged = false;
    std::vector<double> residualHistory;
};

/** Aggregation-based AMG hierarchy. */
class AmgHierarchy
{
  public:
    /** Build the hierarchy for @p a (square, diagonally dominant). */
    AmgHierarchy(const CsrMatrix &a, AmgOptions opts = {});

    int numLevels() const { return static_cast<int>(levels_.size()); }
    const AmgLevel &level(int l) const { return levels_.at(l); }
    const AmgOptions &options() const { return opts_; }

    /** One V-cycle applied to the current error: x <- Vcycle(x, b). */
    void vCycle(std::vector<double> &x,
                const std::vector<double> &b) const;

    /** Solve A x = b to @p tol relative residual. */
    AmgSolveStats solve(std::vector<double> &x,
                        const std::vector<double> &b, double tol,
                        int max_iters) const;

  private:
    void cycleLevel(int l, std::vector<double> &x,
                    const std::vector<double> &b) const;

    void smooth(const CsrMatrix &a, std::vector<double> &x,
                const std::vector<double> &b, int sweeps) const;

    AmgOptions opts_;
    std::vector<AmgLevel> levels_;
};

/**
 * Greedy aggregation over the strength graph. Exposed for testing:
 * returns per-row aggregate ids (0..numAggregates-1).
 */
std::vector<int> aggregate(const CsrMatrix &a, double theta,
                           int &num_aggregates);

/** Piecewise-constant prolongation from an aggregation map. */
CsrMatrix prolongationFromAggregates(const std::vector<int> &agg,
                                     int num_aggregates);

} // namespace unistc

#endif // UNISTC_APPS_AMG_AMG_HH
