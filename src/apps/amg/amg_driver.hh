/**
 * @file
 * Maps the AMG solver's kernel mix onto STC models (§VI-D, Fig. 21):
 * the setup phase's Galerkin SpGEMMs and the solve phase's per-cycle
 * SpMV stream are simulated per level on each architecture, producing
 * the SpMV/SpGEMM speedups the figure reports.
 */

#ifndef UNISTC_APPS_AMG_AMG_DRIVER_HH
#define UNISTC_APPS_AMG_AMG_DRIVER_HH

#include <string>
#include <vector>

#include "apps/amg/amg.hh"
#include "sim/energy.hh"
#include "sim/result.hh"
#include "stc/stc_model.hh"

namespace unistc
{

/** Per-architecture AMG workload accounting. */
struct AmgWorkload
{
    RunResult spmv;   ///< All V-cycle SpMV invocations, weighted.
    RunResult spgemm; ///< All setup-phase Galerkin SpGEMMs.
};

/**
 * Simulate the AMG kernel stream on one architecture.
 *
 * @param model architecture under test.
 * @param hierarchy a built AMG hierarchy.
 * @param num_vcycles V-cycles to account for (solve length).
 */
AmgWorkload simulateAmg(const StcModel &model,
                        const AmgHierarchy &hierarchy, int num_vcycles,
                        const EnergyModel &energy = EnergyModel());

/**
 * Simulate the AMG kernel stream on a whole architecture lineup in
 * one pass: every level's SpMV / Galerkin-SpGEMM task stream is
 * enumerated once and fanned out to all @p models through the kernel
 * pipeline, so each returned workload (lineup order) matches a
 * simulateAmg() call on that model alone while the per-level BBC
 * encodes and stream walks are paid once instead of N times.
 */
std::vector<AmgWorkload> simulateAmgLineup(
    const std::vector<const StcModel *> &models,
    const AmgHierarchy &hierarchy, int num_vcycles,
    const EnergyModel &energy = EnergyModel());

} // namespace unistc

#endif // UNISTC_APPS_AMG_AMG_DRIVER_HH
