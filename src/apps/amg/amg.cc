#include "apps/amg/amg.hh"

#include <cmath>

#include "common/logging.hh"
#include "kernels/reference.hh"
#include "sparse/convert.hh"
#include "sparse/dense.hh"

namespace unistc
{

std::vector<int>
aggregate(const CsrMatrix &a, double theta, int &num_aggregates)
{
    const int n = a.rows();
    std::vector<int> agg(n, -1);

    // Strength of connection: |a_ij| >= theta * max_j |a_ij| (j != i).
    auto strong_neighbors = [&](int r, auto &&fn) {
        double max_off = 0.0;
        for (std::int64_t i = a.rowPtr()[r]; i < a.rowPtr()[r + 1];
             ++i) {
            if (a.colIdx()[i] != r)
                max_off = std::max(max_off, std::fabs(a.vals()[i]));
        }
        const double cut = theta * max_off;
        for (std::int64_t i = a.rowPtr()[r]; i < a.rowPtr()[r + 1];
             ++i) {
            const int c = a.colIdx()[i];
            if (c != r && std::fabs(a.vals()[i]) >= cut &&
                std::fabs(a.vals()[i]) > 0.0) {
                fn(c);
            }
        }
    };

    // Pass 1: seed aggregates from rows whose strong neighbourhood is
    // entirely unaggregated.
    num_aggregates = 0;
    for (int r = 0; r < n; ++r) {
        if (agg[r] != -1)
            continue;
        bool free_nbhd = true;
        strong_neighbors(r, [&](int c) {
            if (agg[c] != -1)
                free_nbhd = false;
        });
        if (!free_nbhd)
            continue;
        const int id = num_aggregates++;
        agg[r] = id;
        strong_neighbors(r, [&](int c) { agg[c] = id; });
    }

    // Pass 2: attach leftovers to a strongly connected aggregate.
    for (int r = 0; r < n; ++r) {
        if (agg[r] != -1)
            continue;
        strong_neighbors(r, [&](int c) {
            if (agg[r] == -1 && agg[c] != -1)
                agg[r] = agg[c];
        });
    }

    // Pass 3: isolated rows become singleton aggregates.
    for (int r = 0; r < n; ++r) {
        if (agg[r] == -1)
            agg[r] = num_aggregates++;
    }
    return agg;
}

CsrMatrix
prolongationFromAggregates(const std::vector<int> &agg,
                           int num_aggregates)
{
    const int n = static_cast<int>(agg.size());
    CooMatrix coo(n, num_aggregates);
    for (int r = 0; r < n; ++r)
        coo.add(r, agg[r], 1.0);
    return cooToCsr(std::move(coo));
}

AmgHierarchy::AmgHierarchy(const CsrMatrix &a, AmgOptions opts)
    : opts_(opts)
{
    UNISTC_ASSERT(a.rows() == a.cols(), "AMG operator must be square");
    levels_.push_back({a, CsrMatrix(), CsrMatrix()});

    while (static_cast<int>(levels_.size()) < opts_.maxLevels) {
        const CsrMatrix &fine = levels_.back().a;
        if (fine.rows() <= opts_.minCoarseSize)
            break;
        int num_agg = 0;
        const auto agg = aggregate(fine, opts_.strengthTheta, num_agg);
        if (num_agg >= fine.rows())
            break; // coarsening stalled
        CsrMatrix p = prolongationFromAggregates(agg, num_agg);
        if (opts_.smoothProlongation) {
            // P = (I - w D^-1 A) P_hat: subtract the damped-Jacobi
            // smoothed residual of the tentative prolongation.
            const CsrMatrix ap = spgemmRef(fine, p);
            CooMatrix combined(p.rows(), p.cols());
            for (int r = 0; r < p.rows(); ++r) {
                for (std::int64_t i = p.rowPtr()[r];
                     i < p.rowPtr()[r + 1]; ++i) {
                    combined.add(r, p.colIdx()[i], p.vals()[i]);
                }
                double d = fine.at(r, r);
                if (d == 0.0)
                    d = 1.0;
                const double scale = opts_.jacobiWeight / d;
                for (std::int64_t i = ap.rowPtr()[r];
                     i < ap.rowPtr()[r + 1]; ++i) {
                    combined.add(r, ap.colIdx()[i],
                                 -scale * ap.vals()[i]);
                }
            }
            p = cooToCsr(std::move(combined));
        }
        const CsrMatrix r = transposeCsr(p);
        // Galerkin triple product: Ac = R * (A * P) — two SpGEMMs,
        // the setup-phase workload §VI-D accelerates.
        const CsrMatrix ap = spgemmRef(fine, p);
        CsrMatrix coarse = spgemmRef(r, ap);
        levels_.push_back({std::move(coarse), p, r});
    }
}

void
AmgHierarchy::smooth(const CsrMatrix &a, std::vector<double> &x,
                     const std::vector<double> &b, int sweeps) const
{
    const int n = a.rows();
    std::vector<double> diag(n, 1.0);
    for (int r = 0; r < n; ++r) {
        const double d = a.at(r, r);
        if (d != 0.0)
            diag[r] = d;
    }
    for (int s = 0; s < sweeps; ++s) {
        const std::vector<double> ax = spmvRef(a, x);
        for (int r = 0; r < n; ++r)
            x[r] += opts_.jacobiWeight * (b[r] - ax[r]) / diag[r];
    }
}

void
AmgHierarchy::cycleLevel(int l, std::vector<double> &x,
                         const std::vector<double> &b) const
{
    const AmgLevel &lev = levels_[l];
    if (l == numLevels() - 1) {
        smooth(lev.a, x, b, opts_.coarseSweeps);
        return;
    }

    smooth(lev.a, x, b, opts_.preSmooth);

    // Residual and restriction.
    const std::vector<double> ax = spmvRef(lev.a, x);
    std::vector<double> res(b.size());
    for (std::size_t i = 0; i < b.size(); ++i)
        res[i] = b[i] - ax[i];
    const AmgLevel &next = levels_[l + 1];
    const std::vector<double> rb = spmvRef(next.r, res);

    std::vector<double> xc(next.a.rows(), 0.0);
    cycleLevel(l + 1, xc, rb);

    // Prolongate and correct.
    const std::vector<double> px = spmvRef(next.p, xc);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] += px[i];

    smooth(lev.a, x, b, opts_.postSmooth);
}

void
AmgHierarchy::vCycle(std::vector<double> &x,
                     const std::vector<double> &b) const
{
    UNISTC_ASSERT(static_cast<int>(x.size()) == levels_[0].a.rows(),
                  "V-cycle vector size mismatch");
    cycleLevel(0, x, b);
}

AmgSolveStats
AmgHierarchy::solve(std::vector<double> &x,
                    const std::vector<double> &b, double tol,
                    int max_iters) const
{
    AmgSolveStats stats;
    const double b_norm = std::max(norm2(b), 1e-300);
    for (int it = 0; it < max_iters; ++it) {
        vCycle(x, b);
        const std::vector<double> ax = spmvRef(levels_[0].a, x);
        std::vector<double> res(b.size());
        for (std::size_t i = 0; i < b.size(); ++i)
            res[i] = b[i] - ax[i];
        const double rel = norm2(res) / b_norm;
        stats.residualHistory.push_back(rel);
        stats.iterations = it + 1;
        stats.finalResidual = rel;
        if (rel < tol) {
            stats.converged = true;
            break;
        }
    }
    return stats;
}

} // namespace unistc
