/**
 * @file
 * unistc_query: the results-warehouse CLI (docs/WAREHOUSE.md).
 *
 *   unistc_query --warehouse DIR list
 *   unistc_query --warehouse DIR show latest
 *   unistc_query --warehouse DIR trend --metric cycles
 *   unistc_query --warehouse DIR drift
 *   unistc_query --warehouse DIR cache-rate
 *   unistc_query --warehouse DIR slowest --top 10
 *   unistc_query --warehouse DIR recovery
 *   unistc_query --warehouse DIR export-bench --run latest --out F
 *   unistc_query --warehouse DIR check-regressions \
 *       --baseline <label|id|latest> [--current latest] \
 *       [--baseline-json bench/baselines/BENCH_smoke.json]
 *
 * Exit codes: 0 success / no regressions, 1 usage or data error,
 * 2 significant regressions found (check-regressions only).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "driver/version.hh"
#include "warehouse/query.hh"
#include "warehouse/reader.hh"

namespace
{

using namespace unistc;
using namespace unistc::warehouse;

int
usage(const char *self)
{
    std::fprintf(
        stderr,
        "usage: %s [--warehouse DIR] <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                      runs in the warehouse\n"
        "  show <run>                one run's commit record\n"
        "  trend                     geomean speedup vs earliest run\n"
        "  drift                     per-family utilisation drift\n"
        "  cache-rate                cache hit-rate per run\n"
        "  slowest                   slowest rows of one run\n"
        "  recovery                  robust.*/shard recovery counters"
        " per run\n"
        "  export-bench              run -> UNISTC_BENCH_JSON format\n"
        "  check-regressions         latest run vs a baseline\n"
        "\n"
        "options:\n"
        "  --warehouse DIR  store root (or UNISTC_WAREHOUSE_DIR)\n"
        "  --bench NAME     restrict to one bench binary\n"
        "  --run SEL        run selector: latest | id | label\n"
        "  --metric M       cycles|energy|utilisation|stalls|"
        "products|traffic\n"
        "  --top N          row count for `slowest` (default 10)\n"
        "  --out FILE       output path for `export-bench`\n"
        "  --baseline SEL   baseline run for check-regressions\n"
        "  --baseline-json F  committed BENCH_*.json baseline\n"
        "  --current SEL    run under test (default latest)\n"
        "  --threshold X    geomean ratio that matters (1.05)\n"
        "  --alpha A        t-test significance level (0.05)\n"
        "  --version        git revision + on-disk schema versions\n",
        self);
    return 1;
}

int
fail(const Status &s)
{
    std::fprintf(stderr, "unistc_query: %s\n", s.message().c_str());
    return 1;
}

/** Parsed command line. */
struct Args
{
    std::string dir;
    std::string command;
    std::string bench;
    std::string run = "latest";
    std::string metric = "cycles";
    std::string out;
    std::string baseline;
    std::string baselineJson;
    std::string current = "latest";
    std::size_t top = 10;
    RegressionOptions reg;
};

bool
parseArgs(int argc, char **argv, Args *args)
{
    if (const char *env = std::getenv("UNISTC_WAREHOUSE_DIR"))
        args->dir = env;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto value = [&](std::string *out) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "unistc_query: %s needs a value\n",
                             a.c_str());
                return false;
            }
            *out = argv[++i];
            return true;
        };
        std::string v;
        if (a == "--warehouse") {
            if (!value(&args->dir))
                return false;
        } else if (a == "--bench") {
            if (!value(&args->bench))
                return false;
        } else if (a == "--run") {
            if (!value(&args->run))
                return false;
        } else if (a == "--metric") {
            if (!value(&args->metric))
                return false;
        } else if (a == "--out") {
            if (!value(&args->out))
                return false;
        } else if (a == "--baseline") {
            if (!value(&args->baseline))
                return false;
        } else if (a == "--baseline-json") {
            if (!value(&args->baselineJson))
                return false;
        } else if (a == "--current") {
            if (!value(&args->current))
                return false;
        } else if (a == "--top") {
            if (!value(&v))
                return false;
            args->top = static_cast<std::size_t>(
                std::strtoul(v.c_str(), nullptr, 10));
        } else if (a == "--threshold") {
            if (!value(&v))
                return false;
            args->reg.ratioThreshold = std::strtod(v.c_str(), nullptr);
        } else if (a == "--alpha") {
            if (!value(&v))
                return false;
            args->reg.alpha = std::strtod(v.c_str(), nullptr);
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unistc_query: unknown option %s\n",
                         a.c_str());
            return false;
        } else if (args->command.empty()) {
            args->command = a;
        } else if (args->command == "show" ||
                   args->command == "slowest" ||
                   args->command == "export-bench") {
            args->run = a; // Positional run selector.
        } else {
            std::fprintf(stderr,
                         "unistc_query: unexpected argument %s\n",
                         a.c_str());
            return false;
        }
    }
    return !args->command.empty();
}

/** Counter lookup helper: 0 when a run never recorded @p name. */
std::uint64_t
counterOr0(const RunMeta &m, const std::string &name)
{
    const auto it = m.counters.find(name);
    return it == m.counters.end() ? 0 : it->second;
}

bool
hasRecoveryCounters(const RunMeta &m)
{
    for (const auto &[name, v] : m.counters) {
        if (name.rfind("robust.", 0) == 0)
            return true;
    }
    return false;
}

int
cmdList(const WarehouseReader &reader, const Args &args)
{
    TextTable t;
    t.setHeader({"run", "bench", "label", "time", "git", "rows",
                 "state"});
    std::size_t shown = 0;
    for (const RunMeta &m : reader.runs()) {
        if (!args.bench.empty() && m.bench != args.bench)
            continue;
        ++shown;
        t.addRow({m.id, m.bench, m.label, m.time,
                  m.gitSha.substr(0, 12),
                  m.hasDeclaredRows
                      ? std::to_string(m.declaredResultRows)
                      : "?",
                  m.committed ? "committed" : "PARTIAL"});
    }
    if (shown == 0) {
        std::printf("no runs in '%s'\n", reader.dir().c_str());
        return 0;
    }
    t.print();
    return 0;
}

int
cmdShow(const WarehouseReader &reader, const Args &args)
{
    auto id = reader.resolve(args.run, args.bench);
    if (!id.ok())
        return fail(id.status());
    auto run = reader.load(id.value());
    if (!run.ok())
        return fail(run.status());
    const RunMeta &m = run.value().meta;
    std::printf("run:       %s (%s)\n", m.id.c_str(),
                m.committed ? "committed" : "PARTIAL");
    std::printf("bench:     %s\n", m.bench.c_str());
    if (!m.label.empty())
        std::printf("label:     %s\n", m.label.c_str());
    if (!m.gitSha.empty())
        std::printf("git:       %s\n", m.gitSha.c_str());
    if (!m.time.empty())
        std::printf("time:      %s\n", m.time.c_str());
    if (!m.argvLine.empty())
        std::printf("argv:      %s\n", m.argvLine.c_str());
    for (const auto &[k, v] : m.env)
        std::printf("env:       %s=%s\n", k.c_str(), v.c_str());
    std::printf("rows:      %zu result, %zu engine\n",
                run.value().results.size(),
                run.value().engine.size());
    if (run.value().recoveredDrops > 0) {
        std::printf("recovered: %llu row(s) dropped by truncation "
                    "recovery\n",
                    static_cast<unsigned long long>(
                        run.value().recoveredDrops));
    }
    for (const auto &[name, v] : m.counters)
        std::printf("counter:   %s = %llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
    if (hasRecoveryCounters(m)) {
        const std::uint64_t shards =
            counterOr0(m, "robust.shard_count");
        if (shards > 0) {
            std::printf(
                "recovery:  %llu shard(s): %llu spawned, %llu "
                "killed, %llu retried, %llu quarantined\n",
                static_cast<unsigned long long>(shards),
                static_cast<unsigned long long>(
                    counterOr0(m, "robust.shard_spawned")),
                static_cast<unsigned long long>(
                    counterOr0(m, "robust.shard_killed_wall_clock") +
                    counterOr0(m, "robust.shard_killed_heartbeat")),
                static_cast<unsigned long long>(
                    counterOr0(m, "robust.shard_retried")),
                static_cast<unsigned long long>(
                    counterOr0(m, "robust.shard_quarantined")));
        } else {
            std::printf(
                "recovery:  %llu fault(s) detected, %llu job(s) "
                "retried, %llu quarantined\n",
                static_cast<unsigned long long>(
                    counterOr0(m, "robust.faults_detected")),
                static_cast<unsigned long long>(
                    counterOr0(m, "robust.jobs_retried")),
                static_cast<unsigned long long>(
                    counterOr0(m, "robust.jobs_quarantined")));
        }
    }
    return 0;
}

int
cmdRecovery(const WarehouseReader &reader, const Args &args)
{
    TextTable t("fault recovery by run (robust.* counters; "
                "docs/ROBUSTNESS.md, docs/SHARDING.md)");
    t.setHeader({"run", "bench", "faults", "job retry", "job quar",
                 "shards", "spawned", "killed", "shard retry",
                 "shard quar"});
    std::size_t shown = 0;
    for (const RunMeta &m : reader.runs()) {
        if (!args.bench.empty() && m.bench != args.bench)
            continue;
        if (!hasRecoveryCounters(m))
            continue;
        ++shown;
        const std::uint64_t shards =
            counterOr0(m, "robust.shard_count");
        t.addRow(
            {m.id, m.bench,
             std::to_string(counterOr0(m, "robust.faults_detected")),
             std::to_string(counterOr0(m, "robust.jobs_retried")),
             std::to_string(counterOr0(m, "robust.jobs_quarantined")),
             shards == 0 ? "-" : std::to_string(shards),
             shards == 0
                 ? "-"
                 : std::to_string(counterOr0(m, "robust.shard_spawned")),
             shards == 0
                 ? "-"
                 : std::to_string(
                       counterOr0(m, "robust.shard_killed_wall_clock") +
                       counterOr0(m, "robust.shard_killed_heartbeat")),
             shards == 0
                 ? "-"
                 : std::to_string(counterOr0(m, "robust.shard_retried")),
             shards == 0
                 ? "-"
                 : std::to_string(
                       counterOr0(m, "robust.shard_quarantined"))});
    }
    if (shown == 0) {
        std::printf("no runs with recovery counters in '%s'\n",
                    reader.dir().c_str());
        return 0;
    }
    t.print();
    return 0;
}

int
cmdTrend(const WarehouseReader &reader, const Args &args)
{
    auto trend = geomeanSpeedupTrend(reader, args.bench, args.metric);
    if (!trend.ok())
        return fail(trend.status());
    TextTable t("geomean " + args.metric +
                " speedup vs earliest run (>1 is better)");
    t.setHeader({"run", "time", "git", "pairs", "speedup"});
    for (const TrendPoint &p : trend.value()) {
        t.addRow({p.runId, p.time, p.gitSha.substr(0, 12),
                  std::to_string(p.pairs),
                  fmtRatio(p.geomeanSpeedup, 3)});
    }
    t.print();
    return 0;
}

int
cmdDrift(const WarehouseReader &reader, const Args &args)
{
    auto drift = utilisationDrift(reader, args.bench);
    if (!drift.ok())
        return fail(drift.status());
    TextTable t("mean utilisation by matrix family, earliest vs "
                "latest run");
    t.setHeader({"family", "first", "last", "first util",
                 "last util", "drift"});
    for (const DriftPoint &p : drift.value()) {
        t.addRow({p.family, p.firstRun, p.lastRun,
                  fmtPercent(p.firstUtil), fmtPercent(p.lastUtil),
                  fmtPercent(p.lastUtil - p.firstUtil)});
    }
    t.print();
    return 0;
}

int
cmdCacheRate(const WarehouseReader &reader, const Args &args)
{
    TextTable t("matrix-cache effectiveness by run");
    t.setHeader({"run", "bench", "hits", "misses", "hit rate"});
    for (const CacheRatePoint &p : cacheRates(reader, args.bench)) {
        t.addRow({p.runId, p.bench, fmtCount(p.hits),
                  fmtCount(p.misses), fmtPercent(p.hitRate)});
    }
    t.print();
    return 0;
}

int
cmdSlowest(const WarehouseReader &reader, const Args &args)
{
    auto id = reader.resolve(args.run, args.bench);
    if (!id.ok())
        return fail(id.status());
    auto run = reader.load(id.value());
    if (!run.ok())
        return fail(run.status());
    TextTable t("slowest rows of run " + id.value());
    t.setHeader({"kernel", "model", "matrix", "cycles",
                 "utilisation"});
    for (const ResultRow &row :
         slowestMatrices(run.value(), args.top)) {
        t.addRow({row.kernel, row.model, row.matrix,
                  fmtCount(row.result.cycles),
                  fmtPercent(row.result.utilisation())});
    }
    t.print();
    return 0;
}

int
cmdExportBench(const WarehouseReader &reader, const Args &args)
{
    auto id = reader.resolve(args.run, args.bench);
    if (!id.ok())
        return fail(id.status());
    auto run = reader.load(id.value());
    if (!run.ok())
        return fail(run.status());
    if (args.out.empty() || args.out == "-") {
        exportBenchJson(run.value(), std::cout);
        return 0;
    }
    std::ofstream os(args.out);
    if (!os)
        return fail(ioError("cannot open '" + args.out +
                            "' for writing"));
    exportBenchJson(run.value(), os);
    if (!os.good())
        return fail(ioError("error writing '" + args.out + "'"));
    return 0;
}

int
cmdCheckRegressions(const WarehouseReader &reader, const Args &args)
{
    auto currentId = reader.resolve(args.current, args.bench);
    if (!currentId.ok())
        return fail(currentId.status());
    auto current = reader.load(currentId.value());
    if (!current.ok())
        return fail(current.status());

    std::vector<ResultRow> baseline;
    std::string baselineName;
    if (!args.baselineJson.empty()) {
        auto doc = parseJsonFile(args.baselineJson);
        if (!doc.ok())
            return fail(doc.status());
        auto rows =
            resultRowsFromBenchJson(doc.value(), args.baselineJson);
        if (!rows.ok())
            return fail(rows.status());
        baseline = std::move(rows).value();
        baselineName = args.baselineJson;
    } else if (!args.baseline.empty()) {
        auto baseId = reader.resolve(args.baseline, args.bench);
        if (!baseId.ok())
            return fail(baseId.status());
        if (baseId.value() == currentId.value()) {
            return fail(invalidArgument(
                "baseline and current both resolve to run '" +
                baseId.value() + "'"));
        }
        auto base = reader.load(baseId.value());
        if (!base.ok())
            return fail(base.status());
        baseline = std::move(base.value().results);
        baselineName = baseId.value();
    } else {
        return fail(invalidArgument(
            "check-regressions needs --baseline or "
            "--baseline-json"));
    }

    std::printf("current:  run %s\n", currentId.value().c_str());
    std::printf("baseline: %s\n", baselineName.c_str());
    const RegressionReport report = checkRegressions(
        baseline, current.value().results, args.reg);
    printRegressionReport(std::cout, report, args.reg);
    std::cout.flush();
    return report.hasRegression() ? 2 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--version") == 0) {
            std::fputs(
                unistc::driver::versionString(argv[0]).c_str(),
                stdout);
            return 0;
        }
    }
    Args args;
    if (!parseArgs(argc, argv, &args))
        return usage(argv[0]);
    if (args.dir.empty()) {
        std::fprintf(stderr,
                     "unistc_query: no warehouse (use --warehouse "
                     "DIR or UNISTC_WAREHOUSE_DIR)\n");
        return 1;
    }
    const WarehouseReader reader(args.dir);
    if (args.command == "list")
        return cmdList(reader, args);
    if (args.command == "show")
        return cmdShow(reader, args);
    if (args.command == "trend")
        return cmdTrend(reader, args);
    if (args.command == "drift")
        return cmdDrift(reader, args);
    if (args.command == "cache-rate")
        return cmdCacheRate(reader, args);
    if (args.command == "slowest")
        return cmdSlowest(reader, args);
    if (args.command == "recovery")
        return cmdRecovery(reader, args);
    if (args.command == "export-bench")
        return cmdExportBench(reader, args);
    if (args.command == "check-regressions")
        return cmdCheckRegressions(reader, args);
    std::fprintf(stderr, "unistc_query: unknown command '%s'\n",
                 args.command.c_str());
    return usage(argv[0]);
}
