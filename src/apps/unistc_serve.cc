/**
 * @file
 * unistc_serve: the long-running simulation daemon (docs/SERVING.md).
 * Accepts simulate_cli requests as newline-delimited JSON over a
 * Unix-domain or loopback-TCP socket and answers each with the
 * byte-identical stdout a one-shot simulate_cli run would have
 * printed — while keeping decoded matrices hot, batching compatible
 * requests into shared engine lineups and shedding load past its
 * admission limits.
 *
 *   unistc_serve --socket /run/unistc.sock
 *   unistc_serve --port 7411 --max-queue 128 --max-inflight 8
 *
 * Once listening it prints exactly one readiness line to stdout:
 *
 *   unistc_serve listening on <address>
 *
 * (CI and the load generator wait for it.) Everything else goes to
 * stderr. SIGINT/SIGTERM — or a {"op":"shutdown"} request — stop the
 * daemon gracefully: in-flight work drains, open warehouse runs are
 * sealed.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "driver/version.hh"
#include "serve/serve_core.hh"
#include "serve/socket_server.hh"

using namespace unistc;

namespace
{

volatile std::sig_atomic_t g_signalled = 0;

void
onSignal(int)
{
    g_signalled = 1;
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "  --socket PATH          listen on a Unix-domain socket\n"
        "  --port N               listen on loopback TCP port N\n"
        "                         (0 = kernel-assigned, printed in\n"
        "                         the readiness line)\n"
        "  --max-queue N          queued requests before load\n"
        "                         shedding (default 64)\n"
        "  --max-inflight N       per-client in-flight quota\n"
        "                         (default 4)\n"
        "  --max-connections N    simultaneous connections\n"
        "                         (default 32)\n"
        "  --prepared-cache N     decoded matrices kept hot\n"
        "                         (default 8)\n"
        "  --contexts N           per-client execution contexts kept\n"
        "                         (default 16)\n"
        "  --log-level LEVEL      debug|info|warn|error|silent\n"
        "  --help, -h             this text\n"
        "  --version              build + schema versions\n"
        "\n"
        "Wire protocol, admission control and the ops runbook:\n"
        "docs/SERVING.md.\n",
        argv0);
}

/** Strict non-negative integer flag value; exits on garbage. */
long
parseCount(const char *flag, const char *text)
{
    char *end = nullptr;
    errno = 0;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || v < 0)
        UNISTC_FATAL(flag, " needs a non-negative integer, got '",
                     text, "'");
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServeOptions coreOpt;
    serve::SocketServerOptions sockOpt;
    bool haveAddress = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                UNISTC_FATAL(flag, " needs a value (see --help)");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--version") {
            std::fputs(driver::versionString(argv[0]).c_str(),
                       stdout);
            return 0;
        } else if (arg == "--socket") {
            sockOpt.unixPath = value("--socket");
            haveAddress = true;
        } else if (arg == "--port") {
            sockOpt.tcpPort = static_cast<int>(
                parseCount("--port", value("--port")));
            if (sockOpt.tcpPort > 65535)
                UNISTC_FATAL("--port must be <= 65535");
            haveAddress = true;
        } else if (arg == "--max-queue") {
            coreOpt.limits.maxQueue = static_cast<std::size_t>(
                parseCount("--max-queue", value("--max-queue")));
        } else if (arg == "--max-inflight") {
            coreOpt.limits.maxInflightPerClient =
                static_cast<std::size_t>(parseCount(
                    "--max-inflight", value("--max-inflight")));
        } else if (arg == "--max-connections") {
            sockOpt.maxConnections = static_cast<std::size_t>(
                parseCount("--max-connections",
                           value("--max-connections")));
        } else if (arg == "--prepared-cache") {
            coreOpt.preparedCacheCap = static_cast<std::size_t>(
                parseCount("--prepared-cache",
                           value("--prepared-cache")));
        } else if (arg == "--contexts") {
            coreOpt.contextCacheCap = static_cast<std::size_t>(
                parseCount("--contexts", value("--contexts")));
        } else if (arg == "--log-level") {
            LogLevel level;
            const char *text = value("--log-level");
            if (!parseLogLevel(text, level))
                UNISTC_FATAL("unknown --log-level '", text, "'");
            setLogLevel(level);
        } else {
            UNISTC_FATAL("unknown option '", arg,
                         "' (see --help)");
        }
    }
    if (!haveAddress)
        UNISTC_FATAL("pick an address: --socket PATH or --port N "
                     "(see --help)");
    if (coreOpt.preparedCacheCap == 0 || coreOpt.contextCacheCap == 0)
        UNISTC_FATAL("--prepared-cache and --contexts must be >= 1");

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
#ifdef SIGPIPE
    // A client hanging up mid-response must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);
#endif
    sockOpt.stopPredicate = [] { return g_signalled != 0; };

    serve::ServeCore core(coreOpt);
    serve::SocketServer server(core, sockOpt);
    if (Status s = server.start(); !s.ok())
        UNISTC_FATAL("unistc_serve: ", s.message());

    // The readiness line — the only stdout the daemon ever prints.
    std::printf("unistc_serve listening on %s\n",
                server.address().c_str());
    std::fflush(stdout);

    server.run();
    core.stop();
    UNISTC_INFORM("unistc_serve: stopped");
    return 0;
}
