/**
 * @file
 * Binary save/load of BBC matrices. §IV-D notes the one-time encoding
 * cost "can be entirely eliminated for frequently used matrices by
 * saving and reloading them via implemented file I/O function" — this
 * is that function.
 */

#ifndef UNISTC_BBC_BBC_IO_HH
#define UNISTC_BBC_BBC_IO_HH

#include <string>

#include "bbc/bbc_matrix.hh"

namespace unistc
{

/** Serialise a BBC matrix to a binary file. Aborts on I/O failure. */
void saveBbcFile(const std::string &path, const BbcMatrix &m);

/** Load a BBC matrix previously written by saveBbcFile. */
BbcMatrix loadBbcFile(const std::string &path);

} // namespace unistc

#endif // UNISTC_BBC_BBC_IO_HH
