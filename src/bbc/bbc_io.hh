/**
 * @file
 * Binary save/load of BBC matrices. §IV-D notes the one-time encoding
 * cost "can be entirely eliminated for frequently used matrices by
 * saving and reloading them via implemented file I/O function" — this
 * is that function.
 *
 * File format v2 ("BBC-STC2"):
 *
 *   u64  magic            0x4242432D53544332
 *   u32  version          2
 *   u32  flags            0 (reserved)
 *   i32  rows, i32 cols
 *   u64  payloadBytes     exact size of the section data that follows
 *   7 sections            each "u64 count + raw element data"
 *                         (rowPtr, colIdx, lv1, lv2, valPtrLv1,
 *                          valPtrLv2, vals)
 *   u64  checksum         FNV-1a 64 over the payload bytes
 *
 * The loader verifies magic, version, declared payload length, the
 * checksum, per-section bounds (with byte offsets in every error),
 * rejects trailing garbage, and structurally validates the decoded
 * matrix (robust/validate.hh) before returning it. Files written by
 * the v1 format ("BBC-STC1", no length/checksum) still load, with
 * the structural validation as their only integrity check.
 *
 * Error contract: the try* functions return typed errors
 * (robust/status.hh) and never terminate. The classic wrappers
 * raise() on failure — throwing UnistcError under
 * FatalBehavior::Throw, printing and exiting under
 * FatalBehavior::Exit — instead of aborting unconditionally as they
 * did before the robustness layer.
 */

#ifndef UNISTC_BBC_BBC_IO_HH
#define UNISTC_BBC_BBC_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "bbc/bbc_matrix.hh"
#include "robust/status.hh"

namespace unistc
{

/**
 * Current on-disk BBC container format version (the writer's; the
 * reader additionally accepts legacy v1 images). Reported by every
 * binary's --version.
 */
constexpr std::uint32_t kBbcContainerVersion = 2;

/** Serialise @p m to @p out in format v2. */
Status trySaveBbc(std::ostream &out, const BbcMatrix &m,
                  const std::string &label = "<stream>");

/** Serialise @p m to a binary file (format v2). */
Status trySaveBbcFile(const std::string &path, const BbcMatrix &m);

/**
 * Parse a BBC image from @p in; @p label names the source in error
 * messages. Accepts v2 and legacy v1 images; every failure is a
 * typed error with matrix + byte-offset context, never a crash.
 */
Result<BbcMatrix> tryLoadBbc(std::istream &in,
                             const std::string &label = "<stream>");

/** Load a BBC file with full integrity checking. */
Result<BbcMatrix> tryLoadBbcFile(const std::string &path);

/** Serialise a BBC matrix to a binary file; raise()s on failure. */
void saveBbcFile(const std::string &path, const BbcMatrix &m);

/**
 * Load a BBC matrix previously written by saveBbcFile; raise()s on
 * any I/O failure, corruption, or structural inconsistency.
 */
BbcMatrix loadBbcFile(const std::string &path);

} // namespace unistc

#endif // UNISTC_BBC_BBC_IO_HH
