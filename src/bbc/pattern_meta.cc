#include "bbc/pattern_meta.hh"

#include "common/bitops.hh"
#include "common/bitops_simd.hh"

namespace unistc
{

PatternMeta
computePatternMeta(const BlockPattern &pattern)
{
    PatternMeta meta;

    std::array<std::uint16_t, kBlockSize> rows;
    for (int r = 0; r < kBlockSize; ++r)
        rows[r] = pattern.rowBits(r);

    transpose16x16(rows.data(), meta.cols.data());

    int total = 0;
    for (int i = 0; i < kBlockSize; ++i) {
        const int rc = popcount16(rows[i]);
        meta.rowCnt[i] = static_cast<std::uint8_t>(rc);
        meta.colCnt[i] =
            static_cast<std::uint8_t>(popcount16(meta.cols[i]));
        total += rc;
    }
    meta.nnz = static_cast<std::uint16_t>(total);

    // Tile (ti, tj): gather the tj-th nibble of the four rows in tile
    // row ti into a row-major 4x4 bitmap.
    for (int ti = 0; ti < kTilesPerEdge; ++ti) {
        for (int tj = 0; tj < kTilesPerEdge; ++tj) {
            std::uint16_t bits = 0;
            for (int lr = 0; lr < kTileSize; ++lr) {
                const std::uint16_t nib = static_cast<std::uint16_t>(
                    (rows[ti * kTileSize + lr] >> (4 * tj)) & 0xFu);
                bits = static_cast<std::uint16_t>(bits |
                                                  (nib << (4 * lr)));
            }
            meta.tiles[ti * kTilesPerEdge + tj] = bits;
            if (bits != 0) {
                meta.tileBits = setBit(meta.tileBits,
                                       ti * kTilesPerEdge + tj);
            }
        }
    }

    return meta;
}

} // namespace unistc
