/**
 * @file
 * Precomputed per-block pattern summaries. Every STC model consumes
 * the same handful of derived quantities from a BlockPattern — column
 * masks, per-tile element bitmaps, per-row/column nonzero counts —
 * and in a lineup run (--arch a,b,c) each model used to rederive them
 * from the raw row masks. PatternMeta computes them once per block
 * via the bulk transpose kernel so the fan-out cost is paid once per
 * task stream instead of once per model.
 */

#ifndef UNISTC_BBC_PATTERN_META_HH
#define UNISTC_BBC_PATTERN_META_HH

#include <array>
#include <cstdint>

#include "bbc/block_pattern.hh"

namespace unistc
{

/** Derived summaries of one 16x16 block pattern. */
struct PatternMeta
{
    /** cols[c] = 16-bit mask of column c (== pattern.colBits(c)). */
    std::array<std::uint16_t, kBlockSize> cols{};

    /**
     * tiles[ti*4+tj] = Lv2 element bitmap of tile (ti, tj)
     * (== pattern.tilePattern(ti, tj)).
     */
    std::array<std::uint16_t, kBlockSize> tiles{};

    /** colCnt[c] = nonzeros in column c. */
    std::array<std::uint8_t, kBlockSize> colCnt{};

    /** rowCnt[r] = nonzeros in row r. */
    std::array<std::uint8_t, kBlockSize> rowCnt{};

    /** Lv1 tile bitmap (== pattern.tileBitmap()). */
    std::uint16_t tileBits = 0;

    /** Total nonzeros (== pattern.nnz()). */
    std::uint16_t nnz = 0;
};

/** Compute all summaries of @p pattern in one pass. */
PatternMeta computePatternMeta(const BlockPattern &pattern);

} // namespace unistc

#endif // UNISTC_BBC_PATTERN_META_HH
