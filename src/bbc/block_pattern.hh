/**
 * @file
 * Structural pattern of one 16x16 matrix block — the T1 task operand
 * every STC model consumes. Provides the two bitmap views the BBC
 * format encodes: the top-level 4x4 tile bitmap (Lv1) that steers the
 * TMS, and per-tile 4x4 element bitmaps (Lv2) that steer the DPGs.
 */

#ifndef UNISTC_BBC_BLOCK_PATTERN_HH
#define UNISTC_BBC_BLOCK_PATTERN_HH

#include <array>
#include <cstdint>

namespace unistc
{

class Rng;

/** Block geometry constants fixed by the paper's design. */
constexpr int kBlockSize = 16; ///< T1 task edge (16x16x16 MMA).
constexpr int kTileSize = 4;   ///< T3 task edge (4x4x4 tiles).
constexpr int kTilesPerEdge = kBlockSize / kTileSize; ///< 4 tiles/edge.

/**
 * 16x16 structural bitmap stored as one 16-bit row mask per row
 * (bit c of rows[r] set means element (r, c) is nonzero).
 */
class BlockPattern
{
  public:
    BlockPattern() = default;

    /** All-ones pattern (a dense block). */
    static BlockPattern dense();

    /** i.i.d. Bernoulli(density) pattern drawn from @p rng. */
    static BlockPattern random(Rng &rng, double density);

    bool
    test(int r, int c) const
    {
        return (rows_[r] >> c) & 1u;
    }

    void
    set(int r, int c)
    {
        rows_[r] = static_cast<std::uint16_t>(rows_[r] | (1u << c));
    }

    /** 16-bit mask of row @p r. */
    std::uint16_t rowBits(int r) const { return rows_[r]; }

    /** Overwrite row @p r with @p bits (bulk row-writer fast path). */
    void setRowBits(int r, std::uint16_t bits) { rows_[r] = bits; }

    /** Raw row-mask array, for the bulk bitmap kernels. */
    const std::uint16_t *rowData() const { return rows_.data(); }

    /** 16-bit mask of column @p c. */
    std::uint16_t colBits(int c) const;

    /** Total nonzero elements in the block. */
    int nnz() const;

    /** True when the block holds no nonzeros. */
    bool empty() const;

    /**
     * Top-level (Lv1) bitmap: bit ti*4+tj set when the 4x4 tile at
     * tile-row ti / tile-col tj contains at least one nonzero.
     */
    std::uint16_t tileBitmap() const;

    /**
     * Bottom-level (Lv2) bitmap of tile (ti, tj): a row-major 4x4
     * element map (bit lr*4+lc).
     */
    std::uint16_t tilePattern(int ti, int tj) const;

    /** Number of nonzeros inside tile (ti, tj). */
    int tileNnz(int ti, int tj) const;

    /** Structural transpose. */
    BlockPattern transposed() const;

    /** Structural union (element-wise OR). */
    BlockPattern unionWith(const BlockPattern &other) const;

    bool operator==(const BlockPattern &other) const = default;

  private:
    std::array<std::uint16_t, kBlockSize> rows_{};
};

/**
 * Structural pattern of the product C = A * B of two blocks: C(r,c) is
 * nonzero iff some k has A(r,k) and B(k,c).
 */
BlockPattern blockProductPattern(const BlockPattern &a,
                                 const BlockPattern &b);

/**
 * Number of intermediate products of C = A * B:
 * sum_k colNnz_A(k) * rowNnz_B(k). The per-T1-task density quantity of
 * Table VII and Fig. 20 (max 16^3 = 4096).
 */
int blockProductCount(const BlockPattern &a, const BlockPattern &b);

/**
 * Matrix-vector specialisation: pattern of y = A * x where x is a
 * 16-entry segment with structural mask @p x_mask. Returns the 16-bit
 * mask of touched y entries.
 */
std::uint16_t blockMvPattern(const BlockPattern &a, std::uint16_t x_mask);

/** Intermediate products of y = A * x for mask @p x_mask. */
int blockMvProductCount(const BlockPattern &a, std::uint16_t x_mask);

/**
 * Embed a matrix-vector task as a matrix-matrix task: B has the x
 * segment replicated in column 0 (row k nonzero iff x_mask bit k).
 * Lets every StcModel share one MM entry point for Algorithm 1 tasks.
 */
BlockPattern vectorAsBlock(std::uint16_t x_mask);

} // namespace unistc

#endif // UNISTC_BBC_BLOCK_PATTERN_HH
