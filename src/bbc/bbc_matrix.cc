#include "bbc/bbc_matrix.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "sparse/convert.hh"

namespace unistc
{

BbcMatrix
BbcMatrix::fromCsr(const CsrMatrix &csr)
{
    BbcMatrix out;
    out.rows_ = csr.rows();
    out.cols_ = csr.cols();
    out.blockRows_ =
        static_cast<int>(ceilDiv(csr.rows(), kBlockSize));
    out.blockCols_ =
        static_cast<int>(ceilDiv(csr.cols(), kBlockSize));

    // One block row at a time: patterns and dense value scratch live
    // in per-block-column slots that are reset via the touched list,
    // so no per-row map (or its node churn) is needed. The value
    // scratch is never cleared: a position is only read back when its
    // pattern bit is set, and that bit is only set after the slot was
    // written in this block row.
    std::vector<BlockPattern> pattern(out.blockCols_);
    std::vector<std::int32_t> slot(out.blockCols_, -1);
    std::vector<std::array<double, kBlockSize * kBlockSize>> scratch;
    std::vector<int> touched;

    out.rowPtr_.assign(out.blockRows_ + 1, 0);
    for (int br = 0; br < out.blockRows_; ++br) {
        touched.clear();
        const int r_end =
            std::min((br + 1) * kBlockSize, csr.rows());
        for (int r = br * kBlockSize; r < r_end; ++r) {
            const int lr = r % kBlockSize;
            for (std::int64_t i = csr.rowPtr()[r];
                 i < csr.rowPtr()[r + 1]; ++i) {
                const int c = csr.colIdx()[i];
                const int bc = c / kBlockSize;
                const int lc = c % kBlockSize;
                if (slot[bc] < 0) {
                    slot[bc] = static_cast<std::int32_t>(
                        touched.size());
                    touched.push_back(bc);
                    if (scratch.size() < touched.size())
                        scratch.emplace_back();
                }
                pattern[bc].set(lr, lc);
                scratch[slot[bc]][lr * kBlockSize + lc] =
                    csr.vals()[i];
            }
        }
        std::sort(touched.begin(), touched.end());

        // Emit the BBC arrays in block-column order. Values go
        // tile-by-tile (row-major tile order) and row-major inside
        // each tile, matching ValPtr_Lv2.
        out.rowPtr_[br + 1] = out.rowPtr_[br] +
            static_cast<std::int64_t>(touched.size());
        for (const int bc : touched) {
            const BlockPattern &pat = pattern[bc];
            const std::array<double, kBlockSize * kBlockSize> &dense =
                scratch[slot[bc]];
            out.colIdx_.push_back(bc);
            const std::uint16_t lv1 = pat.tileBitmap();
            out.lv1_.push_back(lv1);
            out.tileBase_.push_back(
                static_cast<std::int64_t>(out.lv2_.size()));
            out.valPtrLv1_.push_back(
                static_cast<std::int64_t>(out.vals_.size()));

            int block_offset = 0;
            forEachSetBit(lv1, [&](int tile_bit) {
                const int ti = tile_bit / kTilesPerEdge;
                const int tj = tile_bit % kTilesPerEdge;
                const std::uint16_t lv2 = pat.tilePattern(ti, tj);
                out.lv2_.push_back(lv2);
                out.valPtrLv2_.push_back(
                    static_cast<std::uint8_t>(block_offset));
                forEachSetBit(lv2, [&](int elem_bit) {
                    const int lr = ti * kTileSize +
                        elem_bit / kTileSize;
                    const int lc = tj * kTileSize +
                        elem_bit % kTileSize;
                    out.vals_.push_back(dense[lr * kBlockSize + lc]);
                });
                block_offset += popcount16(lv2);
            });

            pattern[bc] = BlockPattern();
            slot[bc] = -1;
        }
    }
    out.validate();
    return out;
}

CsrMatrix
BbcMatrix::toCsr() const
{
    CooMatrix coo(rows_, cols_);
    for (std::int64_t blk = 0; blk < numBlocks(); ++blk) {
        const BbcBlockView view = blockView(blk);
        const auto dense = blockDense(blk);
        for (int lr = 0; lr < kBlockSize; ++lr) {
            for (int lc = 0; lc < kBlockSize; ++lc) {
                if (view.pattern.test(lr, lc)) {
                    coo.add(view.blockRow * kBlockSize + lr,
                            view.blockCol * kBlockSize + lc,
                            dense[lr * kBlockSize + lc]);
                }
            }
        }
    }
    return cooToCsr(std::move(coo));
}

int
BbcMatrix::blockTileCount(std::int64_t blk) const
{
    return popcount16(lv1_[blk]);
}

BlockPattern
BbcMatrix::blockPattern(std::int64_t blk) const
{
    BlockPattern p;
    const std::int64_t base = tileBase_[blk];
    int tile_i = 0;
    forEachSetBit(lv1_[blk], [&](int tile_bit) {
        const int ti = tile_bit / kTilesPerEdge;
        const int tj = tile_bit % kTilesPerEdge;
        const std::uint16_t lv2 = lv2_[base + tile_i];
        forEachSetBit(lv2, [&](int elem_bit) {
            p.set(ti * kTileSize + elem_bit / kTileSize,
                  tj * kTileSize + elem_bit % kTileSize);
        });
        ++tile_i;
    });
    return p;
}

BbcBlockView
BbcMatrix::blockView(std::int64_t blk) const
{
    BbcBlockView view;
    // Find the block row by scanning rowPtr (blocks are dense enough
    // that callers iterate rows anyway; this is for random access).
    int br = 0;
    while (rowPtr_[br + 1] <= blk)
        ++br;
    view.blockRow = br;
    view.blockCol = colIdx_[blk];
    view.lv1 = lv1_[blk];
    view.pattern = blockPattern(blk);
    view.valBase = valPtrLv1_[blk];
    return view;
}

std::array<double, kBlockSize * kBlockSize>
BbcMatrix::blockDense(std::int64_t blk) const
{
    std::array<double, kBlockSize * kBlockSize> dense{};
    const std::int64_t tbase = tileBase_[blk];
    const std::int64_t vbase = valPtrLv1_[blk];
    int tile_i = 0;
    forEachSetBit(lv1_[blk], [&](int tile_bit) {
        const int ti = tile_bit / kTilesPerEdge;
        const int tj = tile_bit % kTilesPerEdge;
        const std::uint16_t lv2 = lv2_[tbase + tile_i];
        std::int64_t v = vbase + valPtrLv2_[tbase + tile_i];
        forEachSetBit(lv2, [&](int elem_bit) {
            const int lr = ti * kTileSize + elem_bit / kTileSize;
            const int lc = tj * kTileSize + elem_bit % kTileSize;
            dense[lr * kBlockSize + lc] = vals_[v++];
        });
        ++tile_i;
    });
    return dense;
}

double
BbcMatrix::nnzPerBlock() const
{
    if (numBlocks() == 0)
        return 0.0;
    return static_cast<double>(nnz()) /
        static_cast<double>(numBlocks());
}

std::uint64_t
BbcMatrix::storageBytes(int bytesPerValue) const
{
    UNISTC_ASSERT(bytesPerValue > 0,
                  "storageBytes needs a positive value width");
    return metadataBytes() +
        static_cast<std::uint64_t>(vals_.size()) *
        static_cast<std::uint64_t>(bytesPerValue);
}

std::uint64_t
BbcMatrix::metadataBytes() const
{
    return static_cast<std::uint64_t>(rowPtr_.size()) * 8 +
        static_cast<std::uint64_t>(colIdx_.size()) * 4 +
        static_cast<std::uint64_t>(lv1_.size()) * 2 +
        static_cast<std::uint64_t>(lv2_.size()) * 2 +
        static_cast<std::uint64_t>(valPtrLv1_.size()) * 4 +
        static_cast<std::uint64_t>(valPtrLv2_.size()) * 1;
}

void
BbcMatrix::validate() const
{
    UNISTC_ASSERT(static_cast<int>(rowPtr_.size()) == blockRows_ + 1,
                  "BBC rowPtr size mismatch");
    UNISTC_ASSERT(rowPtr_.back() ==
                  static_cast<std::int64_t>(colIdx_.size()),
                  "BBC rowPtr back != block count");
    UNISTC_ASSERT(lv1_.size() == colIdx_.size(),
                  "BBC lv1 size != block count");
    UNISTC_ASSERT(valPtrLv1_.size() == colIdx_.size(),
                  "BBC valPtrLv1 size != block count");
    UNISTC_ASSERT(tileBase_.size() == colIdx_.size(),
                  "BBC tileBase size != block count");
    UNISTC_ASSERT(lv2_.size() == valPtrLv2_.size(),
                  "BBC lv2/valPtrLv2 size mismatch");

    std::int64_t tiles = 0;
    std::int64_t values = 0;
    for (std::size_t blk = 0; blk < colIdx_.size(); ++blk) {
        UNISTC_ASSERT(lv1_[blk] != 0, "BBC stored an empty block");
        UNISTC_ASSERT(tileBase_[blk] == tiles,
                      "BBC tileBase prefix mismatch at block ", blk);
        UNISTC_ASSERT(valPtrLv1_[blk] == values,
                      "BBC valPtrLv1 prefix mismatch at block ", blk);
        int block_vals = 0;
        forEachSetBit(lv1_[blk], [&](int) {
            const std::uint16_t lv2 = lv2_[tiles];
            UNISTC_ASSERT(lv2 != 0, "BBC stored an empty tile");
            UNISTC_ASSERT(valPtrLv2_[tiles] == block_vals,
                          "BBC valPtrLv2 offset mismatch");
            block_vals += popcount16(lv2);
            ++tiles;
        });
        values += block_vals;
    }
    UNISTC_ASSERT(values == static_cast<std::int64_t>(vals_.size()),
                  "BBC value count mismatch");
}

} // namespace unistc
