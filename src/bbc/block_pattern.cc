#include "bbc/block_pattern.hh"

#include "common/bitops.hh"
#include "common/bitops_simd.hh"
#include "common/rng.hh"

namespace unistc
{

BlockPattern
BlockPattern::dense()
{
    BlockPattern p;
    for (int r = 0; r < kBlockSize; ++r)
        p.rows_[r] = 0xFFFFu;
    return p;
}

BlockPattern
BlockPattern::random(Rng &rng, double density)
{
    BlockPattern p;
    for (int r = 0; r < kBlockSize; ++r) {
        for (int c = 0; c < kBlockSize; ++c) {
            if (rng.nextBool(density))
                p.set(r, c);
        }
    }
    return p;
}

std::uint16_t
BlockPattern::colBits(int c) const
{
    std::uint16_t out = 0;
    for (int r = 0; r < kBlockSize; ++r) {
        if (test(r, c))
            out = setBit(out, r);
    }
    return out;
}

int
BlockPattern::nnz() const
{
    return static_cast<int>(popcountBuffer16(rows_.data(),
                                             rows_.size()));
}

bool
BlockPattern::empty() const
{
    for (int r = 0; r < kBlockSize; ++r) {
        if (rows_[r])
            return false;
    }
    return true;
}

std::uint16_t
BlockPattern::tileBitmap() const
{
    std::uint16_t out = 0;
    for (int ti = 0; ti < kTilesPerEdge; ++ti) {
        for (int tj = 0; tj < kTilesPerEdge; ++tj) {
            if (tilePattern(ti, tj))
                out = setBit(out, bit4x4(ti, tj));
        }
    }
    return out;
}

std::uint16_t
BlockPattern::tilePattern(int ti, int tj) const
{
    std::uint16_t out = 0;
    for (int lr = 0; lr < kTileSize; ++lr) {
        const std::uint16_t row = rows_[ti * kTileSize + lr];
        const std::uint16_t nib =
            static_cast<std::uint16_t>((row >> (tj * kTileSize)) & 0xFu);
        out = static_cast<std::uint16_t>(out | (nib << (lr * 4)));
    }
    return out;
}

int
BlockPattern::tileNnz(int ti, int tj) const
{
    return popcount16(tilePattern(ti, tj));
}

BlockPattern
BlockPattern::transposed() const
{
    BlockPattern out;
    transpose16x16(rows_.data(), out.rows_.data());
    return out;
}

BlockPattern
BlockPattern::unionWith(const BlockPattern &other) const
{
    BlockPattern out;
    for (int r = 0; r < kBlockSize; ++r) {
        out.rows_[r] =
            static_cast<std::uint16_t>(rows_[r] | other.rows_[r]);
    }
    return out;
}

BlockPattern
blockProductPattern(const BlockPattern &a, const BlockPattern &b)
{
    BlockPattern c;
    for (int r = 0; r < kBlockSize; ++r) {
        std::uint16_t out_row = 0;
        forEachSetBit(a.rowBits(r),
                      [&](int k) { out_row |= b.rowBits(k); });
        c.setRowBits(r, out_row);
    }
    return c;
}

int
blockProductCount(const BlockPattern &a, const BlockPattern &b)
{
    std::uint16_t a_cols[kBlockSize];
    transpose16x16(a.rowData(), a_cols);
    int total = 0;
    for (int k = 0; k < kBlockSize; ++k)
        total += popcount16(a_cols[k]) * popcount16(b.rowBits(k));
    return total;
}

std::uint16_t
blockMvPattern(const BlockPattern &a, std::uint16_t x_mask)
{
    std::uint16_t y = 0;
    for (int r = 0; r < kBlockSize; ++r) {
        if (a.rowBits(r) & x_mask)
            y = setBit(y, r);
    }
    return y;
}

int
blockMvProductCount(const BlockPattern &a, std::uint16_t x_mask)
{
    return static_cast<int>(
        maskedPopcount16(a.rowData(), kBlockSize, x_mask));
}

BlockPattern
vectorAsBlock(std::uint16_t x_mask)
{
    BlockPattern b;
    for (int k = 0; k < kBlockSize; ++k) {
        if ((x_mask >> k) & 1u)
            b.set(k, 0);
    }
    return b;
}

} // namespace unistc
