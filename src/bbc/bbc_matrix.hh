/**
 * @file
 * BBC (Bitmap-Bitmap-CSR) — the paper's unified sparse format (§IV-D).
 *
 * Outer level: CSR over nonzero 16x16 blocks (RowPtr / ColIdx).
 * Inner level, per block:
 *   - BitMap_Lv1 (16 bits): which of the 16 4x4 tiles hold nonzeros;
 *   - BitMap_Lv2 (16 bits per nonzero tile): element positions inside
 *     the tile, row-major;
 *   - ValPtr_Lv1 (per block): base offset into the value array;
 *   - ValPtr_Lv2 (per nonzero tile): offset of the tile's first value
 *     relative to the block base (fits in one byte: <= 255).
 * Values are stored tile-by-tile (tiles in row-major order), row-major
 * within each tile.
 */

#ifndef UNISTC_BBC_BBC_MATRIX_HH
#define UNISTC_BBC_BBC_MATRIX_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bbc/block_pattern.hh"
#include "sparse/csr.hh"

namespace unistc
{

class FaultPlan;

namespace detail
{
class BbcIoAccess;
} // namespace detail

/** Per-block view handed to the simulator and the numeric executor. */
struct BbcBlockView
{
    int blockRow = 0;          ///< Block-row coordinate.
    int blockCol = 0;          ///< Block-column coordinate.
    std::uint16_t lv1 = 0;     ///< Tile bitmap.
    BlockPattern pattern;      ///< Full 16x16 structural pattern.
    std::int64_t valBase = 0;  ///< Offset of first value in value array.
};

/** Sparse matrix in BBC format. */
class BbcMatrix
{
  public:
    BbcMatrix() = default;

    /** Convert from CSR (the one-time software encoding of §IV-D). */
    static BbcMatrix fromCsr(const CsrMatrix &csr);

    /** Exact back-conversion (round-trip tested). */
    CsrMatrix toCsr() const;

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int blockRows() const { return blockRows_; }
    int blockCols() const { return blockCols_; }
    std::int64_t nnz() const
    {
        return static_cast<std::int64_t>(vals_.size());
    }
    std::int64_t numBlocks() const
    {
        return static_cast<std::int64_t>(colIdx_.size());
    }

    const std::vector<std::int64_t> &rowPtr() const { return rowPtr_; }
    const std::vector<int> &colIdx() const { return colIdx_; }
    const std::vector<std::uint16_t> &lv1() const { return lv1_; }
    const std::vector<std::uint16_t> &lv2() const { return lv2_; }
    const std::vector<std::int64_t> &valPtrLv1() const
    {
        return valPtrLv1_;
    }
    const std::vector<std::uint8_t> &valPtrLv2() const
    {
        return valPtrLv2_;
    }
    const std::vector<double> &vals() const { return vals_; }

    /** Number of nonzero tiles in block @p blk. */
    int blockTileCount(std::int64_t blk) const;

    /** Offset of block @p blk's first Lv2 word / ValPtr_Lv2 entry. */
    std::int64_t tileBase(std::int64_t blk) const
    {
        return tileBase_[blk];
    }

    /** Reconstruct the full structural pattern of block @p blk. */
    BlockPattern blockPattern(std::int64_t blk) const;

    /** Structured view of block @p blk (pattern + coordinates). */
    BbcBlockView blockView(std::int64_t blk) const;

    /** Dense 16x16 values of block @p blk, row-major. */
    std::array<double, kBlockSize * kBlockSize>
    blockDense(std::int64_t blk) const;

    /** Average nonzeros per stored block (Fig. 15 x-axis "NnzPB"). */
    double nnzPerBlock() const;

    /**
     * Storage footprint in bytes: 8B block-row pointers, 4B block
     * column indices, 2B Lv1 bitmaps, 2B Lv2 bitmaps, 4B ValPtr_Lv1,
     * 1B ValPtr_Lv2, plus @p bytesPerValue per stored value — the
     * Fig. 15 accounting. The default 8 is FP64; pass
     * MachineConfig::bytesPerValue() for precision-aware totals
     * (4 under FP32) instead of the old hard-coded 8 B/value.
     */
    std::uint64_t storageBytes(int bytesPerValue = 8) const;

    /** Index-structure bytes only (everything except values). */
    std::uint64_t metadataBytes() const;

    /** Abort when any invariant is violated. */
    void validate() const;

  private:
    /** File loader (bbc_io.cc) assembles fields, then validates. */
    friend class detail::BbcIoAccess;
    /** Fault injector (robust/) corrupts fields deliberately. */
    friend class FaultPlan;

    int rows_ = 0;
    int cols_ = 0;
    int blockRows_ = 0;
    int blockCols_ = 0;

    std::vector<std::int64_t> rowPtr_{0}; ///< CSR over block rows.
    std::vector<int> colIdx_;             ///< Block columns.
    std::vector<std::uint16_t> lv1_;      ///< Tile bitmap per block.
    std::vector<std::int64_t> tileBase_;  ///< Prefix sums of tile counts.
    std::vector<std::uint16_t> lv2_;      ///< Element bitmap per tile.
    std::vector<std::int64_t> valPtrLv1_; ///< Value base per block.
    std::vector<std::uint8_t> valPtrLv2_; ///< Value offset per tile.
    std::vector<double> vals_;            ///< Nonzero values.
};

} // namespace unistc

#endif // UNISTC_BBC_BBC_MATRIX_HH
