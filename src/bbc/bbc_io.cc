#include "bbc/bbc_io.hh"

#include <cstdint>
#include <fstream>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unistc
{

namespace
{

constexpr std::uint64_t kMagic = 0x4242432D53544331ull; // "BBC-STC1"

template <typename T>
void
writeVec(std::ostream &out, const std::vector<T> &v)
{
    const std::uint64_t n = v.size();
    out.write(reinterpret_cast<const char *>(&n), sizeof(n));
    out.write(reinterpret_cast<const char *>(v.data()),
              static_cast<std::streamsize>(n * sizeof(T)));
}

template <typename T>
std::vector<T>
readVec(std::istream &in)
{
    std::uint64_t n = 0;
    in.read(reinterpret_cast<char *>(&n), sizeof(n));
    std::vector<T> v(n);
    in.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    return v;
}

} // namespace

void
saveBbcFile(const std::string &path, const BbcMatrix &m)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        UNISTC_FATAL("cannot open '", path, "' for writing");

    out.write(reinterpret_cast<const char *>(&kMagic), sizeof(kMagic));
    const std::int32_t shape[2] = {m.rows(), m.cols()};
    out.write(reinterpret_cast<const char *>(shape), sizeof(shape));

    writeVec(out, m.rowPtr());
    writeVec(out, m.colIdx());
    writeVec(out, m.lv1());
    writeVec(out, m.lv2());
    writeVec(out, m.valPtrLv1());
    writeVec(out, m.valPtrLv2());
    writeVec(out, m.vals());
    if (!out)
        UNISTC_FATAL("write failure on '", path, "'");
}

BbcMatrix
loadBbcFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        UNISTC_FATAL("cannot open '", path, "' for reading");

    std::uint64_t magic = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    if (magic != kMagic)
        UNISTC_FATAL("'", path, "' is not a BBC file");
    std::int32_t shape[2] = {0, 0};
    in.read(reinterpret_cast<char *>(shape), sizeof(shape));

    BbcMatrix m;
    m.rows_ = shape[0];
    m.cols_ = shape[1];
    m.blockRows_ = (shape[0] + kBlockSize - 1) / kBlockSize;
    m.blockCols_ = (shape[1] + kBlockSize - 1) / kBlockSize;
    m.rowPtr_ = readVec<std::int64_t>(in);
    m.colIdx_ = readVec<int>(in);
    m.lv1_ = readVec<std::uint16_t>(in);
    m.lv2_ = readVec<std::uint16_t>(in);
    m.valPtrLv1_ = readVec<std::int64_t>(in);
    m.valPtrLv2_ = readVec<std::uint8_t>(in);
    m.vals_ = readVec<double>(in);
    if (!in)
        UNISTC_FATAL("read failure on '", path, "'");

    // Rebuild the derived tile-base prefix sums.
    m.tileBase_.clear();
    m.tileBase_.reserve(m.colIdx_.size());
    std::int64_t tiles = 0;
    for (std::size_t blk = 0; blk < m.colIdx_.size(); ++blk) {
        m.tileBase_.push_back(tiles);
        tiles += popcount16(m.lv1_[blk]);
    }
    m.validate();
    return m;
}

} // namespace unistc
