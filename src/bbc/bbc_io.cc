#include "bbc/bbc_io.hh"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "robust/checksum.hh"
#include "robust/validate.hh"

namespace unistc
{

namespace detail
{

/** Grants bbc_io the right to assemble a BbcMatrix field by field. */
class BbcIoAccess
{
  public:
    static BbcMatrix
    build(int rows, int cols, std::vector<std::int64_t> row_ptr,
          std::vector<int> col_idx, std::vector<std::uint16_t> lv1,
          std::vector<std::uint16_t> lv2,
          std::vector<std::int64_t> val_ptr_lv1,
          std::vector<std::uint8_t> val_ptr_lv2,
          std::vector<double> vals)
    {
        BbcMatrix m;
        m.rows_ = rows;
        m.cols_ = cols;
        m.blockRows_ = (rows + kBlockSize - 1) / kBlockSize;
        m.blockCols_ = (cols + kBlockSize - 1) / kBlockSize;
        m.rowPtr_ = std::move(row_ptr);
        m.colIdx_ = std::move(col_idx);
        m.lv1_ = std::move(lv1);
        m.lv2_ = std::move(lv2);
        m.valPtrLv1_ = std::move(val_ptr_lv1);
        m.valPtrLv2_ = std::move(val_ptr_lv2);
        m.vals_ = std::move(vals);

        // Rebuild the derived tile-base prefix sums.
        m.tileBase_.clear();
        m.tileBase_.reserve(m.colIdx_.size());
        std::int64_t tiles = 0;
        for (std::size_t blk = 0; blk < m.colIdx_.size(); ++blk) {
            m.tileBase_.push_back(tiles);
            tiles += popcount16(m.lv1_[blk]);
        }
        return m;
    }
};

} // namespace detail

namespace
{

constexpr std::uint64_t kMagicV1 = 0x4242432D53544331ull; // "BBC-STC1"
constexpr std::uint64_t kMagicV2 = 0x4242432D53544332ull; // "BBC-STC2"
constexpr std::uint32_t kVersion = kBbcContainerVersion;

/** Largest shape the block math can hold without int overflow. */
constexpr int kMaxDim = std::numeric_limits<int>::max() - kBlockSize;

template <typename T>
void
appendRaw(std::string &out, const T &v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
void
appendVec(std::string &out, const std::vector<T> &v)
{
    const std::uint64_t n = v.size();
    appendRaw(out, n);
    out.append(reinterpret_cast<const char *>(v.data()),
               n * sizeof(T));
}

/**
 * Bounds-checked cursor over an in-memory file image. Every failure
 * names the section and the byte offset where decoding stopped.
 */
class ByteReader
{
  public:
    ByteReader(const std::string &data, const std::string &label)
        : data_(data), label_(label), limit_(data.size())
    {
    }

    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return limit_ - pos_; }

    /** Restrict reads to the first @p end bytes (payload region). */
    void setLimit(std::size_t end) { limit_ = end; }

    Status
    take(void *dst, std::size_t n, const char *what)
    {
        if (n > remaining()) {
            std::ostringstream os;
            os << label_ << ": truncated reading " << what
               << " at byte offset " << pos_ << " (need " << n
               << " bytes, " << remaining() << " left)";
            return corruptData(os.str());
        }
        std::memcpy(dst, data_.data() + pos_, n);
        pos_ += n;
        return Status();
    }

    template <typename T>
    Status
    takeVec(std::vector<T> &out, const char *what)
    {
        std::uint64_t n = 0;
        if (Status s = take(&n, sizeof(n), what); !s.ok())
            return s;
        if (n > remaining() / sizeof(T)) {
            std::ostringstream os;
            os << label_ << ": " << what << " claims " << n
               << " elements (" << sizeof(T) << "B each) at byte "
               << "offset " << pos_ << " but only " << remaining()
               << " payload bytes remain";
            return corruptData(os.str());
        }
        out.resize(static_cast<std::size_t>(n));
        return take(out.data(), static_cast<std::size_t>(n) * sizeof(T),
                    what);
    }

  private:
    const std::string &data_;
    const std::string &label_;
    std::size_t pos_ = 0;
    std::size_t limit_;
};

/** Decode the seven sections and assemble + validate the matrix. */
Result<BbcMatrix>
decodeSections(ByteReader &r, int rows, int cols,
               const std::string &label)
{
    if (rows < 0 || cols < 0 || rows > kMaxDim || cols > kMaxDim) {
        return corruptData(label + ": unreasonable shape " +
                           std::to_string(rows) + "x" +
                           std::to_string(cols));
    }
    std::vector<std::int64_t> row_ptr;
    std::vector<int> col_idx;
    std::vector<std::uint16_t> lv1;
    std::vector<std::uint16_t> lv2;
    std::vector<std::int64_t> val_ptr_lv1;
    std::vector<std::uint8_t> val_ptr_lv2;
    std::vector<double> vals;
    if (Status s = r.takeVec(row_ptr, "RowPtr"); !s.ok())
        return s;
    if (Status s = r.takeVec(col_idx, "ColIdx"); !s.ok())
        return s;
    if (Status s = r.takeVec(lv1, "BitMap_Lv1"); !s.ok())
        return s;
    if (Status s = r.takeVec(lv2, "BitMap_Lv2"); !s.ok())
        return s;
    if (Status s = r.takeVec(val_ptr_lv1, "ValPtr_Lv1"); !s.ok())
        return s;
    if (Status s = r.takeVec(val_ptr_lv2, "ValPtr_Lv2"); !s.ok())
        return s;
    if (Status s = r.takeVec(vals, "values"); !s.ok())
        return s;
    if (r.remaining() != 0) {
        std::ostringstream os;
        os << label << ": " << r.remaining()
           << " bytes of trailing garbage after the value section "
           << "(byte offset " << r.pos() << ")";
        return corruptData(os.str());
    }

    BbcMatrix m = detail::BbcIoAccess::build(
        rows, cols, std::move(row_ptr), std::move(col_idx),
        std::move(lv1), std::move(lv2), std::move(val_ptr_lv1),
        std::move(val_ptr_lv2), std::move(vals));
    if (Status s = validateBbc(m, label); !s.ok())
        return s;
    return m;
}

} // namespace

Status
trySaveBbc(std::ostream &out, const BbcMatrix &m,
           const std::string &label)
{
    std::string payload;
    appendVec(payload, m.rowPtr());
    appendVec(payload, m.colIdx());
    appendVec(payload, m.lv1());
    appendVec(payload, m.lv2());
    appendVec(payload, m.valPtrLv1());
    appendVec(payload, m.valPtrLv2());
    appendVec(payload, m.vals());

    std::string header;
    appendRaw(header, kMagicV2);
    appendRaw(header, kVersion);
    appendRaw(header, std::uint32_t{0}); // flags (reserved)
    appendRaw(header, static_cast<std::int32_t>(m.rows()));
    appendRaw(header, static_cast<std::int32_t>(m.cols()));
    appendRaw(header, static_cast<std::uint64_t>(payload.size()));

    const std::uint64_t checksum =
        fnv1a64(payload.data(), payload.size());

    out.write(header.data(),
              static_cast<std::streamsize>(header.size()));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    out.write(reinterpret_cast<const char *>(&checksum),
              sizeof(checksum));
    if (!out)
        return ioError("write failure on '" + label + "'");
    return Status();
}

Status
trySaveBbcFile(const std::string &path, const BbcMatrix &m)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return ioError("cannot open '" + path + "' for writing");
    if (Status s = trySaveBbc(out, m, path); !s.ok())
        return s;
    out.close();
    if (!out)
        return ioError("close failure on '" + path + "'");
    return Status();
}

Result<BbcMatrix>
tryLoadBbc(std::istream &in, const std::string &label)
{
    // Slurp the stream: every subsequent decode step is then a
    // bounds-checked read from memory, so a lying length field can
    // produce a clean typed error instead of a huge allocation or a
    // short read from a pipe.
    std::ostringstream slurp;
    slurp << in.rdbuf();
    if (in.bad())
        return ioError("read failure on '" + label + "'");
    const std::string data = slurp.str();

    ByteReader r(data, label);
    std::uint64_t magic = 0;
    if (Status s = r.take(&magic, sizeof(magic), "magic"); !s.ok())
        return s;

    if (magic == kMagicV1) {
        // Legacy image: no version/length/checksum; structural
        // validation is the only integrity check.
        std::int32_t shape[2] = {0, 0};
        if (Status s = r.take(shape, sizeof(shape), "shape");
            !s.ok()) {
            return s;
        }
        return decodeSections(r, shape[0], shape[1], label);
    }
    if (magic != kMagicV2) {
        std::ostringstream os;
        os << "'" << label << "' is not a BBC file (bad magic at "
           << "byte offset 0)";
        return corruptData(os.str());
    }

    std::uint32_t version = 0;
    std::uint32_t flags = 0;
    std::int32_t shape[2] = {0, 0};
    std::uint64_t payload_bytes = 0;
    if (Status s = r.take(&version, sizeof(version), "version");
        !s.ok()) {
        return s;
    }
    if (version != kVersion) {
        return corruptData("'" + label + "' has unsupported BBC "
                           "format version " +
                           std::to_string(version) + " (want " +
                           std::to_string(kVersion) + ")");
    }
    if (Status s = r.take(&flags, sizeof(flags), "flags"); !s.ok())
        return s;
    if (Status s = r.take(shape, sizeof(shape), "shape"); !s.ok())
        return s;
    if (Status s = r.take(&payload_bytes, sizeof(payload_bytes),
                          "payload length");
        !s.ok()) {
        return s;
    }

    const std::size_t header_end = r.pos();
    const std::size_t after_header = data.size() - header_end;
    if (after_header < sizeof(std::uint64_t) ||
        payload_bytes != after_header - sizeof(std::uint64_t)) {
        std::ostringstream os;
        os << "'" << label << "' declares a " << payload_bytes
           << "-byte payload but " << after_header
           << " bytes (incl. 8-byte checksum) follow the header "
           << "(truncated file or trailing garbage)";
        return corruptData(os.str());
    }

    const std::uint64_t want_checksum = fnv1a64(
        data.data() + header_end,
        static_cast<std::size_t>(payload_bytes));
    std::uint64_t stored_checksum = 0;
    std::memcpy(&stored_checksum,
                data.data() + header_end +
                    static_cast<std::size_t>(payload_bytes),
                sizeof(stored_checksum));
    if (stored_checksum != want_checksum) {
        std::ostringstream os;
        os << "'" << label << "' payload checksum mismatch (stored 0x"
           << std::hex << stored_checksum << ", computed 0x"
           << want_checksum << std::dec
           << ") over bytes [" << header_end << ", "
           << header_end + payload_bytes << ")";
        return corruptData(os.str());
    }

    r.setLimit(header_end + static_cast<std::size_t>(payload_bytes));
    return decodeSections(r, shape[0], shape[1], label);
}

Result<BbcMatrix>
tryLoadBbcFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return ioError("cannot open '" + path + "' for reading");
    return tryLoadBbc(in, path);
}

void
saveBbcFile(const std::string &path, const BbcMatrix &m)
{
    if (Status s = trySaveBbcFile(path, m); !s.ok())
        raise(s);
}

BbcMatrix
loadBbcFile(const std::string &path)
{
    return tryLoadBbcFile(path).value();
}

} // namespace unistc
