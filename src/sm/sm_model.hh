/**
 * @file
 * SM-level integration model (Fig. 7b, §IV-E): Uni-STC units sit in
 * the GPU streaming multiprocessor as coprocessors (the paper
 * projects 4 per SM x 108 SMs). Warps issue UWMMA task bundles; the
 * SM's operand collector serialises each warp's loads, task
 * generation runs asynchronously inside a unit, and the numeric
 * phase occupies the unit. This list scheduler computes the
 * multi-warp makespan and unit utilisation, enabling SM- and
 * device-level throughput projections on top of the per-unit
 * cycle model.
 */

#ifndef UNISTC_SM_SM_MODEL_HH
#define UNISTC_SM_SM_MODEL_HH

#include <cstdint>
#include <vector>

#include "isa/uwmma.hh"

namespace unistc
{

class TaskStream;

/** SM configuration. */
struct SmConfig
{
    int stcUnits = 4;  ///< Uni-STC units per SM (paper: 4).
    int warps = 8;     ///< Concurrent warps issuing UWMMA work.
};

/** Outcome of scheduling a workload on one SM. */
struct SmStats
{
    std::uint64_t makespanCycles = 0; ///< Completion time.
    std::uint64_t busyUnitCycles = 0; ///< Sum of unit busy time.
    std::uint64_t tasksIssued = 0;    ///< T1 bundles executed.

    /** Mean fraction of unit time spent computing. */
    double unitUtilisation(int stc_units) const;
};

/**
 * Partition a flat T1 bundle stream across warps (contiguous,
 * near-equal chunks — the §V-A static balancing at bundle
 * granularity) and schedule it on the SM.
 */
SmStats simulateSm(const std::vector<TaskBundle> &bundles,
                   const SmConfig &cfg);

/**
 * Schedule explicit per-warp streams: warp w executes its bundles in
 * order; a bundle's loads serialise on the warp, then the bundle
 * runs on the earliest-free STC unit (task generation overlapping
 * per §IV-G).
 */
SmStats simulateSmWarps(
    const std::vector<std::vector<TaskBundle>> &warp_streams,
    int stc_units);

/**
 * Device-level projection: split @p bundles across @p num_sms SMs
 * (contiguous chunks) and return the slowest SM's makespan.
 */
SmStats simulateDevice(const std::vector<TaskBundle> &bundles,
                       const SmConfig &cfg, int num_sms);

/**
 * Schedule a kernel plan's T1 task stream on the SM: each streamed
 * task becomes its UWMMA bundle (built with @p machine) and the
 * bundles are partitioned across warps as in simulateSm(). The one
 * stream consumer that genuinely needs the whole stream — §V-A
 * static balancing requires the total bundle count up front.
 */
SmStats simulateSmStream(TaskStream &stream,
                         const MachineConfig &machine,
                         const SmConfig &cfg);

} // namespace unistc

#endif // UNISTC_SM_SM_MODEL_HH
