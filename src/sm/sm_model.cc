#include "sm/sm_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace unistc
{

double
SmStats::unitUtilisation(int stc_units) const
{
    if (makespanCycles == 0 || stc_units <= 0)
        return 0.0;
    return static_cast<double>(busyUnitCycles) /
        (static_cast<double>(makespanCycles) * stc_units);
}

SmStats
simulateSmWarps(const std::vector<std::vector<TaskBundle>> &warp_streams,
                int stc_units)
{
    UNISTC_ASSERT(stc_units > 0, "need at least one STC unit");

    SmStats stats;
    std::vector<std::uint64_t> unit_free(stc_units, 0);
    std::uint64_t makespan = 0;

    // Warps proceed independently; within a warp, bundles are issued
    // in program order. Round-robin over warps approximates the warp
    // scheduler: we advance the warp with the smallest local clock.
    struct WarpState
    {
        std::size_t next = 0;
        std::uint64_t clock = 0;
    };
    std::vector<WarpState> warps(warp_streams.size());

    for (;;) {
        // Pick the least-advanced warp that still has work.
        int pick = -1;
        for (std::size_t w = 0; w < warps.size(); ++w) {
            if (warps[w].next >= warp_streams[w].size())
                continue;
            if (pick < 0 || warps[w].clock < warps[pick].clock)
                pick = static_cast<int>(w);
        }
        if (pick < 0)
            break;

        WarpState &ws = warps[pick];
        const TaskBundle &bundle = warp_streams[pick][ws.next++];
        ++stats.tasksIssued;

        // Loads serialise on the warp (operand collector).
        ws.clock += static_cast<std::uint64_t>(bundle.loadCycles);

        // Earliest-free unit runs the bundle. Task generation
        // overlaps the unit's previous numeric phase (§IV-G), so the
        // unit is occupied for max(taskGen, numeric) but the warp
        // only waits for the numeric result.
        auto it = std::min_element(unit_free.begin(),
                                   unit_free.end());
        const std::uint64_t start = std::max(*it, ws.clock);
        const std::uint64_t busy = static_cast<std::uint64_t>(
            std::max(bundle.taskGenCycles, bundle.numericCycles));
        *it = start + busy;
        ws.clock = start + busy;
        stats.busyUnitCycles += busy;
        makespan = std::max(makespan, ws.clock);
    }

    stats.makespanCycles = makespan;
    return stats;
}

SmStats
simulateSm(const std::vector<TaskBundle> &bundles, const SmConfig &cfg)
{
    UNISTC_ASSERT(cfg.warps > 0, "need at least one warp");
    std::vector<std::vector<TaskBundle>> streams(cfg.warps);
    const std::size_t n = bundles.size();
    for (int w = 0; w < cfg.warps; ++w) {
        const std::size_t begin = n * w / cfg.warps;
        const std::size_t end = n * (w + 1) / cfg.warps;
        streams[w].assign(bundles.begin() + begin,
                          bundles.begin() + end);
    }
    return simulateSmWarps(streams, cfg.stcUnits);
}

SmStats
simulateSmStream(TaskStream &stream, const MachineConfig &machine,
                 const SmConfig &cfg)
{
    return simulateSm(bundleStream(stream, machine), cfg);
}

SmStats
simulateDevice(const std::vector<TaskBundle> &bundles,
               const SmConfig &cfg, int num_sms)
{
    UNISTC_ASSERT(num_sms > 0, "need at least one SM");
    SmStats device;
    const std::size_t n = bundles.size();
    for (int sm = 0; sm < num_sms; ++sm) {
        const std::size_t begin = n * sm / num_sms;
        const std::size_t end = n * (sm + 1) / num_sms;
        const std::vector<TaskBundle> chunk(bundles.begin() + begin,
                                            bundles.begin() + end);
        const SmStats s = simulateSm(chunk, cfg);
        device.makespanCycles =
            std::max(device.makespanCycles, s.makespanCycles);
        device.busyUnitCycles += s.busyUnitCycles;
        device.tasksIssued += s.tasksIssued;
    }
    return device;
}

} // namespace unistc
