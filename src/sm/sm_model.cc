#include "sm/sm_model.hh"

#include <algorithm>
#include <span>

#include "common/logging.hh"
#include "common/small_vector.hh"

namespace unistc
{

double
SmStats::unitUtilisation(int stc_units) const
{
    if (makespanCycles == 0 || stc_units <= 0)
        return 0.0;
    return static_cast<double>(busyUnitCycles) /
        (static_cast<double>(makespanCycles) * stc_units);
}

namespace
{

/** The scheduler core over non-owning per-warp views. */
SmStats
simulateSmWarpSpans(std::span<const std::span<const TaskBundle>> warp_streams,
                    int stc_units)
{
    UNISTC_ASSERT(stc_units > 0, "need at least one STC unit");

    SmStats stats;
    SmallVector<std::uint64_t, 16> unit_free;
    unit_free.resize(static_cast<std::size_t>(stc_units), 0);
    std::uint64_t makespan = 0;

    // Warps proceed independently; within a warp, bundles are issued
    // in program order. Round-robin over warps approximates the warp
    // scheduler: we advance the warp with the smallest local clock.
    struct WarpState
    {
        std::size_t next = 0;
        std::uint64_t clock = 0;
    };
    SmallVector<WarpState, 16> warps;
    warps.resize(warp_streams.size());

    for (;;) {
        // Pick the least-advanced warp that still has work.
        int pick = -1;
        for (std::size_t w = 0; w < warps.size(); ++w) {
            if (warps[w].next >= warp_streams[w].size())
                continue;
            if (pick < 0 || warps[w].clock < warps[pick].clock)
                pick = static_cast<int>(w);
        }
        if (pick < 0)
            break;

        WarpState &ws = warps[pick];
        const TaskBundle &bundle = warp_streams[pick][ws.next++];
        ++stats.tasksIssued;

        // Loads serialise on the warp (operand collector).
        ws.clock += static_cast<std::uint64_t>(bundle.loadCycles);

        // Earliest-free unit runs the bundle. Task generation
        // overlaps the unit's previous numeric phase (§IV-G), so the
        // unit is occupied for max(taskGen, numeric) but the warp
        // only waits for the numeric result.
        auto it = std::min_element(unit_free.begin(),
                                   unit_free.end());
        const std::uint64_t start = std::max(*it, ws.clock);
        const std::uint64_t busy = static_cast<std::uint64_t>(
            std::max(bundle.taskGenCycles, bundle.numericCycles));
        *it = start + busy;
        ws.clock = start + busy;
        stats.busyUnitCycles += busy;
        makespan = std::max(makespan, ws.clock);
    }

    stats.makespanCycles = makespan;
    return stats;
}

/** Contiguous near-equal split of @p bundles into @p parts views. */
SmStats
simulatePartitioned(std::span<const TaskBundle> bundles, int parts,
                    int stc_units)
{
    SmallVector<std::span<const TaskBundle>, 16> streams;
    const std::size_t n = bundles.size();
    for (int w = 0; w < parts; ++w) {
        const std::size_t begin = n * w / parts;
        const std::size_t end = n * (w + 1) / parts;
        streams.push_back(bundles.subspan(begin, end - begin));
    }
    return simulateSmWarpSpans(
        std::span<const std::span<const TaskBundle>>(streams.data(),
                                                     streams.size()),
        stc_units);
}

} // namespace

SmStats
simulateSmWarps(const std::vector<std::vector<TaskBundle>> &warp_streams,
                int stc_units)
{
    SmallVector<std::span<const TaskBundle>, 16> streams;
    streams.reserve(warp_streams.size());
    for (const std::vector<TaskBundle> &ws : warp_streams)
        streams.push_back(std::span<const TaskBundle>(ws));
    return simulateSmWarpSpans(
        std::span<const std::span<const TaskBundle>>(streams.data(),
                                                     streams.size()),
        stc_units);
}

SmStats
simulateSm(const std::vector<TaskBundle> &bundles, const SmConfig &cfg)
{
    UNISTC_ASSERT(cfg.warps > 0, "need at least one warp");
    return simulatePartitioned(std::span<const TaskBundle>(bundles),
                               cfg.warps, cfg.stcUnits);
}

SmStats
simulateSmStream(TaskStream &stream, const MachineConfig &machine,
                 const SmConfig &cfg)
{
    return simulateSm(bundleStream(stream, machine), cfg);
}

SmStats
simulateDevice(const std::vector<TaskBundle> &bundles,
               const SmConfig &cfg, int num_sms)
{
    UNISTC_ASSERT(num_sms > 0, "need at least one SM");
    UNISTC_ASSERT(cfg.warps > 0, "need at least one warp");
    SmStats device;
    const std::span<const TaskBundle> all(bundles);
    const std::size_t n = bundles.size();
    for (int sm = 0; sm < num_sms; ++sm) {
        const std::size_t begin = n * sm / num_sms;
        const std::size_t end = n * (sm + 1) / num_sms;
        const SmStats s = simulatePartitioned(
            all.subspan(begin, end - begin), cfg.warps, cfg.stcUnits);
        device.makespanCycles =
            std::max(device.makespanCycles, s.makespanCycles);
        device.busyUnitCycles += s.busyUnitCycles;
        device.tasksIssued += s.tasksIssued;
    }
    return device;
}

} // namespace unistc
