#include "runner/block_driver.hh"

#include "common/logging.hh"
#include "runner/spgemm_runner.hh"
#include "runner/spmm_runner.hh"
#include "runner/spmspv_runner.hh"
#include "runner/spmv_runner.hh"

namespace unistc
{

std::vector<BlockPattern>
allBlockPatterns(const BbcMatrix &m)
{
    std::vector<BlockPattern> patterns;
    patterns.reserve(m.numBlocks());
    for (std::int64_t blk = 0; blk < m.numBlocks(); ++blk)
        patterns.push_back(m.blockPattern(blk));
    return patterns;
}

void
finalizeRun(const StcModel &model, const EnergyModel &energy,
            RunResult &res)
{
    energy.finalize(model.config(), model.network(), res);
}

KernelPlanPtr
makeKernelPlan(Kernel kernel, const PlanInputs &in)
{
    UNISTC_ASSERT(in.a != nullptr, "every kernel plan needs A");
    switch (kernel) {
    case Kernel::SpMV:
        return std::make_unique<SpmvPlan>(*in.a);
    case Kernel::SpMSpV:
        UNISTC_ASSERT(in.x != nullptr, "SpMSpV plan needs x");
        return std::make_unique<SpmspvPlan>(*in.a, *in.x);
    case Kernel::SpMM:
        return std::make_unique<SpmmPlan>(*in.a, in.bCols);
    case Kernel::SpGEMM:
        UNISTC_ASSERT(in.b != nullptr, "SpGEMM plan needs B");
        return std::make_unique<SpgemmPlan>(*in.a, *in.b);
    }
    UNISTC_ASSERT(false, "unknown kernel");
    return nullptr;
}

} // namespace unistc
