#include "runner/block_driver.hh"

namespace unistc
{

std::vector<BlockPattern>
allBlockPatterns(const BbcMatrix &m)
{
    std::vector<BlockPattern> patterns;
    patterns.reserve(m.numBlocks());
    for (std::int64_t blk = 0; blk < m.numBlocks(); ++blk)
        patterns.push_back(m.blockPattern(blk));
    return patterns;
}

void
finalizeRun(const StcModel &model, const EnergyModel &energy,
            RunResult &res)
{
    energy.finalize(model.config(), model.network(), res);
}

} // namespace unistc
