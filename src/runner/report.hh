/**
 * @file
 * Aggregation helpers turning RunResults into the paper's reported
 * quantities: speedup, energy reduction, energy efficiency (the
 * product of the two) and per-kernel geomean/max roll-ups.
 */

#ifndef UNISTC_RUNNER_REPORT_HH
#define UNISTC_RUNNER_REPORT_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/result.hh"

namespace unistc
{

/** Named sparse kernels. */
enum class Kernel
{
    SpMV,
    SpMSpV,
    SpMM,
    SpGEMM,
};

/** Printable kernel name. */
const char *toString(Kernel k);

/** All four kernels in paper order. */
const std::vector<Kernel> &allKernels();

/** Pairwise comparison of a run against a baseline run. */
struct Comparison
{
    double speedup = 0.0;         ///< base.cycles / test.cycles.
    double energyReduction = 0.0; ///< base.energy / test.energy.
    double energyEfficiency = 0.0;///< speedup * energyReduction.
    /**
     * True when either run was empty (zero cycles or zero energy) and
     * the affected ratios were defined to the neutral 1.0 instead of
     * inf/NaN/0 — which would silently poison GeoMean roll-ups.
     */
    bool degenerate = false;
};

/**
 * Compare @p test against @p base (both finalized). Ratios involving
 * an empty side (zero cycles / zero energy) are defined as 1.0 and
 * flagged via Comparison::degenerate; every field is always finite.
 */
Comparison compare(const RunResult &base, const RunResult &test);

/** Geomean + max roll-up of comparisons (Table VIII rows). */
struct ComparisonRollup
{
    GeoMean speedup;
    GeoMean energyReduction;
    GeoMean energyEfficiency;
    RunningStat speedupStat;
    RunningStat energyReductionStat;
    RunningStat energyEfficiencyStat;

    void add(const Comparison &c);
};

/** Average intermediate products per T1 task (Fig. 20 x-axis). */
double interProductsPerT1(const RunResult &res);

} // namespace unistc

#endif // UNISTC_RUNNER_REPORT_HH
