#include "runner/verify.hh"

#include <cmath>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "kernels/reference.hh"
#include "sparse/convert.hh"

namespace unistc
{

std::vector<double>
spmvBbc(const BbcMatrix &a, const std::vector<double> &x)
{
    UNISTC_ASSERT(static_cast<int>(x.size()) == a.cols(),
                  "SpMV shape mismatch");
    std::vector<double> y(a.rows(), 0.0);
    for (int br = 0; br < a.blockRows(); ++br) {
        for (std::int64_t blk = a.rowPtr()[br];
             blk < a.rowPtr()[br + 1]; ++blk) {
            const int bc = a.colIdx()[blk];
            const auto dense = a.blockDense(blk);
            for (int lr = 0; lr < kBlockSize; ++lr) {
                const int r = br * kBlockSize + lr;
                if (r >= a.rows())
                    break;
                double acc = 0.0;
                for (int lc = 0; lc < kBlockSize; ++lc) {
                    const int c = bc * kBlockSize + lc;
                    if (c < a.cols())
                        acc += dense[lr * kBlockSize + lc] * x[c];
                }
                y[r] += acc;
            }
        }
    }
    return y;
}

SparseVector
spmspvBbc(const BbcMatrix &a, const SparseVector &x)
{
    UNISTC_ASSERT(x.size() == a.cols(), "SpMSpV shape mismatch");
    const std::vector<double> xd = x.toDense();
    std::vector<bool> x_mask(a.cols(), false);
    for (int i : x.idx())
        x_mask[i] = true;

    std::vector<double> y(a.rows(), 0.0);
    std::vector<bool> touched(a.rows(), false);
    for (int br = 0; br < a.blockRows(); ++br) {
        for (std::int64_t blk = a.rowPtr()[br];
             blk < a.rowPtr()[br + 1]; ++blk) {
            const int bc = a.colIdx()[blk];
            const BlockPattern pattern = a.blockPattern(blk);
            const auto dense = a.blockDense(blk);
            for (int lr = 0; lr < kBlockSize; ++lr) {
                const int r = br * kBlockSize + lr;
                if (r >= a.rows())
                    break;
                for (int lc = 0; lc < kBlockSize; ++lc) {
                    const int c = bc * kBlockSize + lc;
                    if (c < a.cols() && pattern.test(lr, lc) &&
                        x_mask[c]) {
                        y[r] += dense[lr * kBlockSize + lc] * xd[c];
                        touched[r] = true;
                    }
                }
            }
        }
    }
    SparseVector out(a.rows());
    for (int r = 0; r < a.rows(); ++r) {
        if (touched[r])
            out.push(r, y[r]);
    }
    return out;
}

DenseMatrix
spmmBbc(const BbcMatrix &a, const DenseMatrix &b)
{
    UNISTC_ASSERT(a.cols() == b.rows(), "SpMM shape mismatch");
    DenseMatrix c(a.rows(), b.cols());
    for (int br = 0; br < a.blockRows(); ++br) {
        for (std::int64_t blk = a.rowPtr()[br];
             blk < a.rowPtr()[br + 1]; ++blk) {
            const int bc = a.colIdx()[blk];
            const auto dense = a.blockDense(blk);
            for (int lr = 0; lr < kBlockSize; ++lr) {
                const int r = br * kBlockSize + lr;
                if (r >= a.rows())
                    break;
                for (int lc = 0; lc < kBlockSize; ++lc) {
                    const int k = bc * kBlockSize + lc;
                    const double av = dense[lr * kBlockSize + lc];
                    if (k >= b.rows() || av == 0.0)
                        continue;
                    for (int j = 0; j < b.cols(); ++j)
                        c.at(r, j) += av * b.at(k, j);
                }
            }
        }
    }
    return c;
}

CsrMatrix
spgemmBbc(const BbcMatrix &a, const BbcMatrix &b)
{
    UNISTC_ASSERT(a.cols() == b.rows(), "SpGEMM shape mismatch");
    // Block outer-product with a dense block-row accumulator
    // (Algorithm 2's row-by-row C_i* += A_ik x B_k* schedule).
    CooMatrix coo(a.rows(), b.cols());

    for (int bi = 0; bi < a.blockRows(); ++bi) {
        // Dense accumulator for one block row of C.
        DenseMatrix acc(kBlockSize, b.cols());
        std::vector<bool> touched_cols(b.blockCols(), false);

        for (std::int64_t ai = a.rowPtr()[bi]; ai < a.rowPtr()[bi + 1];
             ++ai) {
            const int bk = a.colIdx()[ai];
            const auto a_dense = a.blockDense(ai);
            for (std::int64_t bj = b.rowPtr()[bk];
                 bj < b.rowPtr()[bk + 1]; ++bj) {
                const int bc = b.colIdx()[bj];
                const auto b_dense = b.blockDense(bj);
                touched_cols[bc] = true;
                // 16x16x16 dense block multiply-accumulate.
                for (int lr = 0; lr < kBlockSize; ++lr) {
                    for (int lk = 0; lk < kBlockSize; ++lk) {
                        const double av =
                            a_dense[lr * kBlockSize + lk];
                        if (av == 0.0)
                            continue;
                        for (int lc = 0; lc < kBlockSize; ++lc) {
                            const double bv =
                                b_dense[lk * kBlockSize + lc];
                            if (bv != 0.0) {
                                acc.at(lr, bc * kBlockSize + lc) +=
                                    av * bv;
                            }
                        }
                    }
                }
            }
        }

        for (int lr = 0; lr < kBlockSize; ++lr) {
            const int r = bi * kBlockSize + lr;
            if (r >= a.rows())
                break;
            for (int c = 0; c < b.cols(); ++c) {
                const double v = acc.at(lr, c);
                if (v != 0.0)
                    coo.add(r, c, v);
            }
        }
    }
    return cooToCsr(std::move(coo));
}

bool
verifyAllKernels(const CsrMatrix &a, std::uint64_t seed)
{
    Rng rng(seed);
    const BbcMatrix bbc = BbcMatrix::fromCsr(a);

    // Round-trip first: the format itself must be lossless.
    if (!bbc.toCsr().approxEquals(a, 0.0))
        return false;

    // SpMV.
    std::vector<double> x(a.cols());
    for (auto &v : x)
        v = rng.nextDouble(-1.0, 1.0);
    if (maxAbsDiff(spmvBbc(bbc, x), spmvRef(a, x)) > 1e-9)
        return false;

    // SpMSpV with a 50%-sparse x (the paper's operand density).
    SparseVector xs(a.cols());
    for (int i = 0; i < a.cols(); ++i) {
        if (rng.nextBool(0.5))
            xs.push(i, rng.nextDouble(-1.0, 1.0));
    }
    const SparseVector ys = spmspvBbc(bbc, xs);
    const SparseVector yr = spmspvRef(a, xs);
    if (ys.idx() != yr.idx())
        return false;
    if (maxAbsDiff(ys.toDense(), yr.toDense()) > 1e-9)
        return false;

    // SpMM with an 8-column dense B (small, fast in tests).
    DenseMatrix b(a.cols(), 8);
    for (auto &v : b.data())
        v = rng.nextDouble(-1.0, 1.0);
    if (!spmmBbc(bbc, b).approxEquals(spmmRef(a, b), 1e-9))
        return false;

    // SpGEMM (C = A * A) when square.
    if (a.rows() == a.cols()) {
        if (!spgemmBbc(bbc, bbc).approxEquals(spgemmRef(a, a), 1e-9))
            return false;
    }
    return true;
}

} // namespace unistc
