/**
 * @file
 * Functional (numeric) execution of the four kernels directly on the
 * BBC format, following the same block dataflow the simulator models.
 * Used to verify that the format + dataflow produce bit-correct
 * results against the CSR reference kernels.
 */

#ifndef UNISTC_RUNNER_VERIFY_HH
#define UNISTC_RUNNER_VERIFY_HH

#include <cstdint>
#include <vector>

#include "bbc/bbc_matrix.hh"
#include "sparse/dense.hh"
#include "sparse/sparse_vector.hh"

namespace unistc
{

/** y = A * x computed block-by-block on the BBC format. */
std::vector<double> spmvBbc(const BbcMatrix &a,
                            const std::vector<double> &x);

/** y = A * x with sparse x, block-by-block with segment masks. */
SparseVector spmspvBbc(const BbcMatrix &a, const SparseVector &x);

/** C = A * B with dense B, block-by-block. */
DenseMatrix spmmBbc(const BbcMatrix &a, const DenseMatrix &b);

/** C = A * B, both BBC, via the block outer-product of Algorithm 2. */
CsrMatrix spgemmBbc(const BbcMatrix &a, const BbcMatrix &b);

/**
 * Run all four kernels on @p a (SpGEMM as C = A * A when square)
 * through the BBC path and compare against the CSR references.
 * Returns true when every kernel matches; @p seed drives the random
 * x / B operands.
 */
bool verifyAllKernels(const CsrMatrix &a, std::uint64_t seed);

} // namespace unistc

#endif // UNISTC_RUNNER_VERIFY_HH
