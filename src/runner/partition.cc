#include "runner/partition.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unistc
{

double
WarpPartition::imbalance() const
{
    if (warps.empty())
        return 1.0;
    std::int64_t max_load = 0;
    std::int64_t total = 0;
    for (const auto &w : warps) {
        max_load = std::max(max_load, w.size());
        total += w.size();
    }
    if (total == 0)
        return 1.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(warps.size());
    return static_cast<double>(max_load) / mean;
}

std::int64_t
WarpPartition::totalBlocks() const
{
    std::int64_t total = 0;
    for (const auto &w : warps)
        total += w.size();
    return total;
}

namespace
{

/** Block row containing global block index @p blk. */
int
rowOfBlock(const BbcMatrix &m, std::int64_t blk)
{
    int lo = 0;
    int hi = m.blockRows();
    while (lo + 1 < hi) {
        const int mid = (lo + hi) / 2;
        if (m.rowPtr()[mid] <= blk)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

/** @p num_warps empty ranges — the degenerate-matrix partition. */
WarpPartition
emptyPartition(int num_warps)
{
    WarpPartition part;
    part.warps.assign(static_cast<std::size_t>(num_warps),
                      WarpRange{});
    return part;
}

} // namespace

WarpPartition
partitionBlocks(const BbcMatrix &m, int num_warps)
{
    UNISTC_ASSERT(num_warps > 0, "need at least one warp");
    // Empty and all-zero matrices partition into empty ranges; the
    // division logic below would handle blocks == 0 too, but the
    // explicit guard keeps the zero-row contract obvious (and safe
    // against a default-constructed BbcMatrix with blockRows 0).
    const std::int64_t blocks = m.numBlocks();
    if (blocks == 0 || m.blockRows() == 0)
        return emptyPartition(num_warps);
    WarpPartition part;
    for (int w = 0; w < num_warps; ++w) {
        WarpRange range;
        range.begin = blocks * w / num_warps;
        range.end = blocks * (w + 1) / num_warps;
        range.rowId =
            range.size() > 0 ? rowOfBlock(m, range.begin) : 0;
        part.warps.push_back(range);
    }
    return part;
}

bool
BlockRowCursor::next()
{
    ++blk_;
    if (blk_ >= m_->numBlocks())
        return false;
    // Stored blocks are row-major, so the owning row only moves
    // forward; skip rows with no stored blocks.
    while (m_->rowPtr()[row_ + 1] <= blk_)
        ++row_;
    return true;
}

WarpPartition
partitionRows(const BbcMatrix &m, int num_warps)
{
    UNISTC_ASSERT(num_warps > 0, "need at least one warp");
    const int rows = m.blockRows();
    // A zero-row matrix has rowPtr == {0}; indexing rowPtr[row_end]
    // with row_end == 0 would be fine, but return the explicit empty
    // partition for symmetry with partitionBlocks.
    if (rows == 0 || m.numBlocks() == 0)
        return emptyPartition(num_warps);
    WarpPartition part;
    for (int w = 0; w < num_warps; ++w) {
        const int row_begin = rows * w / num_warps;
        const int row_end = rows * (w + 1) / num_warps;
        WarpRange range;
        range.rowId = row_begin;
        range.begin = m.rowPtr()[row_begin];
        range.end = m.rowPtr()[row_end];
        part.warps.push_back(range);
    }
    return part;
}

} // namespace unistc
