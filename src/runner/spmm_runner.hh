/**
 * @file
 * SpMM planner — Algorithm 2 with a dense B: every stored A block is
 * multiplied against ceil(bCols/16) dense B blocks. The paper fixes
 * bCols = 64 (§VI-A). SpmmPlan opens the lazy task stream; runSpmm()
 * is the single-model wrapper.
 */

#ifndef UNISTC_RUNNER_SPMM_RUNNER_HH
#define UNISTC_RUNNER_SPMM_RUNNER_HH

#include "engine/plan.hh"
#include "runner/block_driver.hh"

namespace unistc
{

/** Plan for C = A * B with a dense rows(A.cols) x bCols B. */
class SpmmPlan final : public KernelPlan
{
  public:
    explicit SpmmPlan(const BbcMatrix &a, int b_cols = 64);

    Kernel kernel() const override { return Kernel::SpMM; }
    std::unique_ptr<TaskStream> stream() const override;

  private:
    const BbcMatrix *a_;
    int bCols_;
};

/** Simulate C = A * B with a dense rows(A.cols) x b_cols B. */
RunResult runSpmm(const StcModel &model, const BbcMatrix &a,
                  int b_cols = 64,
                  const EnergyModel &energy = EnergyModel(),
                  TraceSink *trace = nullptr);

} // namespace unistc

#endif // UNISTC_RUNNER_SPMM_RUNNER_HH
