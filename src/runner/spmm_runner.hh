/**
 * @file
 * SpMM runner — Algorithm 2 with a dense B: every stored A block is
 * multiplied against ceil(bCols/16) dense B blocks. The paper fixes
 * bCols = 64 (§VI-A).
 */

#ifndef UNISTC_RUNNER_SPMM_RUNNER_HH
#define UNISTC_RUNNER_SPMM_RUNNER_HH

#include "runner/block_driver.hh"

namespace unistc
{

/** Simulate C = A * B with a dense rows(A.cols) x b_cols B. */
RunResult runSpmm(const StcModel &model, const BbcMatrix &a,
                  int b_cols = 64,
                  const EnergyModel &energy = EnergyModel(),
                  TraceSink *trace = nullptr);

} // namespace unistc

#endif // UNISTC_RUNNER_SPMM_RUNNER_HH
