/**
 * @file
 * Static load balancing (§V-A): the 'warpRow', 'warpIndex' and
 * 'warpRowId' variables of Algorithms 1 and 2 configure each warp's
 * data-processing range. This module computes those tables: block
 * rows are split into per-warp work ranges so that every warp
 * receives a near-equal number of stored blocks (the unit of T1
 * work), with long block rows split across warps.
 */

#ifndef UNISTC_RUNNER_PARTITION_HH
#define UNISTC_RUNNER_PARTITION_HH

#include <cstdint>
#include <vector>

#include "bbc/bbc_matrix.hh"

namespace unistc
{

/** One warp's work assignment. */
struct WarpRange
{
    int rowId = 0;            ///< Block row the warp starts in.
    std::int64_t begin = 0;   ///< First block index (global).
    std::int64_t end = 0;     ///< One past the last block index.

    std::int64_t size() const { return end - begin; }
};

/** The §V-A warpRowId / warpIndex tables. */
struct WarpPartition
{
    std::vector<WarpRange> warps;

    /** Max warp load divided by mean warp load (1.0 = perfect). */
    double imbalance() const;

    /** Total blocks covered (must equal the matrix block count). */
    std::int64_t totalBlocks() const;
};

/**
 * Split the stored blocks of @p m into @p num_warps contiguous
 * ranges of near-equal size. Ranges may start mid-row (the split
 * long rows §III-B says fixed T3 shapes struggle with); empty warps
 * are possible only when num_warps exceeds the block count. Empty
 * and all-zero matrices (including a default-constructed BbcMatrix)
 * yield num_warps empty ranges.
 */
WarpPartition partitionBlocks(const BbcMatrix &m, int num_warps);

/**
 * Naive row-granular partition (whole block rows per warp, one
 * contiguous row chunk each) — the baseline the balanced scheme is
 * compared against.
 */
WarpPartition partitionRows(const BbcMatrix &m, int num_warps);

/**
 * Row-ordered walk over the stored blocks of a BBC matrix: yields
 * every (block row, global block index) pair exactly once, in the
 * rowPtr/colIdx order Algorithms 1 and 2 prescribe. This is the loop
 * skeleton the SpMSpV and SpMM task streams share (previously two
 * hand-rolled copies in the runners).
 */
class BlockRowCursor
{
  public:
    explicit BlockRowCursor(const BbcMatrix &m) : m_(&m) {}

    /** Advance to the next stored block; false when exhausted. */
    bool next();

    /** Block row of the current block (valid after next() == true). */
    int blockRow() const { return row_; }

    /** Global block index of the current block. */
    std::int64_t blockIndex() const { return blk_; }

  private:
    const BbcMatrix *m_;
    int row_ = 0;
    std::int64_t blk_ = -1;
};

} // namespace unistc

#endif // UNISTC_RUNNER_PARTITION_HH
