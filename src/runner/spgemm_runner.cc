#include "runner/spgemm_runner.hh"

#include "common/logging.hh"
#include "engine/kernel_pipeline.hh"

namespace unistc
{

namespace
{

/**
 * Resumable three-level walk of Algorithm 2: C block row bi -> stored
 * A block ai in row bi -> stored B block bj in B's block row
 * colIdx(ai). One trace group per C block row. Block patterns are
 * reconstructed once per stream — so a multi-architecture pipeline
 * pays the reconstruction once, not once per model.
 */
class SpgemmStream final : public TaskStream
{
  public:
    SpgemmStream(const BbcMatrix &a, const BbcMatrix &b)
        : a_(&a), b_(&b), aPatterns_(allBlockPatterns(a)),
          bPatterns_(allBlockPatterns(b))
    {
        aMetas_.reserve(aPatterns_.size());
        for (const BlockPattern &p : aPatterns_)
            aMetas_.push_back(computePatternMeta(p));
        bMetas_.reserve(bPatterns_.size());
        for (const BlockPattern &p : bPatterns_)
            bMetas_.push_back(computePatternMeta(p));
        enterA();
    }

    bool
    next(StreamedTask &out) override
    {
        for (; bi_ < a_->blockRows(); nextRow()) {
            for (; ai_ < a_->rowPtr()[bi_ + 1]; nextA()) {
                const BlockPattern &a_pat =
                    aPatterns_[static_cast<std::size_t>(ai_)];
                const PatternMeta &a_meta =
                    aMetas_[static_cast<std::size_t>(ai_)];
                for (; bj_ < bEnd_; ++bj_) {
                    const PatternMeta &b_meta =
                        bMetas_[static_cast<std::size_t>(bj_)];
                    // Software bitmap check (Algorithm 2, line 13):
                    // the product count is the dot product of A's
                    // per-column and B's per-row nonzero counts, read
                    // straight off the precomputed summaries.
                    int products = 0;
                    for (int k = 0; k < kBlockSize; ++k) {
                        products += static_cast<int>(a_meta.colCnt[k]) *
                            static_cast<int>(b_meta.rowCnt[k]);
                    }
                    if (products == 0)
                        continue;
                    out.task = BlockTask::mm(
                        a_pat,
                        bPatterns_[static_cast<std::size_t>(bj_)],
                        &a_meta, &b_meta);
                    out.group = bi_;
                    ++bj_;
                    return true;
                }
            }
        }
        return false;
    }

    std::string
    groupLabel(std::int64_t group) const override
    {
        return "C block row #" + std::to_string(group);
    }

  private:
    /** Bind bj_/bEnd_ to the B block row of the current A block. */
    void
    enterA()
    {
        if (bi_ < a_->blockRows() && ai_ < a_->rowPtr()[bi_ + 1]) {
            const int bk = a_->colIdx()[ai_];
            bj_ = b_->rowPtr()[bk];
            bEnd_ = b_->rowPtr()[bk + 1];
        } else {
            bj_ = bEnd_ = 0;
        }
    }

    void
    nextA()
    {
        ++ai_;
        enterA();
    }

    /** ai_ already sits at rowPtr[bi_ + 1] == start of the next row. */
    void
    nextRow()
    {
        ++bi_;
        enterA();
    }

    const BbcMatrix *a_;
    const BbcMatrix *b_;
    std::vector<BlockPattern> aPatterns_;
    std::vector<BlockPattern> bPatterns_;
    std::vector<PatternMeta> aMetas_;
    std::vector<PatternMeta> bMetas_;
    int bi_ = 0;            ///< Current C block row.
    std::int64_t ai_ = 0;   ///< Current stored A block (global).
    std::int64_t bj_ = 0;   ///< Current stored B block (global).
    std::int64_t bEnd_ = 0; ///< End of the current B block row.
};

} // namespace

SpgemmPlan::SpgemmPlan(const BbcMatrix &a, const BbcMatrix &b)
    : a_(&a), b_(&b)
{
    UNISTC_ASSERT(a.cols() == b.rows(), "SpGEMM shape mismatch");
}

std::unique_ptr<TaskStream>
SpgemmPlan::stream() const
{
    return std::make_unique<SpgemmStream>(*a_, *b_);
}

RunResult
runSpgemm(const StcModel &model, const BbcMatrix &a,
          const BbcMatrix &b, const EnergyModel &energy,
          TraceSink *trace)
{
    return KernelPipeline::runOne(SpgemmPlan(a, b), model, energy,
                                  trace);
}

} // namespace unistc
