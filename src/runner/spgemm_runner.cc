#include "runner/spgemm_runner.hh"

#include "common/logging.hh"
#include "obs/trace.hh"

namespace unistc
{

RunResult
runSpgemm(const StcModel &model, const BbcMatrix &a,
          const BbcMatrix &b, const EnergyModel &energy,
          TraceSink *trace)
{
    UNISTC_ASSERT(a.cols() == b.rows(), "SpGEMM shape mismatch");

    // Reconstruct block patterns once; the inner loop touches B's
    // block rows many times.
    const auto a_patterns = allBlockPatterns(a);
    const auto b_patterns = allBlockPatterns(b);

    RunResult res;
    UNISTC_TRACE_BEGIN(trace, TraceTrack::Runner, "SpGEMM", 0);
    for (int bi = 0; bi < a.blockRows(); ++bi) {
        const std::uint64_t row_start = res.cycles;
        for (std::int64_t ai = a.rowPtr()[bi]; ai < a.rowPtr()[bi + 1];
             ++ai) {
            const int bk = a.colIdx()[ai];
            const BlockPattern &a_pat = a_patterns[ai];
            for (std::int64_t bj = b.rowPtr()[bk];
                 bj < b.rowPtr()[bk + 1]; ++bj) {
                const BlockPattern &b_pat = b_patterns[bj];
                // Software bitmap check (Algorithm 2, line 13).
                if (blockProductCount(a_pat, b_pat) == 0)
                    continue;
                const BlockTask task = BlockTask::mm(a_pat, b_pat);
                model.runBlock(task, res, trace);
            }
        }
        if (res.cycles > row_start) {
            UNISTC_TRACE_COMPLETE(trace, TraceTrack::Runner,
                                  "C block row #" + std::to_string(bi),
                                  row_start, res.cycles - row_start);
        }
    }
    UNISTC_TRACE_END(trace, TraceTrack::Runner, res.cycles);
    finalizeRun(model, energy, res);
    return res;
}

} // namespace unistc
