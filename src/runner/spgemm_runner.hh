/**
 * @file
 * SpGEMM planner — Algorithm 2 over two BBC operands: a row-by-row
 * block outer product C_i* += A_ik x B_k*, with the software bitmap
 * check (`A16b x B16b`, Algorithm 2 line 13) skipping block pairs
 * that share no index. SpgemmPlan opens the lazy task stream;
 * runSpgemm() is the single-model wrapper.
 */

#ifndef UNISTC_RUNNER_SPGEMM_RUNNER_HH
#define UNISTC_RUNNER_SPGEMM_RUNNER_HH

#include "engine/plan.hh"
#include "runner/block_driver.hh"

namespace unistc
{

/** Plan for C = A * B, both operands sparse. */
class SpgemmPlan final : public KernelPlan
{
  public:
    SpgemmPlan(const BbcMatrix &a, const BbcMatrix &b);

    Kernel kernel() const override { return Kernel::SpGEMM; }
    std::unique_ptr<TaskStream> stream() const override;

  private:
    const BbcMatrix *a_;
    const BbcMatrix *b_;
};

/** Simulate C = A * B, both sparse, on @p model. */
RunResult runSpgemm(const StcModel &model, const BbcMatrix &a,
                    const BbcMatrix &b,
                    const EnergyModel &energy = EnergyModel(),
                    TraceSink *trace = nullptr);

} // namespace unistc

#endif // UNISTC_RUNNER_SPGEMM_RUNNER_HH
