/**
 * @file
 * SpGEMM runner — Algorithm 2 over two BBC operands: a row-by-row
 * block outer product C_i* += A_ik x B_k*, with the software bitmap
 * check (`A16b x B16b`, Algorithm 2 line 13) skipping block pairs
 * that share no index.
 */

#ifndef UNISTC_RUNNER_SPGEMM_RUNNER_HH
#define UNISTC_RUNNER_SPGEMM_RUNNER_HH

#include "runner/block_driver.hh"

namespace unistc
{

/** Simulate C = A * B, both sparse, on @p model. */
RunResult runSpgemm(const StcModel &model, const BbcMatrix &a,
                    const BbcMatrix &b,
                    const EnergyModel &energy = EnergyModel(),
                    TraceSink *trace = nullptr);

} // namespace unistc

#endif // UNISTC_RUNNER_SPGEMM_RUNNER_HH
