#include "runner/spmspv_runner.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "engine/kernel_pipeline.hh"
#include "runner/partition.hh"

namespace unistc
{

std::vector<std::uint16_t>
segmentMasks(const SparseVector &x)
{
    const int segments =
        static_cast<int>(ceilDiv(x.size(), kBlockSize));
    std::vector<std::uint16_t> masks(segments, 0);
    for (int i : x.idx()) {
        masks[i / kBlockSize] = setBit(masks[i / kBlockSize],
                                       i % kBlockSize);
    }
    return masks;
}

namespace
{

/**
 * Row-ordered walk over stored A blocks, gated by the x-segment
 * bitmap of each block column. Masks live in the owning plan.
 */
class SpmspvStream final : public TaskStream
{
  public:
    SpmspvStream(const BbcMatrix &a,
                 const std::vector<std::uint16_t> &masks)
        : a_(&a), masks_(&masks), cursor_(a)
    {
    }

    bool
    next(StreamedTask &out) override
    {
        while (cursor_.next()) {
            const std::int64_t blk = cursor_.blockIndex();
            const std::uint16_t mask =
                (*masks_)[static_cast<std::size_t>(
                    a_->colIdx()[blk])];
            if (!mask)
                continue;
            const BlockPattern pattern = a_->blockPattern(blk);
            // Software bitmap check: skip blocks with no index match.
            if (blockMvProductCount(pattern, mask) == 0)
                continue;
            // Prime the pattern summaries for the surviving task so
            // every model in a lineup reuses them.
            const PatternMeta a_meta = computePatternMeta(pattern);
            const PatternMeta x_meta =
                computePatternMeta(vectorAsBlock(mask));
            out.task = BlockTask::mv(pattern, mask, &a_meta, &x_meta);
            out.group = blk;
            return true;
        }
        return false;
    }

  private:
    const BbcMatrix *a_;
    const std::vector<std::uint16_t> *masks_;
    BlockRowCursor cursor_;
};

} // namespace

SpmspvPlan::SpmspvPlan(const BbcMatrix &a, const SparseVector &x)
    : a_(&a), masks_(segmentMasks(x))
{
    UNISTC_ASSERT(x.size() == a.cols(), "SpMSpV shape mismatch");
}

std::unique_ptr<TaskStream>
SpmspvPlan::stream() const
{
    return std::make_unique<SpmspvStream>(*a_, masks_);
}

RunResult
runSpmspv(const StcModel &model, const BbcMatrix &a,
          const SparseVector &x, const EnergyModel &energy,
          TraceSink *trace)
{
    return KernelPipeline::runOne(SpmspvPlan(a, x), model, energy,
                                  trace);
}

} // namespace unistc
