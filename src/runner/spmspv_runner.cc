#include "runner/spmspv_runner.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "obs/trace.hh"

namespace unistc
{

std::vector<std::uint16_t>
segmentMasks(const SparseVector &x)
{
    const int segments =
        static_cast<int>(ceilDiv(x.size(), kBlockSize));
    std::vector<std::uint16_t> masks(segments, 0);
    for (int i : x.idx()) {
        masks[i / kBlockSize] = setBit(masks[i / kBlockSize],
                                       i % kBlockSize);
    }
    return masks;
}

RunResult
runSpmspv(const StcModel &model, const BbcMatrix &a,
          const SparseVector &x, const EnergyModel &energy,
          TraceSink *trace)
{
    UNISTC_ASSERT(x.size() == a.cols(), "SpMSpV shape mismatch");
    const auto masks = segmentMasks(x);

    RunResult res;
    UNISTC_TRACE_BEGIN(trace, TraceTrack::Runner, "SpMSpV", 0);
    for (int br = 0; br < a.blockRows(); ++br) {
        for (std::int64_t blk = a.rowPtr()[br];
             blk < a.rowPtr()[br + 1]; ++blk) {
            const int bc = a.colIdx()[blk];
            const std::uint16_t mask = masks[bc];
            if (!mask)
                continue;
            const BlockPattern pattern = a.blockPattern(blk);
            // Software bitmap check: skip blocks with no index match.
            if (blockMvProductCount(pattern, mask) == 0)
                continue;
            const BlockTask task = BlockTask::mv(pattern, mask);
            const std::uint64_t t0 = res.cycles;
            model.runBlock(task, res, trace);
            UNISTC_TRACE_COMPLETE(trace, TraceTrack::Runner,
                                  "T1 #" + std::to_string(blk), t0,
                                  res.cycles - t0);
        }
    }
    UNISTC_TRACE_END(trace, TraceTrack::Runner, res.cycles);
    finalizeRun(model, energy, res);
    return res;
}

} // namespace unistc
