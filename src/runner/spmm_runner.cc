#include "runner/spmm_runner.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "engine/kernel_pipeline.hh"
#include "runner/partition.hh"

namespace unistc
{

namespace
{

/**
 * ceil(bCols/16) MM tasks per stored A block, in storage order; one
 * trace group per A block.
 */
class SpmmStream final : public TaskStream
{
  public:
    SpmmStream(const BbcMatrix &a, int b_cols)
        : a_(&a), bCols_(b_cols),
          bBlockCols_(static_cast<int>(ceilDiv(b_cols, kBlockSize))),
          cursor_(a), bj_(bBlockCols_)
    {
        // The dense B blocks (and their summaries) repeat across all A
        // blocks: build them once for the whole stream.
        bBlocks_.reserve(static_cast<std::size_t>(bBlockCols_));
        bMetas_.reserve(static_cast<std::size_t>(bBlockCols_));
        for (int bj = 0; bj < bBlockCols_; ++bj) {
            bBlocks_.push_back(denseBBlock(bj));
            bMetas_.push_back(computePatternMeta(bBlocks_.back()));
        }
    }

    bool
    next(StreamedTask &out) override
    {
        if (bj_ >= bBlockCols_) {
            if (!cursor_.next())
                return false;
            pattern_ = a_->blockPattern(cursor_.blockIndex());
            aMeta_ = computePatternMeta(pattern_);
            bj_ = 0;
        }
        out.task = BlockTask::mm(
            pattern_, bBlocks_[static_cast<std::size_t>(bj_)],
            &aMeta_, &bMetas_[static_cast<std::size_t>(bj_)]);
        out.group = cursor_.blockIndex();
        ++bj_;
        return true;
    }

    std::string
    groupLabel(std::int64_t group) const override
    {
        return "T1 row #" + std::to_string(group);
    }

  private:
    /**
     * Dense B block: a full pattern, or a partial-width one for the
     * last block column when bCols is not a multiple of 16.
     */
    BlockPattern
    denseBBlock(int bj) const
    {
        const int width = std::min(kBlockSize,
                                   bCols_ - bj * kBlockSize);
        if (width == kBlockSize)
            return BlockPattern::dense();
        BlockPattern p;
        for (int r = 0; r < kBlockSize; ++r) {
            for (int c = 0; c < width; ++c)
                p.set(r, c);
        }
        return p;
    }

    const BbcMatrix *a_;
    int bCols_;
    int bBlockCols_;
    BlockRowCursor cursor_;
    BlockPattern pattern_;
    PatternMeta aMeta_;
    std::vector<BlockPattern> bBlocks_;
    std::vector<PatternMeta> bMetas_;
    int bj_; ///< Next B block column; >= bBlockCols_ forces advance.
};

} // namespace

SpmmPlan::SpmmPlan(const BbcMatrix &a, int b_cols)
    : a_(&a), bCols_(b_cols)
{
    UNISTC_ASSERT(b_cols > 0, "SpMM needs at least one B column");
}

std::unique_ptr<TaskStream>
SpmmPlan::stream() const
{
    return std::make_unique<SpmmStream>(*a_, bCols_);
}

RunResult
runSpmm(const StcModel &model, const BbcMatrix &a, int b_cols,
        const EnergyModel &energy, TraceSink *trace)
{
    return KernelPipeline::runOne(SpmmPlan(a, b_cols), model, energy,
                                  trace);
}

} // namespace unistc
