#include "runner/spmm_runner.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "obs/trace.hh"

namespace unistc
{

RunResult
runSpmm(const StcModel &model, const BbcMatrix &a, int b_cols,
        const EnergyModel &energy, TraceSink *trace)
{
    UNISTC_ASSERT(b_cols > 0, "SpMM needs at least one B column");
    const int b_block_cols = static_cast<int>(ceilDiv(b_cols,
                                                      kBlockSize));

    // Dense B block: a full pattern, or a partial-width one for the
    // last block column when b_cols is not a multiple of 16.
    auto dense_b_block = [&](int bj) {
        const int width = std::min(kBlockSize,
                                   b_cols - bj * kBlockSize);
        if (width == kBlockSize)
            return BlockPattern::dense();
        BlockPattern p;
        for (int r = 0; r < kBlockSize; ++r) {
            for (int c = 0; c < width; ++c)
                p.set(r, c);
        }
        return p;
    };

    RunResult res;
    UNISTC_TRACE_BEGIN(trace, TraceTrack::Runner, "SpMM", 0);
    for (std::int64_t blk = 0; blk < a.numBlocks(); ++blk) {
        const BlockPattern pattern = a.blockPattern(blk);
        const std::uint64_t t0 = res.cycles;
        for (int bj = 0; bj < b_block_cols; ++bj) {
            const BlockTask task =
                BlockTask::mm(pattern, dense_b_block(bj));
            model.runBlock(task, res, trace);
        }
        UNISTC_TRACE_COMPLETE(trace, TraceTrack::Runner,
                              "T1 row #" + std::to_string(blk), t0,
                              res.cycles - t0);
    }
    UNISTC_TRACE_END(trace, TraceTrack::Runner, res.cycles);
    finalizeRun(model, energy, res);
    return res;
}

} // namespace unistc
