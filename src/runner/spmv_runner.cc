#include "runner/spmv_runner.hh"

namespace unistc
{

RunResult
runSpmv(const StcModel &model, const BbcMatrix &a,
        const EnergyModel &energy)
{
    RunResult res;
    for (std::int64_t blk = 0; blk < a.numBlocks(); ++blk) {
        const BlockPattern pattern = a.blockPattern(blk);
        // Dense x: every lane of the segment is live.
        const BlockTask task = BlockTask::mv(pattern, 0xFFFFu);
        model.runBlock(task, res);
    }
    finalizeRun(model, energy, res);
    return res;
}

} // namespace unistc
