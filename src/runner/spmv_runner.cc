#include "runner/spmv_runner.hh"

#include "engine/kernel_pipeline.hh"

namespace unistc
{

namespace
{

/** One MV task per stored A block, in storage (row-major) order. */
class SpmvStream final : public TaskStream
{
  public:
    explicit SpmvStream(const BbcMatrix &a)
        : a_(&a),
          xMeta_(computePatternMeta(vectorAsBlock(0xFFFFu)))
    {
    }

    bool
    next(StreamedTask &out) override
    {
        if (blk_ >= a_->numBlocks())
            return false;
        // Dense x: every lane of the segment is live. Pattern
        // summaries are primed here so a multi-architecture pipeline
        // computes them once per task, not once per model.
        const BlockPattern pattern = a_->blockPattern(blk_);
        const PatternMeta a_meta = computePatternMeta(pattern);
        out.task = BlockTask::mv(pattern, 0xFFFFu, &a_meta, &xMeta_);
        out.group = blk_;
        ++blk_;
        return true;
    }

  private:
    const BbcMatrix *a_;
    const PatternMeta xMeta_; ///< Shared dense-x block summary.
    std::int64_t blk_ = 0;
};

} // namespace

std::unique_ptr<TaskStream>
SpmvPlan::stream() const
{
    return std::make_unique<SpmvStream>(*a_);
}

RunResult
runSpmv(const StcModel &model, const BbcMatrix &a,
        const EnergyModel &energy, TraceSink *trace)
{
    return KernelPipeline::runOne(SpmvPlan(a), model, energy, trace);
}

} // namespace unistc
