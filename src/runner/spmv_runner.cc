#include "runner/spmv_runner.hh"

#include "obs/trace.hh"

namespace unistc
{

RunResult
runSpmv(const StcModel &model, const BbcMatrix &a,
        const EnergyModel &energy, TraceSink *trace)
{
    RunResult res;
    UNISTC_TRACE_BEGIN(trace, TraceTrack::Runner, "SpMV", 0);
    for (std::int64_t blk = 0; blk < a.numBlocks(); ++blk) {
        const BlockPattern pattern = a.blockPattern(blk);
        // Dense x: every lane of the segment is live.
        const BlockTask task = BlockTask::mv(pattern, 0xFFFFu);
        const std::uint64_t t0 = res.cycles;
        model.runBlock(task, res, trace);
        UNISTC_TRACE_COMPLETE(trace, TraceTrack::Runner,
                              "T1 #" + std::to_string(blk), t0,
                              res.cycles - t0);
    }
    UNISTC_TRACE_END(trace, TraceTrack::Runner, res.cycles);
    finalizeRun(model, energy, res);
    return res;
}

} // namespace unistc
