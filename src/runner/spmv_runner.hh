/**
 * @file
 * SpMV runner — Algorithm 1 with a dense x: every stored A block is a
 * matrix-vector T1 task against the full 16-entry x segment of its
 * block column.
 */

#ifndef UNISTC_RUNNER_SPMV_RUNNER_HH
#define UNISTC_RUNNER_SPMV_RUNNER_HH

#include "runner/block_driver.hh"

namespace unistc
{

/** Simulate y = A * x (dense x) on @p model. */
RunResult runSpmv(const StcModel &model, const BbcMatrix &a,
                  const EnergyModel &energy = EnergyModel(),
                  TraceSink *trace = nullptr);

} // namespace unistc

#endif // UNISTC_RUNNER_SPMV_RUNNER_HH
