/**
 * @file
 * SpMV planner — Algorithm 1 with a dense x: every stored A block is a
 * matrix-vector T1 task against the full 16-entry x segment of its
 * block column. SpmvPlan opens the lazy task stream; runSpmv() is the
 * single-model convenience wrapper over the engine.
 */

#ifndef UNISTC_RUNNER_SPMV_RUNNER_HH
#define UNISTC_RUNNER_SPMV_RUNNER_HH

#include "engine/plan.hh"
#include "runner/block_driver.hh"

namespace unistc
{

/** Plan for y = A * x with a dense x. */
class SpmvPlan final : public KernelPlan
{
  public:
    explicit SpmvPlan(const BbcMatrix &a) : a_(&a) {}

    Kernel kernel() const override { return Kernel::SpMV; }
    std::unique_ptr<TaskStream> stream() const override;

  private:
    const BbcMatrix *a_;
};

/** Simulate y = A * x (dense x) on @p model. */
RunResult runSpmv(const StcModel &model, const BbcMatrix &a,
                  const EnergyModel &energy = EnergyModel(),
                  TraceSink *trace = nullptr);

} // namespace unistc

#endif // UNISTC_RUNNER_SPMV_RUNNER_HH
