/**
 * @file
 * Shared plumbing for the kernel runners: block-pattern caching and
 * energy finalisation. The runners implement the paper's software
 * dataflow (Algorithms 1 and 2): they walk the BBC outer CSR, emit
 * one T1 block task per (A block, B block / x segment) pair, feed the
 * task to an StcModel and accumulate the RunResult.
 */

#ifndef UNISTC_RUNNER_BLOCK_DRIVER_HH
#define UNISTC_RUNNER_BLOCK_DRIVER_HH

#include <vector>

#include "bbc/bbc_matrix.hh"
#include "engine/plan.hh"
#include "sim/energy.hh"
#include "stc/stc_model.hh"

namespace unistc
{

class SparseVector;

/** Reconstruct all block patterns of a BBC matrix once. */
std::vector<BlockPattern> allBlockPatterns(const BbcMatrix &m);

/** Apply the energy model to a finished run. */
void finalizeRun(const StcModel &model, const EnergyModel &energy,
                 RunResult &res);

/**
 * Operand bundle for makeKernelPlan(). @p a is always required; @p x
 * only for SpMSpV, @p b only for SpGEMM, @p bCols only for SpMM.
 * Pointees must outlive the returned plan and its streams.
 */
struct PlanInputs
{
    const BbcMatrix *a = nullptr;
    const BbcMatrix *b = nullptr;    ///< SpGEMM right-hand operand.
    const SparseVector *x = nullptr; ///< SpMSpV input vector.
    int bCols = 64;                  ///< SpMM dense-B width (§VI-A).
};

/**
 * Build the planner for @p kernel over @p in — the one dispatch point
 * turning (kernel, operands) into a streamable plan. Asserts when a
 * required operand is missing.
 */
KernelPlanPtr makeKernelPlan(Kernel kernel, const PlanInputs &in);

} // namespace unistc

#endif // UNISTC_RUNNER_BLOCK_DRIVER_HH
