/**
 * @file
 * Shared plumbing for the kernel runners: block-pattern caching and
 * energy finalisation. The runners implement the paper's software
 * dataflow (Algorithms 1 and 2): they walk the BBC outer CSR, emit
 * one T1 block task per (A block, B block / x segment) pair, feed the
 * task to an StcModel and accumulate the RunResult.
 */

#ifndef UNISTC_RUNNER_BLOCK_DRIVER_HH
#define UNISTC_RUNNER_BLOCK_DRIVER_HH

#include <vector>

#include "bbc/bbc_matrix.hh"
#include "sim/energy.hh"
#include "stc/stc_model.hh"

namespace unistc
{

/** Reconstruct all block patterns of a BBC matrix once. */
std::vector<BlockPattern> allBlockPatterns(const BbcMatrix &m);

/** Apply the energy model to a finished run. */
void finalizeRun(const StcModel &model, const EnergyModel &energy,
                 RunResult &res);

} // namespace unistc

#endif // UNISTC_RUNNER_BLOCK_DRIVER_HH
