#include "runner/report.hh"

namespace unistc
{

const char *
toString(Kernel k)
{
    switch (k) {
      case Kernel::SpMV:
        return "SpMV";
      case Kernel::SpMSpV:
        return "SpMSpV";
      case Kernel::SpMM:
        return "SpMM";
      case Kernel::SpGEMM:
        return "SpGEMM";
    }
    return "?";
}

const std::vector<Kernel> &
allKernels()
{
    static const std::vector<Kernel> kernels = {
        Kernel::SpMV, Kernel::SpMSpV, Kernel::SpMM, Kernel::SpGEMM};
    return kernels;
}

Comparison
compare(const RunResult &base, const RunResult &test)
{
    Comparison c;
    if (test.cycles > 0) {
        c.speedup = static_cast<double>(base.cycles) /
            static_cast<double>(test.cycles);
    }
    const double test_energy = test.energy.total();
    if (test_energy > 0.0)
        c.energyReduction = base.energy.total() / test_energy;
    c.energyEfficiency = c.speedup * c.energyReduction;
    return c;
}

void
ComparisonRollup::add(const Comparison &c)
{
    speedup.add(c.speedup);
    energyReduction.add(c.energyReduction);
    energyEfficiency.add(c.energyEfficiency);
    speedupStat.add(c.speedup);
    energyReductionStat.add(c.energyReduction);
    energyEfficiencyStat.add(c.energyEfficiency);
}

double
interProductsPerT1(const RunResult &res)
{
    if (res.tasksT1 == 0)
        return 0.0;
    return static_cast<double>(res.products) /
        static_cast<double>(res.tasksT1);
}

} // namespace unistc
