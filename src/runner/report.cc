#include "runner/report.hh"

namespace unistc
{

const char *
toString(Kernel k)
{
    switch (k) {
      case Kernel::SpMV:
        return "SpMV";
      case Kernel::SpMSpV:
        return "SpMSpV";
      case Kernel::SpMM:
        return "SpMM";
      case Kernel::SpGEMM:
        return "SpGEMM";
    }
    return "?";
}

const std::vector<Kernel> &
allKernels()
{
    static const std::vector<Kernel> kernels = {
        Kernel::SpMV, Kernel::SpMSpV, Kernel::SpMM, Kernel::SpGEMM};
    return kernels;
}

Comparison
compare(const RunResult &base, const RunResult &test)
{
    // A ratio against an empty run (zero cycles, zero energy) has no
    // meaning: base/0 is inf, 0/0 is NaN, and a silent 0.0 would be
    // dropped by GeoMean::add while still skewing RunningStat — all
    // three quietly poison roll-ups. Define such ratios as the
    // neutral 1.0 and tell the caller via the degenerate flag.
    auto ratio = [](double b, double t, bool &flag) {
        if (b > 0.0 && t > 0.0)
            return b / t;
        flag = true;
        return 1.0;
    };

    Comparison c;
    c.speedup = ratio(static_cast<double>(base.cycles),
                      static_cast<double>(test.cycles), c.degenerate);
    c.energyReduction = ratio(base.energy.total(),
                              test.energy.total(), c.degenerate);
    c.energyEfficiency = c.speedup * c.energyReduction;
    return c;
}

void
ComparisonRollup::add(const Comparison &c)
{
    speedup.add(c.speedup);
    energyReduction.add(c.energyReduction);
    energyEfficiency.add(c.energyEfficiency);
    speedupStat.add(c.speedup);
    energyReductionStat.add(c.energyReduction);
    energyEfficiencyStat.add(c.energyEfficiency);
}

double
interProductsPerT1(const RunResult &res)
{
    if (res.tasksT1 == 0)
        return 0.0;
    return static_cast<double>(res.products) /
        static_cast<double>(res.tasksT1);
}

} // namespace unistc
