/**
 * @file
 * SpMSpV planner — Algorithm 1 with a sparse x: the x-segment bitmap
 * of each block column gates task generation; blocks whose bitmap
 * product with the segment is empty are skipped by the software check
 * (the `stc.task_gen` path emits nothing for them). SpmspvPlan opens
 * the lazy task stream; runSpmspv() is the single-model wrapper.
 */

#ifndef UNISTC_RUNNER_SPMSPV_RUNNER_HH
#define UNISTC_RUNNER_SPMSPV_RUNNER_HH

#include <vector>

#include "engine/plan.hh"
#include "runner/block_driver.hh"
#include "sparse/sparse_vector.hh"

namespace unistc
{

/** Per-block-column 16-bit structural masks of a sparse vector. */
std::vector<std::uint16_t> segmentMasks(const SparseVector &x);

/** Plan for y = A * x with a sparse x. */
class SpmspvPlan final : public KernelPlan
{
  public:
    SpmspvPlan(const BbcMatrix &a, const SparseVector &x);

    Kernel kernel() const override { return Kernel::SpMSpV; }
    std::unique_ptr<TaskStream> stream() const override;

  private:
    const BbcMatrix *a_;
    std::vector<std::uint16_t> masks_;
};

/** Simulate y = A * x (sparse x) on @p model. */
RunResult runSpmspv(const StcModel &model, const BbcMatrix &a,
                    const SparseVector &x,
                    const EnergyModel &energy = EnergyModel(),
                    TraceSink *trace = nullptr);

} // namespace unistc

#endif // UNISTC_RUNNER_SPMSPV_RUNNER_HH
