/**
 * @file
 * SpMSpV runner — Algorithm 1 with a sparse x: the x-segment bitmap
 * of each block column gates task generation; blocks whose bitmap
 * product with the segment is empty are skipped by the software check
 * (the `stc.task_gen` path emits nothing for them).
 */

#ifndef UNISTC_RUNNER_SPMSPV_RUNNER_HH
#define UNISTC_RUNNER_SPMSPV_RUNNER_HH

#include "runner/block_driver.hh"
#include "sparse/sparse_vector.hh"

namespace unistc
{

/** Per-block-column 16-bit structural masks of a sparse vector. */
std::vector<std::uint16_t> segmentMasks(const SparseVector &x);

/** Simulate y = A * x (sparse x) on @p model. */
RunResult runSpmspv(const StcModel &model, const BbcMatrix &a,
                    const SparseVector &x,
                    const EnergyModel &energy = EnergyModel(),
                    TraceSink *trace = nullptr);

} // namespace unistc

#endif // UNISTC_RUNNER_SPMSPV_RUNNER_HH
