/**
 * @file
 * ServeCore: the unistc_serve daemon's execution heart
 * (docs/SERVING.md). Connection threads submit decoded WireRequests
 * and block for the response; a single executor thread runs the
 * simulations — stdout capture via fd redirection is process-global
 * state, so execution is serialised by design and concurrency lives
 * in the socket layer plus the admission queue.
 *
 * What a "run" request gets:
 *
 *  - its argv parsed by the same driver::parseSweepCli +
 *    serve::makeExperiment path as simulate_cli, then executed by a
 *    DriverSession over serve::simulateBody — the response output is
 *    byte-identical to a one-shot simulate_cli run by construction;
 *  - a per-client embeddable ExecutionContext (LRU-bounded), reset
 *    with beginRun() between requests;
 *  - the daemon's hot caches: an LRU of Prepared matrices (decoded
 *    CSR + BBC fingerprints) shared across clients, and the
 *    process-wide MatrixCache;
 *  - batching: compatible queued requests (same matrix, kernel and
 *    machine config) are pre-computed in ONE shared KernelPipeline
 *    lineup pass, and each request's body splices its models' results
 *    from the memo — bit-identical to solo execution
 *    (docs/ARCHITECTURE.md);
 *  - a per-request warehouse run (BenchSink manual mode) labelled
 *    from the request, commit counters carrying the robust.serve_*
 *    snapshot.
 *
 * Load shedding: over the queue bound or a per-client quota the
 * request is rejected immediately (serve/admission.hh) — the daemon
 * never queues without bound.
 */

#ifndef UNISTC_SERVE_SERVE_CORE_HH
#define UNISTC_SERVE_SERVE_CORE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "driver/execution_context.hh"
#include "driver/kernel_run.hh"
#include "driver/wire_codec.hh"
#include "serve/admission.hh"
#include "serve/sim_service.hh"

namespace unistc
{
namespace serve
{

/** Daemon tuning knobs (all have sensible defaults). */
struct ServeOptions
{
    ServeLimits limits;

    /** Prepared matrices kept hot across requests (LRU). */
    std::size_t preparedCacheCap = 8;

    /** Per-client ExecutionContexts kept alive (LRU). */
    std::size_t contextCacheCap = 16;
};

/** See the file header. */
class ServeCore
{
  public:
    explicit ServeCore(const ServeOptions &opt);
    ~ServeCore();

    ServeCore(const ServeCore &) = delete;
    ServeCore &operator=(const ServeCore &) = delete;

    /**
     * Execute @p req and block until its response is ready
     * (thread-safe). "ping"/"stats" answer inline — health checks
     * still work under overload; "shutdown" flips the stop flag and
     * returns a final counter snapshot; "run" goes through admission
     * and the executor queue.
     */
    driver::WireResponse submit(const driver::WireRequest &req);

    /** Build a "rejected" response for an undecodable line. */
    driver::WireResponse rejectMalformed(const std::string &id,
                                         const Status &error);

    /** Current robust.serve_* tallies. */
    std::map<std::string, std::uint64_t> counterSnapshot() const;

    /** True once a shutdown request (or stop()) was seen. */
    bool stopRequested() const;

    /**
     * Refuse new work, drain the already-admitted queue, join the
     * executor. Idempotent; the destructor calls it.
     */
    void stop();

  private:
    struct Job;
    class Hooks;

    void executorLoop();

    /** Parse + policy-check @p job (caller holds mu_). */
    void parseJobLocked(Job &job);

    /** One shared lineup pass over @p batch; results keyed by
     * resultMemoKey land in @p memo. */
    void precomputeBatch(
        const std::vector<std::shared_ptr<Job>> &batch,
        std::map<std::string, RunResult> *memo);

    /** Run one request's body, capture stdout, fill the response. */
    void runJob(Job &job,
                const std::map<std::string, RunResult> &memo);

    /** LRU lookup/build of the Prepared for @p source
     * (executor thread only). */
    std::shared_ptr<driver::Prepared>
    preparedFor(const std::string &source,
                const std::function<driver::Prepared()> &build,
                bool *hit);

    /** The client's long-lived context (executor thread only). */
    driver::ExecutionContext &contextFor(const std::string &client);

    const ServeOptions opt_;
    AdmissionController admission_;

    mutable std::mutex mu_;
    std::condition_variable workCv_; ///< Executor wake-up.
    std::condition_variable doneCv_; ///< submit() completion.
    std::deque<std::shared_ptr<Job>> queue_;
    bool stop_ = false;

    // Executor-thread-only state (no lock needed).
    std::list<std::pair<std::string,
                        std::shared_ptr<driver::Prepared>>>
        preparedLru_;
    std::list<std::pair<std::string,
                        std::unique_ptr<driver::ExecutionContext>>>
        contextLru_;

    std::thread executor_;
};

} // namespace serve
} // namespace unistc

#endif // UNISTC_SERVE_SERVE_CORE_HH
