#include "serve/sim_service.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "bbc/bbc_io.hh"
#include "cache/matrix_cache.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "corpus/generators.hh"
#include "driver/execution_context.hh"
#include "obs/metrics_export.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"
#include "runner/report.hh"
#include "sparse/io.hh"
#include "stc/registry.hh"

namespace unistc
{
namespace serve
{

namespace
{

/** Strict integer option parsing: the whole value must be a number. */
int
parseIntOpt(const std::string &flag, const std::string &text)
{
    try {
        std::size_t used = 0;
        const int v = std::stoi(text, &used);
        if (used != text.size())
            throw std::invalid_argument(text);
        return v;
    } catch (const std::exception &) {
        UNISTC_FATAL("--", flag, " needs an integer, got '", text,
                     "'");
    }
}

/**
 * Parse --arch's comma-separated lineup; an unknown name fails with
 * the full list of available architectures.
 */
std::vector<std::string>
parseArchList(const std::string &list)
{
    std::vector<std::string> names;
    std::size_t begin = 0;
    for (;;) {
        const std::size_t comma = list.find(',', begin);
        const std::string name = comma == std::string::npos
            ? list.substr(begin)
            : list.substr(begin, comma - begin);
        if (name.empty())
            UNISTC_FATAL("--arch has an empty entry in '", list, "'");
        names.push_back(name);
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    const std::vector<std::string> all = allModelNames();
    std::string available;
    for (const std::string &n : all)
        available += (available.empty() ? "" : ", ") + n;
    for (const std::string &name : names) {
        if (std::find(all.begin(), all.end(), name) == all.end()) {
            UNISTC_FATAL("unknown architecture '", name,
                         "' in --arch (available: ", available, ")");
        }
    }
    return names;
}

} // namespace

std::vector<driver::CliFlag>
simulateCliFlags()
{
    return {
        {"matrix", true, "PATH", "Matrix Market input"},
        {"gen", true, "SPEC",
         "synthetic input: banded:n,hb,fill | random:n,density | "
         "powerlaw:n,deg,alpha | stencil:grid"},
        {"kernel", true, "NAME",
         "spmv | spmspv | spmm | spgemm (default spmv)"},
        {"model", true, "NAME",
         "an architecture name or 'all' (default all)"},
        {"arch", true, "A,B,C",
         "architecture lineup run as ONE multi-model job over a "
         "shared task stream (docs/ARCHITECTURE.md)"},
        {"precision", true, "P", "fp64 | fp32 (default fp64)"},
        {"dpgs", true, "N", "Uni-STC DPG count (default 8)"},
        {"bcols", true, "N", "SpMM dense-B width (default 64)"},
        {"save-bbc", true, "PATH", "write the encoded BBC file"},
        {"trace", true, "PATH",
         "write a Chrome trace-event JSON (Perfetto)"},
        {"trace-events", true, "N",
         "per-model trace ring capacity (default 65536)"},
        {"stats-json", true, "PATH",
         "write all run statistics as JSON"},
    };
}

Experiment
makeExperiment(driver::ParsedCli &cli)
{
    Experiment ex;
    ex.opts = cli.extra;
    ex.kernelName =
        ex.opts.count("kernel") ? ex.opts["kernel"] : "spmv";
    if (ex.kernelName == "spmv")
        ex.kernel = Kernel::SpMV;
    else if (ex.kernelName == "spmspv")
        ex.kernel = Kernel::SpMSpV;
    else if (ex.kernelName == "spmm")
        ex.kernel = Kernel::SpMM;
    else if (ex.kernelName == "spgemm")
        ex.kernel = Kernel::SpGEMM;
    else
        UNISTC_FATAL("unknown kernel '", ex.kernelName, "'");

    const std::string precision = ex.opts.count("precision")
        ? ex.opts["precision"] : "fp64";
    if (precision == "fp32")
        ex.cfg = MachineConfig::fp32();
    else if (precision == "fp64")
        ex.cfg = MachineConfig::fp64();
    else
        UNISTC_FATAL("unknown --precision '", precision,
                     "' (use fp64|fp32)");
    if (ex.opts.count("dpgs"))
        ex.cfg.numDpgs = parseIntOpt("dpgs", ex.opts["dpgs"]);
    if (ex.opts.count("bcols"))
        ex.bCols = parseIntOpt("bcols", ex.opts["bcols"]);

    ex.multi = ex.opts.count("arch") != 0;
    if (ex.multi && ex.opts.count("model"))
        UNISTC_FATAL("--model and --arch are mutually exclusive");
    const std::string model_name =
        ex.opts.count("model") ? ex.opts["model"] : "all";
    if (ex.multi)
        ex.names = parseArchList(ex.opts["arch"]);
    else if (model_name == "all")
        ex.names = allModelNames();
    else
        ex.names.push_back(model_name);

    if (ex.opts.count("trace")) {
        // A --trace run goes through the executor's plan/replay path
        // even at --jobs 1, so the trace has the same structure for
        // any worker count.
        cli.request.traceJobCapacity = TraceSink::kDefaultCapacity;
        if (ex.opts.count("trace-events")) {
            const int n =
                parseIntOpt("trace-events", ex.opts["trace-events"]);
            if (n <= 0) {
                UNISTC_FATAL("--trace-events needs a positive count, "
                             "got ", n);
            }
            cli.request.traceJobCapacity =
                static_cast<std::size_t>(n);
        }
    }
    // The robust.* stat block appears whenever a robustness knob was
    // set (legacy behaviour) or a job was actually quarantined.
    ex.robustStats =
        cli.request.strict || cli.request.maxJobSeconds > 0;
    return ex;
}

std::string
sourceLabel(const Experiment &ex)
{
    const auto it_m = ex.opts.find("matrix");
    if (it_m != ex.opts.end())
        return it_m->second;
    const auto it_g = ex.opts.find("gen");
    if (it_g != ex.opts.end())
        return it_g->second;
    return "banded:1024,16,0.4";
}

std::string
resultMemoKey(const Experiment &ex, const std::string &model)
{
    return ex.kernelName + '|' + model + '|' + sourceLabel(ex) + '|' +
           toString(ex.cfg.precision) + '|' +
           std::to_string(ex.cfg.numDpgs) + '|' +
           std::to_string(ex.bCols);
}

driver::Prepared
buildPrepared(const Experiment &ex)
{
    const auto opt = [&ex](const std::string &key) {
        const auto it = ex.opts.find(key);
        return it == ex.opts.end() ? std::string() : it->second;
    };
    CsrMatrix a;
    if (ex.opts.count("matrix"))
        a = readMatrixMarketFile(opt("matrix"));
    else if (ex.opts.count("gen"))
        a = generateFromSpec(opt("gen"));
    else
        a = genBanded(1024, 16, 0.4, 1);
    SparseVector x50(a.cols());
    Rng rng(7);
    for (int i = 0; i < a.cols(); ++i) {
        if (rng.nextBool(0.5))
            x50.push(i, 1.0);
    }
    return driver::Prepared(sourceLabel(ex), std::move(a),
                            std::move(x50));
}

const driver::Prepared &
ServeHooks::prepared(const std::string &,
                     const std::function<driver::Prepared()> &build)
{
    owned_.push_back(
        std::make_unique<driver::Prepared>(build()));
    return *owned_.back();
}

bool
ServeHooks::lookupResult(const std::string &, RunResult *)
{
    return false;
}

/**
 * The simulation body a DriverSession drives: with --jobs it runs
 * twice (silenced plan pass, then the reporting replay pass), under
 * --shards once per worker plus the supervisor's serve pass — so any
 * side effect beyond runKernel() calls and stdout must be guarded on
 * ExecutionContext::reportingPass().
 */
int
simulateBody(const Experiment &ex, ServeHooks *hooks)
{
    ServeHooks oneShot;
    if (hooks == nullptr)
        hooks = &oneShot;
    const std::map<std::string, std::string> &opts = ex.opts;
    driver::ExecutionContext &ctx =
        driver::ExecutionContext::active();
    const auto opt = [&opts](const std::string &key) {
        const auto it = opts.find(key);
        return it == opts.end() ? std::string() : it->second;
    };

    const std::string source_label = sourceLabel(ex);
    // The Prepared name keys checkpoint and shard manifest entries,
    // so it is the stable source label (buildPrepared), not a
    // per-run string.
    const driver::Prepared &prep =
        hooks->prepared(source_label,
                        [&ex]() { return buildPrepared(ex); });
    if (ex.kernel == Kernel::SpGEMM && prep.csr.rows() !=
        prep.csr.cols())
        UNISTC_FATAL("spgemm (C = A^2) needs a square matrix");

    std::printf("Matrix: %d x %d, %lld nonzeros\n", prep.csr.rows(),
                prep.csr.cols(),
                static_cast<long long>(prep.csr.nnz()));
    std::printf("BBC: %lld blocks, NnzPB %.2f, %s\n\n",
                static_cast<long long>(prep.bbc.numBlocks()),
                prep.bbc.nnzPerBlock(),
                fmtBytes(prep.bbc.storageBytes(
                             ex.cfg.bytesPerValue())).c_str());
    if (opts.count("save-bbc")) {
        if (ctx.reportingPass())
            saveBbcFile(opt("save-bbc"), prep.bbc);
        std::printf("Saved BBC image to %s\n\n",
                    opt("save-bbc").c_str());
    }

    StatRegistry stats;
    stats.setText("kernel", ex.kernelName, "simulated kernel");
    stats.setText("matrix.source", source_label,
                  "matrix input path or generator spec");
    stats.setCounter("matrix.rows",
                     static_cast<std::uint64_t>(prep.csr.rows()));
    stats.setCounter("matrix.cols",
                     static_cast<std::uint64_t>(prep.csr.cols()));
    stats.setCounter("matrix.nnz",
                     static_cast<std::uint64_t>(prep.csr.nnz()));
    stats.setCounter("matrix.bbcBlocks",
                     static_cast<std::uint64_t>(prep.bbc.numBlocks()));
    registerMachineConfig(stats, ex.cfg);

    std::vector<std::unique_ptr<const StcModel>> owned;
    owned.reserve(ex.names.size());
    for (const std::string &name : ex.names)
        owned.emplace_back(makeStcModel(name, ex.cfg));

    // --arch runs its whole lineup as ONE unit: the engine enumerates
    // the task stream once and fans every task out to all listed
    // models (docs/ARCHITECTURE.md). --model runs one unit per model
    // — unless the serve batcher already computed it in a shared
    // lineup pass, in which case the bit-identical result is spliced
    // in and recorded exactly like runKernel() would have.
    std::vector<RunResult> results(ex.names.size());
    std::vector<driver::RunInfo> infos(ex.names.size());
    PipelineCounters engine_counters;
    bool lineup_ran = false;
    if (ex.multi) {
        std::vector<const StcModel *> models;
        models.reserve(owned.size());
        for (const auto &m : owned)
            models.push_back(m.get());
        results = driver::runKernelLineup(
            ex.kernel, models, prep, EnergyModel(),
            /*record_timing=*/false, &engine_counters, ex.bCols,
            &infos);
        for (const driver::RunInfo &info : infos)
            lineup_ran = lineup_ran || !info.resumed;
    } else {
        for (std::size_t n = 0; n < ex.names.size(); ++n) {
            RunResult memoed;
            if (hooks->lookupResult(resultMemoKey(ex, ex.names[n]),
                                    &memoed)) {
                results[n] = memoed;
                ctx.results().record(ex.kernel, ex.names[n],
                                     prep.name, memoed);
                continue;
            }
            results[n] = driver::runKernel(ex.kernel, *owned[n], prep,
                                           EnergyModel(), ex.bCols,
                                           &infos[n]);
        }
    }

    TextTable t("Kernel '" + ex.kernelName + "' @ " +
                toString(ex.cfg.precision) + ", " +
                std::to_string(ex.cfg.macCount) + " MACs");
    t.setHeader({"STC", "cycles", "MAC util", "energy", "A reads",
                 "C writes"});
    std::uint64_t quarantined = 0;
    std::uint64_t retried = 0;
    std::uint64_t faults = 0;
    for (std::size_t i = 0; i < ex.names.size(); ++i) {
        const RunResult &r = results[i];
        const driver::RunInfo &info = infos[i];
        registerRunResult(stats, r, "models." + ex.names[i] + ".");
        faults += static_cast<std::uint64_t>(
            info.quarantined ? info.attempts : info.attempts - 1);
        retried += static_cast<std::uint64_t>(info.attempts - 1);
        if (info.quarantined) {
            ++quarantined;
            UNISTC_WARN("job for model '", ex.names[i],
                        "' quarantined",
                        info.error.empty() ? "" : ": ", info.error);
            t.addRow({ex.names[i], "QUARANTINED", "-", "-", "-",
                      "-"});
            continue;
        }
        t.addRow({ex.names[i] + (info.resumed ? " (resumed)" : ""),
                  fmtCount(r.cycles), fmtPercent(r.utilisation()),
                  fmtEnergyPj(r.energy.total()),
                  fmtCount(r.traffic.totalA()),
                  fmtCount(r.traffic.writesC)});
    }
    t.print();

    if (ex.multi && lineup_ran) {
        // One shared stream fed the whole lineup; tasks_generated is
        // the single-model enumeration count while models_fanout
        // models consumed it. Timing fields stay out so the stats
        // JSON is byte-identical across --jobs counts and reruns.
        engine_counters.registerStats(stats, "engine.",
                                      /*includeTiming=*/false);
    }
    if (ex.robustStats || quarantined > 0) {
        stats.setCounter("robust.faults_detected", faults,
                         "job attempts that threw or timed out");
        stats.setCounter("robust.jobs_retried", retried,
                         "extra attempts made after a failure");
        stats.setCounter("robust.jobs_quarantined", quarantined,
                         "jobs replaced by a zeroed result");
    }
    if (ctx.shardSummaryShards() > 0) {
        registerShardStats(stats, ctx.shardSummaryShards(),
                           ctx.shardSummary());
    }
    if (MatrixCache::global().enabled())
        MatrixCache::global().registerStats(stats);

    // Reporting artifacts (trace, stats JSON) are written exactly
    // once, by the reporting pass — never by the silenced plan pass
    // or a shard worker.
    if (ctx.reportingPass()) {
        // Sharded runs carry the supervisor's lifecycle events
        // (spawn / kill / retry / quarantine instants) instead of
        // per-job spans — the jobs ran in other processes.
        const TraceSink *trace = ctx.runTrace();
        // Splice the cache's per-key resolution spans (its own trace
        // process) into the model trace before writing it out.
        std::unique_ptr<TraceSink> trace_with_cache;
        if (trace != nullptr && MatrixCache::global().enabled()) {
            const std::size_t extra =
                MatrixCache::global().keyTimings().size();
            if (extra > 0) {
                trace_with_cache = std::make_unique<TraceSink>(
                    trace->size() + extra);
                trace_with_cache->mergeFrom(*trace);
                MatrixCache::global().appendTraceEvents(
                    *trace_with_cache,
                    static_cast<int>(ex.names.size()));
                trace = trace_with_cache.get();
            }
        }
        const bool wrote_trace =
            trace != nullptr && opts.count("trace") != 0;
        if (wrote_trace) {
            trace->writeChromeTraceFile(opt("trace"));
            registerTraceSinkStats(stats, *trace);
            std::printf("\nTrace: %s (%llu events, %llu dropped)\n",
                        opt("trace").c_str(),
                        static_cast<unsigned long long>(
                            trace->size()),
                        static_cast<unsigned long long>(
                            trace->dropped()));
        }
        if (opts.count("stats-json")) {
            writeStatsJsonFile(stats, opt("stats-json"));
            std::printf("%sStats: %s\n", wrote_trace ? "" : "\n",
                        opt("stats-json").c_str());
        }
    }
    return 0;
}

} // namespace serve
} // namespace unistc
