#include "serve/serve_core.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#define UNISTC_SERVE_POSIX 1
#include <unistd.h>
#else
#define UNISTC_SERVE_POSIX 0
#endif

#include "common/logging.hh"
#include "driver/driver_session.hh"
#include "driver/tmpdir.hh"
#include "stc/registry.hh"
#include "warehouse/sink.hh"

namespace unistc
{
namespace serve
{

namespace
{

/**
 * Redirect fd 1 into a fresh temp file for the duration, then hand
 * back everything the body printed. The simulation body addresses
 * stdout directly (printf), so capturing the fd — not a stream
 * rebind — is what makes the captured bytes identical to a one-shot
 * simulate_cli run piped to a file.
 */
class StdoutCapture
{
  public:
    StdoutCapture()
    {
#if UNISTC_SERVE_POSIX
        std::fflush(stdout);
        std::cout.flush();
        int fd = -1;
        Result<std::string> made =
            driver::makeTempFile("unistc-serve-out-", &fd);
        if (!made.ok()) {
            error_ = made.status();
            return;
        }
        path_ = made.value();
        saved_ = ::dup(STDOUT_FILENO);
        ::dup2(fd, STDOUT_FILENO);
        ::close(fd);
        active_ = true;
#else
        error_ = internalError("stdout capture needs a POSIX host");
#endif
    }

    ~StdoutCapture()
    {
        if (active_)
            finish();
    }

    StdoutCapture(const StdoutCapture &) = delete;
    StdoutCapture &operator=(const StdoutCapture &) = delete;

    /** False only when construction failed (stays true after
     * finish(), unlike active_). */
    bool ok() const { return error_.ok(); }
    const Status &error() const { return error_; }

    /** Restore stdout and return the captured bytes. */
    std::string
    finish()
    {
        if (!active_)
            return std::string();
#if UNISTC_SERVE_POSIX
        std::fflush(stdout);
        std::cout.flush();
        ::dup2(saved_, STDOUT_FILENO);
        ::close(saved_);
        active_ = false;
        std::ifstream in(path_, std::ios::binary);
        std::ostringstream body;
        body << in.rdbuf();
        ::unlink(path_.c_str());
        return body.str();
#else
        return std::string();
#endif
    }

  private:
    bool active_ = false;
    int saved_ = -1;
    std::string path_;
    Status error_;
};

/** argv the parser and DriverSession see: the CLI binary's shape. */
std::vector<std::string>
cliArgv(const driver::WireRequest &req)
{
    std::vector<std::string> args;
    args.reserve(req.argv.size() + 1);
    args.emplace_back("simulate_cli");
    args.insert(args.end(), req.argv.begin(), req.argv.end());
    return args;
}

} // namespace

/** One admitted request's slot in the executor queue. */
struct ServeCore::Job
{
    driver::WireRequest req;
    driver::WireResponse resp;
    bool done = false;

    // Filled by parseJobLocked on the executor thread.
    bool parsed = false;
    bool runnable = false;
    bool batchable = false;
    std::string batchKey;
    std::vector<std::string> args; ///< Owns the argv bytes.
    driver::ParsedCli cli;
    Experiment ex;
};

/** The body's seam into the daemon's caches and the batch memo. */
class ServeCore::Hooks : public ServeHooks
{
  public:
    Hooks(ServeCore &core,
          const std::map<std::string, RunResult> &memo)
        : core_(core), memo_(memo)
    {
    }

    const driver::Prepared &
    prepared(const std::string &source,
             const std::function<driver::Prepared()> &build) override
    {
        bool hit = false;
        keep_ = core_.preparedFor(source, build, &hit);
        core_.admission_.notePrepared(hit);
        return *keep_;
    }

    bool
    lookupResult(const std::string &memoKey, RunResult *out) override
    {
        const auto it = memo_.find(memoKey);
        if (it == memo_.end())
            return false;
        *out = it->second;
        return true;
    }

  private:
    ServeCore &core_;
    const std::map<std::string, RunResult> &memo_;
    std::shared_ptr<driver::Prepared> keep_;
};

ServeCore::ServeCore(const ServeOptions &opt)
    : opt_(opt), admission_(opt.limits)
{
    // One warehouse run per request, labelled from the wire — not
    // one per process (docs/SERVING.md).
    warehouse::BenchSink::instance().setManual(true);
    executor_ = std::thread([this] { executorLoop(); });
}

ServeCore::~ServeCore()
{
    stop();
    warehouse::BenchSink::instance().setManual(false);
}

driver::WireResponse
ServeCore::submit(const driver::WireRequest &req)
{
    driver::WireResponse resp;
    resp.id = req.id;
    if (req.op == "ping") {
        resp.status = "ok";
        return resp;
    }
    if (req.op == "stats") {
        resp.status = "ok";
        resp.counters = counterSnapshot();
        return resp;
    }
    if (req.op == "shutdown") {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        workCv_.notify_all();
        resp.status = "ok";
        resp.counters = counterSnapshot();
        return resp;
    }

    const std::string client =
        req.client.empty() ? "anonymous" : req.client;
    std::shared_ptr<Job> job;
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (stop_) {
            resp.status = "rejected";
            resp.error = "daemon is shutting down";
            return resp;
        }
        if (Status adm = admission_.admit(client, queue_.size());
            !adm.ok()) {
            resp.status = "rejected";
            resp.error = adm.message();
            return resp;
        }
        job = std::make_shared<Job>();
        job->req = req;
        job->req.client = client;
        job->resp.id = req.id;
        queue_.push_back(job);
        workCv_.notify_one();
        doneCv_.wait(lock, [&job] { return job->done; });
    }
    admission_.finish(client, job->resp.status == "ok");
    return job->resp;
}

driver::WireResponse
ServeCore::rejectMalformed(const std::string &id, const Status &error)
{
    admission_.noteMalformed();
    driver::WireResponse resp;
    resp.id = id;
    resp.status = "rejected";
    resp.error = error.message();
    return resp;
}

std::map<std::string, std::uint64_t>
ServeCore::counterSnapshot() const
{
    return admission_.counters().asMap();
}

bool
ServeCore::stopRequested() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stop_;
}

void
ServeCore::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    if (executor_.joinable())
        executor_.join();
}

void
ServeCore::executorLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        workCv_.wait(lock,
                     [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stop_)
                return; // Admitted work is always drained first.
            continue;
        }
        std::shared_ptr<Job> head = queue_.front();
        queue_.pop_front();
        parseJobLocked(*head);

        // Gather every queued request that can ride the same lineup:
        // identical matrix, kernel and machine config, plain serial
        // execution. Requests that fail to parse are answered right
        // here instead of waiting their turn.
        std::vector<std::shared_ptr<Job>> batch{head};
        std::vector<std::shared_ptr<Job>> unparsable;
        if (head->runnable && head->batchable) {
            for (auto it = queue_.begin(); it != queue_.end();) {
                parseJobLocked(**it);
                if (!(*it)->runnable) {
                    unparsable.push_back(*it);
                    it = queue_.erase(it);
                } else if ((*it)->batchable &&
                           (*it)->batchKey == head->batchKey) {
                    batch.push_back(*it);
                    it = queue_.erase(it);
                } else {
                    ++it;
                }
            }
        }
        lock.unlock();

        if (head->runnable) {
            std::map<std::string, RunResult> memo;
            if (batch.size() > 1)
                precomputeBatch(batch, &memo);
            for (const std::shared_ptr<Job> &job : batch)
                runJob(*job, memo);
        }

        lock.lock();
        for (const std::shared_ptr<Job> &job : batch)
            job->done = true;
        for (const std::shared_ptr<Job> &job : unparsable)
            job->done = true;
        doneCv_.notify_all();
    }
}

void
ServeCore::parseJobLocked(Job &job)
{
    if (job.parsed)
        return;
    job.parsed = true;
    job.args = cliArgv(job.req);
    std::vector<char *> argv;
    argv.reserve(job.args.size());
    for (std::string &arg : job.args)
        argv.push_back(arg.data());
    const int argc = static_cast<int>(argv.size());

    Result<driver::ParsedCli> parsed =
        driver::parseSweepCli(argc, argv.data(), simulateCliFlags());
    if (!parsed.ok()) {
        admission_.noteMalformed();
        job.resp.status = "error";
        job.resp.exitCode = 1;
        job.resp.error = parsed.status().message();
        return;
    }
    job.cli = std::move(parsed).value();

    // Serve policy: no fork/exec (--shards re-execs argv[0]), no
    // server-side artifact writes, no process-global reconfiguration
    // on behalf of one client.
    std::string refused;
    if (job.cli.helpRequested || job.cli.versionRequested)
        refused = "--help/--version";
    else if (job.cli.request.shards > 1 || job.cli.request.shard >= 0)
        refused = "--shards/--shard";
    else if (!job.cli.request.resumePath.empty())
        refused = "--resume";
    else if (job.cli.request.smoke)
        refused = "--smoke";
    else if (job.cli.request.cacheFlagged)
        refused = "--cache-dir/--cache";
    else if (job.cli.extra.count("save-bbc"))
        refused = "--save-bbc";
    else if (job.cli.extra.count("trace") ||
             job.cli.extra.count("trace-events"))
        refused = "--trace";
    else if (job.cli.extra.count("stats-json"))
        refused = "--stats-json";
    if (!refused.empty()) {
        admission_.noteUnsupported();
        job.resp.status = "error";
        job.resp.exitCode = 1;
        job.resp.error = refused +
                         " is not supported over the serve wire "
                         "(run simulate_cli directly)";
        return;
    }

    try {
        ScopedFatalThrow guard;
        job.ex = makeExperiment(job.cli);
    } catch (const UnistcError &e) {
        admission_.noteMalformed();
        job.resp.status = "error";
        job.resp.exitCode = 1;
        job.resp.error = e.status().message();
        return;
    }
    job.runnable = true;
    // --arch lineups already share one task stream; --jobs and
    // robustness knobs change execution policy per request. Only
    // plain serial single-model-loop requests batch.
    job.batchable = !job.ex.multi && job.cli.request.jobs == 1 &&
                    job.cli.request.traceJobCapacity == 0 &&
                    !job.cli.request.strict &&
                    job.cli.request.maxJobSeconds == 0.0;
    job.batchKey = job.ex.kernelName + '|' + sourceLabel(job.ex) +
                   '|' + toString(job.ex.cfg.precision) + '|' +
                   std::to_string(job.ex.cfg.numDpgs) + '|' +
                   std::to_string(job.ex.bCols);
}

void
ServeCore::precomputeBatch(
    const std::vector<std::shared_ptr<Job>> &batch,
    std::map<std::string, RunResult> *memo)
{
    const Job &head = *batch.front();
    // Union of the batch's models, first-appearance order.
    std::vector<std::string> names;
    for (const std::shared_ptr<Job> &job : batch) {
        for (const std::string &name : job->ex.names) {
            if (std::find(names.begin(), names.end(), name) ==
                names.end())
                names.push_back(name);
        }
    }
    try {
        ScopedFatalThrow guard;
        bool hit = false;
        std::shared_ptr<driver::Prepared> prep = preparedFor(
            sourceLabel(head.ex),
            [&head] { return buildPrepared(head.ex); }, &hit);
        admission_.notePrepared(hit);

        std::vector<StcModelPtr> owned;
        std::vector<const StcModel *> models;
        owned.reserve(names.size());
        models.reserve(names.size());
        for (const std::string &name : names) {
            owned.push_back(makeStcModel(name, head.ex.cfg));
            models.push_back(owned.back().get());
        }

        // A scratch context keeps the precompute's ResultLog entries
        // out of every client's log; the warehouse sink has no open
        // run here, so nothing is mirrored. The engine guarantees
        // each lineup result is bit-identical to a one-model
        // runKernel() call — that is what lets the body splice these
        // without changing one output byte.
        driver::ExecutionContext scratch;
        driver::ExecutionContext *prev =
            driver::ExecutionContext::makeCurrent(&scratch);
        std::vector<RunResult> results;
        try {
            results = driver::runKernelLineup(
                head.ex.kernel, models, *prep, EnergyModel(),
                /*record_timing=*/false, nullptr, head.ex.bCols);
        } catch (...) {
            driver::ExecutionContext::makeCurrent(prev);
            throw;
        }
        driver::ExecutionContext::makeCurrent(prev);

        for (std::size_t i = 0; i < names.size(); ++i)
            (*memo)[resultMemoKey(head.ex, names[i])] = results[i];
        admission_.noteBatch(batch.size());
    } catch (const std::exception &e) {
        // A failing precompute (unreadable matrix, model error) must
        // not take down requests that would fail with their own
        // message anyway: fall back to solo execution.
        UNISTC_WARN("serve: batch precompute failed (", e.what(),
                    "); running ", batch.size(),
                    " request(s) individually");
        memo->clear();
    }
}

void
ServeCore::runJob(Job &job,
                  const std::map<std::string, RunResult> &memo)
{
    // Per-request warehouse run: bench "unistc_serve", label from the
    // wire, argv recorded as received (docs/WAREHOUSE.md).
    std::vector<std::string> argvRec;
    argvRec.reserve(job.req.argv.size() + 1);
    argvRec.emplace_back("unistc_serve");
    argvRec.insert(argvRec.end(), job.req.argv.begin(),
                   job.req.argv.end());
    warehouse::BenchSink::instance().beginManualRun(
        "unistc_serve", job.req.label, argvRec);

    driver::ExecutionContext &ctx = contextFor(job.req.client);
    const LogLevel savedLevel = logLevel();

    std::vector<char *> argv;
    argv.reserve(job.args.size());
    for (std::string &arg : job.args)
        argv.push_back(arg.data());
    const int argc = static_cast<int>(argv.size());

    Hooks hooks(*this, memo);
    StdoutCapture capture;
    int rc = 0;
    std::string fatalMessage;
    bool fatal = false;
    if (capture.ok()) {
        ScopedFatalThrow guard;
        try {
            driver::DriverSession session(ctx);
            Experiment &ex = job.ex;
            rc = session.run(job.cli.request, argc, argv.data(),
                             [&ex, &hooks](int, char **) {
                                 return simulateBody(ex, &hooks);
                             });
        } catch (const UnistcError &e) {
            fatal = true;
            fatalMessage = e.status().message();
        } catch (const std::exception &e) {
            fatal = true;
            fatalMessage = e.what();
        }
    }
    job.resp.output = capture.finish();
    setLogLevel(savedLevel);

    if (!capture.ok()) {
        job.resp.status = "error";
        job.resp.exitCode = 1;
        job.resp.error = capture.error().message();
    } else if (fatal) {
        job.resp.status = "error";
        job.resp.exitCode = 1;
        job.resp.error = fatalMessage;
    } else {
        job.resp.status = rc == 0 ? "ok" : "error";
        job.resp.exitCode = rc;
        if (rc != 0)
            job.resp.error =
                "body exited " + std::to_string(rc);
    }
    warehouse::BenchSink::instance().finishManualRun(
        counterSnapshot());
}

std::shared_ptr<driver::Prepared>
ServeCore::preparedFor(const std::string &source,
                       const std::function<driver::Prepared()> &build,
                       bool *hit)
{
    for (auto it = preparedLru_.begin(); it != preparedLru_.end();
         ++it) {
        if (it->first == source) {
            preparedLru_.splice(preparedLru_.begin(), preparedLru_,
                                it);
            *hit = true;
            return preparedLru_.front().second;
        }
    }
    *hit = false;
    auto prep = std::make_shared<driver::Prepared>(build());
    preparedLru_.emplace_front(source, prep);
    while (preparedLru_.size() > opt_.preparedCacheCap)
        preparedLru_.pop_back();
    return prep;
}

driver::ExecutionContext &
ServeCore::contextFor(const std::string &client)
{
    for (auto it = contextLru_.begin(); it != contextLru_.end();
         ++it) {
        if (it->first == client) {
            contextLru_.splice(contextLru_.begin(), contextLru_, it);
            return *contextLru_.front().second;
        }
    }
    contextLru_.emplace_front(
        client, std::make_unique<driver::ExecutionContext>());
    // The executor runs one request at a time, so every context
    // beyond the head is idle and safe to evict.
    while (contextLru_.size() > opt_.contextCacheCap)
        contextLru_.pop_back();
    return *contextLru_.front().second;
}

} // namespace serve
} // namespace unistc
