#include "serve/admission.hh"

namespace unistc
{
namespace serve
{

std::map<std::string, std::uint64_t>
ServeCounters::asMap() const
{
    return {
        {"robust.serve_accepted", accepted},
        {"robust.serve_completed", completed},
        {"robust.serve_failed", failed},
        {"robust.serve_rejected_queue_full", rejectedQueueFull},
        {"robust.serve_rejected_quota", rejectedQuota},
        {"robust.serve_rejected_malformed", rejectedMalformed},
        {"robust.serve_rejected_unsupported", rejectedUnsupported},
        {"robust.serve_batches", batches},
        {"robust.serve_batched_requests", batchedRequests},
        {"robust.serve_prepared_hits", preparedHits},
        {"robust.serve_prepared_misses", preparedMisses},
    };
}

Status
AdmissionController::admit(const std::string &client,
                           std::size_t queueDepth)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (queueDepth >= limits_.maxQueue) {
        ++counters_.rejectedQueueFull;
        return failedPrecondition(
            "queue full (" + std::to_string(limits_.maxQueue) +
            " waiting); retry later");
    }
    std::size_t &inflight = inflight_[client];
    if (inflight >= limits_.maxInflightPerClient) {
        ++counters_.rejectedQuota;
        return failedPrecondition(
            "client '" + client + "' already has " +
            std::to_string(inflight) +
            " request(s) in flight (quota " +
            std::to_string(limits_.maxInflightPerClient) + ")");
    }
    ++inflight;
    ++counters_.accepted;
    return Status::okStatus();
}

void
AdmissionController::finish(const std::string &client, bool ok)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(client);
    if (it != inflight_.end()) {
        if (--it->second == 0)
            inflight_.erase(it);
    }
    if (ok)
        ++counters_.completed;
    else
        ++counters_.failed;
}

void
AdmissionController::noteMalformed()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rejectedMalformed;
}

void
AdmissionController::noteUnsupported()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rejectedUnsupported;
}

void
AdmissionController::noteBatch(std::size_t requests)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.batches;
    counters_.batchedRequests +=
        static_cast<std::uint64_t>(requests);
}

void
AdmissionController::notePrepared(bool hit)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (hit)
        ++counters_.preparedHits;
    else
        ++counters_.preparedMisses;
}

ServeCounters
AdmissionController::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

} // namespace serve
} // namespace unistc
