/**
 * @file
 * The simulation service body shared by examples/simulate_cli.cc and
 * the unistc_serve daemon (docs/SERVING.md): one experiment parser
 * and one body, so a daemon response is byte-identical to a one-shot
 * simulate_cli run of the same request by construction — both paths
 * execute exactly this code.
 *
 * ServeHooks is the daemon's seam: a hook can hand the body an
 * already-prepared matrix (kept hot across requests) and splice in
 * results precomputed by a shared KernelPipeline lineup pass over a
 * batch of compatible requests. The engine guarantees lineup results
 * are bit-identical to one-model runs (docs/ARCHITECTURE.md), so the
 * splice cannot change a single output byte.
 */

#ifndef UNISTC_SERVE_SIM_SERVICE_HH
#define UNISTC_SERVE_SIM_SERVICE_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "driver/kernel_run.hh"
#include "driver/sweep_request.hh"
#include "sim/config.hh"

namespace unistc
{
namespace serve
{

/** Everything the simulation body needs, resolved before the run. */
struct Experiment
{
    std::map<std::string, std::string> opts; ///< Front-end extras.
    Kernel kernel = Kernel::SpMV;
    std::string kernelName;
    std::vector<std::string> names; ///< Models (lineup order).
    bool multi = false;             ///< --arch: one lineup job.
    MachineConfig cfg = MachineConfig::fp64();
    int bCols = 64;
    bool robustStats = false; ///< --strict / --max-job-seconds set.
};

/** The simulate front-end's flags, for the driver parser. */
std::vector<driver::CliFlag> simulateCliFlags();

/**
 * Resolve and validate every front-end flag of @p cli into an
 * Experiment, adjusting cli.request (trace ring capacity, robust
 * stat policy) on the way. UNISTC_FATALs on invalid input — exits
 * under FatalBehavior::Exit (CLI), throws UnistcError under Throw
 * (the daemon wraps requests in ScopedFatalThrow).
 */
Experiment makeExperiment(driver::ParsedCli &cli);

/**
 * The matrix source of @p ex: --matrix path, --gen spec, or the
 * default generator spec. Stable across processes — it keys
 * checkpoints, shard manifests, the daemon's Prepared cache and the
 * batch result memo.
 */
std::string sourceLabel(const Experiment &ex);

/** Key of one (kernel, model, matrix, config) result in the memo. */
std::string resultMemoKey(const Experiment &ex,
                          const std::string &model);

/**
 * Read or generate the experiment's matrix and build its Prepared
 * image (BBC + the 50%-sparse SpMSpV operand). The single
 * preparation path: the body's default build and the daemon's batch
 * precompute both call it, so a cached Prepared is the one a
 * one-shot run would have built.
 */
driver::Prepared buildPrepared(const Experiment &ex);

/** The daemon's seam into the body; every default is "do nothing". */
class ServeHooks
{
  public:
    virtual ~ServeHooks() = default;

    /**
     * The Prepared matrix for @p source, built via @p build on a
     * miss. The default builds fresh every call (one-shot CLI).
     * Returned references must stay valid for the body's lifetime.
     */
    virtual const driver::Prepared &
    prepared(const std::string &source,
             const std::function<driver::Prepared()> &build);

    /**
     * Splice a batch-precomputed result for @p memoKey, true on a
     * hit. Hit results were produced by a shared lineup pass and are
     * bit-identical to what runKernel() would compute.
     */
    virtual bool lookupResult(const std::string &memoKey,
                              RunResult *out);

  private:
    // Storage for the default prepared(): the one-shot body needs
    // the built matrix to outlive the call.
    std::vector<std::unique_ptr<driver::Prepared>> owned_;
};

/**
 * Run one experiment (the pre-driver main body of simulate_cli).
 * Must run under a DriverSession; prints the result table to stdout.
 */
int simulateBody(const Experiment &ex, ServeHooks *hooks = nullptr);

} // namespace serve
} // namespace unistc

#endif // UNISTC_SERVE_SIM_SERVICE_HH
