/**
 * @file
 * Admission control for the unistc_serve daemon (docs/SERVING.md):
 * a bounded request queue plus per-client in-flight quotas, so one
 * chatty client cannot wedge the executor for everyone else. Over
 * either limit the daemon sheds load — an immediate "rejected"
 * response — instead of queueing without bound; every decision is
 * tallied into robust.serve_* counters that the stats op, the
 * shutdown response and each request's warehouse commit record
 * expose.
 */

#ifndef UNISTC_SERVE_ADMISSION_HH
#define UNISTC_SERVE_ADMISSION_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "robust/status.hh"

namespace unistc
{
namespace serve
{

/** Load-shedding thresholds. */
struct ServeLimits
{
    /** Admitted-but-not-started requests the daemon will hold. */
    std::size_t maxQueue = 64;

    /** Queued + running requests per client identity. */
    std::size_t maxInflightPerClient = 4;
};

/** The daemon's robust.serve_* tallies (monotonic). */
struct ServeCounters
{
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t rejectedQueueFull = 0;
    std::uint64_t rejectedQuota = 0;
    std::uint64_t rejectedMalformed = 0;
    std::uint64_t rejectedUnsupported = 0;
    std::uint64_t batches = 0;
    std::uint64_t batchedRequests = 0;
    std::uint64_t preparedHits = 0;
    std::uint64_t preparedMisses = 0;

    /** The counters under their wire/warehouse names. */
    std::map<std::string, std::uint64_t> asMap() const;
};

/**
 * Thread-safe admission decisions + counter bookkeeping. The queue
 * itself lives in ServeCore; this class owns the policy and the
 * per-client in-flight ledger.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(const ServeLimits &limits)
        : limits_(limits)
    {
    }

    AdmissionController(const AdmissionController &) = delete;
    AdmissionController &operator=(const AdmissionController &) =
        delete;

    /**
     * Decide whether @p client may enqueue another request given
     * @p queueDepth requests already waiting. Ok: the request is
     * admitted and counted in-flight (pair every Ok with exactly one
     * finish()). Error: a FailedPrecondition describing the shed
     * reason, already tallied.
     */
    Status admit(const std::string &client, std::size_t queueDepth);

    /** Retire an admitted request; @p ok picks completed/failed. */
    void finish(const std::string &client, bool ok);

    /** Tally a request that never parsed. */
    void noteMalformed();

    /** Tally a request using features the daemon refuses. */
    void noteUnsupported();

    /** Tally one shared lineup pass covering @p requests requests. */
    void noteBatch(std::size_t requests);

    /** Tally a Prepared-cache lookup. */
    void notePrepared(bool hit);

    ServeCounters counters() const;
    const ServeLimits &limits() const { return limits_; }

  private:
    const ServeLimits limits_;
    mutable std::mutex mu_;
    ServeCounters counters_;
    std::map<std::string, std::size_t> inflight_;
};

} // namespace serve
} // namespace unistc

#endif // UNISTC_SERVE_ADMISSION_HH
