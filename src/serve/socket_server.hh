/**
 * @file
 * The unistc_serve daemon's network front door (docs/SERVING.md):
 * a Unix-domain or loopback-TCP listener speaking the NDJSON wire
 * protocol (driver/wire_codec.hh). Each connection gets a reader
 * thread that decodes request lines, hands them to ServeCore::submit
 * (which blocks for the result) and writes one response line per
 * request — so per-connection requests answer in order while
 * different connections interleave through the admission queue.
 *
 * A connection cap bounds reader threads; connections beyond it are
 * answered with a single "rejected" line and closed. Stopping is
 * cooperative: run() polls a stop predicate (signal handlers set a
 * flag, shutdown requests flip ServeCore), then half-closes every
 * live connection so blocked reads return and threads join.
 */

#ifndef UNISTC_SERVE_SOCKET_SERVER_HH
#define UNISTC_SERVE_SOCKET_SERVER_HH

#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "robust/status.hh"
#include "serve/serve_core.hh"

namespace unistc
{
namespace serve
{

/** Where and how to listen. */
struct SocketServerOptions
{
    /** Unix-domain socket path; wins over tcpPort when set. */
    std::string unixPath;

    /** Loopback TCP port (0 = kernel-assigned, see boundPort()). */
    int tcpPort = 0;

    /** Simultaneous connections served (beyond: reject + close). */
    std::size_t maxConnections = 32;

    /** Polled by run(); return true to stop accepting. */
    std::function<bool()> stopPredicate;
};

/** See the file header. */
class SocketServer
{
  public:
    SocketServer(ServeCore &core, const SocketServerOptions &opt);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Bind + listen. Typed error when the address is unusable. */
    Status start();

    /** Printable bound address ("unix:/run/u.sock", "tcp:127.0.0.1:7411"). */
    std::string address() const;

    /** The TCP port actually bound (tcpPort 0 resolves here). */
    int boundPort() const { return boundPort_; }

    /**
     * Accept and serve until the stop predicate fires or a shutdown
     * request lands. Joins every connection thread before returning.
     */
    void run();

  private:
    void connectionLoop(int fd, std::string peer);
    bool shouldStop() const;

    ServeCore &core_;
    const SocketServerOptions opt_;
    int listenFd_ = -1;
    int boundPort_ = 0;
    std::string address_;

    std::mutex mu_;
    std::set<int> connFds_;
    std::vector<std::thread> threads_;
    std::size_t active_ = 0;
    std::uint64_t connSeq_ = 0;
};

} // namespace serve
} // namespace unistc

#endif // UNISTC_SERVE_SOCKET_SERVER_HH
