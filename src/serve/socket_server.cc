#include "serve/socket_server.hh"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define UNISTC_SOCKET_POSIX 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define UNISTC_SOCKET_POSIX 0
#endif

#include "common/logging.hh"
#include "driver/wire_codec.hh"

namespace unistc
{
namespace serve
{

#if UNISTC_SOCKET_POSIX

namespace
{

/** Write all of @p line plus a newline; false on a dead peer. */
bool
writeLine(int fd, const std::string &line)
{
    std::string out = line;
    out.push_back('\n');
    std::size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t n =
            ::send(fd, out.data() + sent, out.size() - sent,
#ifdef MSG_NOSIGNAL
                   MSG_NOSIGNAL
#else
                   0
#endif
            );
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Read one '\n'-terminated line into @p line (terminator stripped).
 * False on EOF/error with nothing buffered.
 */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    bool
    next(std::string *line)
    {
        line->clear();
        for (;;) {
            const std::size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                *line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (n == 0) {
                // EOF: serve a final unterminated line if present.
                if (buf_.empty())
                    return false;
                line->swap(buf_);
                return true;
            }
            buf_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_;
    std::string buf_;
};

} // namespace

SocketServer::SocketServer(ServeCore &core,
                           const SocketServerOptions &opt)
    : core_(core), opt_(opt)
{
}

SocketServer::~SocketServer()
{
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (!opt_.unixPath.empty())
        ::unlink(opt_.unixPath.c_str());
    for (std::thread &t : threads_) {
        if (t.joinable())
            t.join();
    }
}

Status
SocketServer::start()
{
    if (!opt_.unixPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opt_.unixPath.size() >= sizeof(addr.sun_path)) {
            return invalidArgument("--socket path too long: '" +
                                   opt_.unixPath + "'");
        }
        std::strncpy(addr.sun_path, opt_.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            return ioError(std::string("socket: ") +
                           std::strerror(errno));
        // A stale socket file from a crashed daemon blocks bind().
        ::unlink(opt_.unixPath.c_str());
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            return ioError("bind '" + opt_.unixPath +
                           "': " + std::strerror(errno));
        }
        address_ = "unix:" + opt_.unixPath;
    } else {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(opt_.tcpPort));
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            return ioError(std::string("socket: ") +
                           std::strerror(errno));
        const int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            return ioError("bind 127.0.0.1:" +
                           std::to_string(opt_.tcpPort) + ": " +
                           std::strerror(errno));
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listenFd_,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            boundPort_ = static_cast<int>(ntohs(bound.sin_port));
        address_ = "tcp:127.0.0.1:" + std::to_string(boundPort_);
    }
    if (::listen(listenFd_, 64) != 0)
        return ioError(std::string("listen: ") +
                       std::strerror(errno));
    return Status::okStatus();
}

std::string
SocketServer::address() const
{
    return address_;
}

bool
SocketServer::shouldStop() const
{
    if (core_.stopRequested())
        return true;
    return opt_.stopPredicate && opt_.stopPredicate();
}

void
SocketServer::run()
{
    UNISTC_ASSERT(listenFd_ >= 0, "start() must succeed before run()");
    while (!shouldStop()) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            UNISTC_WARN("serve: poll failed: ",
                        std::strerror(errno));
            break;
        }
        if (ready == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            UNISTC_WARN("serve: accept failed: ",
                        std::strerror(errno));
            continue;
        }
        std::string peer;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (active_ >= opt_.maxConnections) {
                driver::WireResponse full;
                full.status = "rejected";
                full.error =
                    "connection limit (" +
                    std::to_string(opt_.maxConnections) +
                    ") reached; retry later";
                writeLine(fd, driver::encodeResponse(full));
                ::close(fd);
                continue;
            }
            ++active_;
            peer = "conn-" + std::to_string(++connSeq_);
            connFds_.insert(fd);
            threads_.emplace_back(
                [this, fd, peer] { connectionLoop(fd, peer); });
        }
    }
    // Half-close live connections so blocked reads return, then join.
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread &t : threads_) {
        if (t.joinable())
            t.join();
    }
    threads_.clear();
}

void
SocketServer::connectionLoop(int fd, std::string peer)
{
    LineReader reader(fd);
    std::string line;
    while (!shouldStop() && reader.next(&line)) {
        if (line.empty() ||
            line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        Result<driver::WireRequest> decoded =
            driver::decodeRequest(line);
        driver::WireResponse resp;
        bool shuttingDown = false;
        if (!decoded.ok()) {
            resp = core_.rejectMalformed("", decoded.status());
        } else {
            driver::WireRequest req = std::move(decoded).value();
            // The quota bucket defaults to the connection identity
            // when the client did not name itself.
            if (req.client.empty())
                req.client = peer;
            shuttingDown = req.op == "shutdown";
            resp = core_.submit(req);
        }
        if (!writeLine(fd, driver::encodeResponse(resp)))
            break;
        if (shuttingDown)
            break;
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(mu_);
    connFds_.erase(fd);
    --active_;
}

#else // !UNISTC_SOCKET_POSIX

SocketServer::SocketServer(ServeCore &core,
                           const SocketServerOptions &opt)
    : core_(core), opt_(opt)
{
}

SocketServer::~SocketServer() = default;

Status
SocketServer::start()
{
    return internalError("unistc_serve needs a POSIX host (sockets)");
}

std::string
SocketServer::address() const
{
    return "";
}

void
SocketServer::run()
{
}

void
SocketServer::connectionLoop(int, std::string)
{
}

bool
SocketServer::shouldStop() const
{
    return true;
}

#endif // UNISTC_SOCKET_POSIX

} // namespace serve
} // namespace unistc
