#include "robust/validate.hh"

#include <cmath>
#include <cstdint>
#include <sstream>

#include "bbc/bbc_matrix.hh"
#include "common/bitops.hh"
#include "sparse/coo.hh"
#include "sparse/csr.hh"

namespace unistc
{

namespace
{

/** Compose "<label>: <parts...>" into a CorruptData status. */
template <typename... Args>
Status
corrupt(const std::string &label, const char *fallback, Args &&...args)
{
    std::ostringstream os;
    os << (label.empty() ? fallback : label.c_str()) << ": ";
    (os << ... << std::forward<Args>(args));
    return corruptData(os.str());
}

} // namespace

Status
validateCsr(const CsrMatrix &m, const std::string &label)
{
    const char *kWho = "<csr>";
    if (m.rows() < 0 || m.cols() < 0)
        return corrupt(label, kWho, "negative shape ", m.rows(), "x",
                       m.cols());
    const auto &rp = m.rowPtr();
    if (rp.size() != static_cast<std::size_t>(m.rows()) + 1)
        return corrupt(label, kWho, "rowPtr has ", rp.size(),
                       " entries, want rows+1 = ", m.rows() + 1);
    if (rp.front() != 0)
        return corrupt(label, kWho, "rowPtr[0] = ", rp.front(),
                       ", want 0");
    for (int r = 0; r < m.rows(); ++r) {
        if (rp[r + 1] < rp[r]) {
            return corrupt(label, kWho, "rowPtr not monotone at row ",
                           r, " (", rp[r], " -> ", rp[r + 1], ")");
        }
    }
    if (rp.back() != static_cast<std::int64_t>(m.colIdx().size()))
        return corrupt(label, kWho, "rowPtr[rows] = ", rp.back(),
                       " but ", m.colIdx().size(),
                       " column indices stored");
    if (m.colIdx().size() != m.vals().size())
        return corrupt(label, kWho, m.colIdx().size(),
                       " column indices vs ", m.vals().size(),
                       " values");
    for (int r = 0; r < m.rows(); ++r) {
        for (std::int64_t i = rp[r]; i < rp[r + 1]; ++i) {
            const int c = m.colIdx()[i];
            if (c < 0 || c >= m.cols()) {
                return corrupt(label, kWho, "column ", c, " at row ",
                               r, " out of [0, ", m.cols(), ")");
            }
            if (i > rp[r] && m.colIdx()[i - 1] >= c) {
                return corrupt(label, kWho,
                               "columns not strictly ascending in "
                               "row ", r, " (", m.colIdx()[i - 1],
                               " then ", c, ")");
            }
        }
    }
    for (std::size_t i = 0; i < m.vals().size(); ++i) {
        if (!std::isfinite(m.vals()[i])) {
            return corrupt(label, kWho, "non-finite value ",
                           m.vals()[i], " at nnz index ", i);
        }
    }
    return Status();
}

Status
validateCoo(const CooMatrix &m, const std::string &label)
{
    const char *kWho = "<coo>";
    if (m.rows() < 0 || m.cols() < 0)
        return corrupt(label, kWho, "negative shape ", m.rows(), "x",
                       m.cols());
    const auto &es = m.entries();
    for (std::size_t i = 0; i < es.size(); ++i) {
        const CooEntry &e = es[i];
        if (e.row < 0 || e.row >= m.rows() || e.col < 0 ||
            e.col >= m.cols()) {
            return corrupt(label, kWho, "entry ", i, " at (", e.row,
                           ", ", e.col, ") outside ", m.rows(), "x",
                           m.cols());
        }
        if (!std::isfinite(e.val)) {
            return corrupt(label, kWho, "non-finite value ", e.val,
                           " at entry ", i);
        }
    }
    return Status();
}

Status
validateBbc(const BbcMatrix &m, const std::string &label)
{
    const char *kWho = "<bbc>";
    if (m.rows() < 0 || m.cols() < 0)
        return corrupt(label, kWho, "negative shape ", m.rows(), "x",
                       m.cols());
    const auto &rp = m.rowPtr();
    if (rp.size() != static_cast<std::size_t>(m.blockRows()) + 1)
        return corrupt(label, kWho, "block rowPtr has ", rp.size(),
                       " entries, want blockRows+1 = ",
                       m.blockRows() + 1);
    if (rp.front() != 0)
        return corrupt(label, kWho, "block rowPtr[0] = ", rp.front(),
                       ", want 0");
    for (int r = 0; r < m.blockRows(); ++r) {
        if (rp[r + 1] < rp[r]) {
            return corrupt(label, kWho,
                           "block rowPtr not monotone at block row ",
                           r, " (", rp[r], " -> ", rp[r + 1], ")");
        }
    }
    if (rp.back() != m.numBlocks())
        return corrupt(label, kWho, "block rowPtr[blockRows] = ",
                       rp.back(), " but ", m.numBlocks(),
                       " blocks stored");
    if (m.lv1().size() != static_cast<std::size_t>(m.numBlocks()))
        return corrupt(label, kWho, m.lv1().size(),
                       " Lv1 bitmaps vs ", m.numBlocks(), " blocks");
    if (m.valPtrLv1().size() !=
        static_cast<std::size_t>(m.numBlocks())) {
        return corrupt(label, kWho, m.valPtrLv1().size(),
                       " ValPtr_Lv1 entries vs ", m.numBlocks(),
                       " blocks");
    }
    if (m.lv2().size() != m.valPtrLv2().size())
        return corrupt(label, kWho, m.lv2().size(),
                       " Lv2 bitmaps vs ", m.valPtrLv2().size(),
                       " ValPtr_Lv2 entries");

    // Block columns: in bounds, strictly ascending per block row.
    for (int r = 0; r < m.blockRows(); ++r) {
        for (std::int64_t i = rp[r]; i < rp[r + 1]; ++i) {
            const int c = m.colIdx()[i];
            if (c < 0 || c >= m.blockCols()) {
                return corrupt(label, kWho, "block column ", c,
                               " at block row ", r, " out of [0, ",
                               m.blockCols(), ")");
            }
            if (i > rp[r] && m.colIdx()[i - 1] >= c) {
                return corrupt(label, kWho,
                               "block columns not strictly ascending "
                               "in block row ", r);
            }
        }
    }

    // Bitmap popcounts vs the stored prefix sums and value count.
    std::int64_t tiles = 0;
    std::int64_t values = 0;
    for (std::int64_t blk = 0; blk < m.numBlocks(); ++blk) {
        const std::uint16_t lv1 = m.lv1()[blk];
        if (lv1 == 0)
            return corrupt(label, kWho, "block ", blk,
                           " has an empty Lv1 bitmap");
        if (m.tileBase(blk) != tiles) {
            return corrupt(label, kWho, "tileBase[", blk, "] = ",
                           m.tileBase(blk),
                           " disagrees with Lv1 popcount prefix ",
                           tiles);
        }
        if (m.valPtrLv1()[blk] != values) {
            return corrupt(label, kWho, "ValPtr_Lv1[", blk, "] = ",
                           m.valPtrLv1()[blk],
                           " disagrees with popcount prefix ",
                           values);
        }
        const int tile_count = popcount16(lv1);
        if (tiles + tile_count >
            static_cast<std::int64_t>(m.lv2().size())) {
            return corrupt(label, kWho, "block ", blk, " claims ",
                           tile_count, " tiles but only ",
                           m.lv2().size() - tiles,
                           " Lv2 bitmaps remain");
        }
        int block_vals = 0;
        for (int t = 0; t < tile_count; ++t) {
            const std::uint16_t lv2 = m.lv2()[tiles];
            if (lv2 == 0)
                return corrupt(label, kWho, "tile ", tiles,
                               " (block ", blk,
                               ") has an empty Lv2 bitmap");
            if (m.valPtrLv2()[tiles] != block_vals) {
                return corrupt(label, kWho, "ValPtr_Lv2[", tiles,
                               "] = ",
                               static_cast<int>(m.valPtrLv2()[tiles]),
                               " disagrees with in-block popcount "
                               "prefix ", block_vals);
            }
            block_vals += popcount16(lv2);
            ++tiles;
        }
        values += block_vals;
    }
    if (tiles != static_cast<std::int64_t>(m.lv2().size()))
        return corrupt(label, kWho, "Lv1 popcounts cover ", tiles,
                       " tiles but ", m.lv2().size(),
                       " Lv2 bitmaps stored");
    if (values != m.nnz())
        return corrupt(label, kWho, "bitmap popcounts say ", values,
                       " values but ", m.nnz(), " stored");
    for (std::int64_t i = 0; i < m.nnz(); ++i) {
        if (!std::isfinite(m.vals()[i])) {
            return corrupt(label, kWho, "non-finite value ",
                           m.vals()[i], " at value index ", i);
        }
    }
    return Status();
}

} // namespace unistc
