#include "robust/status.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace unistc
{

const char *
toString(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "Ok";
      case ErrorCode::InvalidArgument:
        return "InvalidArgument";
      case ErrorCode::IoError:
        return "IoError";
      case ErrorCode::ParseError:
        return "ParseError";
      case ErrorCode::CorruptData:
        return "CorruptData";
      case ErrorCode::FailedPrecondition:
        return "FailedPrecondition";
      case ErrorCode::Timeout:
        return "Timeout";
      case ErrorCode::Cancelled:
        return "Cancelled";
      case ErrorCode::Internal:
        return "Internal";
    }
    return "?";
}

std::string
Status::toString() const
{
    if (ok())
        return "Ok";
    return std::string(unistc::toString(code_)) + ": " + message_;
}

Status
invalidArgument(std::string msg)
{
    return Status(ErrorCode::InvalidArgument, std::move(msg));
}

Status
ioError(std::string msg)
{
    return Status(ErrorCode::IoError, std::move(msg));
}

Status
parseError(std::string msg)
{
    return Status(ErrorCode::ParseError, std::move(msg));
}

Status
corruptData(std::string msg)
{
    return Status(ErrorCode::CorruptData, std::move(msg));
}

Status
failedPrecondition(std::string msg)
{
    return Status(ErrorCode::FailedPrecondition, std::move(msg));
}

Status
timeoutError(std::string msg)
{
    return Status(ErrorCode::Timeout, std::move(msg));
}

Status
internalError(std::string msg)
{
    return Status(ErrorCode::Internal, std::move(msg));
}

void
raise(const Status &status)
{
    UNISTC_ASSERT(!status.ok(), "raise() on an Ok status");
    if (fatalBehavior() == FatalBehavior::Throw)
        throw UnistcError(status);
    // Exit mode: print regardless of the log-level filter — hiding
    // the reason for a termination would help nobody.
    std::fprintf(stderr, "fatal: %s\n", status.toString().c_str());
    std::exit(1);
}

} // namespace unistc
