#include "robust/checkpoint.hh"

#include <bit>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#define UNISTC_CHECKPOINT_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/logging.hh"

namespace unistc
{

namespace
{

/** Line magic: bump when the field list changes. */
constexpr const char *kLineTag = "unistc-ckpt-v1";

} // namespace

/** %-escape spaces, percent signs and control characters. */
std::string
escapeCheckpointToken(const std::string &s)
{
    static const char *hex = "0123456789ABCDEF";
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        if (c == '%' || c == ' ' || std::iscntrl(c)) {
            out.push_back('%');
            out.push_back(hex[c >> 4]);
            out.push_back(hex[c & 0xF]);
        } else {
            out.push_back(static_cast<char>(c));
        }
    }
    return out;
}

namespace
{

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

} // namespace

bool
unescapeCheckpointToken(const std::string &s, std::string &out)
{
    out.clear();
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%') {
            out.push_back(s[i]);
            continue;
        }
        if (i + 2 >= s.size())
            return false;
        const int hi = hexDigit(s[i + 1]);
        const int lo = hexDigit(s[i + 2]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
    }
    return true;
}

std::string
checkpointHex(std::uint64_t v)
{
    std::ostringstream os;
    os << std::hex << v;
    return os.str();
}

std::string
checkpointDoubleHex(double d)
{
    return checkpointHex(std::bit_cast<std::uint64_t>(d));
}

bool
parseCheckpointHex(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty() || tok.size() > 16)
        return false;
    std::uint64_t v = 0;
    for (char c : tok) {
        const int d = hexDigit(c);
        if (d < 0)
            return false;
        v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    out = v;
    return true;
}

bool
parseCheckpointDoubleHex(const std::string &tok, double &out)
{
    std::uint64_t bits = 0;
    if (!parseCheckpointHex(tok, bits))
        return false;
    out = std::bit_cast<double>(bits);
    return true;
}

namespace
{

// Short local aliases keep the codec below readable.
inline std::string u64Hex(std::uint64_t v) { return checkpointHex(v); }
inline std::string doubleHex(double d) { return checkpointDoubleHex(d); }
inline bool parseU64Hex(const std::string &t, std::uint64_t &o)
{
    return parseCheckpointHex(t, o);
}
inline bool parseDoubleHex(const std::string &t, double &o)
{
    return parseCheckpointDoubleHex(t, o);
}

/** Histogram as n:lo-bits:hi-bits:c0,c1,... ("0" when default). */
std::string
encodeHistogram(const Histogram &h)
{
    const int n = h.numBuckets();
    if (n == 0)
        return "0";
    std::ostringstream os;
    os << n << ":" << doubleHex(h.bucketLo(0)) << ":"
       << doubleHex(h.bucketHi(n - 1)) << ":";
    for (int b = 0; b < n; ++b) {
        if (b > 0)
            os << ",";
        os << u64Hex(h.bucketCount(b));
    }
    return os.str();
}

bool
decodeHistogram(const std::string &tok, Histogram &out)
{
    if (tok == "0") {
        out = Histogram();
        return true;
    }
    std::istringstream is(tok);
    std::string n_tok, lo_tok, hi_tok, counts_tok;
    if (!std::getline(is, n_tok, ':') ||
        !std::getline(is, lo_tok, ':') ||
        !std::getline(is, hi_tok, ':') ||
        !std::getline(is, counts_tok))
        return false;
    long n = 0;
    {
        char *end = nullptr;
        n = std::strtol(n_tok.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || n <= 0 || n > 1 << 20)
            return false;
    }
    double lo = 0, hi = 0;
    if (!parseDoubleHex(lo_tok, lo) || !parseDoubleHex(hi_tok, hi) ||
        !(hi > lo))
        return false;
    Histogram h(static_cast<int>(n), lo, hi);
    std::istringstream cs(counts_tok);
    std::string c_tok;
    const double width = (hi - lo) / static_cast<double>(n);
    for (long b = 0; b < n; ++b) {
        if (!std::getline(cs, c_tok, ','))
            return false;
        std::uint64_t count = 0;
        if (!parseU64Hex(c_tok, count))
            return false;
        if (count > 0) {
            // Re-add at the bucket midpoint: lands back in bucket b.
            h.add(lo + width * (static_cast<double>(b) + 0.5), count);
        }
    }
    if (std::getline(cs, c_tok, ','))
        return false; // more counts than buckets
    out = h;
    return true;
}

} // namespace

std::string
checkpointKey(const std::string &kernel, const std::string &model,
              const std::string &matrix)
{
    return escapeCheckpointToken(kernel) + " " +
           escapeCheckpointToken(model) + " " +
           escapeCheckpointToken(matrix);
}

std::string
CheckpointEntry::key() const
{
    return checkpointKey(kernel, model, matrix);
}

std::string
encodeCheckpointEntry(const CheckpointEntry &e)
{
    const RunResult &r = e.result;
    std::ostringstream os;
    os << kLineTag << " " << e.key();
    for (std::uint64_t v :
         {r.cycles, r.products, r.macSlots, r.tasksT1, r.tasksT3,
          r.stallCycles, r.dpgActiveAccum, r.cNetScaleAccum,
          r.traffic.readsA, r.traffic.wastedA, r.traffic.readsB,
          r.traffic.wastedB, r.traffic.writesC})
        os << " " << u64Hex(v);
    for (double v : {r.energy.fetchA, r.energy.fetchB,
                     r.energy.writeC, r.energy.schedule,
                     r.energy.compute})
        os << " " << doubleHex(v);
    os << " " << encodeHistogram(r.utilHist);
    return os.str();
}

Result<CheckpointEntry>
decodeCheckpointEntry(const std::string &line)
{
    std::istringstream is(line);
    std::vector<std::string> toks;
    std::string tok;
    while (is >> tok)
        toks.push_back(tok);
    if (toks.size() != kCheckpointEntryTokens || toks[0] != kLineTag) {
        return corruptData("checkpoint line is not a " +
                           std::string(kLineTag) + " record");
    }
    CheckpointEntry e;
    if (!unescapeCheckpointToken(toks[1], e.kernel) ||
        !unescapeCheckpointToken(toks[2], e.model) ||
        !unescapeCheckpointToken(toks[3], e.matrix))
        return corruptData("checkpoint line has a bad name escape");
    RunResult &r = e.result;
    std::uint64_t *counters[] = {
        &r.cycles,          &r.products,       &r.macSlots,
        &r.tasksT1,         &r.tasksT3,        &r.stallCycles,
        &r.dpgActiveAccum,  &r.cNetScaleAccum, &r.traffic.readsA,
        &r.traffic.wastedA, &r.traffic.readsB, &r.traffic.wastedB,
        &r.traffic.writesC};
    for (std::size_t i = 0; i < 13; ++i) {
        if (!parseU64Hex(toks[4 + i], *counters[i]))
            return corruptData("checkpoint line has a bad counter");
    }
    double *energies[] = {&r.energy.fetchA, &r.energy.fetchB,
                          &r.energy.writeC, &r.energy.schedule,
                          &r.energy.compute};
    for (std::size_t i = 0; i < 5; ++i) {
        if (!parseDoubleHex(toks[17 + i], *energies[i]))
            return corruptData("checkpoint line has a bad energy");
    }
    if (!decodeHistogram(toks[22], r.utilHist))
        return corruptData("checkpoint line has a bad histogram");
    return e;
}

DurableAppendFile::~DurableAppendFile()
{
    close();
}

void
DurableAppendFile::close()
{
#ifdef UNISTC_CHECKPOINT_POSIX
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
#endif
}

Status
DurableAppendFile::open(const std::string &path)
{
#ifdef UNISTC_CHECKPOINT_POSIX
    close();
    // O_APPEND makes each write(2) an atomic seek-to-end + write, so
    // two shard processes appending to one log never interleave.
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
    if (fd < 0) {
        return ioError("cannot open '" + path + "' for appending");
    }
    fd_ = fd;
    path_ = path;
    return Status();
#else
    (void)path;
    return failedPrecondition("DurableAppendFile needs a POSIX host");
#endif
}

Status
DurableAppendFile::appendLine(const std::string &line)
{
#ifdef UNISTC_CHECKPOINT_POSIX
    if (fd_ < 0)
        return failedPrecondition("append file is not open");
    std::string rec = line;
    rec.push_back('\n');
    // One write() for the whole record: a kill mid-call tears only
    // this line, never a previously synced one.
    std::size_t off = 0;
    while (off < rec.size()) {
        const ssize_t n =
            ::write(fd_, rec.data() + off, rec.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ioError("write to '" + path_ + "' failed");
        }
        off += static_cast<std::size_t>(n);
    }
#if defined(__APPLE__)
    if (::fsync(fd_) != 0)
#else
    if (::fdatasync(fd_) != 0)
#endif
        return ioError("sync of '" + path_ + "' failed");
    return Status();
#else
    (void)line;
    return failedPrecondition("DurableAppendFile needs a POSIX host");
#endif
}

Status
CheckpointWriter::open(const std::string &path)
{
    Status st = file_.open(path);
    if (!st.ok()) {
        return ioError("cannot open checkpoint '" + path +
                       "' for appending: " + st.message());
    }
    return Status();
}

Status
CheckpointWriter::append(const CheckpointEntry &e)
{
    if (!file_.isOpen())
        return failedPrecondition("checkpoint writer is not open");
    return file_.appendLine(encodeCheckpointEntry(e));
}

Status
atomicWriteFile(const std::string &path, const std::string &bytes)
{
#ifdef UNISTC_CHECKPOINT_POSIX
    // Same-directory temp file so the final rename cannot cross a
    // filesystem boundary (MatrixCache discipline).
    const std::string tmp = path + ".tmp." +
        std::to_string(static_cast<long>(::getpid()));
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return ioError("cannot create temp file '" + tmp + "'");
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            return ioError("write to temp file '" + tmp + "' failed");
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return ioError("sync of temp file '" + tmp + "' failed");
    }
    ::close(fd);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return ioError("atomic rename over '" + path + "' failed");
    }
    return Status();
#else
    (void)path;
    (void)bytes;
    return failedPrecondition("atomicWriteFile needs a POSIX host");
#endif
}

Status
rewriteCheckpointAtomic(const std::string &path,
                        const std::vector<CheckpointEntry> &entries)
{
    std::string blob;
    for (const CheckpointEntry &e : entries) {
        blob += encodeCheckpointEntry(e);
        blob.push_back('\n');
    }
    return atomicWriteFile(path, blob);
}

Result<CheckpointLog>
CheckpointLog::load(const std::string &path)
{
    CheckpointLog log;
    std::ifstream in(path);
    if (!in) {
        // A missing checkpoint is an empty one: fresh runs and
        // resumed runs share a single code path.
        return log;
    }
    std::string line;
    long line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        Result<CheckpointEntry> entry = decodeCheckpointEntry(line);
        if (!entry.ok()) {
            // A damaged line ends the valid prefix — most often the
            // in-flight entry of an interrupted run.
            UNISTC_WARN("checkpoint '", path, "' line ", line_no,
                        " is corrupt (", entry.status().message(),
                        "); keeping the ", log.entries_.size(),
                        " entries before it");
            log.truncated_ = true;
            break;
        }
        CheckpointEntry e = std::move(entry).value();
        log.byKey_[e.key()].push_back(log.entries_.size());
        log.entries_.push_back(std::move(e));
    }
    return log;
}

const CheckpointEntry *
CheckpointLog::find(const std::string &kernel,
                    const std::string &model,
                    const std::string &matrix,
                    std::size_t occurrence) const
{
    const auto it = byKey_.find(checkpointKey(kernel, model, matrix));
    if (it == byKey_.end() || occurrence >= it->second.size())
        return nullptr;
    return &entries_[it->second[occurrence]];
}

} // namespace unistc
