#include "robust/checkpoint.hh"

#include <bit>
#include <cctype>
#include <cstdint>
#include <sstream>

#include "common/logging.hh"

namespace unistc
{

namespace
{

/** Line magic: bump when the field list changes. */
constexpr const char *kLineTag = "unistc-ckpt-v1";

/** %-escape spaces, percent signs and control characters. */
std::string
escapeToken(const std::string &s)
{
    static const char *hex = "0123456789ABCDEF";
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        if (c == '%' || c == ' ' || std::iscntrl(c)) {
            out.push_back('%');
            out.push_back(hex[c >> 4]);
            out.push_back(hex[c & 0xF]);
        } else {
            out.push_back(static_cast<char>(c));
        }
    }
    return out;
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

bool
unescapeToken(const std::string &s, std::string &out)
{
    out.clear();
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%') {
            out.push_back(s[i]);
            continue;
        }
        if (i + 2 >= s.size())
            return false;
        const int hi = hexDigit(s[i + 1]);
        const int lo = hexDigit(s[i + 2]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
    }
    return true;
}

std::string
u64Hex(std::uint64_t v)
{
    std::ostringstream os;
    os << std::hex << v;
    return os.str();
}

/** Bit-exact double encoding: the hex of the IEEE-754 pattern. */
std::string
doubleHex(double d)
{
    return u64Hex(std::bit_cast<std::uint64_t>(d));
}

bool
parseU64Hex(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty() || tok.size() > 16)
        return false;
    std::uint64_t v = 0;
    for (char c : tok) {
        const int d = hexDigit(c);
        if (d < 0)
            return false;
        v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    out = v;
    return true;
}

bool
parseDoubleHex(const std::string &tok, double &out)
{
    std::uint64_t bits = 0;
    if (!parseU64Hex(tok, bits))
        return false;
    out = std::bit_cast<double>(bits);
    return true;
}

/** Histogram as n:lo-bits:hi-bits:c0,c1,... ("0" when default). */
std::string
encodeHistogram(const Histogram &h)
{
    const int n = h.numBuckets();
    if (n == 0)
        return "0";
    std::ostringstream os;
    os << n << ":" << doubleHex(h.bucketLo(0)) << ":"
       << doubleHex(h.bucketHi(n - 1)) << ":";
    for (int b = 0; b < n; ++b) {
        if (b > 0)
            os << ",";
        os << u64Hex(h.bucketCount(b));
    }
    return os.str();
}

bool
decodeHistogram(const std::string &tok, Histogram &out)
{
    if (tok == "0") {
        out = Histogram();
        return true;
    }
    std::istringstream is(tok);
    std::string n_tok, lo_tok, hi_tok, counts_tok;
    if (!std::getline(is, n_tok, ':') ||
        !std::getline(is, lo_tok, ':') ||
        !std::getline(is, hi_tok, ':') ||
        !std::getline(is, counts_tok))
        return false;
    long n = 0;
    {
        char *end = nullptr;
        n = std::strtol(n_tok.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || n <= 0 || n > 1 << 20)
            return false;
    }
    double lo = 0, hi = 0;
    if (!parseDoubleHex(lo_tok, lo) || !parseDoubleHex(hi_tok, hi) ||
        !(hi > lo))
        return false;
    Histogram h(static_cast<int>(n), lo, hi);
    std::istringstream cs(counts_tok);
    std::string c_tok;
    const double width = (hi - lo) / static_cast<double>(n);
    for (long b = 0; b < n; ++b) {
        if (!std::getline(cs, c_tok, ','))
            return false;
        std::uint64_t count = 0;
        if (!parseU64Hex(c_tok, count))
            return false;
        if (count > 0) {
            // Re-add at the bucket midpoint: lands back in bucket b.
            h.add(lo + width * (static_cast<double>(b) + 0.5), count);
        }
    }
    if (std::getline(cs, c_tok, ','))
        return false; // more counts than buckets
    out = h;
    return true;
}

} // namespace

std::string
checkpointKey(const std::string &kernel, const std::string &model,
              const std::string &matrix)
{
    return escapeToken(kernel) + " " + escapeToken(model) + " " +
           escapeToken(matrix);
}

std::string
CheckpointEntry::key() const
{
    return checkpointKey(kernel, model, matrix);
}

std::string
encodeCheckpointEntry(const CheckpointEntry &e)
{
    const RunResult &r = e.result;
    std::ostringstream os;
    os << kLineTag << " " << e.key();
    for (std::uint64_t v :
         {r.cycles, r.products, r.macSlots, r.tasksT1, r.tasksT3,
          r.stallCycles, r.dpgActiveAccum, r.cNetScaleAccum,
          r.traffic.readsA, r.traffic.wastedA, r.traffic.readsB,
          r.traffic.wastedB, r.traffic.writesC})
        os << " " << u64Hex(v);
    for (double v : {r.energy.fetchA, r.energy.fetchB,
                     r.energy.writeC, r.energy.schedule,
                     r.energy.compute})
        os << " " << doubleHex(v);
    os << " " << encodeHistogram(r.utilHist);
    return os.str();
}

Result<CheckpointEntry>
decodeCheckpointEntry(const std::string &line)
{
    std::istringstream is(line);
    std::vector<std::string> toks;
    std::string tok;
    while (is >> tok)
        toks.push_back(tok);
    // tag + 3 names + 13 counters + 5 energies + 1 histogram.
    constexpr std::size_t kTokens = 1 + 3 + 13 + 5 + 1;
    if (toks.size() != kTokens || toks[0] != kLineTag) {
        return corruptData("checkpoint line is not a " +
                           std::string(kLineTag) + " record");
    }
    CheckpointEntry e;
    if (!unescapeToken(toks[1], e.kernel) ||
        !unescapeToken(toks[2], e.model) ||
        !unescapeToken(toks[3], e.matrix))
        return corruptData("checkpoint line has a bad name escape");
    RunResult &r = e.result;
    std::uint64_t *counters[] = {
        &r.cycles,          &r.products,       &r.macSlots,
        &r.tasksT1,         &r.tasksT3,        &r.stallCycles,
        &r.dpgActiveAccum,  &r.cNetScaleAccum, &r.traffic.readsA,
        &r.traffic.wastedA, &r.traffic.readsB, &r.traffic.wastedB,
        &r.traffic.writesC};
    for (std::size_t i = 0; i < 13; ++i) {
        if (!parseU64Hex(toks[4 + i], *counters[i]))
            return corruptData("checkpoint line has a bad counter");
    }
    double *energies[] = {&r.energy.fetchA, &r.energy.fetchB,
                          &r.energy.writeC, &r.energy.schedule,
                          &r.energy.compute};
    for (std::size_t i = 0; i < 5; ++i) {
        if (!parseDoubleHex(toks[17 + i], *energies[i]))
            return corruptData("checkpoint line has a bad energy");
    }
    if (!decodeHistogram(toks[22], r.utilHist))
        return corruptData("checkpoint line has a bad histogram");
    return e;
}

Status
CheckpointWriter::open(const std::string &path)
{
    out_.open(path, std::ios::app);
    if (!out_) {
        return ioError("cannot open checkpoint '" + path +
                       "' for appending");
    }
    path_ = path;
    return Status();
}

Status
CheckpointWriter::append(const CheckpointEntry &e)
{
    if (!out_.is_open())
        return failedPrecondition("checkpoint writer is not open");
    out_ << encodeCheckpointEntry(e) << "\n";
    out_.flush();
    if (!out_) {
        return ioError("write to checkpoint '" + path_ + "' failed");
    }
    return Status();
}

Result<CheckpointLog>
CheckpointLog::load(const std::string &path)
{
    CheckpointLog log;
    std::ifstream in(path);
    if (!in) {
        // A missing checkpoint is an empty one: fresh runs and
        // resumed runs share a single code path.
        return log;
    }
    std::string line;
    long line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        Result<CheckpointEntry> entry = decodeCheckpointEntry(line);
        if (!entry.ok()) {
            // A damaged line ends the valid prefix — most often the
            // in-flight entry of an interrupted run.
            UNISTC_WARN("checkpoint '", path, "' line ", line_no,
                        " is corrupt (", entry.status().message(),
                        "); keeping the ", log.entries_.size(),
                        " entries before it");
            log.truncated_ = true;
            break;
        }
        CheckpointEntry e = std::move(entry).value();
        log.byKey_[e.key()].push_back(log.entries_.size());
        log.entries_.push_back(std::move(e));
    }
    return log;
}

const CheckpointEntry *
CheckpointLog::find(const std::string &kernel,
                    const std::string &model,
                    const std::string &matrix,
                    std::size_t occurrence) const
{
    const auto it = byKey_.find(checkpointKey(kernel, model, matrix));
    if (it == byKey_.end() || occurrence >= it->second.size())
        return nullptr;
    return &entries_[it->second[occurrence]];
}

} // namespace unistc
