/**
 * @file
 * Bench checkpoint log: an append-only text file of finished
 * (kernel, model, matrix) -> RunResult entries that lets an
 * interrupted sweep resume without recomputing completed jobs
 * (docs/ROBUSTNESS.md).
 *
 * Format: one entry per line, space-separated tokens. Strings are
 * %-escaped; every double is stored as the hex of its IEEE-754 bit
 * pattern, so a resumed sweep reproduces bit-identical results. A
 * corrupt line (interrupted write, disk damage) ends the valid
 * prefix: everything before it is used, everything after discarded.
 */

#ifndef UNISTC_ROBUST_CHECKPOINT_HH
#define UNISTC_ROBUST_CHECKPOINT_HH

#include <cstddef>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "robust/status.hh"
#include "sim/result.hh"

namespace unistc
{

/** One checkpointed job result. */
struct CheckpointEntry
{
    std::string kernel;
    std::string model;
    std::string matrix;
    RunResult result;

    /** Escaped "kernel model matrix" lookup key. */
    std::string key() const;
};

/** Build the lookup key a CheckpointEntry with these fields has. */
std::string checkpointKey(const std::string &kernel,
                          const std::string &model,
                          const std::string &matrix);

/** Serialize @p e as one checkpoint line (no trailing newline). */
std::string encodeCheckpointEntry(const CheckpointEntry &e);

/** Parse one checkpoint line; typed error on any malformation. */
Result<CheckpointEntry> decodeCheckpointEntry(const std::string &line);

/**
 * Appends entries to a checkpoint file, flushing after each so an
 * interrupted run loses at most the in-flight entry (which the
 * loader then drops as a corrupt trailing line).
 */
class CheckpointWriter
{
  public:
    CheckpointWriter() = default;

    /** Open @p path for appending. */
    Status open(const std::string &path);

    /** Serialize, append, flush. */
    Status append(const CheckpointEntry &e);

    bool isOpen() const { return out_.is_open(); }

  private:
    std::ofstream out_;
    std::string path_;
};

/**
 * In-memory view of a checkpoint file, indexed by key with duplicate
 * keys kept in file order — a sweep that runs the same
 * (kernel, model, matrix) twice consumes its checkpoints in order
 * via the @p occurrence parameter of find().
 */
class CheckpointLog
{
  public:
    /**
     * Load @p path. A missing file is an empty log (a fresh run and
     * a resumed run share one code path); an unreadable or corrupt
     * tail keeps the valid prefix and sets truncated().
     */
    static Result<CheckpointLog> load(const std::string &path);

    /**
     * The @p occurrence-th (0-based) entry whose key matches, in
     * file order; null when fewer matches exist.
     */
    const CheckpointEntry *find(const std::string &kernel,
                                const std::string &model,
                                const std::string &matrix,
                                std::size_t occurrence = 0) const;

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** True when a corrupt line cut the file short on load. */
    bool truncated() const { return truncated_; }

  private:
    std::vector<CheckpointEntry> entries_;
    std::unordered_map<std::string, std::vector<std::size_t>> byKey_;
    bool truncated_ = false;
};

} // namespace unistc

#endif // UNISTC_ROBUST_CHECKPOINT_HH
