/**
 * @file
 * Bench checkpoint log: an append-only text file of finished
 * (kernel, model, matrix) -> RunResult entries that lets an
 * interrupted sweep resume without recomputing completed jobs
 * (docs/ROBUSTNESS.md).
 *
 * Format: one entry per line, space-separated tokens. Strings are
 * %-escaped; every double is stored as the hex of its IEEE-754 bit
 * pattern, so a resumed sweep reproduces bit-identical results. A
 * corrupt line (interrupted write, disk damage) ends the valid
 * prefix: everything before it is used, everything after discarded.
 *
 * Durability (the sharded-sweep hardening): every record is appended
 * with ONE unbuffered write(2) on an O_APPEND descriptor followed by
 * fdatasync, so a SIGKILL mid-append can only tear the in-flight
 * line, never an earlier one, and two processes appending to the
 * same log never interleave partial lines. A log whose tail did get
 * torn is repaired on load via rewriteCheckpointAtomic() — the
 * tmp-file + fsync + atomic-rename discipline of MatrixCache — so
 * records appended after a torn line can never become unreachable
 * (the "poisoned --resume" failure mode).
 */

#ifndef UNISTC_ROBUST_CHECKPOINT_HH
#define UNISTC_ROBUST_CHECKPOINT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "robust/status.hh"
#include "sim/result.hh"

namespace unistc
{

/** Tokens per checkpoint line: tag + 3 names + 13 counters +
 *  5 energies + 1 histogram. Kept in sync with the codec below;
 *  the shard manifest embeds entries and needs the width too. */
constexpr std::size_t kCheckpointEntryTokens = 1 + 3 + 13 + 5 + 1;

/**
 * On-disk checkpoint line-format version. The format has no header
 * line carrying it (every line is self-describing via its "ckpt"
 * tag); the constant exists so --version can report the dialect a
 * binary writes. Bump alongside any codec change below.
 */
constexpr int kCheckpointFormatVersion = 1;

/** @name Checkpoint token helpers
 *  The escaping/number codec the checkpoint line format is built
 *  from, exported so the shard manifest speaks the same dialect.
 *  @{ */

/** %-escape spaces, percent signs and control characters. */
std::string escapeCheckpointToken(const std::string &s);

/** Undo escapeCheckpointToken; false on a malformed escape. */
bool unescapeCheckpointToken(const std::string &s, std::string &out);

/** Lower-case hex of @p v, no leading zeros ("0" for zero). */
std::string checkpointHex(std::uint64_t v);

/** Parse checkpointHex output; false on empty/overlong/non-hex. */
bool parseCheckpointHex(const std::string &tok, std::uint64_t &out);

/** Bit-exact double encoding: the hex of the IEEE-754 pattern. */
std::string checkpointDoubleHex(double d);

/** Parse checkpointDoubleHex output (bit-exact round trip). */
bool parseCheckpointDoubleHex(const std::string &tok, double &out);

/** @} */

/** One checkpointed job result. */
struct CheckpointEntry
{
    std::string kernel;
    std::string model;
    std::string matrix;
    RunResult result;

    /** Escaped "kernel model matrix" lookup key. */
    std::string key() const;
};

/** Build the lookup key a CheckpointEntry with these fields has. */
std::string checkpointKey(const std::string &kernel,
                          const std::string &model,
                          const std::string &matrix);

/** Serialize @p e as one checkpoint line (no trailing newline). */
std::string encodeCheckpointEntry(const CheckpointEntry &e);

/** Parse one checkpoint line; typed error on any malformation. */
Result<CheckpointEntry> decodeCheckpointEntry(const std::string &line);

/**
 * A line-oriented append file with crash durability: each line goes
 * out as ONE write(2) on an O_APPEND descriptor and is fdatasync'd,
 * so a SIGKILL can only tear the in-flight line (the loader's
 * prefix-recovery then drops it) and concurrent appenders from
 * different processes never interleave partial lines. Checkpoint
 * logs and shard manifests both ride on this.
 */
class DurableAppendFile
{
  public:
    DurableAppendFile() = default;
    ~DurableAppendFile();

    DurableAppendFile(const DurableAppendFile &) = delete;
    DurableAppendFile &operator=(const DurableAppendFile &) = delete;

    /** Open (creating if needed) @p path for appending. */
    Status open(const std::string &path);

    /** Append @p line + '\n' as a single write, then sync. */
    Status appendLine(const std::string &line);

    /** Close the descriptor (idempotent). */
    void close();

    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

  private:
    int fd_ = -1;
    std::string path_;
};

/**
 * Appends entries to a checkpoint file; each entry is one durable
 * single-write append (see DurableAppendFile), so an interrupted run
 * loses at most the in-flight entry (which the loader then drops as
 * a corrupt trailing line) and never tears an earlier one.
 */
class CheckpointWriter
{
  public:
    CheckpointWriter() = default;

    /** Open @p path for appending. */
    Status open(const std::string &path);

    /** Serialize, append in one write, sync. */
    Status append(const CheckpointEntry &e);

    /** Close the underlying descriptor (idempotent). */
    void close() { file_.close(); }

    bool isOpen() const { return file_.isOpen(); }

  private:
    DurableAppendFile file_;
};

/**
 * Durable atomic whole-file replace: write a temp file in the same
 * directory, fsync it, atomically rename over @p path (the
 * MatrixCache discipline plus the fsync a crash-consistency story
 * needs). Readers see either the old file or the new one, never a
 * mix, even across a SIGKILL or power loss mid-write.
 */
Status atomicWriteFile(const std::string &path,
                       const std::string &bytes);

/**
 * Replace @p path with exactly @p entries via atomicWriteFile().
 * Used to repair a checkpoint whose tail a SIGKILLed shard tore, so
 * records appended afterwards are never stranded behind a corrupt
 * line.
 */
Status rewriteCheckpointAtomic(const std::string &path,
                               const std::vector<CheckpointEntry> &entries);

/**
 * In-memory view of a checkpoint file, indexed by key with duplicate
 * keys kept in file order — a sweep that runs the same
 * (kernel, model, matrix) twice consumes its checkpoints in order
 * via the @p occurrence parameter of find().
 */
class CheckpointLog
{
  public:
    /**
     * Load @p path. A missing file is an empty log (a fresh run and
     * a resumed run share one code path); an unreadable or corrupt
     * tail keeps the valid prefix and sets truncated().
     */
    static Result<CheckpointLog> load(const std::string &path);

    /**
     * The @p occurrence-th (0-based) entry whose key matches, in
     * file order; null when fewer matches exist.
     */
    const CheckpointEntry *find(const std::string &kernel,
                                const std::string &model,
                                const std::string &matrix,
                                std::size_t occurrence = 0) const;

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** All entries in file order (e.g. for an atomic repair rewrite). */
    const std::vector<CheckpointEntry> &entries() const
    {
        return entries_;
    }

    /** True when a corrupt line cut the file short on load. */
    bool truncated() const { return truncated_; }

  private:
    std::vector<CheckpointEntry> entries_;
    std::unordered_map<std::string, std::vector<std::size_t>> byKey_;
    bool truncated_ = false;
};

} // namespace unistc

#endif // UNISTC_ROBUST_CHECKPOINT_HH
