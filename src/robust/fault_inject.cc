#include "robust/fault_inject.hh"

#include <cstdlib>
#include <chrono>
#include <limits>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define UNISTC_FAULT_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#endif

#include "bbc/bbc_matrix.hh"
#include "common/logging.hh"
#include "robust/status.hh"

namespace unistc
{

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::BitmapLv1Flip:
        return "BitmapLv1Flip";
      case FaultKind::BitmapLv2Flip:
        return "BitmapLv2Flip";
      case FaultKind::NanValue:
        return "NanValue";
      case FaultKind::InfValue:
        return "InfValue";
      case FaultKind::TruncateStream:
        return "TruncateStream";
      case FaultKind::GarbleStream:
        return "GarbleStream";
      case FaultKind::SlowJob:
        return "SlowJob";
      case FaultKind::ThrowJob:
        return "ThrowJob";
      case FaultKind::ProcAbort:
        return "ProcAbort";
      case FaultKind::ProcExit:
        return "ProcExit";
      case FaultKind::ProcHang:
        return "ProcHang";
      case FaultKind::ProcPartialCrash:
        return "ProcPartialCrash";
    }
    return "?";
}

namespace
{

/** Parse a non-negative decimal; false on empty/overflow/junk. */
bool
parseDec(const std::string &s, long &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || errno != 0 || v < 0)
        return false;
    out = v;
    return true;
}

} // namespace

Result<std::vector<ProcFaultSpec>>
parseProcFaultSpecs(const std::string &text)
{
    std::vector<ProcFaultSpec> specs;
    std::istringstream list(text);
    std::string item;
    while (std::getline(list, item, ';')) {
        if (item.empty())
            continue;
        ProcFaultSpec spec;

        // kind[:code] runs up to the mandatory '@'.
        const std::size_t at = item.find('@');
        if (at == std::string::npos) {
            return invalidArgument("proc fault '" + item +
                                   "' is missing '@shard'");
        }
        std::string head = item.substr(0, at);
        std::string tail = item.substr(at + 1);
        const std::size_t colon = head.find(':');
        std::string kind = head.substr(0, colon);
        if (kind == "abort") {
            spec.kind = FaultKind::ProcAbort;
        } else if (kind == "exit") {
            spec.kind = FaultKind::ProcExit;
        } else if (kind == "hang") {
            spec.kind = FaultKind::ProcHang;
        } else if (kind == "partial") {
            spec.kind = FaultKind::ProcPartialCrash;
        } else {
            return invalidArgument("unknown proc fault kind '" + kind +
                                   "'");
        }
        if (colon != std::string::npos) {
            if (spec.kind != FaultKind::ProcExit) {
                return invalidArgument("':code' is only valid on "
                                       "'exit' proc faults");
            }
            long code = 0;
            if (!parseDec(head.substr(colon + 1), code) || code > 255) {
                return invalidArgument("bad exit code in proc fault '" +
                                       item + "'");
            }
            spec.exitCode = static_cast<int>(code);
        }

        // tail = shard[xN|x*][+U]
        const std::size_t plus = tail.find('+');
        if (plus != std::string::npos) {
            long units = 0;
            if (!parseDec(tail.substr(plus + 1), units)) {
                return invalidArgument("bad '+units' in proc fault '" +
                                       item + "'");
            }
            spec.afterUnits = static_cast<std::uint64_t>(units);
            tail.resize(plus);
        }
        const std::size_t x = tail.find('x');
        if (x != std::string::npos) {
            const std::string reps = tail.substr(x + 1);
            if (reps == "*") {
                spec.attempts = 0; // every attempt
            } else {
                long n = 0;
                if (!parseDec(reps, n) || n == 0) {
                    return invalidArgument("bad 'xN' in proc fault '" +
                                           item + "'");
                }
                spec.attempts = static_cast<int>(n);
            }
            tail.resize(x);
        }
        if (tail == "*") {
            spec.shard = -1;
        } else {
            long shard = 0;
            if (!parseDec(tail, shard)) {
                return invalidArgument("bad shard index in proc "
                                       "fault '" + item + "'");
            }
            spec.shard = static_cast<int>(shard);
        }
        specs.push_back(spec);
    }
    return specs;
}

const ProcFaultSpec *
matchProcFault(const std::vector<ProcFaultSpec> &specs, int shard,
               int attempt)
{
    for (const ProcFaultSpec &s : specs) {
        if (s.shard >= 0 && s.shard != shard)
            continue;
        if (s.attempts > 0 && attempt >= s.attempts)
            continue;
        return &s;
    }
    return nullptr;
}

void
executeProcFault(const ProcFaultSpec &spec,
                 const std::string &partialPath,
                 const std::string &partialLine)
{
    UNISTC_WARN("injected proc fault ", toString(spec.kind),
                " firing in pid ", static_cast<long>(
#ifdef UNISTC_FAULT_POSIX
                    ::getpid()
#else
                    0
#endif
                ));
    switch (spec.kind) {
      case FaultKind::ProcAbort:
        std::abort();
      case FaultKind::ProcExit:
        std::_Exit(spec.exitCode);
      case FaultKind::ProcHang:
        // Keep the process alive but silent: no heartbeats, no exit.
        // Only the supervisor's SIGKILL ends this loop.
        for (;;)
            std::this_thread::sleep_for(std::chrono::seconds(3600));
      case FaultKind::ProcPartialCrash: {
#ifdef UNISTC_FAULT_POSIX
        if (!partialPath.empty() && !partialLine.empty()) {
            const int fd = ::open(partialPath.c_str(),
                                  O_WRONLY | O_CREAT | O_APPEND, 0644);
            if (fd >= 0) {
                // Half a record, no newline: exactly the torn tail a
                // kill mid-write leaves behind.
                const std::size_t n = partialLine.size() / 2;
                (void)!::write(fd, partialLine.data(), n);
                ::fsync(fd);
                ::close(fd);
            }
        }
#endif
        std::_Exit(70);
      }
      default:
        UNISTC_PANIC("executeProcFault: ", toString(spec.kind),
                     " is not a process fault");
    }
}

void
FaultSpec::apply(const std::string &jobLabel) const
{
    if (delayMs > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delayMs));
    }
    // fetch_add caps the throws at throwCount no matter how many
    // attempts (or concurrent executors in a buggy test) run.
    if (thrown.load(std::memory_order_relaxed) < throwCount &&
        thrown.fetch_add(1, std::memory_order_relaxed) < throwCount) {
        throw UnistcError(internalError(
            "injected fault (ThrowJob) in " + jobLabel));
    }
}

std::string
FaultPlan::corruptBbc(BbcMatrix &m, FaultKind kind)
{
    std::ostringstream what;
    switch (kind) {
      case FaultKind::BitmapLv1Flip: {
        if (m.lv1_.empty())
            return "";
        const auto blk = static_cast<std::size_t>(
            rng_.nextInRange(0, static_cast<int>(m.lv1_.size()) - 1));
        const int bit = rng_.nextInRange(0, 15);
        m.lv1_[blk] ^= static_cast<std::uint16_t>(1u << bit);
        what << "flipped Lv1 bit " << bit << " of block " << blk;
        break;
      }
      case FaultKind::BitmapLv2Flip: {
        if (m.lv2_.empty())
            return "";
        const auto tile = static_cast<std::size_t>(
            rng_.nextInRange(0, static_cast<int>(m.lv2_.size()) - 1));
        const int bit = rng_.nextInRange(0, 15);
        m.lv2_[tile] ^= static_cast<std::uint16_t>(1u << bit);
        what << "flipped Lv2 bit " << bit << " of tile " << tile;
        break;
      }
      case FaultKind::NanValue:
      case FaultKind::InfValue: {
        if (m.vals_.empty())
            return "";
        const auto i = static_cast<std::size_t>(
            rng_.nextInRange(0, static_cast<int>(m.vals_.size()) - 1));
        m.vals_[i] = kind == FaultKind::NanValue
            ? std::numeric_limits<double>::quiet_NaN()
            : std::numeric_limits<double>::infinity();
        what << "overwrote value " << i << " with "
             << (kind == FaultKind::NanValue ? "NaN" : "Inf");
        break;
      }
      default:
        UNISTC_PANIC("corruptBbc: ", toString(kind),
                     " is not a data fault");
    }
    return what.str();
}

std::string
FaultPlan::corruptBytes(std::string &bytes, FaultKind kind,
                        std::size_t minOffset)
{
    if (bytes.size() <= minOffset)
        return "";
    std::ostringstream what;
    const auto span = static_cast<int>(bytes.size() - minOffset);
    switch (kind) {
      case FaultKind::TruncateStream: {
        // Keep at least minOffset bytes so the header (when spared)
        // survives and the *payload* checks must catch the damage.
        const std::size_t keep =
            minOffset +
            static_cast<std::size_t>(rng_.nextInRange(0, span - 1));
        what << "truncated " << bytes.size() << "-byte image to "
             << keep << " bytes";
        bytes.resize(keep);
        break;
      }
      case FaultKind::GarbleStream: {
        const std::size_t at =
            minOffset +
            static_cast<std::size_t>(rng_.nextInRange(0, span - 1));
        // XOR with a nonzero mask always changes the byte.
        const char mask =
            static_cast<char>(rng_.nextInRange(1, 255));
        bytes[at] = static_cast<char>(bytes[at] ^ mask);
        what << "garbled byte " << at << " (xor 0x" << std::hex
             << (static_cast<unsigned>(mask) & 0xFFu) << ")";
        break;
      }
      default:
        UNISTC_PANIC("corruptBytes: ", toString(kind),
                     " is not a stream fault");
    }
    return what.str();
}

} // namespace unistc
