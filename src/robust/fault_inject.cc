#include "robust/fault_inject.hh"

#include <chrono>
#include <limits>
#include <sstream>
#include <thread>

#include "bbc/bbc_matrix.hh"
#include "common/logging.hh"
#include "robust/status.hh"

namespace unistc
{

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::BitmapLv1Flip:
        return "BitmapLv1Flip";
      case FaultKind::BitmapLv2Flip:
        return "BitmapLv2Flip";
      case FaultKind::NanValue:
        return "NanValue";
      case FaultKind::InfValue:
        return "InfValue";
      case FaultKind::TruncateStream:
        return "TruncateStream";
      case FaultKind::GarbleStream:
        return "GarbleStream";
      case FaultKind::SlowJob:
        return "SlowJob";
      case FaultKind::ThrowJob:
        return "ThrowJob";
    }
    return "?";
}

void
FaultSpec::apply(const std::string &jobLabel) const
{
    if (delayMs > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delayMs));
    }
    // fetch_add caps the throws at throwCount no matter how many
    // attempts (or concurrent executors in a buggy test) run.
    if (thrown.load(std::memory_order_relaxed) < throwCount &&
        thrown.fetch_add(1, std::memory_order_relaxed) < throwCount) {
        throw UnistcError(internalError(
            "injected fault (ThrowJob) in " + jobLabel));
    }
}

std::string
FaultPlan::corruptBbc(BbcMatrix &m, FaultKind kind)
{
    std::ostringstream what;
    switch (kind) {
      case FaultKind::BitmapLv1Flip: {
        if (m.lv1_.empty())
            return "";
        const auto blk = static_cast<std::size_t>(
            rng_.nextInRange(0, static_cast<int>(m.lv1_.size()) - 1));
        const int bit = rng_.nextInRange(0, 15);
        m.lv1_[blk] ^= static_cast<std::uint16_t>(1u << bit);
        what << "flipped Lv1 bit " << bit << " of block " << blk;
        break;
      }
      case FaultKind::BitmapLv2Flip: {
        if (m.lv2_.empty())
            return "";
        const auto tile = static_cast<std::size_t>(
            rng_.nextInRange(0, static_cast<int>(m.lv2_.size()) - 1));
        const int bit = rng_.nextInRange(0, 15);
        m.lv2_[tile] ^= static_cast<std::uint16_t>(1u << bit);
        what << "flipped Lv2 bit " << bit << " of tile " << tile;
        break;
      }
      case FaultKind::NanValue:
      case FaultKind::InfValue: {
        if (m.vals_.empty())
            return "";
        const auto i = static_cast<std::size_t>(
            rng_.nextInRange(0, static_cast<int>(m.vals_.size()) - 1));
        m.vals_[i] = kind == FaultKind::NanValue
            ? std::numeric_limits<double>::quiet_NaN()
            : std::numeric_limits<double>::infinity();
        what << "overwrote value " << i << " with "
             << (kind == FaultKind::NanValue ? "NaN" : "Inf");
        break;
      }
      default:
        UNISTC_PANIC("corruptBbc: ", toString(kind),
                     " is not a data fault");
    }
    return what.str();
}

std::string
FaultPlan::corruptBytes(std::string &bytes, FaultKind kind,
                        std::size_t minOffset)
{
    if (bytes.size() <= minOffset)
        return "";
    std::ostringstream what;
    const auto span = static_cast<int>(bytes.size() - minOffset);
    switch (kind) {
      case FaultKind::TruncateStream: {
        // Keep at least minOffset bytes so the header (when spared)
        // survives and the *payload* checks must catch the damage.
        const std::size_t keep =
            minOffset +
            static_cast<std::size_t>(rng_.nextInRange(0, span - 1));
        what << "truncated " << bytes.size() << "-byte image to "
             << keep << " bytes";
        bytes.resize(keep);
        break;
      }
      case FaultKind::GarbleStream: {
        const std::size_t at =
            minOffset +
            static_cast<std::size_t>(rng_.nextInRange(0, span - 1));
        // XOR with a nonzero mask always changes the byte.
        const char mask =
            static_cast<char>(rng_.nextInRange(1, 255));
        bytes[at] = static_cast<char>(bytes[at] ^ mask);
        what << "garbled byte " << at << " (xor 0x" << std::hex
             << (static_cast<unsigned>(mask) & 0xFFu) << ")";
        break;
      }
      default:
        UNISTC_PANIC("corruptBytes: ", toString(kind),
                     " is not a stream fault");
    }
    return what.str();
}

} // namespace unistc
