/**
 * @file
 * FNV-1a 64-bit checksum over byte ranges — the integrity check the
 * BBC file format (v2) stores after its payload. Not cryptographic;
 * it exists to catch silent corruption (truncated writes, flipped
 * bits, garbled sectors) before a bad matrix poisons a sweep.
 */

#ifndef UNISTC_ROBUST_CHECKSUM_HH
#define UNISTC_ROBUST_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace unistc
{

/** FNV-1a offset basis; pass as @p seed to chain ranges. */
constexpr std::uint64_t kFnv1aBasis = 0xCBF29CE484222325ull;

/** Fold @p size bytes at @p data into an FNV-1a 64-bit state. */
inline std::uint64_t
fnv1a64(const void *data, std::size_t size,
        std::uint64_t seed = kFnv1aBasis)
{
    constexpr std::uint64_t kPrime = 0x100000001B3ull;
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= kPrime;
    }
    return h;
}

} // namespace unistc

#endif // UNISTC_ROBUST_CHECKSUM_HH
