/**
 * @file
 * Typed error model for the robustness layer (docs/ROBUSTNESS.md).
 *
 * Library code reports recoverable failures as a Status (or a
 * Result<T> carrying either a value or a Status) instead of calling
 * std::exit(). Callers pick the policy at the boundary:
 *
 *   - try* APIs (tryLoadBbcFile, tryReadMatrixMarket, ...) return the
 *     Status/Result and never terminate;
 *   - the classic convenience wrappers raise() on failure, which
 *     throws UnistcError under FatalBehavior::Throw (library, tests,
 *     fuzzers) and prints + exits under FatalBehavior::Exit (CLI
 *     mains) — see common/logging.hh for the behavior switch.
 *
 * panic() (simulator bugs) still aborts unconditionally; this model
 * covers *user-caused* failures: bad files, corrupt data, timeouts.
 */

#ifndef UNISTC_ROBUST_STATUS_HH
#define UNISTC_ROBUST_STATUS_HH

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace unistc
{

/** Failure category carried by every Status. */
enum class ErrorCode
{
    Ok = 0,
    InvalidArgument,    ///< Caller passed something nonsensical.
    IoError,            ///< open/read/write failed at the OS level.
    ParseError,         ///< Text input did not match its grammar.
    CorruptData,        ///< Structured input failed an integrity check.
    FailedPrecondition, ///< Valid input, unusable in this context.
    Timeout,            ///< A watchdog deadline expired.
    Cancelled,          ///< Work abandoned before completion.
    Internal,           ///< Unexpected library-side failure.
};

/** Printable code name ("CorruptData", ...). */
const char *toString(ErrorCode code);

/** Outcome of a fallible operation: Ok, or a code plus a message. */
class Status
{
  public:
    /** Default: success. */
    Status() = default;

    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status okStatus() { return Status(); }

    bool ok() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "CorruptData: <message>" (or "Ok"). */
    std::string toString() const;

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/** Factory shorthands used throughout the robustness layer. */
Status invalidArgument(std::string msg);
Status ioError(std::string msg);
Status parseError(std::string msg);
Status corruptData(std::string msg);
Status failedPrecondition(std::string msg);
Status timeoutError(std::string msg);
Status internalError(std::string msg);

/** Exception form of a Status, thrown under FatalBehavior::Throw. */
class UnistcError : public std::runtime_error
{
  public:
    explicit UnistcError(Status status)
        : std::runtime_error(status.toString()), status_(std::move(status))
    {
    }

    const Status &status() const { return status_; }
    ErrorCode code() const { return status_.code(); }

  private:
    Status status_;
};

/**
 * Escalate a non-ok Status according to the process fatal behavior:
 * throw UnistcError (FatalBehavior::Throw) or print the message and
 * exit(1) (FatalBehavior::Exit, the default). Asserts on an Ok status.
 */
[[noreturn]] void raise(const Status &status);

/**
 * Value-or-Status return type for fallible library calls. Either
 * holds a T (ok()) or a non-ok Status. value() on an error raise()s,
 * so `tryLoadBbcFile(p).value()` behaves like the classic API while
 * `auto r = tryLoadBbcFile(p); if (!r.ok()) ...` recovers in place.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}

    Result(Status status) : status_(std::move(status))
    {
        // An Ok status with no value is a programming error; keep the
        // invariant "ok() == has value" without pulling in logging.
        if (status_.ok())
            status_ = internalError("Result built from an Ok status");
    }

    bool ok() const { return value_.has_value(); }
    const Status &status() const { return status_; }

    const T &
    value() const &
    {
        if (!ok())
            raise(status_);
        return *value_;
    }

    T &&
    value() &&
    {
        if (!ok())
            raise(status_);
        return std::move(*value_);
    }

    /** Value on success, @p fallback on error (no escalation). */
    T
    valueOr(T fallback) const &
    {
        return ok() ? *value_ : std::move(fallback);
    }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace unistc

#endif // UNISTC_ROBUST_STATUS_HH
