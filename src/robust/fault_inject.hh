/**
 * @file
 * Deterministic, seed-driven fault injection (docs/ROBUSTNESS.md).
 *
 * Two fault families, both driven from one RNG stream so a failing
 * campaign replays exactly from its seed:
 *
 *  - *Data faults* (FaultPlan): corrupt an in-memory BbcMatrix
 *    (bitmap bit-flips, NaN/Inf value injection) or a serialized
 *    byte image (truncation, garbled bytes). Tests use these to
 *    prove each validator/checksum detector fires.
 *
 *  - *Job faults* (FaultSpec): make a sweep job artificially slow or
 *    make its first N attempts throw, to exercise the executor's
 *    watchdog / retry / quarantine machinery.
 *
 *  - *Process faults* (ProcFaultSpec): make a whole shard worker
 *    abort, exit(N), hang forever, or crash mid-write, to exercise
 *    the ShardSupervisor's kill / retry / quarantine paths
 *    end-to-end (docs/SHARDING.md). Driven by the UNISTC_SHARD_FAULT
 *    environment variable so e2e tests stay deterministic.
 */

#ifndef UNISTC_ROBUST_FAULT_INJECT_HH
#define UNISTC_ROBUST_FAULT_INJECT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "robust/status.hh"

namespace unistc
{

class BbcMatrix;

/** Corruption classes the robustness layer must detect or recover. */
enum class FaultKind
{
    BitmapLv1Flip,  ///< Flip one bit of a random Lv1 tile bitmap.
    BitmapLv2Flip,  ///< Flip one bit of a random Lv2 element bitmap.
    NanValue,       ///< Overwrite one stored value with quiet NaN.
    InfValue,       ///< Overwrite one stored value with +infinity.
    TruncateStream, ///< Cut a serialized byte image short.
    GarbleStream,   ///< XOR-garble one byte of a serialized image.
    SlowJob,        ///< Delay a sweep job past its watchdog budget.
    ThrowJob,       ///< Make a sweep job's first attempts throw.
    ProcAbort,      ///< Shard worker calls abort() (SIGABRT).
    ProcExit,       ///< Shard worker _exit()s with a nonzero code.
    ProcHang,       ///< Shard worker hangs forever (heartbeat goes
                    ///< silent; only SIGKILL can end it).
    ProcPartialCrash, ///< Shard worker tears its in-flight manifest
                      ///< line, then dies (torn-tail recovery test).
};

/** Printable kind name ("BitmapLv1Flip", ...). */
const char *toString(FaultKind kind);

/**
 * Per-job fault knobs, attached to an exec::JobSpec by tests. The
 * throw counter is shared mutable state: build a fresh FaultSpec per
 * sweep, or retries observed in an earlier sweep leak into the next.
 */
struct FaultSpec
{
    /** Sleep this long at the start of every attempt (SlowJob). */
    int delayMs = 0;

    /** First N attempts throw UnistcError before running (ThrowJob). */
    int throwCount = 0;

    /** Attempts that have thrown so far (runtime state). */
    mutable std::atomic<int> thrown{0};

    /**
     * Apply the fault for one attempt: sleep, then throw if the
     * throw budget is not yet exhausted.
     */
    void apply(const std::string &jobLabel) const;
};

/**
 * One process-level fault a shard worker inflicts on itself, parsed
 * from the UNISTC_SHARD_FAULT environment variable. Spec syntax
 * (';'-separated list):
 *
 *     kind[:code]@shard[xN|x*][+U]
 *
 *   kind   abort | exit | hang | partial
 *   :code  exit status for `exit` (default 1)
 *   @shard target shard index, or @* for every shard
 *   xN     fault the first N attempts (default 1 — the retry heals);
 *          x* faults every attempt (forces quarantine)
 *   +U     complete U owned units before faulting (partial progress)
 *
 * e.g. "abort@1;hang@2x*;exit:3@0;partial@1+2".
 */
struct ProcFaultSpec
{
    FaultKind kind = FaultKind::ProcAbort;

    /** Target shard index; -1 means any shard. */
    int shard = -1;

    /** Exit status used by ProcExit. */
    int exitCode = 1;

    /** Attempts 0..N-1 fault; 0 means every attempt faults. */
    int attempts = 1;

    /** Owned units to complete before the fault fires. */
    std::uint64_t afterUnits = 0;
};

/** Parse a ';'-separated spec list; typed error on bad syntax. */
Result<std::vector<ProcFaultSpec>>
parseProcFaultSpecs(const std::string &text);

/**
 * The first spec that applies to @p shard on its @p attempt (0-based),
 * or null when this attempt runs clean.
 */
const ProcFaultSpec *matchProcFault(
    const std::vector<ProcFaultSpec> &specs, int shard, int attempt);

/**
 * Inflict @p spec on the calling process — never returns. For
 * ProcPartialCrash, appends the first half of @p partialLine (no
 * newline) to @p partialPath before dying, leaving exactly the torn
 * tail the durability machinery must survive.
 */
[[noreturn]] void executeProcFault(const ProcFaultSpec &spec,
                                   const std::string &partialPath = "",
                                   const std::string &partialLine = "");

/**
 * Seed-driven corruption engine. Every corrupt*() call draws from
 * the plan's RNG stream, so a campaign seeded with S applies the
 * identical byte/bit damage on every run.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(std::uint64_t seed) : rng_(seed) {}

    /**
     * Corrupt @p m in memory with a data-fault @p kind (a bitmap
     * flip or NaN/Inf class). Returns a human-readable description
     * of the exact damage ("flipped Lv1 bit 3 of block 17"), or ""
     * if the matrix has no site for that fault (e.g. empty).
     */
    std::string corruptBbc(BbcMatrix &m, FaultKind kind);

    /**
     * Corrupt a serialized byte image with a stream-fault @p kind.
     * Damage lands at or after @p minOffset, so callers can spare
     * the magic/version header when they mean to test payload
     * integrity. Returns a description of the damage, "" when the
     * image is too short to corrupt.
     */
    std::string corruptBytes(std::string &bytes, FaultKind kind,
                             std::size_t minOffset = 0);

  private:
    Rng rng_;
};

} // namespace unistc

#endif // UNISTC_ROBUST_FAULT_INJECT_HH
