/**
 * @file
 * Structural validators for every sparse container that crosses an
 * untrusted boundary (file load, format conversion, fault-injection
 * tests). Unlike the formats' own validate() members — which assert
 * and are meant for catching *simulator* bugs — these return a typed
 * Status naming the matrix and the first violated invariant, so a
 * loader can reject one corrupt input and keep the sweep alive.
 *
 * Checked invariants:
 *  - CSR: rowPtr is monotone with rowPtr[0] == 0 and
 *    rowPtr[rows] == nnz; column indices strictly ascending per row
 *    and in [0, cols); sizes consistent; all values finite.
 *  - COO: entries in bounds; all values finite.
 *  - BBC: outer CSR-over-blocks invariants; nonzero Lv1/Lv2 bitmaps;
 *    tileBase/valPtrLv1/valPtrLv2 prefix sums consistent with bitmap
 *    popcounts; total popcount equals the stored value count; all
 *    values finite.
 */

#ifndef UNISTC_ROBUST_VALIDATE_HH
#define UNISTC_ROBUST_VALIDATE_HH

#include <string>

#include "robust/status.hh"

namespace unistc
{

class BbcMatrix;
class CooMatrix;
class CsrMatrix;

/**
 * Check every CSR invariant; @p label names the matrix in the error
 * message ("<csr>" when empty).
 */
Status validateCsr(const CsrMatrix &m, const std::string &label = "");

/** Check every COO invariant (bounds, finiteness). */
Status validateCoo(const CooMatrix &m, const std::string &label = "");

/** Check every BBC invariant, including bitmap/popcount agreement. */
Status validateBbc(const BbcMatrix &m, const std::string &label = "");

} // namespace unistc

#endif // UNISTC_ROBUST_VALIDATE_HH
