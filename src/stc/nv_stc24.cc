#include "stc/nv_stc24.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "obs/trace.hh"
#include "stc/nv_dtc.hh"

namespace unistc
{

bool
conformsTo24(const BlockPattern &a)
{
    for (int r = 0; r < kBlockSize; ++r) {
        // SWAR per-nibble popcount; a nibble with more than two set
        // bits makes its count+1 carry into bit 2 of the lane.
        const std::uint16_t row = a.rowBits(r);
        const std::uint16_t pairs = static_cast<std::uint16_t>(
            row - ((row >> 1) & 0x5555u));
        const std::uint16_t nibs = static_cast<std::uint16_t>(
            (pairs & 0x3333u) + ((pairs >> 2) & 0x3333u));
        if ((nibs + 0x1111u) & 0x4444u)
            return false;
    }
    return true;
}

NetworkConfig
NvStc24::network() const
{
    // Same fixed routing as the dense core, plus the metadata mux.
    NetworkConfig net;
    net.aFactor = 7.0;
    net.bFactor = 8.0;
    net.cFactor = 4.0;
    net.cNetUnits = 4;
    net.dynamicGating = false;
    return net;
}

void
NvStc24::runBlock(const BlockTask &task, RunResult &res,
                  TraceSink *trace) const
{
    if (task.a.empty() || task.b.empty())
        return;

    if (!conformsTo24(task.a)) {
        // Unstructured operand: the sparse path is unusable and the
        // task executes on the dense pipeline.
        NvDtc dense(cfg_);
        dense.runBlock(task, res, trace);
        return;
    }

    ++res.tasksT1;
    const std::uint64_t t0 = res.cycles;
    const int mac = cfg_.macCount;
    const int n_ext = task.nExtent();
    // 2:4 mode halves the K iteration count: each 4-wide group is
    // compressed to its <= 2 survivors plus metadata.
    const int t3m = cfg_.precision == Precision::FP64 ? 4 : 8;
    const int t3n = 4;
    const int t3k = 4; // compressed: covers 8 logical K per step

    const int m_steps = kBlockSize / t3m;
    const int n_steps = static_cast<int>(ceilDiv(n_ext, t3n));
    const int k_steps = kBlockSize / (2 * t3k); // halved
    const std::uint16_t *a_cols = task.aInfo().cols.data();

    for (int mi = 0; mi < m_steps; ++mi) {
        const std::uint16_t row_mask = static_cast<std::uint16_t>(
            ((1u << t3m) - 1u) << (mi * t3m));
        for (int ni = 0; ni < n_steps; ++ni) {
            const int col_hi = std::min((ni + 1) * t3n, n_ext);
            const std::uint16_t col_mask = static_cast<std::uint16_t>(
                ((1u << (col_hi - ni * t3n)) - 1u) << (ni * t3n));
            for (int ki = 0; ki < k_steps; ++ki) {
                // This step covers logical K range [8*ki, 8*ki+8).
                int eff = 0;
                int a_nnz = 0;
                int b_nnz = 0;
                for (int k = ki * 8; k < ki * 8 + 8; ++k) {
                    const int a_cnt = popcount16(a_cols[k] & row_mask);
                    const int b_cnt =
                        popcount16(task.b.rowBits(k) & col_mask);
                    eff += a_cnt * b_cnt;
                    a_nnz += a_cnt;
                    b_nnz += b_cnt;
                }
                // 2:4 bounds a_nnz at t3m*4 over the 8 logical K
                // levels, so eff <= mac holds exactly.
                ++res.tasksT3;
                res.recordCycle(mac, eff, 0, network().cNetUnits);

                // Compressed A fetch: survivors only; B is fetched
                // densely for the full logical K range.
                const int a_slots = t3m * t3k;
                const int b_slots =
                    8 * std::min(t3n, n_ext - ni * t3n);
                res.traffic.readsA += a_nnz;
                res.traffic.wastedA += std::max(0, a_slots - a_nnz);
                res.traffic.readsB += b_nnz;
                res.traffic.wastedB += std::max(0, b_slots - b_nnz);
            }
        }
    }
    res.traffic.writesC +=
        static_cast<std::uint64_t>(kBlockSize) * n_ext;

    UNISTC_TRACE_COMPLETE(trace, TraceTrack::Sdpu,
                          task.isMv ? "T1 MV (2:4)" : "T1 MM (2:4)",
                          t0, res.cycles - t0);
}

} // namespace unistc
