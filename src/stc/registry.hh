/**
 * @file
 * Model factory: create any evaluated architecture by name and
 * enumerate the standard comparison line-ups the figures use.
 */

#ifndef UNISTC_STC_REGISTRY_HH
#define UNISTC_STC_REGISTRY_HH

#include <string>
#include <vector>

#include "stc/stc_model.hh"

namespace unistc
{

/**
 * Create a model by name. Recognised names: "NV-DTC", "DS-STC",
 * "RM-STC", "GAMMA", "SIGMA", "Trapezoid", "Uni-STC". Aborts via
 * fatal() on an unknown name.
 */
StcModelPtr makeStcModel(const std::string &name,
                         const MachineConfig &cfg);

/** The three-way line-up most figures use (DS, RM, Uni). */
std::vector<StcModelPtr> makeCoreLineup(const MachineConfig &cfg);

/** The full seven-architecture line-up (Fig. 16). */
std::vector<StcModelPtr> makeFullLineup(const MachineConfig &cfg);

/** All recognised model names in canonical order. */
std::vector<std::string> allModelNames();

} // namespace unistc

#endif // UNISTC_STC_REGISTRY_HH
