/**
 * @file
 * DS-STC — the dual-side sparse tensor core (Wang et al., ISCA'21 /
 * Zhang et al., TC'24) modelled from its Table VI geometry: an
 * outer-product dataflow with T3 tasks of 8(M) x 8(N) x 1(K) @FP64
 * (8 x 16 x 1 @FP32).
 *
 * For every K slice whose A column and B row both carry nonzeros, the
 * nonzeros are gathered into dense vectors and the outer product is
 * executed in ceil(na/8) x ceil(nb/8) cycles. Short gather segments
 * leave MAC lanes idle (the paper's red-slash ineffective accesses),
 * and every intermediate product is written to the C accumulator
 * through a wide crossbar — the architecture's energy weakness.
 */

#ifndef UNISTC_STC_DS_STC_HH
#define UNISTC_STC_DS_STC_HH

#include "stc/stc_model.hh"

namespace unistc
{

/** Outer-product dual-side sparse tensor core baseline. */
class DsStc : public StcModel
{
  public:
    explicit DsStc(MachineConfig cfg) : StcModel(cfg) {}

    std::string name() const override { return "DS-STC"; }

    std::unique_ptr<StcModel> clone() const override
    {
        return std::make_unique<DsStc>(cfg_);
    }

    NetworkConfig network() const override;

    void runBlock(const BlockTask &task, RunResult &res,
                  TraceSink *trace = nullptr) const override;
};

} // namespace unistc

#endif // UNISTC_STC_DS_STC_HH
