#include "stc/trapezoid.hh"

#include "obs/trace.hh"
#include "stc/row_dataflow.hh"

namespace unistc
{

NetworkConfig
Trapezoid::network() const
{
    NetworkConfig net;
    net.aFactor = 3.0;
    net.bFactor = 2.7;
    net.cFactor = 2.1;
    net.cNetUnits = 32;
    net.dynamicGating = false;
    return net;
}

void
Trapezoid::runBlock(const BlockTask &task, RunResult &res,
                    TraceSink *trace) const
{
    struct Mode
    {
        int m, n, k;
    };
    const bool fp64 = cfg_.precision == Precision::FP64;
    const Mode modes[3] = {
        {16, fp64 ? 2 : 4, 2}, // TrIP
        {16, 4, fp64 ? 1 : 2}, // TrGT
        {8, 4, fp64 ? 2 : 4},  // TrGS
    };

    // Run each mode into a scratch result and keep the fastest.
    RunResult best;
    bool have_best = false;
    for (const Mode &mode : modes) {
        RunResult scratch;
        // Trapezoid sweeps fixed column chunks (no B-column gather):
        // strong on dot-product-shaped work (SpMV), weak when B is
        // sparse (SpGEMM) — the Fig. 21 asymmetry.
        runRowDataflow(task, cfg_, mode.m, mode.n, mode.k,
                       network().cNetUnits, scratch,
                       /*gather_columns=*/false);
        if (!have_best || scratch.cycles < best.cycles) {
            best = scratch;
            have_best = true;
        }
    }
    const std::uint64_t t0 = res.cycles;
    res.merge(best);

    UNISTC_TRACE_COMPLETE(trace, TraceTrack::Sdpu,
                          task.isMv ? "T1 MV (trapezoid)"
                                    : "T1 MM (trapezoid)",
                          t0, res.cycles - t0);
}

} // namespace unistc
