#include "stc/ds_stc.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "obs/trace.hh"

namespace unistc
{

NetworkConfig
DsStc::network() const
{
    // Outer products scatter every partial product across the full
    // C accumulator: a large, always-on write crossbar.
    NetworkConfig net;
    net.aFactor = 3.4;
    net.bFactor = 3.4;
    net.cFactor = 2.2;
    net.cNetUnits = 64;
    net.dynamicGating = false;
    return net;
}

void
DsStc::runBlock(const BlockTask &task, RunResult &res,
                TraceSink *trace) const
{
    ++res.tasksT1;
    const std::uint64_t t0 = res.cycles;
    const int mac = cfg_.macCount;
    const int n_ext = task.nExtent();
    // Outer-product T3 geometry: 8x8x1 @FP64, 8x16x1 @FP32.
    const int t3m = 8;
    const int t3n = cfg_.precision == Precision::FP64 ? 8 : 16;
    const std::uint16_t n_mask = n_ext == kBlockSize
        ? 0xFFFFu
        : static_cast<std::uint16_t>((1u << n_ext) - 1u);
    const PatternMeta &a_meta = task.aInfo();

    for (int k = 0; k < kBlockSize; ++k) {
        const int na = a_meta.colCnt[k];
        const int nb = popcount16(task.b.rowBits(k) & n_mask);
        // Dual-side skip: a K slice contributes nothing when either
        // side is empty, and the front-end skips it outright.
        if (na == 0 || nb == 0)
            continue;

        const int m_steps = static_cast<int>(ceilDiv(na, t3m));
        const int n_steps = static_cast<int>(ceilDiv(nb, t3n));
        for (int mi = 0; mi < m_steps; ++mi) {
            const int a_seg = std::min(t3m, na - mi * t3m);
            for (int ni = 0; ni < n_steps; ++ni) {
                const int b_seg = std::min(t3n, nb - ni * t3n);
                const int eff = a_seg * b_seg;
                ++res.tasksT3;
                res.recordCycle(mac, eff, 0, network().cNetUnits);

                // One gathered A segment and one gathered B segment
                // feed the whole cycle; idle lanes are wasted slots.
                res.traffic.readsA += a_seg;
                res.traffic.wastedA += t3m - a_seg;
                res.traffic.readsB += b_seg;
                res.traffic.wastedB += t3n - b_seg;

                // Outer product: every product is a scattered partial
                // update of C.
                res.traffic.writesC += eff;
            }
        }
    }

    UNISTC_TRACE_COMPLETE(trace, TraceTrack::Sdpu,
                          task.isMv ? "T1 MV (outer)" : "T1 MM (outer)",
                          t0, res.cycles - t0);
}

} // namespace unistc
