/**
 * @file
 * GAMMA (Zhang et al., ASPLOS'21) — Gustavson-dataflow accelerator,
 * throughput-aligned to the common MAC budget per §VI-C. Table VI
 * geometry: 16(M) x (8 or 4)(N) x 1(K). Per K slice the whole 16-row
 * column of A occupies the M lanes — empty rows inside the slice
 * cannot be bypassed (the paper's stated weakness of its blocking
 * approach) — while the B row's nonzeros stream N at a time.
 */

#ifndef UNISTC_STC_GAMMA_HH
#define UNISTC_STC_GAMMA_HH

#include "stc/stc_model.hh"

namespace unistc
{

/** Gustavson-dataflow baseline. */
class Gamma : public StcModel
{
  public:
    explicit Gamma(MachineConfig cfg) : StcModel(cfg) {}

    std::string name() const override { return "GAMMA"; }

    std::unique_ptr<StcModel> clone() const override
    {
        return std::make_unique<Gamma>(cfg_);
    }

    NetworkConfig network() const override;

    void runBlock(const BlockTask &task, RunResult &res,
                  TraceSink *trace = nullptr) const override;
};

} // namespace unistc

#endif // UNISTC_STC_GAMMA_HH
