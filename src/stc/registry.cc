#include "stc/registry.hh"

#include "common/logging.hh"
#include "stc/ds_stc.hh"
#include "stc/gamma.hh"
#include "stc/nv_dtc.hh"
#include "stc/nv_stc24.hh"
#include "stc/rm_stc.hh"
#include "stc/sigma.hh"
#include "stc/trapezoid.hh"
#include "unistc/uni_stc.hh"

namespace unistc
{

StcModelPtr
makeStcModel(const std::string &name, const MachineConfig &cfg)
{
    if (name == "NV-DTC")
        return std::make_unique<NvDtc>(cfg);
    if (name == "NV-STC-2:4")
        return std::make_unique<NvStc24>(cfg);
    if (name == "DS-STC")
        return std::make_unique<DsStc>(cfg);
    if (name == "RM-STC")
        return std::make_unique<RmStc>(cfg);
    if (name == "GAMMA")
        return std::make_unique<Gamma>(cfg);
    if (name == "SIGMA")
        return std::make_unique<Sigma>(cfg);
    if (name == "Trapezoid")
        return std::make_unique<Trapezoid>(cfg);
    if (name == "Uni-STC")
        return std::make_unique<UniStc>(cfg);
    UNISTC_FATAL("unknown STC model '", name, "'");
}

std::vector<StcModelPtr>
makeCoreLineup(const MachineConfig &cfg)
{
    std::vector<StcModelPtr> models;
    models.push_back(makeStcModel("DS-STC", cfg));
    models.push_back(makeStcModel("RM-STC", cfg));
    models.push_back(makeStcModel("Uni-STC", cfg));
    return models;
}

std::vector<StcModelPtr>
makeFullLineup(const MachineConfig &cfg)
{
    std::vector<StcModelPtr> models;
    for (const auto &name : allModelNames())
        models.push_back(makeStcModel(name, cfg));
    return models;
}

std::vector<std::string>
allModelNames()
{
    return {"GAMMA",  "SIGMA",  "Trapezoid", "NV-DTC",
            "DS-STC", "RM-STC", "Uni-STC"};
}

} // namespace unistc
