/**
 * @file
 * Shared grouped row-dataflow engine parameterised on the T3 geometry
 * M x N x K. RM-STC (8x4x2 @FP64) and Trapezoid's three modes are all
 * instances of this engine:
 *
 *  - rows of A are processed in lock-stepped groups of M;
 *  - each row consumes its nonzero scalars K at a time;
 *  - for each scalar group the touched B rows are merged (row-merge)
 *    and the merged column set is swept N columns per sub-step;
 *  - a group's cycle count is the maximum over its rows (load
 *    imbalance inside a group leaves lanes idle — the inefficiency
 *    the paper attributes to both RM-STC and Trapezoid).
 */

#ifndef UNISTC_STC_ROW_DATAFLOW_HH
#define UNISTC_STC_ROW_DATAFLOW_HH

#include <algorithm>
#include <vector>

#include "common/bitops.hh"
#include "obs/trace.hh"
#include "stc/stc_model.hh"

namespace unistc
{

/** Per-cycle event tallies of one row's sub-step sequence. */
struct RowStep
{
    int products = 0;  ///< Effective MACs this sub-step.
    int readsB = 0;    ///< Effective B fetches.
    int wastedB = 0;   ///< B lanes toggled without a nonzero.
    int writesC = 0;   ///< Merged partial sums written.
};

/**
 * Execute one T1 task under the M x N x K grouped row dataflow,
 * accumulating into @p res. @p c_net_units is the architecture's
 * static C-write network scale recorded per cycle.
 *
 * @param gather_columns when true (RM-STC) the merged B columns are
 *        gathered into dense N-wide segments; when false (Trapezoid)
 *        the engine sweeps fixed N-wide column chunks of the output
 *        extent and can only skip chunks that are entirely empty —
 *        B-side sparsity inside a chunk wastes lanes.
 * @param trace optional event sink: one span per row group on the
 *        SDPU track.
 */
inline void
runRowDataflow(const BlockTask &task, const MachineConfig &cfg,
               int t3m, int t3n, int t3k, int c_net_units,
               RunResult &res, bool gather_columns = true,
               TraceSink *trace = nullptr)
{
    ++res.tasksT1;
    const std::uint64_t t1_start = res.cycles;
    const int mac = cfg.macCount;
    const int n_ext = task.nExtent();

    // Active-column mask of the N extent (all 16 for MM, col 0 for MV).
    const std::uint16_t n_mask = n_ext == kBlockSize
        ? 0xFFFFu
        : static_cast<std::uint16_t>((1u << n_ext) - 1u);

    for (int g = 0; g < kBlockSize; g += t3m) {
        // Build every row's sub-step trace, then merge in lock-step.
        std::vector<std::vector<RowStep>> row_steps;
        row_steps.reserve(t3m);

        for (int r = g; r < g + t3m && r < kBlockSize; ++r) {
            std::vector<RowStep> steps;
            std::vector<int> ks;
            forEachSetBit(task.a.rowBits(r),
                          [&](int k) { ks.push_back(k); });

            for (std::size_t p = 0; p < ks.size();
                 p += static_cast<std::size_t>(t3k)) {
                const int group_sz = static_cast<int>(
                    std::min<std::size_t>(t3k, ks.size() - p));
                // A scalars for this group are fetched once.
                res.traffic.readsA += group_sz;
                res.traffic.wastedA += t3k - group_sz;
                ++res.tasksT3;

                // Merged column set of the touched B rows.
                std::uint16_t merged = 0;
                for (int q = 0; q < group_sz; ++q) {
                    merged = static_cast<std::uint16_t>(
                        merged | task.b.rowBits(ks[p + q]));
                }
                merged &= n_mask;

                if (!merged) {
                    // Scalars matched nothing (e.g. sparse x): the
                    // sub-step is still issued and burns the lanes.
                    steps.push_back(RowStep{});
                    continue;
                }

                std::vector<int> cols;
                if (gather_columns) {
                    forEachSetBit(merged,
                                  [&](int c) { cols.push_back(c); });
                } else {
                    // Fixed chunk sweep: every column of a chunk
                    // containing at least one nonzero is visited.
                    for (int base = 0; base < n_ext; base += t3n) {
                        const std::uint16_t chunk_mask =
                            static_cast<std::uint16_t>(
                                ((1u << std::min(t3n,
                                                 n_ext - base)) -
                                 1u)
                                << base);
                        if (!(merged & chunk_mask))
                            continue;
                        for (int c = base;
                             c < std::min(base + t3n, n_ext); ++c) {
                            cols.push_back(c);
                        }
                    }
                }
                for (std::size_t ci = 0; ci < cols.size();
                     ci += static_cast<std::size_t>(t3n)) {
                    RowStep step;
                    const int chunk = static_cast<int>(
                        std::min<std::size_t>(t3n, cols.size() - ci));
                    for (int x = 0; x < chunk; ++x) {
                        const int c = cols[ci + x];
                        int hits = 0;
                        for (int q = 0; q < group_sz; ++q) {
                            if (task.b.test(ks[p + q], c))
                                ++hits;
                        }
                        step.products += hits;
                        step.readsB += hits;
                        // Lanes for scalars whose B row lacks column
                        // c toggle without useful work (row-merge's
                        // cost on disjoint rows).
                        step.wastedB += group_sz - hits;
                        ++step.writesC; // merged by the K-wide adder
                    }
                    steps.push_back(step);
                }
            }
            row_steps.push_back(std::move(steps));
        }

        std::size_t group_cycles = 0;
        for (const auto &steps : row_steps)
            group_cycles = std::max(group_cycles, steps.size());

        const std::uint64_t group_start = res.cycles;
        for (std::size_t cyc = 0; cyc < group_cycles; ++cyc) {
            int eff = 0;
            for (const auto &steps : row_steps) {
                if (cyc < steps.size()) {
                    eff += steps[cyc].products;
                    res.traffic.readsB += steps[cyc].readsB;
                    res.traffic.wastedB += steps[cyc].wastedB;
                    res.traffic.writesC += steps[cyc].writesC;
                }
            }
            res.recordCycle(mac, eff, 0, c_net_units);
        }
        if (group_cycles > 0) {
            UNISTC_TRACE_COMPLETE(trace, TraceTrack::Sdpu,
                                  "row group " + std::to_string(g / t3m),
                                  group_start, res.cycles - group_start);
        }
    }

    UNISTC_TRACE_COMPLETE(trace, TraceTrack::Sdpu, "T1 (row dataflow)",
                          t1_start, res.cycles - t1_start);
}

} // namespace unistc

#endif // UNISTC_STC_ROW_DATAFLOW_HH
