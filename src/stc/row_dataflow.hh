/**
 * @file
 * Shared grouped row-dataflow engine parameterised on the T3 geometry
 * M x N x K. RM-STC (8x4x2 @FP64) and Trapezoid's three modes are all
 * instances of this engine:
 *
 *  - rows of A are processed in lock-stepped groups of M;
 *  - each row consumes its nonzero scalars K at a time;
 *  - for each scalar group the touched B rows are merged (row-merge)
 *    and the merged column set is swept N columns per sub-step;
 *  - a group's cycle count is the maximum over its rows (load
 *    imbalance inside a group leaves lanes idle — the inefficiency
 *    the paper attributes to both RM-STC and Trapezoid).
 */

#ifndef UNISTC_STC_ROW_DATAFLOW_HH
#define UNISTC_STC_ROW_DATAFLOW_HH

#include <algorithm>

#include "common/bitops.hh"
#include "common/small_vector.hh"
#include "obs/trace.hh"
#include "stc/stc_model.hh"

namespace unistc
{

/** Per-cycle event tallies of one row's sub-step sequence. */
struct RowStep
{
    int products = 0;  ///< Effective MACs this sub-step.
    int readsB = 0;    ///< Effective B fetches.
    int wastedB = 0;   ///< B lanes toggled without a nonzero.
    int writesC = 0;   ///< Merged partial sums written.
};

/**
 * Execute one T1 task under the M x N x K grouped row dataflow,
 * accumulating into @p res. @p c_net_units is the architecture's
 * static C-write network scale recorded per cycle.
 *
 * @param gather_columns when true (RM-STC) the merged B columns are
 *        gathered into dense N-wide segments; when false (Trapezoid)
 *        the engine sweeps fixed N-wide column chunks of the output
 *        extent and can only skip chunks that are entirely empty —
 *        B-side sparsity inside a chunk wastes lanes.
 * @param trace optional event sink: one span per row group on the
 *        SDPU track.
 */
inline void
runRowDataflow(const BlockTask &task, const MachineConfig &cfg,
               int t3m, int t3n, int t3k, int c_net_units,
               RunResult &res, bool gather_columns = true,
               TraceSink *trace = nullptr)
{
    ++res.tasksT1;
    const std::uint64_t t1_start = res.cycles;
    const int mac = cfg.macCount;
    const int n_ext = task.nExtent();

    // Active-column mask of the N extent (all 16 for MM, col 0 for MV).
    const std::uint16_t n_mask = n_ext == kBlockSize
        ? 0xFFFFu
        : static_cast<std::uint16_t>((1u << n_ext) - 1u);
    // Column bitmaps of B: bit k of bCols[c] says row k holds column c.
    const std::uint16_t *b_cols = task.bInfo().cols.data();

    // Per-row sub-step sequences, reused across groups. A row emits at
    // most ceil(16/t3k) scalar groups x ceil(16/t3n) column chunks
    // sub-steps, which stays within the inline capacity for every
    // RM-STC/Trapezoid geometry (worst case 8x8 = 64).
    SmallVector<RowStep, 64> row_steps[kBlockSize];

    for (int g = 0; g < kBlockSize; g += t3m) {
        // Build every row's sub-step trace, then merge in lock-step.
        const int n_rows = std::min(t3m, kBlockSize - g);

        for (int ri = 0; ri < n_rows; ++ri) {
            SmallVector<RowStep, 64> &steps = row_steps[ri];
            steps.clear();
            std::uint8_t ks[kBlockSize];
            int n_ks = 0;
            forEachSetBit(task.a.rowBits(g + ri), [&](int k) {
                ks[n_ks++] = static_cast<std::uint8_t>(k);
            });

            for (int p = 0; p < n_ks; p += t3k) {
                const int group_sz = std::min(t3k, n_ks - p);
                // A scalars for this group are fetched once.
                res.traffic.readsA += group_sz;
                res.traffic.wastedA += t3k - group_sz;
                ++res.tasksT3;

                // Merged column set and K-lane mask of the touched B
                // rows. The group's K indices are distinct bits of one
                // A row, so a per-column hit count is a popcount of
                // the B column bitmap against the lane mask.
                std::uint16_t merged = 0;
                std::uint16_t gmask = 0;
                for (int q = 0; q < group_sz; ++q) {
                    merged = static_cast<std::uint16_t>(
                        merged | task.b.rowBits(ks[p + q]));
                    gmask = setBit(gmask, ks[p + q]);
                }
                merged &= n_mask;

                if (!merged) {
                    // Scalars matched nothing (e.g. sparse x): the
                    // sub-step is still issued and burns the lanes.
                    steps.push_back(RowStep{});
                    continue;
                }

                std::uint8_t cols[kBlockSize];
                int n_cols = 0;
                if (gather_columns) {
                    forEachSetBit(merged, [&](int c) {
                        cols[n_cols++] = static_cast<std::uint8_t>(c);
                    });
                } else {
                    // Fixed chunk sweep: every column of a chunk
                    // containing at least one nonzero is visited.
                    for (int base = 0; base < n_ext; base += t3n) {
                        const int hi = std::min(base + t3n, n_ext);
                        const std::uint16_t chunk_mask =
                            static_cast<std::uint16_t>(
                                ((1u << (hi - base)) - 1u) << base);
                        if (!(merged & chunk_mask))
                            continue;
                        for (int c = base; c < hi; ++c)
                            cols[n_cols++] =
                                static_cast<std::uint8_t>(c);
                    }
                }
                for (int ci = 0; ci < n_cols; ci += t3n) {
                    RowStep step;
                    const int chunk = std::min(t3n, n_cols - ci);
                    for (int x = 0; x < chunk; ++x) {
                        const int hits = popcount16(
                            b_cols[cols[ci + x]] & gmask);
                        step.products += hits;
                        step.readsB += hits;
                        // Lanes for scalars whose B row lacks column
                        // c toggle without useful work (row-merge's
                        // cost on disjoint rows).
                        step.wastedB += group_sz - hits;
                        ++step.writesC; // merged by the K-wide adder
                    }
                    steps.push_back(step);
                }
            }
        }

        std::size_t group_cycles = 0;
        for (int ri = 0; ri < n_rows; ++ri)
            group_cycles = std::max(group_cycles, row_steps[ri].size());

        const std::uint64_t group_start = res.cycles;
        for (std::size_t cyc = 0; cyc < group_cycles; ++cyc) {
            int eff = 0;
            for (int ri = 0; ri < n_rows; ++ri) {
                const SmallVector<RowStep, 64> &steps = row_steps[ri];
                if (cyc < steps.size()) {
                    eff += steps[cyc].products;
                    res.traffic.readsB += steps[cyc].readsB;
                    res.traffic.wastedB += steps[cyc].wastedB;
                    res.traffic.writesC += steps[cyc].writesC;
                }
            }
            res.recordCycle(mac, eff, 0, c_net_units);
        }
        if (group_cycles > 0) {
            UNISTC_TRACE_COMPLETE(trace, TraceTrack::Sdpu,
                                  "row group " + std::to_string(g / t3m),
                                  group_start, res.cycles - group_start);
        }
    }

    UNISTC_TRACE_COMPLETE(trace, TraceTrack::Sdpu, "T1 (row dataflow)",
                          t1_start, res.cycles - t1_start);
}

} // namespace unistc

#endif // UNISTC_STC_ROW_DATAFLOW_HH
