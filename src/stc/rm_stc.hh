/**
 * @file
 * RM-STC — the row-merge sparse tensor core (Huang et al., MICRO'23),
 * the paper's primary state-of-the-art baseline. Table VI geometry:
 * T3 = 8(M) x 4(N) x 2(K) @FP64 (16 x 4 x 2 @FP32), with a T4 vector
 * task of 1 x 1 x 4. Modelled via the grouped row-merge dataflow:
 * two A scalars per row per step scale their (merged) B rows four
 * columns at a time, eight rows in lock-step.
 */

#ifndef UNISTC_STC_RM_STC_HH
#define UNISTC_STC_RM_STC_HH

#include "stc/stc_model.hh"

namespace unistc
{

/** Row-merge sparse tensor core baseline. */
class RmStc : public StcModel
{
  public:
    explicit RmStc(MachineConfig cfg) : StcModel(cfg) {}

    std::string name() const override { return "RM-STC"; }

    std::unique_ptr<StcModel> clone() const override
    {
        return std::make_unique<RmStc>(cfg_);
    }

    NetworkConfig network() const override;

    void runBlock(const BlockTask &task, RunResult &res,
                  TraceSink *trace = nullptr) const override;
};

} // namespace unistc

#endif // UNISTC_STC_RM_STC_HH
