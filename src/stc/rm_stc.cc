#include "stc/rm_stc.hh"

#include "stc/row_dataflow.hh"

namespace unistc
{

NetworkConfig
RmStc::network() const
{
    // Row merging pre-combines K=2 partials before write-back and its
    // hardware decoder narrows the operand network relative to DS-STC,
    // but the design still ships partial rows through a sizeable
    // crossbar every cycle.
    NetworkConfig net;
    net.aFactor = 5.4;
    net.bFactor = 5.0;
    net.cFactor = 3.6;
    net.cNetUnits = 32;
    net.dynamicGating = false;
    return net;
}

void
RmStc::runBlock(const BlockTask &task, RunResult &res,
                TraceSink *trace) const
{
    const int t3m = cfg_.precision == Precision::FP64 ? 8 : 16;
    runRowDataflow(task, cfg_, t3m, 4, 2, network().cNetUnits, res,
                   /*gather_columns=*/true, trace);
}

} // namespace unistc
