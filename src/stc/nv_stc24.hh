/**
 * @file
 * NV-STC-2:4 — the A100's Sparse Tensor Core mode (extension). The
 * paper's introduction situates Uni-STC against tensor cores "of
 * various ... structured sparsity capabilities": the production
 * design accelerates only 2:4 structured sparsity (at most 2
 * nonzeros in every 4-wide group of an A row along K), doubling
 * throughput when the operand conforms and falling back to the dense
 * path otherwise. This model makes that contrast measurable.
 */

#ifndef UNISTC_STC_NV_STC24_HH
#define UNISTC_STC_NV_STC24_HH

#include "stc/stc_model.hh"

namespace unistc
{

/** True when every 4-wide K group of every A row has <= 2 nonzeros. */
bool conformsTo24(const BlockPattern &a);

/** A100 Sparse Tensor Core (2:4 structured sparsity) model. */
class NvStc24 : public StcModel
{
  public:
    explicit NvStc24(MachineConfig cfg) : StcModel(cfg) {}

    std::string name() const override { return "NV-STC-2:4"; }

    std::unique_ptr<StcModel> clone() const override
    {
        return std::make_unique<NvStc24>(cfg_);
    }

    NetworkConfig network() const override;

    void runBlock(const BlockTask &task, RunResult &res,
                  TraceSink *trace = nullptr) const override;
};

} // namespace unistc

#endif // UNISTC_STC_NV_STC24_HH
