#include "stc/stc_model.hh"

#include "engine/task_stream.hh"

namespace unistc
{

void
StcModel::runStream(TaskStream &stream, RunResult &res,
                    TraceSink *trace) const
{
    StreamedTask item;
    while (stream.next(item))
        runBlock(item.task, res, trace);
}

BlockTask
BlockTask::mm(const BlockPattern &a, const BlockPattern &b)
{
    BlockTask t;
    t.a = a;
    t.b = b;
    t.c = blockProductPattern(a, b);
    t.isMv = false;
    return t;
}

BlockTask
BlockTask::mv(const BlockPattern &a, std::uint16_t x_mask)
{
    BlockTask t;
    t.a = a;
    t.b = vectorAsBlock(x_mask);
    t.c = blockProductPattern(t.a, t.b);
    t.isMv = true;
    return t;
}

} // namespace unistc
