#include "stc/stc_model.hh"

#include "engine/task_stream.hh"

namespace unistc
{

void
StcModel::runStream(TaskStream &stream, RunResult &res,
                    TraceSink *trace) const
{
    StreamedTask item;
    while (stream.next(item))
        runBlock(item.task, res, trace);
}

BlockTask
BlockTask::mm(const BlockPattern &a, const BlockPattern &b)
{
    return mm(a, b, nullptr, nullptr);
}

BlockTask
BlockTask::mm(const BlockPattern &a, const BlockPattern &b,
              const PatternMeta *a_meta, const PatternMeta *b_meta)
{
    BlockTask t;
    t.a = a;
    t.b = b;
    t.isMv = false;
    if (a_meta != nullptr) {
        t.aMeta_ = *a_meta;
        t.aReady_ = true;
    }
    if (b_meta != nullptr) {
        t.bMeta_ = *b_meta;
        t.bReady_ = true;
    }
    return t;
}

BlockTask
BlockTask::mv(const BlockPattern &a, std::uint16_t x_mask)
{
    return mv(a, x_mask, nullptr, nullptr);
}

BlockTask
BlockTask::mv(const BlockPattern &a, std::uint16_t x_mask,
              const PatternMeta *a_meta, const PatternMeta *b_meta)
{
    BlockTask t = mm(a, vectorAsBlock(x_mask), a_meta, b_meta);
    t.isMv = true;
    return t;
}

} // namespace unistc
