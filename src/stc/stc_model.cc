#include "stc/stc_model.hh"

namespace unistc
{

BlockTask
BlockTask::mm(const BlockPattern &a, const BlockPattern &b)
{
    BlockTask t;
    t.a = a;
    t.b = b;
    t.c = blockProductPattern(a, b);
    t.isMv = false;
    return t;
}

BlockTask
BlockTask::mv(const BlockPattern &a, std::uint16_t x_mask)
{
    BlockTask t;
    t.a = a;
    t.b = vectorAsBlock(x_mask);
    t.c = blockProductPattern(t.a, t.b);
    t.isMv = true;
    return t;
}

} // namespace unistc
