/**
 * @file
 * Trapezoid (Yang et al., ISCA'24) — a versatile dense/sparse matrix
 * engine with three operating modes (Table VI):
 *   TrIP: 16 x (4 or 2) x 2,
 *   TrGT: 16 x 4 x (2 or 1),
 *   TrGS:  8 x 4 x (4 or 2).
 * Following §VI-C ("for multi-mode architectures ... we select their
 * best-performing configurations"), each T1 task is executed under
 * all three geometries and the fastest result is kept. As in the
 * paper, this is a throughput-aligned adaptation rather than a
 * faithful reimplementation of the original accelerator.
 */

#ifndef UNISTC_STC_TRAPEZOID_HH
#define UNISTC_STC_TRAPEZOID_HH

#include "stc/stc_model.hh"

namespace unistc
{

/** Trapezoid baseline (best-of-three-modes). */
class Trapezoid : public StcModel
{
  public:
    explicit Trapezoid(MachineConfig cfg) : StcModel(cfg) {}

    std::string name() const override { return "Trapezoid"; }

    std::unique_ptr<StcModel> clone() const override
    {
        return std::make_unique<Trapezoid>(cfg_);
    }

    NetworkConfig network() const override;

    void runBlock(const BlockTask &task, RunResult &res,
                  TraceSink *trace = nullptr) const override;
};

} // namespace unistc

#endif // UNISTC_STC_TRAPEZOID_HH
