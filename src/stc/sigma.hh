/**
 * @file
 * SIGMA (Qin et al., HPCA'20) — flexible-interconnect GEMM engine,
 * throughput-aligned per §VI-C. Table VI geometry: 1(M) x (8 or 4)(N)
 * x 16(K). The nonzeros of one A row are held stationary across the
 * 16 K lanes while B columns stream N at a time. SIGMA's modes are
 * either single-side sparse (B streamed dense — zeros of B burn
 * lanes) or pay heavy transmission overhead, which is what limits it
 * against dual-side designs (§VI-C-1).
 */

#ifndef UNISTC_STC_SIGMA_HH
#define UNISTC_STC_SIGMA_HH

#include "stc/stc_model.hh"

namespace unistc
{

/** Flexible reduction-tree baseline. */
class Sigma : public StcModel
{
  public:
    explicit Sigma(MachineConfig cfg) : StcModel(cfg) {}

    std::string name() const override { return "SIGMA"; }

    std::unique_ptr<StcModel> clone() const override
    {
        return std::make_unique<Sigma>(cfg_);
    }

    NetworkConfig network() const override;

    void runBlock(const BlockTask &task, RunResult &res,
                  TraceSink *trace = nullptr) const override;
};

} // namespace unistc

#endif // UNISTC_STC_SIGMA_HH
