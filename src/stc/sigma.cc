#include "stc/sigma.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "obs/trace.hh"

namespace unistc
{

NetworkConfig
Sigma::network() const
{
    // Benes networks give SIGMA flexible but expensive routing.
    NetworkConfig net;
    net.aFactor = 2.6;
    net.bFactor = 2.4;
    net.cFactor = 2.0;
    net.cNetUnits = 32;
    net.dynamicGating = false;
    return net;
}

void
Sigma::runBlock(const BlockTask &task, RunResult &res,
                TraceSink *trace) const
{
    // SIGMA's flexible distribution network packs the nonzeros of A
    // (in row-major order, spanning row boundaries) into the K-lane
    // array; the forwarding-adder reduction tree produces segmented
    // per-row sums. B is streamed densely N columns per cycle —
    // SIGMA's single-side-sparse mode cannot exploit B's sparsity,
    // which is what limits it against dual-side designs (§VI-C-1).
    ++res.tasksT1;
    const std::uint64_t t0 = res.cycles;
    const int mac = cfg_.macCount;
    const int n_ext = task.nExtent();
    const int t3n = cfg_.precision == Precision::FP64 ? 4 : 8;
    const int t3k = 16;

    // Gather A nonzeros row-major: (row, k) pairs. A 16x16 block holds
    // at most 256 nonzeros, so fixed stack arrays suffice.
    std::uint8_t nz_row[kBlockSize * kBlockSize];
    std::uint8_t nz_k[kBlockSize * kBlockSize];
    int n_nz = 0;
    for (int r = 0; r < kBlockSize; ++r) {
        forEachSetBit(task.a.rowBits(r), [&](int k) {
            nz_row[n_nz] = static_cast<std::uint8_t>(r);
            nz_k[n_nz] = static_cast<std::uint8_t>(k);
            ++n_nz;
        });
    }
    if (n_nz == 0)
        return;

    const std::uint16_t *b_cols = task.bInfo().cols.data();
    const int n_steps = static_cast<int>(ceilDiv(n_ext, t3n));
    for (int base = 0; base < n_nz; base += t3k) {
        const int group = std::min(t3k, n_nz - base);
        // The packed A group is loaded into the lanes once per sweep.
        res.traffic.readsA += group;
        res.traffic.wastedA += t3k - group;

        // The same K index can occupy several lanes (different rows of
        // A), so per-column hit counting is multiplicity-weighted.
        // Decompose the lane counts per K into bit-planes: plane p has
        // bit k set when lane-count(k) has bit p set, making
        // hits(c) = sum_p 2^p * popcount(bCol(c) & plane[p]).
        int cnt[kBlockSize] = {};
        for (int g = 0; g < group; ++g)
            ++cnt[nz_k[base + g]];
        std::uint16_t plane[5] = {};
        for (int k = 0; k < kBlockSize; ++k) {
            for (int p = 0; p < 5; ++p) {
                if (cnt[k] & (1 << p))
                    plane[p] = setBit(plane[p], k);
            }
        }

        // Per-row segment writes per streamed column (loop-invariant
        // across the N sweep: the group's row layout does not change).
        int row_segments = 1;
        for (int g = 1; g < group; ++g) {
            if (nz_row[base + g] != nz_row[base + g - 1])
                ++row_segments;
        }

        for (int ni = 0; ni < n_steps; ++ni) {
            const int chunk = std::min(t3n, n_ext - ni * t3n);
            int eff = 0;
            for (int x = 0; x < chunk; ++x) {
                const std::uint16_t b_col = b_cols[ni * t3n + x];
                int hits = 0;
                for (int p = 0; p < 5; ++p)
                    hits += popcount16(b_col & plane[p]) << p;
                eff += hits;
                res.traffic.readsB += hits;
                // Dense streaming: a B operand slot toggles for every
                // stationary lane whether or not B holds a nonzero.
                res.traffic.wastedB += group - hits;
                // The reduction tree emits one partial sum per row
                // segment present in the group (conservatively: one
                // write per touched row per column).
            }
            res.traffic.writesC +=
                static_cast<std::uint64_t>(row_segments) * chunk;
            ++res.tasksT3;
            res.recordCycle(mac, eff, 0, network().cNetUnits);
        }
    }

    UNISTC_TRACE_COMPLETE(trace, TraceTrack::Sdpu,
                          task.isMv ? "T1 MV (sigma)" : "T1 MM (sigma)",
                          t0, res.cycles - t0);
}

} // namespace unistc
