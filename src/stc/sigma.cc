#include "stc/sigma.hh"

#include <algorithm>
#include <vector>

#include "common/bitops.hh"
#include "obs/trace.hh"

namespace unistc
{

NetworkConfig
Sigma::network() const
{
    // Benes networks give SIGMA flexible but expensive routing.
    NetworkConfig net;
    net.aFactor = 2.6;
    net.bFactor = 2.4;
    net.cFactor = 2.0;
    net.cNetUnits = 32;
    net.dynamicGating = false;
    return net;
}

void
Sigma::runBlock(const BlockTask &task, RunResult &res,
                TraceSink *trace) const
{
    // SIGMA's flexible distribution network packs the nonzeros of A
    // (in row-major order, spanning row boundaries) into the K-lane
    // array; the forwarding-adder reduction tree produces segmented
    // per-row sums. B is streamed densely N columns per cycle —
    // SIGMA's single-side-sparse mode cannot exploit B's sparsity,
    // which is what limits it against dual-side designs (§VI-C-1).
    ++res.tasksT1;
    const std::uint64_t t0 = res.cycles;
    const int mac = cfg_.macCount;
    const int n_ext = task.nExtent();
    const int t3n = cfg_.precision == Precision::FP64 ? 4 : 8;
    const int t3k = 16;

    // Gather A nonzeros row-major: (row, k) pairs.
    std::vector<std::pair<int, int>> nz;
    nz.reserve(256);
    for (int r = 0; r < kBlockSize; ++r) {
        forEachSetBit(task.a.rowBits(r),
                      [&](int k) { nz.emplace_back(r, k); });
    }
    if (nz.empty())
        return;

    const int n_steps = static_cast<int>(ceilDiv(n_ext, t3n));
    for (std::size_t base = 0; base < nz.size();
         base += static_cast<std::size_t>(t3k)) {
        const int group = static_cast<int>(
            std::min<std::size_t>(t3k, nz.size() - base));
        // The packed A group is loaded into the lanes once per sweep.
        res.traffic.readsA += group;
        res.traffic.wastedA += t3k - group;

        for (int ni = 0; ni < n_steps; ++ni) {
            const int chunk = std::min(t3n, n_ext - ni * t3n);
            int eff = 0;
            for (int x = 0; x < chunk; ++x) {
                const int c = ni * t3n + x;
                int hits = 0;
                for (int g = 0; g < group; ++g) {
                    const int k = nz[base + g].second;
                    if (task.b.test(k, c))
                        ++hits;
                }
                eff += hits;
                res.traffic.readsB += hits;
                // Dense streaming: a B operand slot toggles for every
                // stationary lane whether or not B holds a nonzero.
                res.traffic.wastedB += group - hits;
                // The reduction tree emits one partial sum per row
                // segment present in the group (conservatively: one
                // write per touched row per column).
            }
            // Count per-row segment writes for this column chunk.
            int row_segments = 1;
            for (int g = 1; g < group; ++g) {
                if (nz[base + g].first != nz[base + g - 1].first)
                    ++row_segments;
            }
            res.traffic.writesC +=
                static_cast<std::uint64_t>(row_segments) * chunk;
            ++res.tasksT3;
            res.recordCycle(mac, eff, 0, network().cNetUnits);
        }
    }

    UNISTC_TRACE_COMPLETE(trace, TraceTrack::Sdpu,
                          task.isMv ? "T1 MV (sigma)" : "T1 MM (sigma)",
                          t0, res.cycles - t0);
}

} // namespace unistc
