#include "stc/gamma.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "obs/trace.hh"

namespace unistc
{

NetworkConfig
Gamma::network() const
{
    NetworkConfig net;
    net.aFactor = 2.8;
    net.bFactor = 2.6;
    net.cFactor = 2.0;
    net.cNetUnits = 32;
    net.dynamicGating = false;
    return net;
}

void
Gamma::runBlock(const BlockTask &task, RunResult &res,
                TraceSink *trace) const
{
    ++res.tasksT1;
    const std::uint64_t t0 = res.cycles;
    const int mac = cfg_.macCount;
    const int n_ext = task.nExtent();
    const int t3m = 16;
    const int t3n = cfg_.precision == Precision::FP64 ? 4 : 8;
    const std::uint16_t n_mask = n_ext == kBlockSize
        ? 0xFFFFu
        : static_cast<std::uint16_t>((1u << n_ext) - 1u);
    const PatternMeta &a_meta = task.aInfo();

    for (int k = 0; k < kBlockSize; ++k) {
        const int na = a_meta.colCnt[k];
        const int nb = popcount16(task.b.rowBits(k) & n_mask);
        // A fully empty K slice is skipped by the front-end; a slice
        // with work engages all 16 M lanes, empty rows included.
        if (na == 0 || nb == 0)
            continue;

        const int n_steps = static_cast<int>(ceilDiv(nb, t3n));
        for (int ni = 0; ni < n_steps; ++ni) {
            const int b_seg = std::min(t3n, nb - ni * t3n);
            const int eff = na * b_seg;
            ++res.tasksT3;
            res.recordCycle(mac, eff, 0, network().cNetUnits);

            // All 16 A lanes are loaded even for empty rows.
            res.traffic.readsA += na;
            res.traffic.wastedA += t3m - na;
            res.traffic.readsB += b_seg;
            res.traffic.wastedB += t3n - b_seg;
            // Gustavson accumulates rows of C; each active lane
            // writes one partial per streamed column.
            res.traffic.writesC += eff;
        }
    }

    UNISTC_TRACE_COMPLETE(trace, TraceTrack::Sdpu,
                          task.isMv ? "T1 MV (gustavson)"
                                    : "T1 MM (gustavson)",
                          t0, res.cycles - t0);
}

} // namespace unistc
