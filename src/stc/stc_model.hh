/**
 * @file
 * Abstract sparse-tensor-core model. Every architecture (NV-DTC,
 * DS-STC, RM-STC, GAMMA, SIGMA, Trapezoid, Uni-STC) consumes the same
 * T1 block-task stream the software dataflow (Algorithms 1 and 2)
 * produces and reports cycles, per-cycle utilisation, operand traffic
 * and scheduling events into a RunResult.
 */

#ifndef UNISTC_STC_STC_MODEL_HH
#define UNISTC_STC_STC_MODEL_HH

#include <memory>
#include <string>

#include "bbc/block_pattern.hh"
#include "bbc/pattern_meta.hh"
#include "sim/config.hh"
#include "sim/network.hh"
#include "sim/result.hh"

namespace unistc
{

class TaskStream;
class TraceSink;

/**
 * One T1 task: C += A x B over 16x16 blocks. Matrix-vector kernels
 * (Algorithm 1) embed the x segment as a 16x1 block via
 * vectorAsBlock(), flagged by isMv so models can apply their MV
 * instruction variant (N = 1 lane population).
 *
 * The derived pattern summaries (column masks, tile bitmaps, per-lane
 * nonzero counts) are memoized on the task: the first model to call
 * aInfo()/bInfo() computes them, and every later model in a lineup
 * fan-out (--arch a,b,c hands the same task to each model slot in
 * turn) reuses the cached copy. Runners that stream many tasks over
 * the same block can prime the cache at construction so even the
 * first model skips the computation.
 */
struct BlockTask
{
    BlockPattern a;  ///< Structural pattern of the A block.
    BlockPattern b;  ///< Pattern of the B block (or x as a column).
    bool isMv = false;

    /** Effective N extent: 1 for MV tasks, 16 for MM tasks. */
    int nExtent() const { return isMv ? 1 : kBlockSize; }

    /** Structural pattern of the C update, derived on demand. */
    BlockPattern cPattern() const { return blockProductPattern(a, b); }

    /** Cached summaries of the A pattern (computed on first use). */
    const PatternMeta &
    aInfo() const
    {
        if (!aReady_) {
            aMeta_ = computePatternMeta(a);
            aReady_ = true;
        }
        return aMeta_;
    }

    /** Cached summaries of the B pattern (computed on first use). */
    const PatternMeta &
    bInfo() const
    {
        if (!bReady_) {
            bMeta_ = computePatternMeta(b);
            bReady_ = true;
        }
        return bMeta_;
    }

    /** Build an MM task; summaries are computed lazily. */
    static BlockTask mm(const BlockPattern &a, const BlockPattern &b);

    /** MM task with pre-computed summaries (either may be null). */
    static BlockTask mm(const BlockPattern &a, const BlockPattern &b,
                        const PatternMeta *a_meta,
                        const PatternMeta *b_meta);

    /** Build an MV task from A and the x-segment mask. */
    static BlockTask mv(const BlockPattern &a, std::uint16_t x_mask);

    /** MV task with pre-computed summaries (either may be null). */
    static BlockTask mv(const BlockPattern &a, std::uint16_t x_mask,
                        const PatternMeta *a_meta,
                        const PatternMeta *b_meta);

  private:
    mutable PatternMeta aMeta_;
    mutable PatternMeta bMeta_;
    mutable bool aReady_ = false;
    mutable bool bReady_ = false;
};

/** Architecture model interface. */
class StcModel
{
  public:
    explicit StcModel(MachineConfig cfg) : cfg_(cfg) {}
    virtual ~StcModel() = default;

    StcModel(const StcModel &) = delete;
    StcModel &operator=(const StcModel &) = delete;

    /** Architecture name as printed in tables ("Uni-STC", ...). */
    virtual std::string name() const = 0;

    /**
     * Deep copy preserving every construction parameter (including
     * non-config knobs like Uni-STC's task ordering). The sweep
     * executor clones models so each parallel job simulates on its
     * own instance.
     */
    virtual std::unique_ptr<StcModel> clone() const = 0;

    /** Interconnect description used by the energy model. */
    virtual NetworkConfig network() const = 0;

    /**
     * Simulate one T1 block task and accumulate cycles, utilisation
     * histogram, traffic and scheduling counters into @p res.
     * Implementations must uphold:
     *  - products added == blockProductCount(a, b);
     *  - per-cycle effective products <= cfg().macCount.
     *
     * @param trace optional event sink; when attached, models emit
     *        per-stage spans against the res.cycles virtual clock.
     */
    virtual void runBlock(const BlockTask &task, RunResult &res,
                          TraceSink *trace = nullptr) const = 0;

    /**
     * Drain a T1 task stream through runBlock(), accumulating into
     * @p res — the single-model way to consume a kernel plan's
     * stream (engine/task_stream.hh). Virtual so future
     * architectures can overlap task generation with execution; the
     * default pulls one task at a time and never materialises the
     * stream.
     */
    virtual void runStream(TaskStream &stream, RunResult &res,
                           TraceSink *trace = nullptr) const;

    const MachineConfig &config() const { return cfg_; }

  protected:
    MachineConfig cfg_;
};

using StcModelPtr = std::unique_ptr<StcModel>;

} // namespace unistc

#endif // UNISTC_STC_STC_MODEL_HH
