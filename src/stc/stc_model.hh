/**
 * @file
 * Abstract sparse-tensor-core model. Every architecture (NV-DTC,
 * DS-STC, RM-STC, GAMMA, SIGMA, Trapezoid, Uni-STC) consumes the same
 * T1 block-task stream the software dataflow (Algorithms 1 and 2)
 * produces and reports cycles, per-cycle utilisation, operand traffic
 * and scheduling events into a RunResult.
 */

#ifndef UNISTC_STC_STC_MODEL_HH
#define UNISTC_STC_STC_MODEL_HH

#include <memory>
#include <string>

#include "bbc/block_pattern.hh"
#include "sim/config.hh"
#include "sim/network.hh"
#include "sim/result.hh"

namespace unistc
{

class TaskStream;
class TraceSink;

/**
 * One T1 task: C += A x B over 16x16 blocks. Matrix-vector kernels
 * (Algorithm 1) embed the x segment as a 16x1 block via
 * vectorAsBlock(), flagged by isMv so models can apply their MV
 * instruction variant (N = 1 lane population).
 */
struct BlockTask
{
    BlockPattern a;  ///< Structural pattern of the A block.
    BlockPattern b;  ///< Pattern of the B block (or x as a column).
    BlockPattern c;  ///< Structural pattern of the C update (A x B).
    bool isMv = false;

    /** Effective N extent: 1 for MV tasks, 16 for MM tasks. */
    int nExtent() const { return isMv ? 1 : kBlockSize; }

    /** Build a fully formed MM task (C pattern derived from A, B). */
    static BlockTask mm(const BlockPattern &a, const BlockPattern &b);

    /** Build an MV task from A and the x-segment mask. */
    static BlockTask mv(const BlockPattern &a, std::uint16_t x_mask);
};

/** Architecture model interface. */
class StcModel
{
  public:
    explicit StcModel(MachineConfig cfg) : cfg_(cfg) {}
    virtual ~StcModel() = default;

    StcModel(const StcModel &) = delete;
    StcModel &operator=(const StcModel &) = delete;

    /** Architecture name as printed in tables ("Uni-STC", ...). */
    virtual std::string name() const = 0;

    /**
     * Deep copy preserving every construction parameter (including
     * non-config knobs like Uni-STC's task ordering). The sweep
     * executor clones models so each parallel job simulates on its
     * own instance.
     */
    virtual std::unique_ptr<StcModel> clone() const = 0;

    /** Interconnect description used by the energy model. */
    virtual NetworkConfig network() const = 0;

    /**
     * Simulate one T1 block task and accumulate cycles, utilisation
     * histogram, traffic and scheduling counters into @p res.
     * Implementations must uphold:
     *  - products added == blockProductCount(a, b);
     *  - per-cycle effective products <= cfg().macCount.
     *
     * @param trace optional event sink; when attached, models emit
     *        per-stage spans against the res.cycles virtual clock.
     */
    virtual void runBlock(const BlockTask &task, RunResult &res,
                          TraceSink *trace = nullptr) const = 0;

    /**
     * Drain a T1 task stream through runBlock(), accumulating into
     * @p res — the single-model way to consume a kernel plan's
     * stream (engine/task_stream.hh). Virtual so future
     * architectures can overlap task generation with execution; the
     * default pulls one task at a time and never materialises the
     * stream.
     */
    virtual void runStream(TaskStream &stream, RunResult &res,
                           TraceSink *trace = nullptr) const;

    const MachineConfig &config() const { return cfg_; }

  protected:
    MachineConfig cfg_;
};

using StcModelPtr = std::unique_ptr<StcModel>;

} // namespace unistc

#endif // UNISTC_STC_STC_MODEL_HH
