/**
 * @file
 * NV-DTC — the NVIDIA A100's original dense tensor core, modelled as
 * the no-sparsity-adaptation baseline. It walks the full 16x16x16 T1
 * task as a fixed grid of dense T3 tasks (Table VI: (8 or 4)x4x4), so
 * cycles are data-independent and utilisation equals block density.
 */

#ifndef UNISTC_STC_NV_DTC_HH
#define UNISTC_STC_NV_DTC_HH

#include "stc/stc_model.hh"

namespace unistc
{

/** Dense tensor core baseline. */
class NvDtc : public StcModel
{
  public:
    explicit NvDtc(MachineConfig cfg) : StcModel(cfg) {}

    std::string name() const override { return "NV-DTC"; }

    std::unique_ptr<StcModel> clone() const override
    {
        return std::make_unique<NvDtc>(cfg_);
    }

    NetworkConfig network() const override;

    void runBlock(const BlockTask &task, RunResult &res,
                  TraceSink *trace = nullptr) const override;
};

} // namespace unistc

#endif // UNISTC_STC_NV_DTC_HH
