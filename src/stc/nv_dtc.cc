#include "stc/nv_dtc.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "obs/trace.hh"

namespace unistc
{

NetworkConfig
NvDtc::network() const
{
    // A dense tensor core routes operands on fixed wires: very cheap
    // per byte, modest fixed write fabric.
    NetworkConfig net;
    net.aFactor = 8.0;
    net.bFactor = 8.0;
    net.cFactor = 4.0;
    net.cNetUnits = 4;
    net.dynamicGating = false;
    return net;
}

void
NvDtc::runBlock(const BlockTask &task, RunResult &res,
                TraceSink *trace) const
{
    // The GPU front-end skips instructions with an empty operand
    // (coarse-grained skipping, §V-B); inside a non-empty task there
    // is no sparsity adaptation.
    if (task.a.empty() || task.b.empty())
        return;
    ++res.tasksT1;
    const std::uint64_t t0 = res.cycles;
    const int mac = cfg_.macCount;
    const int n_ext = task.nExtent();
    // Dense T3 geometry: FP64 4x4x4 = 64 MACs, FP32 8x4x4 = 128 MACs.
    const int t3m = cfg_.precision == Precision::FP64 ? 4 : 8;
    const int t3n = 4;
    const int t3k = 4;

    const int m_steps = kBlockSize / t3m;
    const int n_steps = static_cast<int>(ceilDiv(n_ext, t3n));
    const int k_steps = kBlockSize / t3k;
    const std::uint16_t *a_cols = task.aInfo().cols.data();

    for (int mi = 0; mi < m_steps; ++mi) {
        const std::uint16_t row_mask = static_cast<std::uint16_t>(
            ((1u << t3m) - 1u) << (mi * t3m));
        for (int ni = 0; ni < n_steps; ++ni) {
            const int col_hi = std::min((ni + 1) * t3n, n_ext);
            const std::uint16_t col_mask = static_cast<std::uint16_t>(
                ((1u << (col_hi - ni * t3n)) - 1u) << (ni * t3n));
            for (int ki = 0; ki < k_steps; ++ki) {
                // Effective products inside this dense T3 sub-cube.
                int eff = 0;
                int b_rows_nnz = 0;
                int a_sub_nnz = 0;
                for (int k = ki * t3k; k < (ki + 1) * t3k; ++k) {
                    const int a_cnt = popcount16(a_cols[k] & row_mask);
                    const int b_cnt =
                        popcount16(task.b.rowBits(k) & col_mask);
                    eff += a_cnt * b_cnt;
                    a_sub_nnz += a_cnt;
                    b_rows_nnz += b_cnt;
                }
                ++res.tasksT3;
                res.recordCycle(mac, eff, 0, network().cNetUnits);

                // Dense fetch: every operand slot is read whether or
                // not it holds a nonzero.
                const int a_slots = t3m * t3k;
                const int b_slots =
                    t3k * std::min(t3n, n_ext - ni * t3n);
                res.traffic.readsA += a_sub_nnz;
                res.traffic.wastedA += a_slots - a_sub_nnz;
                res.traffic.readsB += b_rows_nnz;
                res.traffic.wastedB += b_slots - b_rows_nnz;
            }
        }
    }

    // The dense accumulator writes the whole C block back once.
    res.traffic.writesC +=
        static_cast<std::uint64_t>(kBlockSize) * n_ext;

    UNISTC_TRACE_COMPLETE(trace, TraceTrack::Sdpu,
                          task.isMv ? "T1 MV (dense)" : "T1 MM (dense)",
                          t0, res.cycles - t0);
}

} // namespace unistc
