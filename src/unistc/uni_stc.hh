/**
 * @file
 * Uni-STC — the paper's unified sparse tensor core. Pipeline per T1
 * task (§IV-C): the TMS turns the Lv1 bitmaps into an ordered T3 task
 * stream (Stage 1), up to numDpgs DPGs expand tasks into T4 segments
 * (Stage 2), and the SDPU executes the concatenated segments and
 * pre-merges partial products before write-back (Stage 3). Unused
 * DPGs and their datapaths are power-gated each cycle (§IV-C-2).
 */

#ifndef UNISTC_UNISTC_UNI_STC_HH
#define UNISTC_UNISTC_UNI_STC_HH

#include "stc/stc_model.hh"
#include "unistc/tms.hh"

namespace unistc
{

/** The Uni-STC architecture model. */
class UniStc : public StcModel
{
  public:
    /**
     * @param cfg machine configuration (cfg.numDpgs selects the DPG
     *        count: 8 by default, 4/16 in the Fig. 22 sweep).
     * @param ordering TMS batch ordering (outer-product by default).
     * @param adaptive adaptive intra-layer row/column-major order.
     */
    explicit UniStc(MachineConfig cfg,
                    TaskOrdering ordering = TaskOrdering::OuterProduct,
                    bool adaptive = true)
        : StcModel(cfg), ordering_(ordering), adaptive_(adaptive)
    {
    }

    std::string name() const override { return "Uni-STC"; }

    std::unique_ptr<StcModel> clone() const override
    {
        return std::make_unique<UniStc>(cfg_, ordering_, adaptive_);
    }

    NetworkConfig network() const override;

    void runBlock(const BlockTask &task, RunResult &res,
                  TraceSink *trace = nullptr) const override;

    TaskOrdering ordering() const { return ordering_; }

  private:
    TaskOrdering ordering_;
    bool adaptive_;
};

} // namespace unistc

#endif // UNISTC_UNISTC_UNI_STC_HH
