/**
 * @file
 * Uni-STC internal buffer accounting (§IV-C-1): the Meta Buffer
 * (144 B), Matrix A buffer (2 KB) and accumulator buffer (1 KB).
 * These functions compute the exact occupancy a T1 task induces and
 * prove the paper's buffer sizes suffice for every possible task —
 * a property the test suite asserts exhaustively on random patterns.
 */

#ifndef UNISTC_UNISTC_BUFFERS_HH
#define UNISTC_UNISTC_BUFFERS_HH

#include "bbc/block_pattern.hh"
#include "sim/config.hh"

namespace unistc
{

/** Paper buffer capacities (bytes). */
constexpr int kMetaBufferBytes = 144;
constexpr int kMatrixABufferBytes = 2048;
constexpr int kAccumBufferBytes = 1024;

/**
 * Meta Buffer occupancy of one MM task: per operand block the Lv1
 * bitmap (2 B) plus one Lv2 bitmap (2 B) per nonzero tile, plus one
 * ValPtr_Lv2 offset (1 B) per nonzero tile for the value-holding
 * operands A and B (C's targets are ranks computed by the DPG, so C
 * ships bitmaps only).
 */
int metaBufferBytesMm(const BlockPattern &a, const BlockPattern &b);

/** Meta Buffer occupancy of one MV task (x ships one 2 B mask). */
int metaBufferBytesMv(const BlockPattern &a);

/** Matrix A buffer occupancy: the block's packed values. */
int aBufferBytes(const BlockPattern &a, const MachineConfig &cfg);

/**
 * Accumulator occupancy: one partial sum per T4 segment live in the
 * widest cycle — bounded by the MAC count (every segment holds >= 1
 * product), hence by macCount * bytes <= 1 KB at FP64/64 MACs... the
 * exact per-task bound is segments-in-flight; this returns the
 * worst case for the task (<= 256 outputs).
 */
int accumBufferBytes(const BlockPattern &a, const BlockPattern &b,
                     const MachineConfig &cfg);

} // namespace unistc

#endif // UNISTC_UNISTC_BUFFERS_HH
