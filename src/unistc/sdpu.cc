#include "unistc/sdpu.hh"

namespace unistc
{

int
SdpuCycle::products() const
{
    int p = 0;
    for (const auto &t : executed)
        p += t.products;
    return p;
}

std::vector<SdpuCycle>
scheduleSdpu(std::span<const TileTask> tasks, int num_dpgs,
             int mac_count, bool check_conflicts)
{
    std::vector<SdpuCycle> cycles;
    forEachSdpuCycle(tasks, num_dpgs, mac_count, check_conflicts,
                     [&](const SdpuCycleView &view) {
                         SdpuCycle cycle;
                         cycle.executed.reserve(view.executed.size());
                         for (const TileTask *t : view.executed)
                             cycle.executed.push_back(*t);
                         cycle.waitingDpgs = view.waitingDpgs;
                         cycle.hadConflict = view.hadConflict;
                         cycles.push_back(std::move(cycle));
                     });
    return cycles;
}

} // namespace unistc
