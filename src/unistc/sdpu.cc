#include "unistc/sdpu.hh"

#include <bitset>

#include "common/logging.hh"

namespace unistc
{

int
SdpuCycle::products() const
{
    int p = 0;
    for (const auto &t : executed)
        p += t.products;
    return p;
}

std::vector<SdpuCycle>
scheduleSdpu(const std::vector<TileTask> &tasks, int num_dpgs,
             int mac_count, bool check_conflicts)
{
    UNISTC_ASSERT(num_dpgs > 0 && mac_count > 0,
                  "bad SDPU configuration");

    std::vector<SdpuCycle> cycles;
    std::vector<TileTask> pending(tasks);

    while (!pending.empty()) {
        SdpuCycle cycle;
        std::vector<TileTask> next;
        next.reserve(pending.size());

        int used_slots = 0;
        int used_dpgs = 0;
        std::bitset<16> c_tiles;
        bool stop_scan = false;

        for (std::size_t idx = 0; idx < pending.size(); ++idx) {
            const TileTask &task = pending[idx];
            if (stop_scan || used_dpgs == num_dpgs) {
                next.push_back(task);
                continue;
            }
            UNISTC_ASSERT(task.products > 0 &&
                          task.products <= mac_count,
                          "T3 task products out of range");
            if (check_conflicts && c_tiles.test(task.cTileId())) {
                // Write conflict: the task's DPG waits this cycle.
                ++used_dpgs;
                ++cycle.waitingDpgs;
                cycle.hadConflict = true;
                next.push_back(task);
                continue;
            }
            if (used_slots + task.products > mac_count) {
                // In-order concatenation: the SDPU fill stops here.
                next.push_back(task);
                stop_scan = true;
                continue;
            }
            used_slots += task.products;
            ++used_dpgs;
            c_tiles.set(task.cTileId());
            cycle.executed.push_back(task);
        }

        UNISTC_ASSERT(!cycle.executed.empty() || cycle.waitingDpgs > 0,
                      "SDPU cycle made no progress");
        // A cycle of pure conflict stalls cannot happen: the first
        // pending task always finds its C tile free.
        UNISTC_ASSERT(!cycle.executed.empty(),
                      "SDPU deadlock: no task executed");

        cycles.push_back(std::move(cycle));
        pending = std::move(next);
    }
    return cycles;
}

} // namespace unistc
