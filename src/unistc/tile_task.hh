/**
 * @file
 * T3 tile task — the 4x4x4 unit of work the TMS emits. A T3 task is
 * C_tile(i,j) += A_tile(i,k) x B_tile(k,j); its workload is fully
 * described by the two 16-bit Lv2 tile bitmaps.
 */

#ifndef UNISTC_UNISTC_TILE_TASK_HH
#define UNISTC_UNISTC_TILE_TASK_HH

#include <cstdint>

namespace unistc
{

/** One T3 (tile-level) task. */
struct TileTask
{
    std::int8_t i = 0; ///< C tile row (0..3).
    std::int8_t j = 0; ///< C tile column (0..3).
    std::int8_t k = 0; ///< Reduction tile index (0..3).

    std::uint16_t aTile = 0; ///< Lv2 bitmap of A tile (i, k).
    std::uint16_t bTile = 0; ///< Lv2 bitmap of B tile (k, j).

    int products = 0; ///< Intermediate products (<= 64).
    int segments = 0; ///< T4 dot-product segments (<= 16).

    /** C-tile identity used for write-conflict detection. */
    int cTileId() const { return i * 4 + j; }
};

/**
 * Intermediate-product count of a T3 task restricted to @p n_cols
 * output columns (4 for MM, 1 for MV tasks in the j = 0 tile column).
 */
int tileProductCount(std::uint16_t a_tile, std::uint16_t b_tile,
                     int n_cols = 4);

/** T4 segment count (nonzero output dot-products) of a T3 task. */
int tileSegmentCount(std::uint16_t a_tile, std::uint16_t b_tile,
                     int n_cols = 4);

} // namespace unistc

#endif // UNISTC_UNISTC_TILE_TASK_HH
