#include "unistc/dpg.hh"

#include <algorithm>
#include <array>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace unistc
{

namespace
{

/** Output-position visit sequences for the four fill orders. */
std::array<std::pair<int, int>, 16>
fillSequence(FillOrder order)
{
    std::array<std::pair<int, int>, 16> seq;
    int n = 0;
    switch (order) {
      case FillOrder::ZShaped:
        // Morton order, rows first inside each 2x2 quadrant.
        for (int qr = 0; qr < 2; ++qr) {
            for (int qc = 0; qc < 2; ++qc) {
                for (int r = 0; r < 2; ++r) {
                    for (int c = 0; c < 2; ++c)
                        seq[n++] = {qr * 2 + r, qc * 2 + c};
                }
            }
        }
        break;
      case FillOrder::NShaped:
        // Morton order, columns first inside each 2x2 quadrant.
        for (int qc = 0; qc < 2; ++qc) {
            for (int qr = 0; qr < 2; ++qr) {
                for (int c = 0; c < 2; ++c) {
                    for (int r = 0; r < 2; ++r)
                        seq[n++] = {qr * 2 + r, qc * 2 + c};
                }
            }
        }
        break;
      case FillOrder::RowMajor:
        for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c)
                seq[n++] = {r, c};
        }
        break;
      case FillOrder::ColMajor:
        for (int c = 0; c < 4; ++c) {
            for (int r = 0; r < 4; ++r)
                seq[n++] = {r, c};
        }
        break;
    }
    return seq;
}

/**
 * Lane-gap window within which an operand is forwarded (broadcast)
 * instead of refetched. Matches the paper's 9-multiplier B range:
 * two tasks separated by at most one intervening task.
 */
constexpr int kBroadcastWindow = 8;

} // namespace

const char *
toString(FillOrder order)
{
    switch (order) {
      case FillOrder::ZShaped:
        return "Z-shaped";
      case FillOrder::NShaped:
        return "N-shaped";
      case FillOrder::RowMajor:
        return "row-major";
      case FillOrder::ColMajor:
        return "col-major";
    }
    return "?";
}

int
T4Task::len() const
{
    return popcount16(pattern);
}

std::uint8_t
T4Task::code() const
{
    return static_cast<std::uint8_t>((target << 4) | (pattern & 0xFu));
}

T4TaskList
expandTileTaskInline(std::uint16_t a_tile, std::uint16_t b_tile,
                     int n_cols, FillOrder order)
{
    UNISTC_ASSERT(n_cols == 1 || n_cols == 4,
                  "tile N extent must be 1 or 4");

    // Transposing B once turns every col4() lookup into a nibble
    // extract; the 16 match words are shared between the rank pass
    // and the fill pass.
    const std::uint16_t b_t = transpose4x4(b_tile);
    std::array<std::array<std::uint16_t, 4>, 4> match{};
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < n_cols; ++c) {
            match[r][c] = static_cast<std::uint16_t>(
                row4(a_tile, r) & row4(b_t, c));
        }
    }

    // Accumulation targets are ranks in the C tile's row-major
    // nonzero order (the storage order of the BBC value array).
    std::array<std::array<int, 4>, 4> rank{};
    int next_rank = 0;
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < n_cols; ++c)
            rank[r][c] = match[r][c] ? next_rank++ : -1;
    }
    UNISTC_ASSERT(next_rank <= 16, "more than 16 segments in a tile");

    T4TaskList tasks;
    for (const auto &[r, c] : fillSequence(order)) {
        if (c >= n_cols)
            continue;
        if (!match[r][c])
            continue;
        T4Task t;
        t.target = static_cast<std::uint8_t>(rank[r][c]);
        t.pattern = static_cast<std::uint8_t>(match[r][c]);
        t.r = static_cast<std::int8_t>(r);
        t.c = static_cast<std::int8_t>(c);
        tasks.push_back(t);
    }
    return tasks;
}

std::vector<T4Task>
expandTileTask(std::uint16_t a_tile, std::uint16_t b_tile, int n_cols,
               FillOrder order)
{
    const T4TaskList tasks =
        expandTileTaskInline(a_tile, b_tile, n_cols, order);
    return std::vector<T4Task>(tasks.begin(), tasks.end());
}

void
activeOperands(std::uint16_t a_tile, std::uint16_t b_tile, int n_cols,
               int &a_elems, int &b_elems)
{
    // Mask B down to the considered output columns: bit c of every
    // nibble for c < n_cols.
    const std::uint16_t col_mask =
        rep4(static_cast<std::uint16_t>((1u << n_cols) - 1u));
    const std::uint16_t b_masked =
        static_cast<std::uint16_t>(b_tile & col_mask);

    // Nibble k of a_t is A column k; nibble k of b_masked is B row k.
    // An A element in column k is live iff B row k has any survivor
    // (and vice versa), so each count is one AND against the other
    // operand's live-nibble expansion plus a popcount.
    const std::uint16_t a_t = transpose4x4(a_tile);
    a_elems = popcount16(
        static_cast<std::uint16_t>(a_t & liveNibbleMask4(b_masked)));
    b_elems = popcount16(
        static_cast<std::uint16_t>(b_masked & liveNibbleMask4(a_t)));
}

BroadcastRange
broadcastRange(std::span<const T4Task> tasks)
{
    BroadcastRange out;
    // Last SDPU lane at which each operand was consumed; -1 = none.
    std::array<std::array<int, 4>, 4> last_a;
    std::array<std::array<int, 4>, 4> last_b;
    for (auto &row : last_a)
        row.fill(-1);
    for (auto &row : last_b)
        row.fill(-1);

    int lane = 0;
    for (const auto &t : tasks) {
        int offset = 0;
        forEachSetBit(t.pattern, [&](int k) {
            const int at_lane = lane + offset;
            ++offset;
            int &la = last_a[t.r][k];
            if (la >= 0 && at_lane - la <= kBroadcastWindow) {
                out.maxRangeA =
                    std::max(out.maxRangeA, at_lane - la + 1);
            }
            la = at_lane;
            int &lb = last_b[k][t.c];
            if (lb >= 0 && at_lane - lb <= kBroadcastWindow) {
                out.maxRangeB =
                    std::max(out.maxRangeB, at_lane - lb + 1);
            }
            lb = at_lane;
        });
        lane += t.len();
    }
    return out;
}

} // namespace unistc
