#include "unistc/tms.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "unistc/sdpu.hh"

namespace unistc
{

namespace
{

/** Build the task for (i, j, k) if it produces any work. */
bool
makeTask(const PatternMeta &a, const PatternMeta &b, int i, int j,
         int k, int n_cols, TileTask &out)
{
    const std::uint16_t a_tile = a.tiles[i * kTilesPerEdge + k];
    const std::uint16_t b_tile = b.tiles[k * kTilesPerEdge + j];
    if (!a_tile || !b_tile)
        return false;
    const int products = tileProductCount(a_tile, b_tile, n_cols);
    if (products == 0)
        return false; // bitmap product is empty: DPG emits nothing
    out.i = static_cast<std::int8_t>(i);
    out.j = static_cast<std::int8_t>(j);
    out.k = static_cast<std::int8_t>(k);
    out.aTile = a_tile;
    out.bTile = b_tile;
    out.products = products;
    out.segments = tileSegmentCount(a_tile, b_tile, n_cols);
    return true;
}

/**
 * Stable insertion sort into column-major (j, i) order; a layer holds
 * at most 16 tasks, so this beats std::stable_sort's buffer churn.
 */
void
sortLayerColMajor(TileTask *first, TileTask *last)
{
    for (TileTask *it = first + 1; it < last; ++it) {
        TileTask v = *it;
        TileTask *hole = it;
        while (hole > first &&
               (v.j < hole[-1].j ||
                (v.j == hole[-1].j && v.i < hole[-1].i))) {
            *hole = hole[-1];
            --hole;
        }
        *hole = v;
    }
}

} // namespace

const char *
toString(TaskOrdering ordering)
{
    switch (ordering) {
      case TaskOrdering::OuterProduct:
        return "outer-product";
      case TaskOrdering::DotProduct:
        return "dot-product";
      case TaskOrdering::RowRow:
        return "row-row";
    }
    return "?";
}

TileTaskList
generateTileTasks(const PatternMeta &a_meta, const PatternMeta &b_meta,
                  int n_tile_cols, TaskOrdering ordering, bool adaptive)
{
    UNISTC_ASSERT(n_tile_cols == 1 || n_tile_cols == kTilesPerEdge,
                  "tile columns must be 1 (MV) or 4 (MM)");
    const int n_cols = n_tile_cols == 1 ? 1 : 4;
    TileTaskList tasks;

    switch (ordering) {
      case TaskOrdering::OuterProduct:
        // Four-layer intermediate-product bitmap: one layer per K.
        for (int k = 0; k < kTilesPerEdge; ++k) {
            // Collect the layer first so the adaptive intra-layer
            // order can inspect its shape.
            const std::size_t layer_begin = tasks.size();
            std::uint16_t live_rows = 0;
            std::uint16_t live_cols = 0;
            for (int i = 0; i < kTilesPerEdge; ++i) {
                for (int j = 0; j < n_tile_cols; ++j) {
                    TileTask t;
                    if (makeTask(a_meta, b_meta, i, j, k, n_cols, t)) {
                        tasks.push_back(t);
                        live_rows = setBit(live_rows, i);
                        live_cols = setBit(live_cols, j);
                    }
                }
            }
            // Adaptive rule (§IV-A-1 ②): column-major when nonzero
            // rows outnumber nonzero columns, row-major otherwise.
            const bool col_major = adaptive &&
                popcount16(live_rows) > popcount16(live_cols);
            if (col_major) {
                sortLayerColMajor(tasks.data() + layer_begin,
                                  tasks.data() + tasks.size());
            }
        }
        break;

      case TaskOrdering::DotProduct:
        for (int i = 0; i < kTilesPerEdge; ++i) {
            for (int j = 0; j < n_tile_cols; ++j) {
                for (int k = 0; k < kTilesPerEdge; ++k) {
                    TileTask t;
                    if (makeTask(a_meta, b_meta, i, j, k, n_cols, t))
                        tasks.push_back(t);
                }
            }
        }
        break;

      case TaskOrdering::RowRow:
        for (int i = 0; i < kTilesPerEdge; ++i) {
            for (int k = 0; k < kTilesPerEdge; ++k) {
                for (int j = 0; j < n_tile_cols; ++j) {
                    TileTask t;
                    if (makeTask(a_meta, b_meta, i, j, k, n_cols, t))
                        tasks.push_back(t);
                }
            }
        }
        break;
    }
    return tasks;
}

std::vector<TileTask>
generateTileTasks(const BlockPattern &a, const BlockPattern &b,
                  int n_tile_cols, TaskOrdering ordering, bool adaptive)
{
    const TileTaskList tasks =
        generateTileTasks(computePatternMeta(a), computePatternMeta(b),
                          n_tile_cols, ordering, adaptive);
    return std::vector<TileTask>(tasks.begin(), tasks.end());
}

OrderingStats
analyzeOrdering(const BlockPattern &a, const BlockPattern &b,
                int n_tile_cols, TaskOrdering ordering, int num_dpgs,
                int mac_count)
{
    OrderingStats stats;
    const TileTaskList tasks =
        generateTileTasks(computePatternMeta(a), computePatternMeta(b),
                          n_tile_cols, ordering, /*adaptive=*/true);
    if (tasks.empty())
        return stats;

    // Theoretical fetches: one tile fetch per task per operand.
    // Actual fetches: distinct tiles per cycle (same-cycle sharing is
    // the reuse the TMS ordering creates).
    const std::uint64_t theoretical = tasks.size();
    std::uint64_t actual_a = 0;
    std::uint64_t actual_b = 0;
    std::uint64_t parallel_sum = 0;
    std::uint64_t aligned_sum = 0;
    std::uint64_t conflict_cycles = 0;
    std::uint64_t num_cycles = 0;

    forEachSdpuCycle(
        std::span<const TileTask>(tasks.data(), tasks.size()),
        num_dpgs, mac_count, /*check_conflicts=*/true,
        [&](const SdpuCycleView &cycle) {
            // Tile identities fit a 16-bit mask (i*4+k, k*4+j in
            // 0..15), so distinct-tile counting is two popcounts.
            std::uint16_t a_tiles = 0;
            std::uint16_t b_tiles = 0;
            int k_count[kTilesPerEdge] = {0, 0, 0, 0};
            for (const TileTask *t : cycle.executed) {
                a_tiles = setBit(a_tiles, t->i * kTilesPerEdge + t->k);
                b_tiles = setBit(b_tiles, t->k * kTilesPerEdge + t->j);
                ++k_count[t->k];
            }
            actual_a += static_cast<std::uint64_t>(popcount16(a_tiles));
            actual_b += static_cast<std::uint64_t>(popcount16(b_tiles));
            parallel_sum += cycle.executed.size();
            int aligned = 0;
            for (int c : k_count)
                aligned = std::max(aligned, c);
            aligned_sum += static_cast<std::uint64_t>(aligned);
            if (cycle.hadConflict)
                ++conflict_cycles;
            ++num_cycles;
        });

    stats.cycles = num_cycles;
    stats.reuseRateA = 1.0 - static_cast<double>(actual_a) /
        static_cast<double>(theoretical);
    stats.reuseRateB = 1.0 - static_cast<double>(actual_b) /
        static_cast<double>(theoretical);
    stats.avgParallelTasks = static_cast<double>(parallel_sum) /
        static_cast<double>(num_cycles);
    stats.avgAlignedTasks = static_cast<double>(aligned_sum) /
        static_cast<double>(num_cycles);
    stats.writeConflictRate = static_cast<double>(conflict_cycles) /
        static_cast<double>(num_cycles);
    return stats;
}

} // namespace unistc
