/**
 * @file
 * Tile Multiply Scheduler (§IV-A-1). The TMS applies an outer-product
 * pass over the two top-level (Lv1) tile bitmaps to enumerate the
 * four K layers of T3 tasks, orders them for data reuse (the paper's
 * Fig. 10 study compares dot-product, outer-product and row-row
 * orders; outer-product with adaptive row/column-major intra-layer
 * order wins), and dispatches them into the Tile queue with
 * round-robin write-conflict arbitration.
 */

#ifndef UNISTC_UNISTC_TMS_HH
#define UNISTC_UNISTC_TMS_HH

#include <vector>

#include "bbc/block_pattern.hh"
#include "bbc/pattern_meta.hh"
#include "common/small_vector.hh"
#include "unistc/tile_task.hh"

namespace unistc
{

/** A 16x16x16 T1 task expands to at most 4x4x4 = 64 T3 tasks. */
constexpr int kMaxTileTasks =
    kTilesPerEdge * kTilesPerEdge * kTilesPerEdge;

/** Allocation-free T3 task list (64 tasks fit inline). */
using TileTaskList = SmallVector<TileTask, kMaxTileTasks>;

/** Batched T3 task ordering strategies (Fig. 10). */
enum class TaskOrdering
{
    OuterProduct, ///< K layer by layer (default, best reuse).
    DotProduct,   ///< Per C tile, all K together.
    RowRow,       ///< Per C tile row, K inner.
};

/** Printable name of an ordering. */
const char *toString(TaskOrdering ordering);

/**
 * Enumerate the T3 tasks of one T1 task in the requested order.
 *
 * @param a A block pattern.
 * @param b B block (or embedded vector) pattern.
 * @param n_tile_cols output tile columns (4 for MM, 1 for MV).
 * @param ordering batch ordering strategy.
 * @param adaptive enable the adaptive intra-layer row/column-major
 *        selection (only meaningful for OuterProduct ordering).
 */
std::vector<TileTask> generateTileTasks(const BlockPattern &a,
                                        const BlockPattern &b,
                                        int n_tile_cols,
                                        TaskOrdering ordering,
                                        bool adaptive = true);

/**
 * Allocation-free variant over precomputed pattern summaries — the
 * simulation hot path. Emits exactly the same tasks in the same order
 * as the BlockPattern overload.
 */
TileTaskList generateTileTasks(const PatternMeta &a_meta,
                               const PatternMeta &b_meta,
                               int n_tile_cols, TaskOrdering ordering,
                               bool adaptive = true);

/** Scheduling-policy metrics reported by the Fig. 10 study. */
struct OrderingStats
{
    double reuseRateA = 0.0;   ///< 1 - actual/theoretical A fetches.
    double reuseRateB = 0.0;   ///< 1 - actual/theoretical B fetches.
    double avgParallelTasks = 0.0; ///< Mean T3 tasks per cycle.
    double avgAlignedTasks = 0.0;  ///< Mean same-K tasks per cycle.
    double writeConflictRate = 0.0;///< Conflict cycles / total cycles.
    std::uint64_t cycles = 0;
};

/**
 * Dry-run the SDPU packing loop for an ordering policy and collect
 * the reuse/parallelism/conflict metrics of Fig. 10.
 *
 * @param num_dpgs DPG count (parallel task limit per cycle).
 * @param mac_count SDPU multiplier budget per cycle.
 */
OrderingStats analyzeOrdering(const BlockPattern &a,
                              const BlockPattern &b, int n_tile_cols,
                              TaskOrdering ordering, int num_dpgs,
                              int mac_count);

} // namespace unistc

#endif // UNISTC_UNISTC_TMS_HH
