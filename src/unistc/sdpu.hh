/**
 * @file
 * Segmented Dot-Product Unit (§IV-B) and the per-cycle task packing
 * it induces. The SDPU's merge-forward structure turns any group of
 * up to four adjacent multipliers into a reduction tree, so the T4
 * segments of several T3 tasks are concatenated compactly onto the
 * MAC lanes. Packing per cycle is bounded by three constraints:
 *   1. at most one T3 task per DPG (numDpgs tasks);
 *   2. total intermediate products <= the MAC budget (in-order
 *      concatenation stops at the first task that does not fit);
 *   3. no two tasks may write the same C tile in one cycle — a
 *      conflicting task occupies its DPG but waits (round-robin
 *      arbitration, §IV-A-1 ③).
 *
 * Two entry points: forEachSdpuCycle() visits each packed cycle
 * without allocating (the simulation hot path), and scheduleSdpu()
 * materialises the cycle list for analyses that need to revisit it.
 */

#ifndef UNISTC_UNISTC_SDPU_HH
#define UNISTC_UNISTC_SDPU_HH

#include <span>
#include <utility>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/small_vector.hh"
#include "unistc/tile_task.hh"

namespace unistc
{

/** One SDPU execution cycle (materialised form). */
struct SdpuCycle
{
    std::vector<TileTask> executed; ///< Tasks computed this cycle.
    int waitingDpgs = 0;  ///< DPGs held by write-conflicted tasks.
    bool hadConflict = false;

    /** Effective products this cycle. */
    int products() const;

    /** DPGs powered this cycle (executing + conflict-stalled). */
    int activeDpgs() const
    {
        return static_cast<int>(executed.size()) + waitingDpgs;
    }
};

/**
 * View of one SDPU cycle handed to the forEachSdpuCycle() visitor.
 * The executed pointers reference the caller's task array and are
 * only valid for the duration of the callback.
 */
struct SdpuCycleView
{
    std::span<const TileTask *const> executed;
    int waitingDpgs = 0;
    bool hadConflict = false;
    int totalProducts = 0; ///< Sum of products over executed.

    int
    activeDpgs() const
    {
        return static_cast<int>(executed.size()) + waitingDpgs;
    }
};

/**
 * Pack an ordered T3 task stream into SDPU cycles, invoking
 * @p fn(const SdpuCycleView &) once per cycle, in order. Performs no
 * heap allocation for typical task counts (<= 64 tasks per T1 task).
 *
 * @param tasks TMS-ordered tasks (zero-product tasks are skipped by
 *        the TMS and must not appear here).
 * @param num_dpgs parallel task limit per cycle.
 * @param mac_count multiplier budget per cycle.
 * @param check_conflicts enforce the one-writer-per-C-tile rule.
 *        True for MM tasks; false for MV tasks, whose partial sums
 *        land in distinct per-thread accumulator slots and are
 *        merged by the final shfl_gather (Algorithm 1), so same-tile
 *        writes in one cycle are safe.
 */
template <typename Fn>
void
forEachSdpuCycle(std::span<const TileTask> tasks, int num_dpgs,
                 int mac_count, bool check_conflicts, Fn &&fn)
{
    UNISTC_ASSERT(num_dpgs > 0 && mac_count > 0,
                  "bad SDPU configuration");

    SmallVector<const TileTask *, 64> pending;
    pending.reserve(tasks.size());
    for (const TileTask &t : tasks)
        pending.push_back(&t);

    SmallVector<const TileTask *, 64> next;
    SmallVector<const TileTask *, 16> executed;

    while (!pending.empty()) {
        next.clear();
        executed.clear();

        SdpuCycleView cycle;
        int used_slots = 0;
        int used_dpgs = 0;
        std::uint16_t c_tiles = 0;
        bool stop_scan = false;

        for (const TileTask *task : pending) {
            if (stop_scan || used_dpgs == num_dpgs) {
                next.push_back(task);
                continue;
            }
            UNISTC_ASSERT(task->products > 0 &&
                          task->products <= mac_count,
                          "T3 task products out of range");
            if (check_conflicts && testBit(c_tiles, task->cTileId())) {
                // Write conflict: the task's DPG waits this cycle.
                ++used_dpgs;
                ++cycle.waitingDpgs;
                cycle.hadConflict = true;
                next.push_back(task);
                continue;
            }
            if (used_slots + task->products > mac_count) {
                // In-order concatenation: the SDPU fill stops here.
                next.push_back(task);
                stop_scan = true;
                continue;
            }
            used_slots += task->products;
            ++used_dpgs;
            c_tiles = setBit(c_tiles, task->cTileId());
            executed.push_back(task);
        }

        UNISTC_ASSERT(!executed.empty() || cycle.waitingDpgs > 0,
                      "SDPU cycle made no progress");
        // A cycle of pure conflict stalls cannot happen: the first
        // pending task always finds its C tile free.
        UNISTC_ASSERT(!executed.empty(),
                      "SDPU deadlock: no task executed");

        cycle.executed = std::span<const TileTask *const>(
            executed.data(), executed.size());
        cycle.totalProducts = used_slots;
        fn(std::as_const(cycle));

        std::swap(pending, next);
    }
}

/** Materialise the packed cycles (analysis / test convenience path). */
std::vector<SdpuCycle> scheduleSdpu(std::span<const TileTask> tasks,
                                    int num_dpgs, int mac_count,
                                    bool check_conflicts = true);

} // namespace unistc

#endif // UNISTC_UNISTC_SDPU_HH
