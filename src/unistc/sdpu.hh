/**
 * @file
 * Segmented Dot-Product Unit (§IV-B) and the per-cycle task packing
 * it induces. The SDPU's merge-forward structure turns any group of
 * up to four adjacent multipliers into a reduction tree, so the T4
 * segments of several T3 tasks are concatenated compactly onto the
 * MAC lanes. Packing per cycle is bounded by three constraints:
 *   1. at most one T3 task per DPG (numDpgs tasks);
 *   2. total intermediate products <= the MAC budget (in-order
 *      concatenation stops at the first task that does not fit);
 *   3. no two tasks may write the same C tile in one cycle — a
 *      conflicting task occupies its DPG but waits (round-robin
 *      arbitration, §IV-A-1 ③).
 */

#ifndef UNISTC_UNISTC_SDPU_HH
#define UNISTC_UNISTC_SDPU_HH

#include <vector>

#include "unistc/tile_task.hh"

namespace unistc
{

/** One SDPU execution cycle. */
struct SdpuCycle
{
    std::vector<TileTask> executed; ///< Tasks computed this cycle.
    int waitingDpgs = 0;  ///< DPGs held by write-conflicted tasks.
    bool hadConflict = false;

    /** Effective products this cycle. */
    int products() const;

    /** DPGs powered this cycle (executing + conflict-stalled). */
    int activeDpgs() const
    {
        return static_cast<int>(executed.size()) + waitingDpgs;
    }
};

/**
 * Pack an ordered T3 task stream into SDPU cycles.
 *
 * @param tasks TMS-ordered tasks (zero-product tasks are skipped by
 *        the TMS and must not appear here).
 * @param num_dpgs parallel task limit per cycle.
 * @param mac_count multiplier budget per cycle.
 * @param check_conflicts enforce the one-writer-per-C-tile rule.
 *        True for MM tasks; false for MV tasks, whose partial sums
 *        land in distinct per-thread accumulator slots and are
 *        merged by the final shfl_gather (Algorithm 1), so same-tile
 *        writes in one cycle are safe.
 */
std::vector<SdpuCycle> scheduleSdpu(const std::vector<TileTask> &tasks,
                                    int num_dpgs, int mac_count,
                                    bool check_conflicts = true);

} // namespace unistc

#endif // UNISTC_UNISTC_SDPU_HH
