#include "unistc/uni_stc.hh"

#include <algorithm>
#include <string>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "obs/trace.hh"
#include "unistc/dpg.hh"
#include "unistc/sdpu.hh"
#include "unistc/tms.hh"

namespace unistc
{

NetworkConfig
UniStc::network() const
{
    // Hierarchical two-layer network (§IV-C-2): the dedicated 16x8
    // tile networks plus the 64x5 / 64x9 MUX arrays cut energy per
    // byte by 7.16x (A), 5.33x (B) and 2.83x (C) relative to flat
    // 64x256 crossbars. The C path is one 16x16 network per DPG, all
    // of which are power-gated with their DPG.
    NetworkConfig net;
    net.aFactor = 7.16;
    net.bFactor = 5.33;
    net.cFactor = 2.83;
    net.cNetUnits = cfg_.numDpgs;
    net.dynamicGating = true;
    return net;
}

void
UniStc::runBlock(const BlockTask &task, RunResult &res,
                 TraceSink *trace) const
{
    ++res.tasksT1;
    const int mac = cfg_.macCount;
    const int n_tile_cols = task.isMv ? 1 : kTilesPerEdge;
    const int n_cols = task.isMv ? 1 : 4;
    const std::uint64_t t0 = res.cycles;

    // Stage 1: TMS generates the ordered T3 task stream (from the
    // task's memoized pattern summaries, shared across a lineup).
    const TileTaskList tasks = generateTileTasks(
        task.aInfo(), task.bInfo(), n_tile_cols, ordering_, adaptive_);
    if (tasks.empty())
        return;
    res.tasksT3 += tasks.size();

    // Stages 2+3: DPG expansion and SDPU packing. The three-stage
    // pipeline overlaps task generation with execution (task
    // generation is asynchronous, §IV-G), so steady-state cycles are
    // the SDPU cycles.
    std::uint64_t block_products = 0;
    std::uint64_t block_active_dpgs = 0;
    std::uint64_t n_cycles = 0;
    forEachSdpuCycle(
        std::span<const TileTask>(tasks.data(), tasks.size()),
        cfg_.numDpgs, mac, /*check_conflicts=*/!task.isMv,
        [&](const SdpuCycleView &cycle) {
        const int eff = cycle.totalProducts;
        res.recordCycle(mac, eff, cycle.activeDpgs(),
                        static_cast<int>(cycle.executed.size()));
        block_products += static_cast<std::uint64_t>(eff);
        block_active_dpgs +=
            static_cast<std::uint64_t>(cycle.activeDpgs());
        if (cycle.hadConflict) {
            ++res.stallCycles;
            UNISTC_TRACE_INSTANT(trace, TraceTrack::Sdpu,
                                 "C write-back stall", t0 + n_cycles);
        }

        // Operand traffic: a tile shared by several tasks in one
        // cycle is fetched once (the reuse the outer-product order
        // creates); bitmap gating means no dead element is touched.
        // Tile identities are i*4+k / k*4+j in 0..15, so the
        // seen-sets are 16-bit masks.
        std::uint16_t a_tiles_seen = 0;
        std::uint16_t b_tiles_seen = 0;
        for (const TileTask *t : cycle.executed) {
            int a_elems = 0;
            int b_elems = 0;
            activeOperands(t->aTile, t->bTile, n_cols, a_elems,
                           b_elems);
            const int a_id = t->i * kTilesPerEdge + t->k;
            if (!testBit(a_tiles_seen, a_id)) {
                a_tiles_seen = setBit(a_tiles_seen, a_id);
                res.traffic.readsA += a_elems;
            }
            const int b_id = t->k * kTilesPerEdge + t->j;
            if (!testBit(b_tiles_seen, b_id)) {
                b_tiles_seen = setBit(b_tiles_seen, b_id);
                res.traffic.readsB += b_elems;
            }
            // The SDPU pre-merges each T4 segment's products into a
            // single partial sum before write-back (§IV-B).
            res.traffic.writesC += t->segments;
        }
        ++n_cycles;
    });

    if (UNISTC_TRACE_ACTIVE(trace)) {
        // The TMS feeds one T3 task per cycle into the Tile queue and
        // the whole stream overlaps the SDPU cycles (asynchronous
        // generation, §IV-G).
        trace->complete(TraceTrack::Tms,
                        "T3 gen x" + std::to_string(tasks.size()), t0,
                        std::min<std::uint64_t>(tasks.size(),
                                                n_cycles));
        trace->complete(TraceTrack::Dpg, "T4 expand", t0, n_cycles);
        trace->complete(TraceTrack::Sdpu,
                        std::string(task.isMv ? "segments MV"
                                              : "segments MM") +
                            " x" + std::to_string(block_products),
                        t0, n_cycles);
        // Per-block summary counters (Perfetto counter tracks): MAC
        // utilisation and active-DPG occupancy over this T1 task.
        const double denom =
            static_cast<double>(mac) * static_cast<double>(n_cycles);
        trace->counter("macUtil", t0,
                       denom > 0.0
                           ? static_cast<double>(block_products) /
                                 denom
                           : 0.0);
        trace->counter("activeDpgs", t0,
                       n_cycles > 0
                           ? static_cast<double>(block_active_dpgs) /
                                 static_cast<double>(n_cycles)
                           : 0.0);
    }
}

} // namespace unistc
