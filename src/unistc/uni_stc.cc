#include "unistc/uni_stc.hh"

#include <set>

#include "common/logging.hh"
#include "unistc/dpg.hh"
#include "unistc/sdpu.hh"

namespace unistc
{

NetworkConfig
UniStc::network() const
{
    // Hierarchical two-layer network (§IV-C-2): the dedicated 16x8
    // tile networks plus the 64x5 / 64x9 MUX arrays cut energy per
    // byte by 7.16x (A), 5.33x (B) and 2.83x (C) relative to flat
    // 64x256 crossbars. The C path is one 16x16 network per DPG, all
    // of which are power-gated with their DPG.
    NetworkConfig net;
    net.aFactor = 7.16;
    net.bFactor = 5.33;
    net.cFactor = 2.83;
    net.cNetUnits = cfg_.numDpgs;
    net.dynamicGating = true;
    return net;
}

void
UniStc::runBlock(const BlockTask &task, RunResult &res) const
{
    ++res.tasksT1;
    const int mac = cfg_.macCount;
    const int n_tile_cols = task.isMv ? 1 : kTilesPerEdge;
    const int n_cols = task.isMv ? 1 : 4;

    // Stage 1: TMS generates the ordered T3 task stream.
    const auto tasks = generateTileTasks(task.a, task.b, n_tile_cols,
                                         ordering_, adaptive_);
    if (tasks.empty())
        return;
    res.tasksT3 += tasks.size();

    // Stages 2+3: DPG expansion and SDPU packing. The three-stage
    // pipeline overlaps task generation with execution (task
    // generation is asynchronous, §IV-G), so steady-state cycles are
    // the SDPU cycles.
    const auto cycles = scheduleSdpu(tasks, cfg_.numDpgs, mac,
                                     /*check_conflicts=*/!task.isMv);

    for (const auto &cycle : cycles) {
        const int eff = cycle.products();
        res.recordCycle(mac, eff, cycle.activeDpgs(),
                        static_cast<int>(cycle.executed.size()));
        if (cycle.hadConflict)
            ++res.stallCycles;

        // Operand traffic: a tile shared by several tasks in one
        // cycle is fetched once (the reuse the outer-product order
        // creates); bitmap gating means no dead element is touched.
        std::set<int> a_tiles_seen;
        std::set<int> b_tiles_seen;
        for (const auto &t : cycle.executed) {
            int a_elems = 0;
            int b_elems = 0;
            activeOperands(t.aTile, t.bTile, n_cols, a_elems,
                           b_elems);
            if (a_tiles_seen.insert(t.i * kTilesPerEdge + t.k)
                    .second) {
                res.traffic.readsA += a_elems;
            }
            if (b_tiles_seen.insert(t.k * kTilesPerEdge + t.j)
                    .second) {
                res.traffic.readsB += b_elems;
            }
            // The SDPU pre-merges each T4 segment's products into a
            // single partial sum before write-back (§IV-B).
            res.traffic.writesC += t.segments;
        }
    }
}

} // namespace unistc
