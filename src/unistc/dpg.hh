/**
 * @file
 * Dot-Product Generator (§IV-A-2). A DPG consumes one T3 task per
 * cycle: it overlays the outer product of the two Lv2 bitmaps into a
 * per-output index-match map, emits one 8-bit T4 task code per
 * nonzero output (upper nibble: accumulation target = rank of the
 * output among the C tile's nonzeros; lower nibble: the 4-bit sparse
 * dot-product pattern), and fills the Dot-product queue in a Z-shaped
 * order that minimises operand broadcast range.
 */

#ifndef UNISTC_UNISTC_DPG_HH
#define UNISTC_UNISTC_DPG_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/small_vector.hh"

namespace unistc
{

/** Queue fill orders (§IV-A-2 ④; Z is the design point). */
enum class FillOrder
{
    ZShaped,  ///< Morton order walking rows first (default).
    NShaped,  ///< Morton order walking columns first (ablation).
    RowMajor, ///< Plain row-major (ablation).
    ColMajor, ///< Plain column-major (ablation).
};

/** Printable name of a fill order. */
const char *toString(FillOrder order);

/** One T4 (vector dot-product) task. */
struct T4Task
{
    std::uint8_t target = 0;  ///< Rank of (r, c) in C tile nonzeros.
    std::uint8_t pattern = 0; ///< 4-bit index-match bitmap.
    std::int8_t r = 0;        ///< Output row within the tile.
    std::int8_t c = 0;        ///< Output column within the tile.

    /** Segment length = matched index pairs (1..4). */
    int len() const;

    /** The paper's 8-bit task code (e.g. 0x49 in Fig. 9). */
    std::uint8_t code() const;
};

/**
 * Expand a T3 task into its T4 tasks.
 *
 * @param a_tile Lv2 bitmap of the A tile (row-major 4x4).
 * @param b_tile Lv2 bitmap of the B tile.
 * @param n_cols output columns considered (4 for MM, 1 for MV).
 * @param order queue fill order.
 */
std::vector<T4Task> expandTileTask(std::uint16_t a_tile,
                                   std::uint16_t b_tile, int n_cols,
                                   FillOrder order
                                   = FillOrder::ZShaped);

/** A T3 task expands to at most 16 T4 tasks (one per C tile slot). */
using T4TaskList = SmallVector<T4Task, 16>;

/** Allocation-free variant of expandTileTask (the hot path). */
T4TaskList expandTileTaskInline(std::uint16_t a_tile,
                                std::uint16_t b_tile, int n_cols,
                                FillOrder order = FillOrder::ZShaped);

/**
 * Count the distinct A and B tile elements participating in at least
 * one product of a T3 task — the operands actually fetched (bitmap
 * gating never touches dead elements).
 */
void activeOperands(std::uint16_t a_tile, std::uint16_t b_tile,
                    int n_cols, int &a_elems, int &b_elems);

/**
 * Maximum multiplier-index distance between consecutive uses of the
 * same operand when the given T4 sequence is concatenated onto the
 * SDPU lanes — the broadcast-range quantity §IV-A-2 bounds at 5 for
 * A and 9 for B under the Z-shaped order.
 */
struct BroadcastRange
{
    int maxRangeA = 0;
    int maxRangeB = 0;
};
BroadcastRange broadcastRange(std::span<const T4Task> tasks);

} // namespace unistc

#endif // UNISTC_UNISTC_DPG_HH
