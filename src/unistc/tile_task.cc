#include "unistc/tile_task.hh"

#include "common/bitops.hh"

namespace unistc
{

int
tileProductCount(std::uint16_t a_tile, std::uint16_t b_tile, int n_cols)
{
    int total = 0;
    for (int r = 0; r < 4; ++r) {
        const std::uint16_t a_row = row4(a_tile, r);
        for (int c = 0; c < n_cols; ++c) {
            const std::uint16_t b_col = col4(b_tile, c);
            total += popcount16(
                static_cast<std::uint16_t>(a_row & b_col));
        }
    }
    return total;
}

int
tileSegmentCount(std::uint16_t a_tile, std::uint16_t b_tile, int n_cols)
{
    int segs = 0;
    for (int r = 0; r < 4; ++r) {
        const std::uint16_t a_row = row4(a_tile, r);
        for (int c = 0; c < n_cols; ++c) {
            const std::uint16_t b_col = col4(b_tile, c);
            if (a_row & b_col)
                ++segs;
        }
    }
    return segs;
}

} // namespace unistc
