#include "unistc/tile_task.hh"

#include "common/bitops.hh"

namespace unistc
{

namespace
{

/**
 * Transposed B tile restricted to the first @p n_cols output columns:
 * nibble c holds col4(b_tile, c) for c < n_cols, zero above.
 */
std::uint16_t
bColumns(std::uint16_t b_tile, int n_cols)
{
    const std::uint32_t keep = (1u << (4 * n_cols)) - 1u;
    return static_cast<std::uint16_t>(transpose4x4(b_tile) & keep);
}

} // namespace

int
tileProductCount(std::uint16_t a_tile, std::uint16_t b_tile, int n_cols)
{
    // rep4 broadcasts an A row into every nibble lane, so one AND +
    // popcount evaluates the row against all output columns at once.
    const std::uint16_t b_cols = bColumns(b_tile, n_cols);
    int total = 0;
    for (int r = 0; r < 4; ++r)
        total += popcount16(
            static_cast<std::uint16_t>(rep4(row4(a_tile, r)) & b_cols));
    return total;
}

int
tileSegmentCount(std::uint16_t a_tile, std::uint16_t b_tile, int n_cols)
{
    // A segment exists where a row/column pair intersects: count the
    // nonzero nibble lanes of each row's intersection word.
    const std::uint16_t b_cols = bColumns(b_tile, n_cols);
    int segs = 0;
    for (int r = 0; r < 4; ++r)
        segs += popcount16(nonzeroNibbles4(
            static_cast<std::uint16_t>(rep4(row4(a_tile, r)) & b_cols)));
    return segs;
}

} // namespace unistc
