#include "unistc/buffers.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "unistc/sdpu.hh"
#include "unistc/tms.hh"

namespace unistc
{

namespace
{

/** Lv1 + per-tile Lv2 bytes of one operand block. */
int
operandMetaBytes(const BlockPattern &p, bool with_valptr)
{
    const int tiles = popcount16(p.tileBitmap());
    return 2 + tiles * 2 + (with_valptr ? tiles : 0);
}

} // namespace

int
metaBufferBytesMm(const BlockPattern &a, const BlockPattern &b)
{
    const BlockPattern c = blockProductPattern(a, b);
    return operandMetaBytes(a, /*with_valptr=*/true) +
        operandMetaBytes(b, /*with_valptr=*/true) +
        operandMetaBytes(c, /*with_valptr=*/false);
}

int
metaBufferBytesMv(const BlockPattern &a)
{
    // A's bitmaps + offsets plus the 2-byte x segment mask and the
    // 2-byte y result mask.
    return operandMetaBytes(a, /*with_valptr=*/true) + 2 + 2;
}

int
aBufferBytes(const BlockPattern &a, const MachineConfig &cfg)
{
    return a.nnz() * cfg.bytesPerValue();
}

int
accumBufferBytes(const BlockPattern &a, const BlockPattern &b,
                 const MachineConfig &cfg)
{
    const TileTaskList tasks = generateTileTasks(
        computePatternMeta(a), computePatternMeta(b), kTilesPerEdge,
        TaskOrdering::OuterProduct);
    if (tasks.empty())
        return 0;
    int worst = 0;
    forEachSdpuCycle(
        std::span<const TileTask>(tasks.data(), tasks.size()),
        cfg.numDpgs, cfg.macCount, /*check_conflicts=*/true,
        [&](const SdpuCycleView &cycle) {
            int segments = 0;
            for (const TileTask *t : cycle.executed)
                segments += t->segments;
            worst = std::max(worst, segments);
        });
    return worst * cfg.bytesPerValue();
}

} // namespace unistc
