/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every workload generator in the repository takes an explicit seed and
 * uses this engine so that all experiments are bit-reproducible across
 * runs and platforms (std::mt19937 distributions are not guaranteed to
 * be identical across standard libraries, so the distributions here are
 * hand-rolled as well).
 */

#ifndef UNISTC_COMMON_RNG_HH
#define UNISTC_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace unistc
{

/**
 * xoshiro256** engine seeded via SplitMix64. Small, fast and with
 * well-understood statistical quality; more than adequate for workload
 * synthesis.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Bernoulli trial with probability @p p. */
    bool nextBool(double p);

    /** Standard normal variate (Box-Muller, no caching). */
    double nextGaussian();

    /**
     * Sample @p k distinct integers from [0, n) in increasing order
     * (Floyd's algorithm followed by a sort).
     */
    std::vector<int> sampleDistinct(int n, int k);

  private:
    std::uint64_t s_[4];
};

} // namespace unistc

#endif // UNISTC_COMMON_RNG_HH
