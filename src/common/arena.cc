#include "common/arena.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace unistc
{

namespace
{

constexpr std::size_t kMinChunkBytes = 64 * 1024;

enum class ArenaMode : int
{
    Unresolved,
    Arena,
    Plain,
};

std::atomic<ArenaMode> g_mode{ArenaMode::Unresolved};

ArenaMode
resolveModeFromEnv()
{
    const char *env = std::getenv("UNISTC_ARENA");
    if (env != nullptr &&
        (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
         std::strcmp(env, "plain") == 0)) {
        return ArenaMode::Plain;
    }
    return ArenaMode::Arena;
}

ArenaMode
mode()
{
    ArenaMode m = g_mode.load(std::memory_order_relaxed);
    if (m == ArenaMode::Unresolved) {
        m = resolveModeFromEnv();
        g_mode.store(m, std::memory_order_relaxed);
    }
    return m;
}

std::size_t
alignUp(std::size_t v, std::size_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace

bool
ScratchArena::enabled()
{
    return mode() == ArenaMode::Arena;
}

void
ScratchArena::setEnabledForTest(bool enabled)
{
    g_mode.store(enabled ? ArenaMode::Arena : ArenaMode::Plain,
                 std::memory_order_relaxed);
}

void
ScratchArena::resetModeFromEnv()
{
    g_mode.store(resolveModeFromEnv(), std::memory_order_relaxed);
}

void *
ScratchArena::allocate(std::size_t bytes, std::size_t align)
{
    UNISTC_ASSERT(align > 0 && (align & (align - 1)) == 0,
                  "arena alignment must be a power of two");
    if (bytes == 0)
        bytes = 1;
    inUse_ += bytes;
    if (!enabled()) {
        // Pass-through mode: one fresh allocation per request. The
        // extra alignment slack keeps over-aligned types valid.
        auto buf = std::make_unique<std::byte[]>(bytes + align);
        void *raw = buf.get();
        const std::uintptr_t addr =
            reinterpret_cast<std::uintptr_t>(raw);
        const std::uintptr_t aligned =
            (addr + align - 1) & ~static_cast<std::uintptr_t>(align - 1);
        plain_.push_back(std::move(buf));
        return reinterpret_cast<void *>(aligned);
    }
    if (cur_ < chunks_.size()) {
        // Align the absolute address, not the chunk offset: new[]
        // only guarantees the default allocation alignment for the
        // chunk base.
        Chunk &c = chunks_[cur_];
        const std::uintptr_t base =
            reinterpret_cast<std::uintptr_t>(c.data.get());
        const std::uintptr_t aligned =
            (base + c.used + align - 1) &
            ~static_cast<std::uintptr_t>(align - 1);
        const std::size_t at = static_cast<std::size_t>(aligned - base);
        if (at + bytes <= c.size) {
            c.used = at + bytes;
            return c.data.get() + at;
        }
    }
    return allocateSlow(bytes, align);
}

void *
ScratchArena::allocateSlow(std::size_t bytes, std::size_t align)
{
    // Advance to (or create) a chunk large enough for the request.
    if (cur_ < chunks_.size() && chunks_[cur_].used > 0)
        ++cur_;
    // Conservative fit check: worst-case base misalignment wastes up
    // to align-1 leading bytes.
    while (cur_ < chunks_.size() &&
           bytes + align > chunks_[cur_].size) {
        ++cur_;
    }
    if (cur_ == chunks_.size()) {
        Chunk c;
        c.size = std::max(kMinChunkBytes, bytes + align);
        c.data = std::make_unique<std::byte[]>(c.size);
        chunks_.push_back(std::move(c));
    }
    Chunk &c = chunks_[cur_];
    std::uintptr_t base = reinterpret_cast<std::uintptr_t>(
        c.data.get());
    std::size_t at = alignUp(c.used, align);
    // The chunk base itself may need re-aligning for exotic aligns.
    const std::uintptr_t addr = base + at;
    const std::uintptr_t aligned =
        (addr + align - 1) & ~static_cast<std::uintptr_t>(align - 1);
    at = static_cast<std::size_t>(aligned - base);
    UNISTC_ASSERT(at + bytes <= c.size, "arena chunk sizing bug");
    c.used = at + bytes;
    return c.data.get() + at;
}

std::size_t
ScratchArena::bytesReserved() const
{
    std::size_t total = 0;
    for (const Chunk &c : chunks_)
        total += c.size;
    return total;
}

ScratchArena::Scope::Scope(ScratchArena &arena)
    : arena_(arena), chunk_(arena.cur_),
      used_(arena.cur_ < arena.chunks_.size()
                ? arena.chunks_[arena.cur_].used
                : 0),
      plainCount_(arena.plain_.size()), inUse_(arena.inUse_)
{
}

ScratchArena::Scope::~Scope()
{
    // Rewind chunk cursors past the mark (memory is retained for
    // reuse) and release pass-through allocations made in the scope.
    for (std::size_t i = arena_.chunks_.size(); i-- > chunk_ + 1;)
        arena_.chunks_[i].used = 0;
    if (chunk_ < arena_.chunks_.size())
        arena_.chunks_[chunk_].used = used_;
    arena_.cur_ = chunk_;
    arena_.plain_.resize(plainCount_);
    arena_.inUse_ = inUse_;
}

ScratchArena &
taskScratch()
{
    thread_local ScratchArena arena;
    return arena;
}

} // namespace unistc
