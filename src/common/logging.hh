/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * fatal() is for user-caused conditions the simulator cannot recover
 * from (bad configuration, malformed input files); panic() is for
 * conditions that indicate a bug in the simulator itself; warn() and
 * inform() report status without stopping the run.
 *
 * Non-terminating messages pass a runtime severity filter: the level
 * defaults to Info, is settable programmatically via setLogLevel()
 * or from the UNISTC_LOG_LEVEL environment variable (a name like
 * "warn" or a number 0-4), and lets bench runs silence inform()
 * chatter. fatal() and panic() are never subject to that filter —
 * the message is emitted (or carried in the thrown exception) even
 * at LogLevel::Silent; hiding the reason for a termination would
 * help nobody.
 *
 * The fatal *mechanism* is configurable (robustness layer, PR 3):
 * under FatalBehavior::Exit (the default, right for CLI mains)
 * UNISTC_FATAL prints and exit(1)s as it always has; under
 * FatalBehavior::Throw (library, tests, fuzz drivers) it throws
 * unistc::UnistcError carrying the same message, so a sweep can
 * quarantine one bad input instead of dying. panic() is for
 * simulator bugs and aborts unconditionally in both modes.
 */

#ifndef UNISTC_COMMON_LOGGING_HH
#define UNISTC_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace unistc
{

/** Message severities, least severe first. */
enum class LogLevel
{
    Debug = 0,  ///< Developer chatter (UNISTC_DEBUG).
    Info = 1,   ///< Status messages (UNISTC_INFORM). Default.
    Warn = 2,   ///< Recoverable anomalies (UNISTC_WARN).
    Error = 3,  ///< Only fatal/panic output.
    Silent = 4, ///< Nothing below termination messages.
};

/** Printable level name ("debug", ...). */
const char *toString(LogLevel level);

/**
 * Parse a level from a name ("debug", "info", "warn"/"warning",
 * "error", "silent"/"quiet", case-insensitive) or a digit 0-4.
 * @return true and set @p out on success.
 */
bool parseLogLevel(const std::string &text, LogLevel &out);

/** Current filter threshold (initialised from UNISTC_LOG_LEVEL). */
LogLevel logLevel();

/** Override the filter threshold for the rest of the process. */
void setLogLevel(LogLevel level);

/** What UNISTC_FATAL does after composing its message. */
enum class FatalBehavior
{
    Exit,  ///< Print to stderr, std::exit(1). Default; CLI mains.
    Throw, ///< Throw unistc::UnistcError. Library/test/fuzz context.
};

/** Current fatal behavior (process-wide, atomic). */
FatalBehavior fatalBehavior();

/** Choose between fail-fast (Exit) and recoverable (Throw) fatals. */
void setFatalBehavior(FatalBehavior behavior);

/**
 * RAII switch to FatalBehavior::Throw: tests and library entry
 * points that want typed errors wrap the fallible region in one of
 * these and catch UnistcError; the previous behavior is restored on
 * scope exit.
 */
class ScopedFatalThrow
{
  public:
    ScopedFatalThrow() : saved_(fatalBehavior())
    {
        setFatalBehavior(FatalBehavior::Throw);
    }

    ~ScopedFatalThrow() { setFatalBehavior(saved_); }

    ScopedFatalThrow(const ScopedFatalThrow &) = delete;
    ScopedFatalThrow &operator=(const ScopedFatalThrow &) = delete;

  private:
    FatalBehavior saved_;
};

namespace detail
{

/**
 * Escalate a user-level error: print + exit(1) under
 * FatalBehavior::Exit, throw UnistcError under FatalBehavior::Throw.
 * Never filtered by the log level in either mode.
 */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Abort after printing an internal-error message. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Print a debug message to stderr. */
void debugImpl(const std::string &msg);

/** Concatenate a parameter pack into one string via an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return {};
    } else {
        std::ostringstream os;
        (os << ... << std::forward<Args>(args));
        return os.str();
    }
}

} // namespace detail

} // namespace unistc

#define UNISTC_FATAL(...) \
    ::unistc::detail::fatalImpl(__FILE__, __LINE__, \
                                ::unistc::detail::concat(__VA_ARGS__))

#define UNISTC_PANIC(...) \
    ::unistc::detail::panicImpl(__FILE__, __LINE__, \
                                ::unistc::detail::concat(__VA_ARGS__))

#define UNISTC_WARN(...) \
    ::unistc::detail::warnImpl(::unistc::detail::concat(__VA_ARGS__))

#define UNISTC_INFORM(...) \
    ::unistc::detail::informImpl(::unistc::detail::concat(__VA_ARGS__))

#define UNISTC_DEBUG(...) \
    do { \
        if (::unistc::logLevel() <= ::unistc::LogLevel::Debug) { \
            ::unistc::detail::debugImpl( \
                ::unistc::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/** Simulator-bug assertion: active in all build types. */
#define UNISTC_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            UNISTC_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // UNISTC_COMMON_LOGGING_HH
