/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * fatal() is for user-caused conditions the simulator cannot recover
 * from (bad configuration, malformed input files); panic() is for
 * conditions that indicate a bug in the simulator itself; warn() and
 * inform() report status without stopping the run.
 */

#ifndef UNISTC_COMMON_LOGGING_HH
#define UNISTC_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace unistc
{

namespace detail
{

/** Terminate after printing a user-level error message. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Abort after printing an internal-error message. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Concatenate a parameter pack into one string via an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return {};
    } else {
        std::ostringstream os;
        (os << ... << std::forward<Args>(args));
        return os.str();
    }
}

} // namespace detail

} // namespace unistc

#define UNISTC_FATAL(...) \
    ::unistc::detail::fatalImpl(__FILE__, __LINE__, \
                                ::unistc::detail::concat(__VA_ARGS__))

#define UNISTC_PANIC(...) \
    ::unistc::detail::panicImpl(__FILE__, __LINE__, \
                                ::unistc::detail::concat(__VA_ARGS__))

#define UNISTC_WARN(...) \
    ::unistc::detail::warnImpl(::unistc::detail::concat(__VA_ARGS__))

#define UNISTC_INFORM(...) \
    ::unistc::detail::informImpl(::unistc::detail::concat(__VA_ARGS__))

/** Simulator-bug assertion: active in all build types. */
#define UNISTC_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            UNISTC_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // UNISTC_COMMON_LOGGING_HH
