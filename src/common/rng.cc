#include "common/rng.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace unistc
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    UNISTC_ASSERT(bound > 0, "nextBelow bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    UNISTC_ASSERT(lo <= hi, "nextInRange requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1ull;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 high-quality bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    double u1 = nextDouble();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    const double u2 = nextDouble();
    const double two_pi = 6.28318530717958647692;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

std::vector<int>
Rng::sampleDistinct(int n, int k)
{
    UNISTC_ASSERT(k >= 0 && k <= n, "sampleDistinct requires 0 <= k <= n");
    std::vector<int> chosen;
    chosen.reserve(k);
    // Floyd's algorithm: O(k) samples, no O(n) shuffle.
    for (int j = n - k; j < n; ++j) {
        const int t = static_cast<int>(nextBelow(j + 1));
        if (std::find(chosen.begin(), chosen.end(), t) == chosen.end())
            chosen.push_back(t);
        else
            chosen.push_back(j);
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

} // namespace unistc
