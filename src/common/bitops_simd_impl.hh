/**
 * @file
 * Internal backend entry points shared between the dispatch unit
 * (bitops_simd.cc) and the AVX2 translation unit, which is compiled
 * with -mavx2 in isolation so vector codegen cannot leak into
 * generic code. Not part of the public API.
 */

#ifndef UNISTC_COMMON_BITOPS_SIMD_IMPL_HH
#define UNISTC_COMMON_BITOPS_SIMD_IMPL_HH

#include <cstddef>
#include <cstdint>

namespace unistc
{
namespace avx2_bitops
{

/** True when the binary carries AVX2 code and the CPU can run it. */
bool available();

std::uint64_t popcountBuffer16(const std::uint16_t *p, std::size_t n);
std::uint32_t exclusivePrefixPopcount16(const std::uint16_t *p,
                                        std::size_t n,
                                        std::uint32_t *out);
std::uint64_t intersectPopcount16(const std::uint16_t *a,
                                  const std::uint16_t *b,
                                  std::size_t n);
std::uint64_t maskedPopcount16(const std::uint16_t *p, std::size_t n,
                               std::uint16_t mask);
void transpose16x16(const std::uint16_t in[16], std::uint16_t out[16]);

} // namespace avx2_bitops
} // namespace unistc

#endif // UNISTC_COMMON_BITOPS_SIMD_IMPL_HH
