/**
 * @file
 * Bit-manipulation helpers mirroring the simple hardware primitives the
 * paper's functional units rely on (popcounts, prefix sums over bitmap
 * words, per-bit iteration). All operate on 16-bit words because every
 * bitmap in Uni-STC (tile-level and element-level) is a 4x4 = 16-bit map.
 */

#ifndef UNISTC_COMMON_BITOPS_HH
#define UNISTC_COMMON_BITOPS_HH

#include <array>
#include <bit>
#include <cstdint>

namespace unistc
{

/** Number of set bits in a 16-bit bitmap word. */
inline int
popcount16(std::uint16_t v)
{
    return std::popcount(v);
}

/** Number of set bits in a 64-bit word. */
inline int
popcount64(std::uint64_t v)
{
    return std::popcount(v);
}

/** True when bit @p idx (0 = LSB) is set. */
inline bool
testBit(std::uint16_t v, int idx)
{
    return (v >> idx) & 1u;
}

/** Return @p v with bit @p idx set. */
inline std::uint16_t
setBit(std::uint16_t v, int idx)
{
    return static_cast<std::uint16_t>(v | (1u << idx));
}

/**
 * Rank of a set bit: number of set bits strictly below position @p idx.
 * This is the hardware prefix-sum primitive the DPG uses to map a
 * bitmap position to a compacted value-array offset.
 */
inline int
bitRank(std::uint16_t v, int idx)
{
    const std::uint16_t mask =
        static_cast<std::uint16_t>((1u << idx) - 1u);
    return std::popcount(static_cast<std::uint16_t>(v & mask));
}

/** Index (0 = LSB) of the n-th (0-based) set bit; -1 when absent. */
inline int
selectBit(std::uint16_t v, int n)
{
    for (int i = 0; i < 16; ++i) {
        if (testBit(v, i)) {
            if (n == 0)
                return i;
            --n;
        }
    }
    return -1;
}

/**
 * Exclusive prefix-sum of set bits across a 16-entry bitmap, i.e. the
 * compacted offset of every position. Models the prefix-sum units that
 * the paper says drive task dispatch and vector concatenation.
 */
inline std::array<int, 16>
exclusivePrefixRanks(std::uint16_t v)
{
    std::array<int, 16> out{};
    int running = 0;
    for (int i = 0; i < 16; ++i) {
        out[i] = running;
        if (testBit(v, i))
            ++running;
    }
    return out;
}

/** Call @p fn(bitIndex) for every set bit, LSB first. */
template <typename Fn>
inline void
forEachSetBit(std::uint16_t v, Fn &&fn)
{
    while (v) {
        const int idx = std::countr_zero(v);
        fn(idx);
        v = static_cast<std::uint16_t>(v & (v - 1u));
    }
}

/**
 * Interpret a 16-bit word as a 4x4 map in row-major order
 * (bit = r*4 + c) and extract row @p r as a 4-bit value.
 */
inline std::uint16_t
row4(std::uint16_t v, int r)
{
    return static_cast<std::uint16_t>((v >> (4 * r)) & 0xFu);
}

/** Bit index of (r, c) inside a row-major 4x4 bitmap. */
inline int
bit4x4(int r, int c)
{
    return r * 4 + c;
}

/**
 * Transpose a row-major 4x4 bitmap with two delta-swap rounds: the
 * first exchanges the off-diagonal bits of each 2x2 sub-block, the
 * second exchanges the off-diagonal 2x2 sub-blocks themselves.
 */
inline std::uint16_t
transpose4x4(std::uint16_t v)
{
    std::uint16_t t =
        static_cast<std::uint16_t>((v ^ (v >> 3)) & 0x0A0Au);
    v = static_cast<std::uint16_t>(v ^ t ^ (t << 3));
    t = static_cast<std::uint16_t>((v ^ (v >> 6)) & 0x00CCu);
    return static_cast<std::uint16_t>(v ^ t ^ (t << 6));
}

/** Extract column @p c of a row-major 4x4 bitmap as a 4-bit value. */
inline std::uint16_t
col4(std::uint16_t v, int c)
{
    return row4(transpose4x4(v), c);
}

/** Broadcast a 4-bit value into all four nibbles of a 16-bit word. */
inline std::uint16_t
rep4(std::uint16_t v)
{
    return static_cast<std::uint16_t>(v * 0x1111u);
}

/**
 * Collapse each nibble of a row-major 4x4 bitmap to its low bit:
 * bit 4*i of the result is set iff nibble i of @p v is non-zero.
 */
inline std::uint16_t
nonzeroNibbles4(std::uint16_t v)
{
    return static_cast<std::uint16_t>(
        (v | (v >> 1) | (v >> 2) | (v >> 3)) & 0x1111u);
}

/**
 * Expand the low bit of every nibble to a full nibble mask:
 * nibble i of the result is 0xF iff nibble i of @p v is non-zero.
 */
inline std::uint16_t
liveNibbleMask4(std::uint16_t v)
{
    return static_cast<std::uint16_t>(nonzeroNibbles4(v) * 0xFu);
}

/** Ceiling division for non-negative integers. */
inline std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace unistc

#endif // UNISTC_COMMON_BITOPS_HH
