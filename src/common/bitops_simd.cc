#include "common/bitops_simd.hh"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "common/bitops_simd_impl.hh"

#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace unistc
{

// ---------------------------------------------------------------------
// Scalar reference kernels (the oracle). Deliberately the simplest
// possible formulations — the fuzzer and the property tests hold every
// other backend to these, bit for bit.
// ---------------------------------------------------------------------

namespace scalar_bitops
{

std::uint64_t
popcountBuffer16(const std::uint16_t *p, std::size_t n)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i)
        total += static_cast<std::uint64_t>(std::popcount(p[i]));
    return total;
}

std::uint32_t
exclusivePrefixPopcount16(const std::uint16_t *p, std::size_t n,
                          std::uint32_t *out)
{
    std::uint32_t running = 0;
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = running;
        running += static_cast<std::uint32_t>(std::popcount(p[i]));
    }
    return running;
}

std::uint64_t
intersectPopcount16(const std::uint16_t *a, const std::uint16_t *b,
                    std::size_t n)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        total += static_cast<std::uint64_t>(std::popcount(
            static_cast<std::uint16_t>(a[i] & b[i])));
    }
    return total;
}

std::uint64_t
maskedPopcount16(const std::uint16_t *p, std::size_t n,
                 std::uint16_t mask)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        total += static_cast<std::uint64_t>(std::popcount(
            static_cast<std::uint16_t>(p[i] & mask)));
    }
    return total;
}

void
transpose16x16(const std::uint16_t in[16], std::uint16_t out[16])
{
    std::uint16_t cols[16] = {};
    for (int r = 0; r < 16; ++r) {
        for (int c = 0; c < 16; ++c) {
            if ((in[r] >> c) & 1u)
                cols[c] = static_cast<std::uint16_t>(cols[c] |
                                                     (1u << r));
        }
    }
    std::memcpy(out, cols, sizeof(cols));
}

} // namespace scalar_bitops

// ---------------------------------------------------------------------
// Optimised portable (no-intrinsics) kernels — the UNISTC_SIMD=off
// production path. Word-batched popcounts and the Hacker's Delight
// delta-swap transpose; still plain C++, still exact.
// ---------------------------------------------------------------------

namespace
{

namespace swar
{

std::uint64_t
load64(const std::uint16_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v)); // alignment-safe load
    return v;
}

std::uint64_t
popcountBuffer16(const std::uint16_t *p, std::size_t n)
{
    std::uint64_t total = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        total += static_cast<std::uint64_t>(
            std::popcount(load64(p + i)));
    for (; i < n; ++i)
        total += static_cast<std::uint64_t>(std::popcount(p[i]));
    return total;
}

std::uint32_t
exclusivePrefixPopcount16(const std::uint16_t *p, std::size_t n,
                          std::uint32_t *out)
{
    std::uint32_t running = 0;
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = running;
        running += static_cast<std::uint32_t>(std::popcount(p[i]));
    }
    return running;
}

std::uint64_t
intersectPopcount16(const std::uint16_t *a, const std::uint16_t *b,
                    std::size_t n)
{
    std::uint64_t total = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        total += static_cast<std::uint64_t>(
            std::popcount(load64(a + i) & load64(b + i)));
    for (; i < n; ++i)
        total += static_cast<std::uint64_t>(std::popcount(
            static_cast<std::uint16_t>(a[i] & b[i])));
    return total;
}

std::uint64_t
maskedPopcount16(const std::uint16_t *p, std::size_t n,
                 std::uint16_t mask)
{
    const std::uint64_t wide =
        0x0001000100010001ULL * static_cast<std::uint64_t>(mask);
    std::uint64_t total = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        total += static_cast<std::uint64_t>(
            std::popcount(load64(p + i) & wide));
    for (; i < n; ++i)
        total += static_cast<std::uint64_t>(std::popcount(
            static_cast<std::uint16_t>(p[i] & mask)));
    return total;
}

void
transpose16x16(const std::uint16_t in[16], std::uint16_t out[16])
{
    // Hacker's Delight delta-swap transpose, 16-bit edition: four
    // rounds of exchanging j-strided sub-blocks. The swap direction is
    // mirrored relative to the book (high bits of the upper row trade
    // with low bits of the lower row) because our bit convention has
    // column 0 at the LSB, not the MSB.
    std::uint16_t a[16];
    std::memcpy(a, in, sizeof(a));
    std::uint16_t m = 0x00FFu;
    for (int j = 8; j != 0; j >>= 1,
             m = static_cast<std::uint16_t>(m ^ (m << j))) {
        for (int k = 0; k < 16; k = (k + j + 1) & ~j) {
            const std::uint16_t t =
                static_cast<std::uint16_t>(((a[k] >> j) ^ a[k + j]) &
                                           m);
            a[k] = static_cast<std::uint16_t>(a[k] ^ (t << j));
            a[k + j] = static_cast<std::uint16_t>(a[k + j] ^ t);
        }
    }
    std::memcpy(out, a, sizeof(a));
}

} // namespace swar

#if defined(__ARM_NEON)

namespace neon
{

std::uint64_t
popcountBuffer16(const std::uint16_t *p, std::size_t n)
{
    std::uint64_t total = 0;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const uint8x16_t v = vld1q_u8(
            reinterpret_cast<const std::uint8_t *>(p + i));
        total += vaddvq_u8(vcntq_u8(v));
    }
    for (; i < n; ++i)
        total += static_cast<std::uint64_t>(std::popcount(p[i]));
    return total;
}

std::uint64_t
intersectPopcount16(const std::uint16_t *a, const std::uint16_t *b,
                    std::size_t n)
{
    std::uint64_t total = 0;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const uint8x16_t va = vld1q_u8(
            reinterpret_cast<const std::uint8_t *>(a + i));
        const uint8x16_t vb = vld1q_u8(
            reinterpret_cast<const std::uint8_t *>(b + i));
        total += vaddvq_u8(vcntq_u8(vandq_u8(va, vb)));
    }
    for (; i < n; ++i)
        total += static_cast<std::uint64_t>(std::popcount(
            static_cast<std::uint16_t>(a[i] & b[i])));
    return total;
}

std::uint64_t
maskedPopcount16(const std::uint16_t *p, std::size_t n,
                 std::uint16_t mask)
{
    std::uint64_t total = 0;
    std::size_t i = 0;
    const uint16x8_t vm = vdupq_n_u16(mask);
    for (; i + 8 <= n; i += 8) {
        const uint16x8_t v = vld1q_u16(p + i);
        total += vaddvq_u8(
            vcntq_u8(vreinterpretq_u8_u16(vandq_u16(v, vm))));
    }
    for (; i < n; ++i)
        total += static_cast<std::uint64_t>(std::popcount(
            static_cast<std::uint16_t>(p[i] & mask)));
    return total;
}

} // namespace neon

#endif // __ARM_NEON

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

struct SimdOps
{
    std::uint64_t (*popcountBuffer)(const std::uint16_t *, std::size_t);
    std::uint32_t (*exclusivePrefix)(const std::uint16_t *, std::size_t,
                                     std::uint32_t *);
    std::uint64_t (*intersect)(const std::uint16_t *,
                               const std::uint16_t *, std::size_t);
    std::uint64_t (*masked)(const std::uint16_t *, std::size_t,
                            std::uint16_t);
    void (*transpose)(const std::uint16_t *, std::uint16_t *);
    SimdBackend backend;
};

constexpr SimdOps kScalarOps = {
    &swar::popcountBuffer16,   &swar::exclusivePrefixPopcount16,
    &swar::intersectPopcount16, &swar::maskedPopcount16,
    &swar::transpose16x16,     SimdBackend::Scalar,
};

const SimdOps kAvx2Ops = {
    &avx2_bitops::popcountBuffer16,
    &avx2_bitops::exclusivePrefixPopcount16,
    &avx2_bitops::intersectPopcount16,
    &avx2_bitops::maskedPopcount16,
    &avx2_bitops::transpose16x16,
    SimdBackend::Avx2,
};

#if defined(__ARM_NEON)
const SimdOps kNeonOps = {
    &neon::popcountBuffer16,
    // NEON has no win for the serial prefix; reuse the SWAR loop.
    &swar::exclusivePrefixPopcount16,
    &neon::intersectPopcount16,
    &neon::maskedPopcount16,
    &swar::transpose16x16,
    SimdBackend::Neon,
};
#endif

const SimdOps *
opsFor(SimdBackend backend)
{
    switch (backend) {
      case SimdBackend::Scalar:
        return &kScalarOps;
      case SimdBackend::Avx2:
        return avx2_bitops::available() ? &kAvx2Ops : &kScalarOps;
      case SimdBackend::Neon:
#if defined(__ARM_NEON)
        return &kNeonOps;
#else
        return &kScalarOps;
#endif
    }
    return &kScalarOps;
}

SimdBackend
bestBackend()
{
    if (avx2_bitops::available())
        return SimdBackend::Avx2;
#if defined(__ARM_NEON)
    return SimdBackend::Neon;
#else
    return SimdBackend::Scalar;
#endif
}

SimdBackend
backendFromEnv()
{
    const char *env = std::getenv("UNISTC_SIMD");
    if (env == nullptr || std::strcmp(env, "on") == 0 ||
        std::strcmp(env, "auto") == 0 || env[0] == '\0') {
        return bestBackend();
    }
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "scalar") == 0) {
        return SimdBackend::Scalar;
    }
    if (std::strcmp(env, "avx2") == 0)
        return SimdBackend::Avx2;
    if (std::strcmp(env, "neon") == 0)
        return SimdBackend::Neon;
    return bestBackend();
}

std::atomic<const SimdOps *> g_ops{nullptr};

const SimdOps &
ops()
{
    const SimdOps *p = g_ops.load(std::memory_order_acquire);
    if (p == nullptr) {
        p = opsFor(backendFromEnv());
        g_ops.store(p, std::memory_order_release);
    }
    return *p;
}

} // namespace

const char *
toString(SimdBackend backend)
{
    switch (backend) {
      case SimdBackend::Scalar:
        return "scalar";
      case SimdBackend::Avx2:
        return "avx2";
      case SimdBackend::Neon:
        return "neon";
    }
    return "?";
}

SimdBackend
activeSimdBackend()
{
    return ops().backend;
}

bool
simdBackendAvailable(SimdBackend backend)
{
    return opsFor(backend)->backend == backend;
}

SimdBackend
setSimdBackendForTest(SimdBackend backend)
{
    const SimdOps *p = opsFor(backend);
    g_ops.store(p, std::memory_order_release);
    return p->backend;
}

void
resetSimdBackendFromEnv()
{
    g_ops.store(opsFor(backendFromEnv()), std::memory_order_release);
}

std::uint64_t
popcountBuffer16(const std::uint16_t *p, std::size_t n)
{
    return ops().popcountBuffer(p, n);
}

std::uint32_t
exclusivePrefixPopcount16(const std::uint16_t *p, std::size_t n,
                          std::uint32_t *out)
{
    return ops().exclusivePrefix(p, n, out);
}

std::uint64_t
intersectPopcount16(const std::uint16_t *a, const std::uint16_t *b,
                    std::size_t n)
{
    return ops().intersect(a, b, n);
}

std::uint64_t
maskedPopcount16(const std::uint16_t *p, std::size_t n,
                 std::uint16_t mask)
{
    return ops().masked(p, n, mask);
}

void
transpose16x16(const std::uint16_t in[16], std::uint16_t out[16])
{
    ops().transpose(in, out);
}

} // namespace unistc
