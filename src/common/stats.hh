/**
 * @file
 * Light-weight statistics accumulators used by the simulator and the
 * benchmark harnesses: running min/mean/max, fixed-bucket histograms
 * (e.g. the 4-bucket MAC-utilisation breakdown in the paper's Fig. 5),
 * and geometric-mean accumulation for speedup aggregation.
 */

#ifndef UNISTC_COMMON_STATS_HH
#define UNISTC_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace unistc
{

/** Running scalar statistic: count, sum, min, max, mean. */
class RunningStat
{
  public:
    /** Fold one sample into the statistic. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const;
    double max() const;
    double mean() const;

    /** min()/max() when samples exist, @p fallback when empty —
     * export paths must not assert on a zero-sample sweep. */
    double minOr(double fallback) const;
    double maxOr(double fallback) const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Histogram over equal-width buckets covering [lo, hi). Samples below
 * lo clamp to the first bucket and samples >= hi clamp to the last
 * (infinities included), so totalCount() equals the number of finite
 * comparisons made. NaN samples never reach a bucket: they land in a
 * dedicated overflow tally (nanCount()) instead of hitting the
 * undefined float→int cast the clamping math would otherwise make.
 */
class Histogram
{
  public:
    Histogram() = default;

    /** @param buckets number of buckets; @param lo/@param hi range. */
    Histogram(int buckets, double lo, double hi);

    /** Add @p weight samples of value @p x. */
    void add(double x, std::uint64_t weight = 1);

    /**
     * Add @p weight samples of the ratio @p num / @p den
     * (0 <= num <= den). Exactly equivalent to
     * add(double(num) / den, weight) — the bucket for every (num, den)
     * pair is computed once with the same double arithmetic and
     * memoized, which turns the hot per-cycle utilisation update into
     * a table lookup.
     */
    void addRatio(int num, int den, std::uint64_t weight = 1);

    /** Merge a same-shaped histogram. */
    void merge(const Histogram &other);

    /** Multiply every bucket count by @p factor. */
    void scale(std::uint64_t factor);

    int numBuckets() const { return static_cast<int>(counts_.size()); }
    std::uint64_t bucketCount(int b) const { return counts_.at(b); }
    std::uint64_t totalCount() const { return total_; }

    /** NaN samples seen by add() (kept out of every bucket). */
    std::uint64_t nanCount() const { return nan_; }

    /** Fraction of samples in bucket @p b (0 when empty). */
    double bucketFraction(int b) const;

    /** Inclusive lower edge of bucket @p b. */
    double bucketLo(int b) const;

    /** Exclusive upper edge of bucket @p b. */
    double bucketHi(int b) const;

  private:
    double lo_ = 0.0;
    double hi_ = 1.0;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t nan_ = 0;
};

/** Geometric-mean accumulator (log-domain; ignores non-positive input). */
class GeoMean
{
  public:
    /** Fold one positive ratio into the mean. */
    void add(double x);

    std::uint64_t count() const { return count_; }
    double value() const;

  private:
    double logSum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Quantile of a sample vector (copies + sorts; linear interpolation). */
double quantile(std::vector<double> values, double q);

} // namespace unistc

#endif // UNISTC_COMMON_STATS_HH
