#include "common/logging.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "robust/status.hh"

namespace unistc
{

namespace
{

LogLevel
initialLevel()
{
    const char *env = std::getenv("UNISTC_LOG_LEVEL");
    LogLevel level = LogLevel::Info;
    if (env != nullptr && *env != '\0' &&
        !parseLogLevel(env, level)) {
        std::fprintf(stderr,
                     "warn: ignoring bad UNISTC_LOG_LEVEL '%s'\n",
                     env);
    }
    return level;
}

/**
 * The filter is read from simulation worker threads and written by
 * the main thread (--log-level, sweep plan-phase quieting), so it is
 * atomic; relaxed ordering suffices for a monotonic filter check.
 */
std::atomic<LogLevel> &
levelRef()
{
    static std::atomic<LogLevel> level{initialLevel()};
    return level;
}

/**
 * Touch the level at startup so a malformed UNISTC_LOG_LEVEL is
 * warned about even when the program never logs anything.
 */
[[maybe_unused]] const LogLevel initial_level_trigger =
    levelRef().load(std::memory_order_relaxed);

/**
 * Like the level filter, the fatal behavior may be flipped by the
 * main thread while worker jobs run; relaxed atomicity is enough —
 * callers sequence behavior changes against the work they guard.
 */
std::atomic<FatalBehavior> &
fatalBehaviorRef()
{
    static std::atomic<FatalBehavior> behavior{FatalBehavior::Exit};
    return behavior;
}

} // namespace

const char *
toString(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
      case LogLevel::Silent:
        return "silent";
    }
    return "?";
}

bool
parseLogLevel(const std::string &text, LogLevel &out)
{
    std::string t = text;
    std::transform(t.begin(), t.end(), t.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    if (t == "debug" || t == "0") {
        out = LogLevel::Debug;
    } else if (t == "info" || t == "1") {
        out = LogLevel::Info;
    } else if (t == "warn" || t == "warning" || t == "2") {
        out = LogLevel::Warn;
    } else if (t == "error" || t == "3") {
        out = LogLevel::Error;
    } else if (t == "silent" || t == "quiet" || t == "4") {
        out = LogLevel::Silent;
    } else {
        return false;
    }
    return true;
}

LogLevel
logLevel()
{
    return levelRef().load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    levelRef().store(level, std::memory_order_relaxed);
}

FatalBehavior
fatalBehavior()
{
    return fatalBehaviorRef().load(std::memory_order_relaxed);
}

void
setFatalBehavior(FatalBehavior behavior)
{
    fatalBehaviorRef().store(behavior, std::memory_order_relaxed);
}

namespace detail
{

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (fatalBehavior() == FatalBehavior::Throw) {
        // The exception carries the full message; the catcher owns
        // reporting (a sweep quarantines, a test asserts, a fuzz
        // driver swallows).
        throw UnistcError(failedPrecondition(
            msg + " (" + file + ":" + std::to_string(line) + ")"));
    }
    // Deliberately bypasses the log-level filter: a fatal message
    // must reach stderr even at LogLevel::Silent.
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() > LogLevel::Warn)
        return;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() > LogLevel::Info)
        return;
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail
} // namespace unistc
