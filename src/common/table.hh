/**
 * @file
 * ASCII table rendering for the benchmark harnesses. Every bench binary
 * prints the rows/series of its paper table or figure through this
 * formatter so outputs stay aligned and diff-friendly.
 */

#ifndef UNISTC_COMMON_TABLE_HH
#define UNISTC_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace unistc
{

/** Column-aligned text table with a header row and optional title. */
class TextTable
{
  public:
    /** @param title printed above the table; may be empty. */
    explicit TextTable(std::string title = "");

    /** Set the header row (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render to a string with aligned columns. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    // A row holding the single sentinel cell "\x01" renders as a rule.
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits fractional digits. */
std::string fmtDouble(double v, int digits = 2);

/** Format a ratio like "2.21x". */
std::string fmtRatio(double v, int digits = 2);

/** Format a fraction as a percentage like "84.3%". */
std::string fmtPercent(double v, int digits = 1);

/** Format an integer with thousands separators. */
std::string fmtCount(std::uint64_t v);

/** Format a byte count with an SI-ish suffix (K/M/G, base 1024). */
std::string fmtBytes(std::uint64_t v);

/** Format an energy value given in picojoules (pJ/nJ/uJ/mJ). */
std::string fmtEnergyPj(double pj);

} // namespace unistc

#endif // UNISTC_COMMON_TABLE_HH
