/**
 * @file
 * Vectorized bulk bitmap kernels over buffers of 16-bit bitmap words
 * (the Lv1/Lv2 words every BBC structure is made of): buffer
 * popcount, exclusive prefix popcount, bitmap intersection popcount,
 * masked popcount, and the 16x16 bit-matrix transpose behind column
 * summaries. Each kernel has a scalar reference implementation (the
 * oracle the property tests and the fuzzer compare against) plus
 * AVX2 and NEON variants selected at runtime.
 *
 * Backend selection: the UNISTC_SIMD environment variable, read once.
 *   unset / "on" / "auto"  — best backend the CPU supports;
 *   "off" / "0" / "scalar" — scalar reference path;
 *   "avx2" / "neon"        — force a backend (falls back to scalar
 *                            when unavailable).
 * Tests switch backends in-process with setSimdBackendForTest().
 */

#ifndef UNISTC_COMMON_BITOPS_SIMD_HH
#define UNISTC_COMMON_BITOPS_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace unistc
{

enum class SimdBackend
{
    Scalar,
    Avx2,
    Neon,
};

/** Printable backend name ("scalar", "avx2", "neon"). */
const char *toString(SimdBackend backend);

/** Backend currently driving the dispatched kernels. */
SimdBackend activeSimdBackend();

/** True when @p backend can run on this build + CPU. */
bool simdBackendAvailable(SimdBackend backend);

/**
 * Test hook: re-route the dispatched kernels (no-op when @p backend
 * is unavailable; returns the backend actually active). Call
 * resetSimdBackendFromEnv() to restore the environment selection.
 * Single-threaded tests only.
 */
SimdBackend setSimdBackendForTest(SimdBackend backend);
void resetSimdBackendFromEnv();

/** Scalar reference kernels — the oracle for tests and fuzzing. */
namespace scalar_bitops
{

std::uint64_t popcountBuffer16(const std::uint16_t *p, std::size_t n);

/** out[i] = set bits in p[0..i); returns the total (sum over all). */
std::uint32_t exclusivePrefixPopcount16(const std::uint16_t *p,
                                        std::size_t n,
                                        std::uint32_t *out);

std::uint64_t intersectPopcount16(const std::uint16_t *a,
                                  const std::uint16_t *b,
                                  std::size_t n);

std::uint64_t maskedPopcount16(const std::uint16_t *p, std::size_t n,
                               std::uint16_t mask);

/** out[c] = column c of the 16x16 bit matrix whose rows are in[r]. */
void transpose16x16(const std::uint16_t in[16], std::uint16_t out[16]);

} // namespace scalar_bitops

/** Total set bits across @p n 16-bit bitmap words. */
std::uint64_t popcountBuffer16(const std::uint16_t *p, std::size_t n);

/**
 * Exclusive prefix popcount: out[i] = set bits in p[0..i). This is
 * the value-offset prefix sum BBC builds ValPtr arrays with. Returns
 * the inclusive total.
 */
std::uint32_t exclusivePrefixPopcount16(const std::uint16_t *p,
                                        std::size_t n,
                                        std::uint32_t *out);

/** Sum of popcount(a[i] & b[i]) — bitmap-intersection popcount. */
std::uint64_t intersectPopcount16(const std::uint16_t *a,
                                  const std::uint16_t *b,
                                  std::size_t n);

/** Sum of popcount(p[i] & mask) — one-side-broadcast intersection. */
std::uint64_t maskedPopcount16(const std::uint16_t *p, std::size_t n,
                               std::uint16_t mask);

/**
 * Transpose a 16x16 bit matrix: out[c] holds column c (bit r set when
 * in[r] has bit c). Safe with in == out.
 */
void transpose16x16(const std::uint16_t in[16], std::uint16_t out[16]);

} // namespace unistc

#endif // UNISTC_COMMON_BITOPS_SIMD_HH
