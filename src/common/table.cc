#include "common/table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace unistc
{

namespace
{
const std::string kRuleSentinel = "\x01";
} // namespace

TextTable::TextTable(std::string title) : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    UNISTC_ASSERT(header_.empty() || row.size() == header_.size(),
                  "row width ", row.size(), " != header width ",
                  header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.push_back({kRuleSentinel});
}

std::string
TextTable::render() const
{
    // Compute column widths over header and data rows.
    std::vector<std::size_t> widths(header_.size(), 0);
    auto fold = [&](const std::vector<std::string> &row) {
        if (row.size() == 1 && row[0] == kRuleSentinel)
            return;
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    fold(header_);
    for (const auto &row : rows_)
        fold(row);

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 3;

    std::ostringstream os;
    if (!title_.empty())
        os << title_ << "\n";

    auto emitRule = [&]() { os << std::string(total, '-') << "\n"; };
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i]
               << std::string(widths[i] - row[i].size() + 3, ' ');
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emitRow(header_);
        emitRule();
    }
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kRuleSentinel)
            emitRule();
        else
            emitRow(row);
    }
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtRatio(double v, int digits)
{
    return fmtDouble(v, digits) + "x";
}

std::string
fmtPercent(double v, int digits)
{
    return fmtDouble(v * 100.0, digits) + "%";
}

std::string
fmtCount(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int pos = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (pos && pos % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++pos;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
fmtBytes(std::uint64_t v)
{
    const char *suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double x = static_cast<double>(v);
    int s = 0;
    while (x >= 1024.0 && s < 4) {
        x /= 1024.0;
        ++s;
    }
    return fmtDouble(x, s == 0 ? 0 : 2) + " " + suffix[s];
}

std::string
fmtEnergyPj(double pj)
{
    const char *suffix[] = {"pJ", "nJ", "uJ", "mJ", "J"};
    double x = pj;
    int s = 0;
    while (x >= 1000.0 && s < 4) {
        x /= 1000.0;
        ++s;
    }
    return fmtDouble(x, 2) + " " + suffix[s];
}

} // namespace unistc
