/**
 * @file
 * Fixed-inline-capacity vector for task-lifetime data. The simulator's
 * hot loops build many tiny sequences per T1 task (T3 tasks, T4
 * segments, SDPU pending lists, UWMMA instruction bundles) whose sizes
 * are bounded by the 4x4x4 block geometry; SmallVector keeps them in
 * the object itself (usually on the stack) and only touches the heap
 * when a sequence outgrows its inline capacity. The idiom follows
 * cdec's SmallVector (see SNIPPETS.md): trivially relocatable element
 * types, pointer iterators, no allocator customisation.
 */

#ifndef UNISTC_COMMON_SMALL_VECTOR_HH
#define UNISTC_COMMON_SMALL_VECTOR_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/logging.hh"

namespace unistc
{

/**
 * Vector with @p N elements of inline storage. Supports the subset of
 * std::vector used by the simulator (push_back, emplace_back, clear,
 * resize, iteration, indexing, copy/move). Elements must be trivially
 * copyable or at least nothrow-movable; every use in the hot path is
 * a POD task record.
 */
template <typename T, std::size_t N>
class SmallVector
{
    static_assert(N > 0, "inline capacity must be positive");

  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    SmallVector() = default;

    SmallVector(const SmallVector &other) { appendRange(other); }

    SmallVector(SmallVector &&other) noexcept { moveFrom(other); }

    SmallVector &
    operator=(const SmallVector &other)
    {
        if (this != &other) {
            clear();
            appendRange(other);
        }
        return *this;
    }

    SmallVector &
    operator=(SmallVector &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            moveFrom(other);
        }
        return *this;
    }

    ~SmallVector() { destroyAll(); }

    T *data() { return data_; }
    const T *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return capacity_; }

    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }

    T &
    operator[](std::size_t i)
    {
        return data_[i];
    }
    const T &
    operator[](std::size_t i) const
    {
        return data_[i];
    }

    T &front() { return data_[0]; }
    const T &front() const { return data_[0]; }
    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }

    void
    push_back(const T &v)
    {
        if (size_ == capacity_)
            grow(size_ + 1);
        ::new (static_cast<void *>(data_ + size_)) T(v);
        ++size_;
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (size_ == capacity_)
            grow(size_ + 1);
        T *slot = ::new (static_cast<void *>(data_ + size_))
            T(std::forward<Args>(args)...);
        ++size_;
        return *slot;
    }

    void
    pop_back()
    {
        --size_;
        data_[size_].~T();
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < size_; ++i)
            data_[i].~T();
        size_ = 0;
    }

    void
    resize(std::size_t n)
    {
        if (n < size_) {
            for (std::size_t i = n; i < size_; ++i)
                data_[i].~T();
        } else {
            if (n > capacity_)
                grow(n);
            for (std::size_t i = size_; i < n; ++i)
                ::new (static_cast<void *>(data_ + i)) T();
        }
        size_ = n;
    }

    void
    resize(std::size_t n, const T &fill)
    {
        if (n < size_) {
            for (std::size_t i = n; i < size_; ++i)
                data_[i].~T();
        } else {
            if (n > capacity_)
                grow(n);
            for (std::size_t i = size_; i < n; ++i)
                ::new (static_cast<void *>(data_ + i)) T(fill);
        }
        size_ = n;
    }

    void
    reserve(std::size_t n)
    {
        if (n > capacity_)
            grow(n);
    }

    template <typename It>
    void
    append(It first, It last)
    {
        for (; first != last; ++first)
            push_back(*first);
    }

    bool
    operator==(const SmallVector &other) const
    {
        if (size_ != other.size_)
            return false;
        for (std::size_t i = 0; i < size_; ++i) {
            if (!(data_[i] == other.data_[i]))
                return false;
        }
        return true;
    }

  private:
    bool onHeap() const { return data_ != inlinePtr(); }

    T *
    inlinePtr()
    {
        return std::launder(reinterpret_cast<T *>(inline_));
    }
    const T *
    inlinePtr() const
    {
        return std::launder(reinterpret_cast<const T *>(inline_));
    }

    void
    appendRange(const SmallVector &other)
    {
        reserve(other.size_);
        for (std::size_t i = 0; i < other.size_; ++i)
            ::new (static_cast<void *>(data_ + i)) T(other.data_[i]);
        size_ = other.size_;
    }

    /** Steal @p other's heap buffer or move its inline elements. */
    void
    moveFrom(SmallVector &other) noexcept
    {
        if (other.onHeap()) {
            data_ = other.data_;
            size_ = other.size_;
            capacity_ = other.capacity_;
            other.data_ = other.inlinePtr();
            other.size_ = 0;
            other.capacity_ = N;
            return;
        }
        data_ = inlinePtr();
        capacity_ = N;
        size_ = other.size_;
        for (std::size_t i = 0; i < size_; ++i) {
            ::new (static_cast<void *>(data_ + i))
                T(std::move(other.data_[i]));
            other.data_[i].~T();
        }
        other.size_ = 0;
    }

    void
    grow(std::size_t need)
    {
        std::size_t cap = capacity_ * 2;
        if (cap < need)
            cap = need;
        T *buf = static_cast<T *>(
            ::operator new(cap * sizeof(T), std::align_val_t(alignof(T))));
        for (std::size_t i = 0; i < size_; ++i) {
            ::new (static_cast<void *>(buf + i))
                T(std::move(data_[i]));
            data_[i].~T();
        }
        if (onHeap())
            ::operator delete(data_, std::align_val_t(alignof(T)));
        data_ = buf;
        capacity_ = cap;
    }

    void
    destroyAll()
    {
        clear();
        if (onHeap())
            ::operator delete(data_, std::align_val_t(alignof(T)));
    }

    alignas(T) unsigned char inline_[N * sizeof(T)];
    T *data_ = inlinePtr();
    std::size_t size_ = 0;
    std::size_t capacity_ = N;
};

} // namespace unistc

#endif // UNISTC_COMMON_SMALL_VECTOR_HH
