#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace unistc
{

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
}

double
RunningStat::min() const
{
    UNISTC_ASSERT(count_ > 0, "min() on empty RunningStat");
    return min_;
}

double
RunningStat::max() const
{
    UNISTC_ASSERT(count_ > 0, "max() on empty RunningStat");
    return max_;
}

double
RunningStat::minOr(double fallback) const
{
    return count_ > 0 ? min_ : fallback;
}

double
RunningStat::maxOr(double fallback) const
{
    return count_ > 0 ? max_ : fallback;
}

double
RunningStat::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

Histogram::Histogram(int buckets, double lo, double hi)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    UNISTC_ASSERT(buckets > 0 && std::isfinite(lo) &&
                  std::isfinite(hi) && hi > lo,
                  "bad histogram shape");
}

void
Histogram::add(double x, std::uint64_t weight)
{
    UNISTC_ASSERT(!counts_.empty(), "add() on default histogram");
    // NaN must never reach the float->int cast below (UB); it gets
    // its own tally. Infinities clamp like any out-of-range sample.
    if (std::isnan(x)) {
        nan_ += weight;
        return;
    }
    const int last = static_cast<int>(counts_.size()) - 1;
    int b;
    if (x <= lo_) {
        b = 0;
    } else if (x >= hi_) {
        b = last;
    } else {
        const double width = (hi_ - lo_) / counts_.size();
        b = std::clamp(static_cast<int>(std::floor((x - lo_) /
                                                   width)),
                       0, last);
    }
    counts_[b] += weight;
    total_ += weight;
}

void
Histogram::addRatio(int num, int den, std::uint64_t weight)
{
    UNISTC_ASSERT(!counts_.empty(), "addRatio() on default histogram");
    UNISTC_ASSERT(den > 0 && num >= 0 && num <= den,
                  "addRatio ratio out of range");
    if (counts_.size() > 127) { // int8 map; huge shapes stay exact
        add(static_cast<double>(num) / den, weight);
        return;
    }
    // Memoized bucket map for the last (shape, den) seen. The bucket
    // of num/den is computed with exactly the arithmetic add() uses,
    // so the two entry points are bit-identical by construction; the
    // simulator calls this once per cycle with a fixed den (the MAC
    // count), so the cache almost always hits.
    struct RatioMemo {
        double lo, hi;
        std::size_t buckets;
        int den;
        std::vector<std::int8_t> map; // map[num] = bucket index
    };
    thread_local RatioMemo memo{0.0, 0.0, 0, 0, {}};
    if (memo.den != den || memo.buckets != counts_.size() ||
        memo.lo != lo_ || memo.hi != hi_) {
        memo.lo = lo_;
        memo.hi = hi_;
        memo.buckets = counts_.size();
        memo.den = den;
        memo.map.resize(den + 1);
        const int last = static_cast<int>(counts_.size()) - 1;
        const double width = (hi_ - lo_) / counts_.size();
        for (int n = 0; n <= den; ++n) {
            const double x = static_cast<double>(n) / den;
            int b;
            if (x <= lo_) {
                b = 0;
            } else if (x >= hi_) {
                b = last;
            } else {
                b = std::clamp(
                    static_cast<int>(std::floor((x - lo_) / width)), 0,
                    last);
            }
            memo.map[n] = static_cast<std::int8_t>(b);
        }
    }
    counts_[memo.map[num]] += weight;
    total_ += weight;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.counts_.empty())
        return;
    if (counts_.empty()) {
        *this = other;
        return;
    }
    UNISTC_ASSERT(counts_.size() == other.counts_.size() &&
                  lo_ == other.lo_ && hi_ == other.hi_,
                  "merging differently shaped histograms");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    nan_ += other.nan_;
}

void
Histogram::scale(std::uint64_t factor)
{
    for (auto &c : counts_)
        c *= factor;
    total_ *= factor;
    nan_ *= factor;
}

double
Histogram::bucketFraction(int b) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(b)) /
        static_cast<double>(total_);
}

double
Histogram::bucketLo(int b) const
{
    const double width = (hi_ - lo_) / counts_.size();
    return lo_ + b * width;
}

double
Histogram::bucketHi(int b) const
{
    const double width = (hi_ - lo_) / counts_.size();
    return lo_ + (b + 1) * width;
}

void
GeoMean::add(double x)
{
    if (x <= 0.0)
        return;
    logSum_ += std::log(x);
    ++count_;
}

double
GeoMean::value() const
{
    if (count_ == 0)
        return 0.0;
    return std::exp(logSum_ / static_cast<double>(count_));
}

double
quantile(std::vector<double> values, double q)
{
    UNISTC_ASSERT(!values.empty(), "quantile of empty sample");
    UNISTC_ASSERT(q >= 0.0 && q <= 1.0, "quantile q out of range");
    std::sort(values.begin(), values.end());
    const double pos = q * (values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - lo;
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

} // namespace unistc
