/**
 * @file
 * AVX2 backend for the bulk bitmap kernels. This file is the only
 * translation unit compiled with -mavx2 (see src/CMakeLists.txt);
 * when the toolchain or target cannot build AVX2 the stubs below
 * report the backend unavailable and the dispatcher stays scalar.
 * Availability is re-checked at runtime with cpuid so a binary built
 * with AVX2 support still runs on older x86 parts.
 */

#include "common/bitops_simd_impl.hh"

#include <bit>
#include <cstring>

#if defined(UNISTC_AVX2_BUILD)
#include <immintrin.h>
#endif

namespace unistc
{
namespace avx2_bitops
{

#if defined(UNISTC_AVX2_BUILD)

bool
available()
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

namespace
{

/** Per-byte popcount of a 256-bit lane via the nibble LUT + pshufb. */
inline __m256i
popcountBytes(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1,
        2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0F);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                           _mm256_shuffle_epi8(lut, hi));
}

/** Horizontal sum of the 32 byte counts (each <= 8, so no overflow). */
inline std::uint64_t
sumBytes(__m256i counts)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i sad = _mm256_sad_epu8(counts, zero);
    return static_cast<std::uint64_t>(_mm256_extract_epi64(sad, 0)) +
        static_cast<std::uint64_t>(_mm256_extract_epi64(sad, 1)) +
        static_cast<std::uint64_t>(_mm256_extract_epi64(sad, 2)) +
        static_cast<std::uint64_t>(_mm256_extract_epi64(sad, 3));
}

inline std::uint64_t
scalarTail(const std::uint16_t *p, std::size_t n, std::uint16_t mask)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        total += static_cast<std::uint64_t>(std::popcount(
            static_cast<std::uint16_t>(p[i] & mask)));
    }
    return total;
}

} // namespace

std::uint64_t
popcountBuffer16(const std::uint16_t *p, std::size_t n)
{
    std::uint64_t total = 0;
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p + i));
        total += sumBytes(popcountBytes(v));
    }
    total += scalarTail(p + i, n - i, 0xFFFFu);
    return total;
}

std::uint32_t
exclusivePrefixPopcount16(const std::uint16_t *p, std::size_t n,
                          std::uint32_t *out)
{
    // Vectorize the per-word popcounts; the carry chain itself is
    // inherently serial and stays scalar.
    std::uint32_t running = 0;
    std::size_t i = 0;
    alignas(32) std::uint8_t counts[32];
    for (; i + 16 <= n; i += 16) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p + i));
        _mm256_store_si256(reinterpret_cast<__m256i *>(counts),
                           popcountBytes(v));
        for (int w = 0; w < 16; ++w) {
            out[i + w] = running;
            running += static_cast<std::uint32_t>(
                counts[2 * w] + counts[2 * w + 1]);
        }
    }
    for (; i < n; ++i) {
        out[i] = running;
        running += static_cast<std::uint32_t>(std::popcount(p[i]));
    }
    return running;
}

std::uint64_t
intersectPopcount16(const std::uint16_t *a, const std::uint16_t *b,
                    std::size_t n)
{
    std::uint64_t total = 0;
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        total += sumBytes(popcountBytes(_mm256_and_si256(va, vb)));
    }
    for (; i < n; ++i) {
        total += static_cast<std::uint64_t>(std::popcount(
            static_cast<std::uint16_t>(a[i] & b[i])));
    }
    return total;
}

std::uint64_t
maskedPopcount16(const std::uint16_t *p, std::size_t n,
                 std::uint16_t mask)
{
    const __m256i vm = _mm256_set1_epi16(static_cast<short>(mask));
    std::uint64_t total = 0;
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p + i));
        total += sumBytes(popcountBytes(_mm256_and_si256(v, vm)));
    }
    total += scalarTail(p + i, n - i, mask);
    return total;
}

void
transpose16x16(const std::uint16_t in[16], std::uint16_t out[16])
{
    // movemask extracts one bit per byte: after k left shifts, the
    // odd-position bits of the 32-bit mask are column (15 - k) and
    // the even-position bits are column (7 - k). Eight shifts yield
    // all 16 columns.
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(in));
    std::uint16_t cols[16];
    for (int k = 0; k < 8; ++k) {
        const std::uint32_t m = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(v));
        // De-interleave: odd bits -> high column, even bits -> low.
        std::uint32_t odd = (m >> 1) & 0x55555555u;
        odd = (odd | (odd >> 1)) & 0x33333333u;
        odd = (odd | (odd >> 2)) & 0x0F0F0F0Fu;
        odd = (odd | (odd >> 4)) & 0x00FF00FFu;
        odd = (odd | (odd >> 8)) & 0x0000FFFFu;
        std::uint32_t even = m & 0x55555555u;
        even = (even | (even >> 1)) & 0x33333333u;
        even = (even | (even >> 2)) & 0x0F0F0F0Fu;
        even = (even | (even >> 4)) & 0x00FF00FFu;
        even = (even | (even >> 8)) & 0x0000FFFFu;
        cols[15 - k] = static_cast<std::uint16_t>(odd);
        cols[7 - k] = static_cast<std::uint16_t>(even);
        v = _mm256_slli_epi16(v, 1);
    }
    std::memcpy(out, cols, sizeof(cols));
}

#else // !UNISTC_AVX2_BUILD — stubs keep the dispatcher linkable.

bool
available()
{
    return false;
}

std::uint64_t
popcountBuffer16(const std::uint16_t *, std::size_t)
{
    return 0;
}

std::uint32_t
exclusivePrefixPopcount16(const std::uint16_t *, std::size_t,
                          std::uint32_t *)
{
    return 0;
}

std::uint64_t
intersectPopcount16(const std::uint16_t *, const std::uint16_t *,
                    std::size_t)
{
    return 0;
}

std::uint64_t
maskedPopcount16(const std::uint16_t *, std::size_t, std::uint16_t)
{
    return 0;
}

void
transpose16x16(const std::uint16_t *, std::uint16_t *)
{
}

#endif // UNISTC_AVX2_BUILD

} // namespace avx2_bitops
} // namespace unistc
