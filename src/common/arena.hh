/**
 * @file
 * Task-lifetime scratch arena. Hot simulation paths (row-dataflow
 * lock-step merging, CSR→BBC conversion) need short-lived buffers
 * whose sizes depend on the data; allocating them from the general
 * heap per task is the malloc churn the ROADMAP's hot-path item names.
 * A ScratchArena is a bump allocator over reusable chunks: allocation
 * is a pointer increment, and a Scope rewinds everything allocated
 * inside it on exit, so nested users compose.
 *
 * `UNISTC_ARENA=off` switches every arena to plain pass-through heap
 * allocation (one malloc per request, freed on rewind) with identical
 * semantics — the differential tests run both modes and require
 * byte-identical simulation output.
 */

#ifndef UNISTC_COMMON_ARENA_HH
#define UNISTC_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace unistc
{

/** Bump allocator with scope-based rewind. Not thread-safe; use the
 * thread_local taskScratch() instance from worker code. */
class ScratchArena
{
  public:
    ScratchArena() = default;
    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;

    /** Uninitialised storage of @p bytes with @p align alignment. */
    void *allocate(std::size_t bytes, std::size_t align);

    /** Uninitialised array of @p n trivially-destructible Ts. */
    template <typename T>
    T *
    allocArray(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena storage is rewound, never destroyed");
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /** Bytes currently handed out (both modes). */
    std::size_t bytesInUse() const { return inUse_; }

    /** Bytes of chunk capacity retained for reuse (arena mode). */
    std::size_t bytesReserved() const;

    /**
     * RAII rewind point: destruction releases every allocation made
     * after construction. Scopes must nest (destroy in reverse
     * construction order), which stack usage guarantees.
     */
    class Scope
    {
      public:
        explicit Scope(ScratchArena &arena);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        ScratchArena &arena_;
        std::size_t chunk_;
        std::size_t used_;
        std::size_t plainCount_;
        std::size_t inUse_;
    };

    /** False when UNISTC_ARENA=off selected pass-through mode. */
    static bool enabled();

    /**
     * Test hook: force arena (true) or pass-through (false) mode for
     * subsequently created allocations. Single-threaded tests only.
     */
    static void setEnabledForTest(bool enabled);

    /** Re-read UNISTC_ARENA (undo setEnabledForTest). */
    static void resetModeFromEnv();

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    void *allocateSlow(std::size_t bytes, std::size_t align);

    std::vector<Chunk> chunks_;
    std::size_t cur_ = 0; ///< Chunk currently bump-allocating.
    std::size_t inUse_ = 0;

    /** Pass-through mode: individually owned allocations, released by
     * Scope rewind in LIFO order. */
    std::vector<std::unique_ptr<std::byte[]>> plain_;
};

/** Per-thread arena for task-lifetime scratch in model hot paths. */
ScratchArena &taskScratch();

} // namespace unistc

#endif // UNISTC_COMMON_ARENA_HH
