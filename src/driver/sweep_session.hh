/**
 * @file
 * SweepSession: the per-run --jobs state machine driving the plan /
 * execute / replay phases (docs/PARALLELISM.md; moved out of
 * bench/bench_common.hh). Off by default; DriverSession flips it
 * when the request asks for a parallel sweep: the body runs twice,
 * first as a silenced *plan* pass where every runKernel() call
 * submits a JobSpec to the SweepExecutor and returns a degenerate
 * sentinel, then — after a barrier — as a serial *replay* pass that
 * splices the precomputed results back in, producing byte-identical
 * output for any worker count.
 */

#ifndef UNISTC_DRIVER_SWEEP_SESSION_HH
#define UNISTC_DRIVER_SWEEP_SESSION_HH

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "driver/kernel_run.hh"
#include "driver/sweep_request.hh"
#include "exec/sweep_executor.hh"

namespace unistc
{
namespace driver
{

/** The --jobs plan/execute/replay state of one ExecutionContext. */
class SweepSession
{
  public:
    enum class Mode
    {
        Off,    ///< Serial: runKernel() simulates inline.
        Plan,   ///< Recording pass: submit jobs, return sentinels.
        Replay, ///< Serial re-run returning precomputed results.
    };

    SweepSession() = default;

    SweepSession(const SweepSession &) = delete;
    SweepSession &operator=(const SweepSession &) = delete;

    Mode mode() const { return mode_; }

    /**
     * Begin the plan pass with the request's worker count, recovery
     * policy and trace capacity. Stats collection stays off — the
     * ResultLog builds its own per-entry registries at dump time, so
     * executor-side shards would be redundant work.
     */
    void startPlan(const SweepRequest &req);

    /** Barrier: all planned jobs finish, then replay begins. */
    void startReplay();

    /** End the sweep: recovery tallies go to the warehouse sink. */
    void finish();

    /** Plan-pass runKernel(): record + submit, return a sentinel. */
    RunResult plan(Kernel kernel, const StcModel &model,
                   const Prepared &p, const EnergyModel &energy,
                   int bCols);

    /** Replay-pass runKernel(): next precomputed result, checked. */
    RunResult replay(Kernel kernel, const StcModel &model,
                     const Prepared &p, RunInfo *info);

    /**
     * Plan-pass runKernelLineup(): submit ONE multi-model job whose
     * lineup shares a single task stream, return sentinels.
     */
    std::vector<RunResult> planLineup(
        Kernel kernel, const std::vector<const StcModel *> &models,
        const Prepared &p, const EnergyModel &energy, int bCols);

    /**
     * Replay-pass runKernelLineup(): per-model results of the next
     * planned multi-model job, checked against the request; the
     * job's engine counters land in @p counters.
     */
    std::vector<RunResult> replayLineup(
        Kernel kernel, const std::vector<const StcModel *> &models,
        const Prepared &p, PipelineCounters *counters,
        std::vector<RunInfo> *infos);

    /**
     * The live executor (null when Off). Valid through the replay
     * pass — front-ends read trace()/outcome()/pipelineCounters()
     * from it while reporting; finish() destroys it.
     */
    const SweepExecutor *executor() const { return exec_.get(); }

    /** Drop all sweep state for context reuse. */
    void reset();

    /**
     * The degenerate nonzero sentinel plan-pass calls return: several
     * bodies guard on `result.cycles == 0` before folding results
     * into rollups, and an all-skipped rollup panics (max() on empty
     * stat). Nonzero counters keep the plan pass on the same control
     * path; every derived ratio is a neutral 1.0 and the output goes
     * to /dev/null anyway. Shard workers reuse it for non-owned
     * units, for the same reason.
     */
    static RunResult sentinel();

  private:
    struct Capture
    {
        std::shared_ptr<const BbcMatrix> bbc;
        std::shared_ptr<const SparseVector> x50;
    };

    /**
     * One shared copy of a Prepared matrix per sweep, keyed by name
     * and shape so every job over the same matrix shares operands
     * instead of copying them.
     */
    const Capture &capture(const Prepared &p);

    Mode mode_ = Mode::Off;
    std::unique_ptr<SweepExecutor> exec_;
    std::map<std::string, Capture> captures_;
    std::size_t cursor_ = 0;
};

} // namespace driver
} // namespace unistc

#endif // UNISTC_DRIVER_SWEEP_SESSION_HH
