/**
 * @file
 * CheckpointSession: the per-run --resume state — a checkpoint file
 * loaded at startup plus an append handle for newly finished jobs
 * (moved out of bench/bench_common.hh into the src/driver/ library).
 * lookup() matches a runKernel() call against the checkpoint by
 * (kernel, model, matrix) key and occurrence count — the Nth call
 * with a given key maps to the Nth checkpointed entry with that
 * key — so bodies that run the same combination repeatedly resume
 * correctly, and the plan and replay passes of a --jobs run (which
 * both traverse the body) see identical answers after resetCursor().
 */

#ifndef UNISTC_DRIVER_CHECKPOINT_SESSION_HH
#define UNISTC_DRIVER_CHECKPOINT_SESSION_HH

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "robust/checkpoint.hh"
#include "runner/report.hh"

namespace unistc
{
namespace driver
{

/** The --resume lookup/append state of one ExecutionContext. */
class CheckpointSession
{
  public:
    CheckpointSession() = default;

    CheckpointSession(const CheckpointSession &) = delete;
    CheckpointSession &operator=(const CheckpointSession &) = delete;

    /** Enable resume against @p path: load it, then append to it. */
    void configure(const std::string &path);

    /**
     * Shard-worker variant: serve lookups from @p path but never
     * append — only the supervisor's serve pass extends the user's
     * checkpoint, so K workers cannot interleave writes into it. No
     * repair either (the supervisor already did it before any worker
     * was spawned).
     */
    void configureReadOnly(const std::string &path);

    bool enabled() const { return enabled_; }

    /**
     * Checkpointed result for the next occurrence of this key, or
     * null when the job still has to run. Advances the occurrence
     * cursor either way.
     */
    const CheckpointEntry *lookup(Kernel kernel,
                                  const std::string &model,
                                  const std::string &matrix);

    /** Append a newly computed result (flushes immediately). */
    void append(Kernel kernel, const std::string &model,
                const std::string &matrix, const RunResult &result);

    /**
     * Restart occurrence counting — called between the plan and
     * replay passes so both consume the checkpoint identically.
     */
    void resetCursor();

    /**
     * Drop all resume state (close the writer, forget the log) so a
     * long-lived ExecutionContext can serve a later request with a
     * different — or no — checkpoint file.
     */
    void reset();

  private:
    bool enabled_ = false;
    bool readOnly_ = false;
    std::mutex mu_;
    std::unique_ptr<CheckpointLog> log_;
    CheckpointWriter writer_;
    std::map<std::string, std::size_t> seen_;
};

} // namespace driver
} // namespace unistc

#endif // UNISTC_DRIVER_CHECKPOINT_SESSION_HH
