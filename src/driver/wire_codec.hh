/**
 * @file
 * The unistc_serve wire protocol: newline-delimited JSON request and
 * response records (docs/SERVING.md). One request per line, one
 * response per line, correlated by a client-chosen id — simple enough
 * for `nc` and jq, structured enough for the load generator.
 *
 * A request's argv is the simulate_cli flag tail (no binary name):
 * the daemon parses it through driver::parseSweepCli with the
 * simulate front-end's flag family, so the wire grammar IS the CLI
 * grammar and cannot drift from it.
 *
 * Encoding uses obs/json_writer.hh in compact mode and decoding uses
 * obs/json_reader.hh, so escaping and number round-trips follow the
 * repo's one audited JSON contract.
 */

#ifndef UNISTC_DRIVER_WIRE_CODEC_HH
#define UNISTC_DRIVER_WIRE_CODEC_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "robust/status.hh"

namespace unistc
{
namespace driver
{

/** One client request line. */
struct WireRequest
{
    /** Echoed verbatim in the response; client-chosen. */
    std::string id;

    /** "run" | "ping" | "stats" | "shutdown" (default "run"). */
    std::string op = "run";

    /**
     * Quota bucket for per-client admission control. Optional on the
     * wire: the server falls back to a per-connection identity.
     */
    std::string client;

    /** Warehouse label for this request's run (docs/WAREHOUSE.md). */
    std::string label;

    /** simulate_cli flags, binary name excluded. */
    std::vector<std::string> argv;
};

/** One server response line. */
struct WireResponse
{
    std::string id; ///< The request's id, echoed.

    /** "ok" | "error" | "rejected" (rejected = load shed). */
    std::string status = "ok";

    /** The simulation body's exit code ("run" responses). */
    int exitCode = 0;

    /**
     * Captured stdout of the run — byte-identical to a one-shot
     * simulate_cli execution of the same argv.
     */
    std::string output;

    /** Human-readable reason for "error"/"rejected". */
    std::string error;

    /** Counter snapshot ("stats" and "shutdown" responses). */
    std::map<std::string, std::uint64_t> counters;
};

/** Compact one-line JSON, no trailing newline. */
std::string encodeRequest(const WireRequest &req);
std::string encodeResponse(const WireResponse &resp);

/**
 * Decode one NDJSON line. Typed errors (never fatals) on malformed
 * JSON, wrong field types, or an unknown op — the daemon turns them
 * into "rejected" responses and stays up.
 */
Result<WireRequest> decodeRequest(const std::string &line);
Result<WireResponse> decodeResponse(const std::string &line);

} // namespace driver
} // namespace unistc

#endif // UNISTC_DRIVER_WIRE_CODEC_HH
